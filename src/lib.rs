//! # linear-dft — deterministic fault-tolerant distributed computing in
//! linear time and communication
//!
//! A Rust reproduction of Chlebus, Kowalski and Olkowski, *Deterministic
//! Fault-Tolerant Distributed Computing in Linear Time and Communication*
//! (PODC 2023, arXiv:2305.11644).  This facade crate re-exports the
//! workspace's building blocks:
//!
//! * [`sim`] — the synchronous message-passing simulator (multi-port and
//!   single-port runners, crash and Byzantine adversaries, metrics);
//! * [`overlay`] — expander / Ramanujan overlay graphs and their
//!   fault-tolerance properties;
//! * [`auth`] — the simulated signature substrate for the
//!   authenticated-Byzantine model;
//! * [`core`] — the paper's algorithms (almost-everywhere agreement,
//!   spread-common-value, few/many-crashes consensus, gossip, checkpointing,
//!   Dolev–Strong, AB-consensus, the single-port adaptation);
//! * [`baselines`] — the comparison algorithms used by the benchmark
//!   harness.
//!
//! See the `examples/` directory for runnable end-to-end scenarios and
//! `dft-bench` for the experiment harness regenerating the paper's tables.
//!
//! # Quickstart
//!
//! ```
//! use linear_dft::core::{FewCrashesConsensus, SystemConfig};
//! use linear_dft::sim::{RandomCrashes, Runner};
//!
//! let n = 50;
//! let t = 6;
//! let config = SystemConfig::new(n, t).unwrap();
//! let inputs: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
//! let nodes = FewCrashesConsensus::for_all_nodes(&config, &inputs).unwrap();
//! let rounds = nodes[0].total_rounds();
//! let mut runner =
//!     Runner::with_adversary(nodes, Box::new(RandomCrashes::new(n, t, 20, 1)), t).unwrap();
//! let report = runner.run(rounds + 2);
//! assert!(report.all_non_faulty_decided() && report.non_faulty_deciders_agree());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dft_auth as auth;
pub use dft_baselines as baselines;
pub use dft_core as core;
pub use dft_overlay as overlay;
pub use dft_sim as sim;
