//! Offline stand-in for the `rand` 0.8 API surface used by this workspace.
//!
//! Implements the subset the simulator and overlay builders rely on —
//! `RngCore`, the `Rng` extension trait (`gen_range`, `gen_bool`, `gen`),
//! `SeedableRng::seed_from_u64`, and `seq::SliceRandom`
//! (`shuffle` / `choose` / `choose_multiple`) — with the same call syntax as
//! the real crate.  Streams are deterministic per seed but are NOT
//! bit-compatible with crates.io `rand`; all workspace code treats seeds as
//! opaque, so only determinism matters.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Core random-number source: the subset of `rand_core::RngCore` we need.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64 {
        let hi = self.next_u32() as u64;
        let lo = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a value in `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as u128).wrapping_sub(low as u128);
                // Modulo sampling: a negligible bias is acceptable for a
                // simulation substrate; determinism is what matters here.
                let draw = (rng.next_u64() as u128) % span;
                (low as u128).wrapping_add(draw) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (low as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + unit * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_range(rng, low as f64, high as f64) as f32
    }
}

/// Extension trait mirroring `rand::Rng` for the methods the workspace uses.
pub trait Rng: RngCore {
    /// Draws a value uniformly from the half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample_range(self, 0.0, 1.0) < p
    }

    /// Draws a full-width random value for the supported primitive types.
    fn gen<T: FromRandomBits>(&mut self) -> T {
        T::from_random_bits(self.next_u64())
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Helper for [`Rng::gen`]: build a value from 64 random bits.
pub trait FromRandomBits {
    /// Converts 64 random bits into `Self`.
    fn from_random_bits(bits: u64) -> Self;
}

macro_rules! impl_from_random_bits {
    ($($t:ty),*) => {$(
        impl FromRandomBits for $t {
            fn from_random_bits(bits: u64) -> Self {
                bits as $t
            }
        }
    )*};
}

impl_from_random_bits!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRandomBits for bool {
    fn from_random_bits(bits: u64) -> Self {
        bits & 1 == 1
    }
}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The seed type (kept for signature compatibility).
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanding it with SplitMix64
    /// (like the real crate's default implementation).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension trait mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Returns an iterator over `amount` distinct uniformly chosen
        /// elements (all of them if `amount >= len`), in random order.
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            // Partial Fisher–Yates over an index vector.
            let mut indices: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..indices.len());
                indices.swap(i, j);
            }
            indices
                .into_iter()
                .take(amount)
                .map(|i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(99);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_multiple_yields_distinct_elements() {
        let mut rng = Counter(3);
        let v: Vec<usize> = (0..20).collect();
        let picked: Vec<usize> = v.choose_multiple(&mut rng, 8).copied().collect();
        assert_eq!(picked.len(), 8);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8, "elements must be distinct");
    }
}
