//! Offline stand-in for `rand_chacha`: a real ChaCha8 keystream generator
//! behind the vendored `rand` traits.
//!
//! The core is the standard ChaCha quarter-round with 8 rounds and a 64-bit
//! block counter.  The keystream is deterministic per seed but not
//! bit-compatible with crates.io `rand_chacha` (word-extraction order
//! differs); workspace code treats seeds as opaque, so only determinism
//! matters.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

/// A ChaCha generator with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    nonce: [u32; 2],
    buf: [u32; 16],
    idx: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let input: [u32; 16] = [
            CHACHA_CONSTANTS[0],
            CHACHA_CONSTANTS[1],
            CHACHA_CONSTANTS[2],
            CHACHA_CONSTANTS[3],
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            self.nonce[0],
            self.nonce[1],
        ];
        let mut state = input;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds of column + diagonal quarter-rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buf = state;
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }
}

fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            *word = u32::from_le_bytes(seed[i * 4..i * 4 + 4].try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            nonce: [0, 0],
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let word = self.buf[self.idx];
        self.idx += 1;
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn stream_spans_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        // Pull more than one 16-word block; values must keep changing.
        let vals: Vec<u32> = (0..64).map(|_| rng.next_u32()).collect();
        let mut uniq = vals.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert!(
            uniq.len() > 48,
            "keystream should look random across blocks"
        );
    }
}
