//! Offline stand-in for `criterion`.
//!
//! Supports the subset the `dft-bench` suites use — `Criterion`,
//! `benchmark_group`, `sample_size`, `bench_function`, `finish`, `Bencher::
//! iter`, `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//! Each benchmark runs `sample_size` timed samples and prints
//! min / mean / max wall-clock time per iteration plus an IQR-trimmed mean
//! (see [`stats`]) — no HTML reports, but honest timings with a stable
//! output format and the same Tukey-fence outlier rejection real criterion
//! applies before reporting.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub mod stats {
    //! Minimal sample statistics: min / mean / max plus interquartile-range
    //! (Tukey fence) outlier rejection, the piece of real criterion's
    //! statistics engine the offline stand-in reproduces.  Exposed publicly
    //! so the experiment harness (`run_experiments --timings --samples K`)
    //! can report the same summary for per-experiment wall times.

    use std::time::Duration;

    /// Summary of a set of timing samples.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct Summary {
        /// Fastest sample.
        pub min: Duration,
        /// Untrimmed arithmetic mean.
        pub mean: Duration,
        /// Slowest sample.
        pub max: Duration,
        /// Mean of the samples inside the Tukey fences
        /// `[q1 − 1.5·IQR, q3 + 1.5·IQR]`.
        pub trimmed_mean: Duration,
        /// Samples rejected by the fences.
        pub outliers: usize,
        /// Total samples observed.
        pub samples: usize,
    }

    /// Summarises `times`; `None` when empty.
    ///
    /// Quartiles use the nearest-rank positions `n/4` and `3n/4` of the
    /// sorted samples — crude next to real criterion's bootstrap, but
    /// deterministic and adequate for rejecting the warm-up / scheduler
    /// spikes that dominate wall-clock noise.  With fewer than four samples
    /// the fences degenerate and nothing is rejected, so the trimmed mean
    /// equals the mean.
    pub fn summarize(times: &[Duration]) -> Option<Summary> {
        if times.is_empty() {
            return None;
        }
        let mut sorted: Vec<Duration> = times.to_vec();
        sorted.sort_unstable();
        let n = sorted.len();
        let min = sorted[0];
        let max = sorted[n - 1];
        let mean = mean_of(&sorted);
        let (q1, q3) = (sorted[n / 4], sorted[(3 * n / 4).min(n - 1)]);
        let iqr = q3.saturating_sub(q1);
        let low = q1.saturating_sub(iqr * 3 / 2);
        let high = q3.saturating_add(iqr * 3 / 2);
        let kept: Vec<Duration> = sorted
            .iter()
            .copied()
            .filter(|&t| t >= low && t <= high)
            .collect();
        // The fences always contain the quartiles themselves, so `kept` is
        // never empty.
        let trimmed_mean = mean_of(&kept);
        Some(Summary {
            min,
            mean,
            max,
            trimmed_mean,
            outliers: n - kept.len(),
            samples: n,
        })
    }

    fn mean_of(times: &[Duration]) -> Duration {
        let total: u128 = times.iter().map(Duration::as_nanos).sum();
        Duration::from_nanos((total / times.len() as u128) as u64)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn empty_samples_have_no_summary() {
            assert!(summarize(&[]).is_none());
        }

        #[test]
        fn uniform_samples_reject_nothing() {
            let times = vec![Duration::from_millis(10); 8];
            let s = summarize(&times).unwrap();
            assert_eq!(s.min, s.max);
            assert_eq!(s.mean, s.trimmed_mean);
            assert_eq!(s.outliers, 0);
            assert_eq!(s.samples, 8);
        }

        #[test]
        fn iqr_rejects_a_far_outlier() {
            let mut times = vec![Duration::from_millis(10); 9];
            times.push(Duration::from_secs(5));
            let s = summarize(&times).unwrap();
            assert_eq!(s.outliers, 1);
            assert_eq!(s.trimmed_mean, Duration::from_millis(10));
            // The untrimmed mean is dragged way up by the outlier.
            assert!(s.mean > Duration::from_millis(100));
            assert_eq!(s.max, Duration::from_secs(5));
        }

        #[test]
        fn tiny_sample_sets_keep_everything() {
            let times = [Duration::from_millis(1), Duration::from_millis(9)];
            let s = summarize(&times).unwrap();
            assert_eq!(s.outliers, 0);
            assert_eq!(s.samples, 2);
        }
    }
}

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into(), 10, &mut f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.sample_size, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, f: &mut F) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(samples),
    };
    for _ in 0..samples {
        f(&mut bencher);
    }
    let Some(summary) = stats::summarize(&bencher.samples) else {
        println!("  {id}: no samples");
        return;
    };
    println!("  {id}: {}", format_summary(&summary));
}

/// Renders a summary as `[min mean max] trimmed T (k outliers, n samples)`.
pub fn format_summary(summary: &stats::Summary) -> String {
    format!(
        "[{} {} {}] trimmed {} ({} outlier{}, {} sample{})",
        fmt_duration(summary.min),
        fmt_duration(summary.mean),
        fmt_duration(summary.max),
        fmt_duration(summary.trimmed_mean),
        summary.outliers,
        if summary.outliers == 1 { "" } else { "s" },
        summary.samples,
        if summary.samples == 1 { "" } else { "s" },
    )
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Passed to the benchmark closure; records one timed sample per `iter`.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one execution of `f` and records it as a sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.samples.push(start.elapsed());
        drop(black_box(out));
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_each_iter() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("t");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 3);
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(fmt_duration(Duration::from_nanos(10)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(10)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(10)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(10)).ends_with(" s"));
    }
}
