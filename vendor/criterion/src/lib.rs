//! Offline stand-in for `criterion`.
//!
//! Supports the subset the `dft-bench` suites use — `Criterion`,
//! `benchmark_group`, `sample_size`, `bench_function`, `finish`, `Bencher::
//! iter`, `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//! Each benchmark runs `sample_size` timed samples and prints
//! min / mean / max wall-clock time per iteration — no statistics engine, no
//! HTML reports, but honest timings with a stable output format.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into(), 10, &mut f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.sample_size, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, f: &mut F) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(samples),
    };
    for _ in 0..samples {
        f(&mut bencher);
    }
    let times = &bencher.samples;
    if times.is_empty() {
        println!("  {id}: no samples");
        return;
    }
    let min = times.iter().min().copied().unwrap_or_default();
    let max = times.iter().max().copied().unwrap_or_default();
    let mean = times.iter().sum::<Duration>() / times.len() as u32;
    println!(
        "  {id}: [{} {} {}] ({} samples)",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max),
        times.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Passed to the benchmark closure; records one timed sample per `iter`.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one execution of `f` and records it as a sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.samples.push(start.elapsed());
        drop(black_box(out));
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_each_iter() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("t");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 3);
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(fmt_duration(Duration::from_nanos(10)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(10)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(10)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(10)).ends_with(" s"));
    }
}
