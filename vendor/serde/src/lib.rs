//! Offline stand-in for `serde`.
//!
//! The build environment has no registry access, so this crate provides just
//! enough of serde's public surface for the workspace to compile: the
//! `Serialize` / `Deserialize` traits (as blanket-implemented markers, since
//! nothing in the workspace performs actual serialization yet) and the
//! matching no-op derive macros.  Swapping in the real serde later is a
//! one-line change in the workspace manifest; no source edits are required.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// sized types.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T {}

/// Stand-in for `serde::de`, so `serde::de::DeserializeOwned` paths resolve.
pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}
