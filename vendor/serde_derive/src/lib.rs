//! Offline stand-in for `serde_derive`.
//!
//! The vendored `serde` blanket-implements its marker traits for every type,
//! so these derives only need to (a) accept the `#[derive(Serialize,
//! Deserialize)]` syntax and (b) swallow `#[serde(...)]` helper attributes.
//! They expand to nothing.

use proc_macro::TokenStream;

/// No-op `Serialize` derive; the blanket impl in `serde` covers every type.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive; the blanket impl in `serde` covers every type.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
