//! Offline stand-in for `proptest`.
//!
//! Supports the macro syntax the workspace's property tests use
//! (a `text` block, not a doctest: `cargo test -- --ignored` would
//! otherwise try to compile this illustrative snippet and fail):
//!
//! ```text
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(12))]
//!     #[test]
//!     fn my_property(n in 30usize..90, bits in any::<u64>()) { ... }
//! }
//! ```
//!
//! Each test runs `cases` times with inputs sampled from the strategies by a
//! deterministic per-test RNG (seeded from the test name), so failures are
//! reproducible.  There is no shrinking — a failing case panics with the
//! sampled values available via `prop_assert!` messages.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::Range;

/// Everything the `proptest!` macro body needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

/// Per-test configuration; only `cases` is honoured.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` sampled cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Deterministic xorshift64* generator driving strategy sampling.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name, so every test gets its own
    /// reproducible stream.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name.
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: hash | 1, // xorshift state must be non-zero
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// A source of sampled values, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of the values produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = (rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(draw) as $t
            }
        }
    )*};
}

impl_strategy_for_int_range!(u8, u16, u32, u64, usize);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Asserts a property inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled executions.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand $config; $($rest)*);
    };
    (@expand $config:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand $crate::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(20))]

        #[test]
        fn ranges_stay_in_bounds(n in 5usize..10, big in 100u64..200) {
            prop_assert!((5..10).contains(&n));
            prop_assert!((100..200).contains(&big));
        }

        #[test]
        fn any_samples_vary(bits in any::<u64>(), flag in any::<bool>()) {
            // Smoke: the values are usable; determinism is checked below.
            let _ = bits.wrapping_add(flag as u64);
        }
    }

    #[test]
    fn deterministic_rng_is_reproducible() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::deterministic("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
