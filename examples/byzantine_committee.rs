//! Byzantine committee: `AB-Consensus` with authenticated signatures when a
//! subset of the committee equivocates or stays silent.
//!
//! Run with: `cargo run --release --example byzantine_committee`

use std::sync::Arc;

use linear_dft::auth::{KeyDirectory, SignedValue};
use linear_dft::core::{AbConfig, AbConsensus, AbMsg, DsBatch, SystemConfig};
use linear_dft::sim::adversary::byzantine::{ScriptedByzantine, SilentByzantine};
use linear_dft::sim::{Delivered, NoFaults, NodeId, Outgoing, Participant, Round, Runner};

fn main() {
    let n = 60;
    let t = 5;
    let config = SystemConfig::new(n, t).expect("t < n/2").with_seed(11);
    let directory = Arc::new(KeyDirectory::generate(n, 11));
    let shared = AbConfig::from_system(&config, directory.clone()).expect("config");
    let little = shared.little;

    // Node 0 equivocates in the Dolev-Strong phase; node 1 stays silent.
    let byz_signer = directory.signer(0);
    let equivocator = ScriptedByzantine::new(move |round: Round, _inbox: &[Delivered<AbMsg>]| {
        if round.as_u64() != 0 {
            return Vec::new();
        }
        (1..little)
            .map(|p| {
                let value = if p % 2 == 0 { 1_000_000 } else { 2_000_000 };
                let sv = SignedValue::originate(&byz_signer, value);
                Outgoing::new(NodeId::new(p), AbMsg::Ds(Arc::new(DsBatch(vec![sv]))))
            })
            .collect()
    });

    let mut participants: Vec<Participant<AbConsensus>> = Vec::new();
    participants.push(Participant::Byzantine(Box::new(equivocator)));
    participants.push(Participant::Byzantine(Box::new(SilentByzantine)));
    for me in 2..n {
        participants.push(Participant::Honest(AbConsensus::new(
            shared.clone(),
            me,
            me as u64,
        )));
    }

    let rounds = shared.total_rounds();
    let mut runner =
        Runner::with_participants(participants, Box::new(NoFaults), 0).expect("runner");
    let report = runner.run(rounds + 2);

    println!("=== AB-Consensus with Byzantine committee members (Theorem 11) ===");
    println!("nodes:              {n}   Byzantine: 2 (equivocator + silent)");
    println!("rounds:             {}", report.metrics.rounds);
    println!("non-faulty messages:{}", report.metrics.messages);
    println!(
        "Byzantine messages: {} (not charged)",
        report.metrics.byzantine_messages
    );
    println!("agreement:          {}", report.non_faulty_deciders_agree());
    println!("decision:           {:?}", report.agreed_value());

    assert!(report.non_faulty_deciders_agree());
    assert!(report.all_non_faulty_decided());
    // The forged values 1_000_000 / 2_000_000 never become the decision: the
    // equivocating source resolves to null.
    let decision = *report.agreed_value().expect("decided");
    assert!(decision < 1_000_000);
}
