//! Single-port consensus: `Linear-Consensus` (Section 8) where every node may
//! send one message and poll one buffered port per round.
//!
//! Run with: `cargo run --release --example single_port_consensus`

use linear_dft::core::{linear_consensus_for_all_nodes, SystemConfig};
use linear_dft::sim::{RandomCrashes, SinglePortRunner};

fn main() {
    let n = 80;
    let t = 10;
    let config = SystemConfig::new(n, t).expect("t < n/5").with_seed(77);
    let inputs: Vec<bool> = (0..n).map(|i| i % 3 != 0).collect();

    let (nodes, sp_rounds) = linear_consensus_for_all_nodes(&config, &inputs).expect("config");

    let adversary = RandomCrashes::new(n, t, sp_rounds / 4, 13);
    let mut runner =
        SinglePortRunner::with_adversary(nodes, Box::new(adversary), t).expect("runner");
    let report = runner.run(sp_rounds + 4);

    println!("=== Linear-Consensus in the single-port model (Theorem 12) ===");
    println!("nodes:             {n}   fault bound: {t}");
    println!(
        "single-port rounds:{} (schedule length {sp_rounds})",
        report.metrics.rounds
    );
    println!("messages:          {}", report.metrics.messages);
    println!("bits:              {}", report.metrics.bits);
    println!(
        "peak msgs/round:   {} (<= n, one send per node per round)",
        report.metrics.peak_messages_in_a_round()
    );
    println!("agreement:         {}", report.non_faulty_deciders_agree());
    println!("decision:          {:?}", report.agreed_value());

    assert!(report.all_non_faulty_decided());
    assert!(report.non_faulty_deciders_agree());
    assert!(report.metrics.peak_messages_in_a_round() <= n as u64);
}
