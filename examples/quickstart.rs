//! Quickstart: binary consensus among 100 nodes with 12 random crashes.
//!
//! Run with: `cargo run --release --example quickstart`

use linear_dft::core::{FewCrashesConsensus, SystemConfig};
use linear_dft::sim::{RandomCrashes, Runner};

fn main() {
    let n = 100;
    let t = 12;
    let config = SystemConfig::new(n, t)
        .expect("valid parameters")
        .with_seed(2024);

    // Half the nodes propose 1, the other half 0.
    let inputs: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();

    let nodes = FewCrashesConsensus::for_all_nodes(&config, &inputs).expect("t < n/5");
    let rounds = nodes[0].total_rounds();

    // An adversary that crashes up to t random nodes during the first 30 rounds.
    let adversary = RandomCrashes::new(n, t, 30, 7);
    let mut runner = Runner::with_adversary(nodes, Box::new(adversary), t).expect("runner");
    let report = runner.run(rounds + 2);

    println!("=== Few-Crashes-Consensus (Theorem 7) ===");
    println!("nodes:              {n}");
    println!("fault bound t:      {t}");
    println!("crashes injected:   {}", report.metrics.crashes);
    println!("rounds:             {}", report.metrics.rounds);
    println!("messages:           {}", report.metrics.messages);
    println!("bits:               {}", report.metrics.bits);
    println!("all decided:        {}", report.all_non_faulty_decided());
    println!("agreement:          {}", report.non_faulty_deciders_agree());
    println!("decision:           {:?}", report.agreed_value());

    assert!(report.all_non_faulty_decided());
    assert!(report.non_faulty_deciders_agree());
}
