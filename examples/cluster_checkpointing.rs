//! Cluster checkpointing: agree on the exact membership of a cluster after a
//! wave of crashes, using gossip plus `n` combined consensus instances.
//!
//! Run with: `cargo run --release --example cluster_checkpointing`

use linear_dft::core::{Checkpointing, SystemConfig};
use linear_dft::sim::{FixedCrashSchedule, NodeId, Runner};

fn main() {
    let n = 80;
    let t = 10;
    let config = SystemConfig::new(n, t).expect("t < n/5").with_seed(5);

    let nodes = Checkpointing::for_all_nodes(&config).expect("config");
    let rounds = nodes[0].total_rounds();

    // Nodes 3 and 4 die before sending anything; nodes 20..23 die later.
    let adversary = FixedCrashSchedule::new()
        .crash_all_at(0, [NodeId::new(3), NodeId::new(4)])
        .crash_all_at(12, (20..23).map(NodeId::new));
    let mut runner = Runner::with_adversary(nodes, Box::new(adversary), t).expect("runner");
    let report = runner.run(rounds + 2);

    let checkpoint = report.agreed_value().cloned().expect("agreed checkpoint");
    println!("=== Checkpointing (Theorem 10) ===");
    println!("nodes:            {n}");
    println!("rounds:           {}", report.metrics.rounds);
    println!("messages:         {}", report.metrics.messages);
    println!("checkpoint size:  {}", checkpoint.len());
    println!(
        "excluded early crashers 3, 4: {}",
        !checkpoint.contains(&3) && !checkpoint.contains(&4)
    );

    assert!(
        report.non_faulty_deciders_agree(),
        "all nodes agree on the same checkpoint"
    );
    assert!(!checkpoint.contains(&3) && !checkpoint.contains(&4));
    for id in report.non_faulty().iter() {
        assert!(
            checkpoint.contains(&id.index()),
            "operational node {id:?} must be included"
        );
    }
}
