//! Crash storm: `Many-Crashes-Consensus` surviving the loss of 70% of the
//! cluster — the regime where the few-crashes algorithm does not even apply.
//!
//! Run with: `cargo run --release --example crash_storm_consensus`

use linear_dft::core::{ManyCrashesConsensus, SystemConfig};
use linear_dft::sim::{RandomCrashes, Runner};

fn main() {
    let n = 120;
    let t = 84; // alpha = 0.7
    let config = SystemConfig::new(n, t).expect("t < n").with_seed(99);

    // Only a handful of nodes start with value 1; validity still allows
    // deciding 0 or 1, and agreement must hold among all survivors.
    let inputs: Vec<bool> = (0..n).map(|i| i < 5).collect();

    let nodes = ManyCrashesConsensus::for_all_nodes(&config, &inputs).expect("config");
    let rounds = nodes[0].total_rounds();

    let adversary = RandomCrashes::new(n, t, rounds / 2, 3);
    let mut runner = Runner::with_adversary(nodes, Box::new(adversary), t).expect("runner");
    let report = runner.run(rounds + 2);

    let survivors = report.non_faulty().len();
    println!("=== Many-Crashes-Consensus under a crash storm (Theorem 8) ===");
    println!(
        "nodes:            {n}   fault bound: {t} (alpha = {:.2})",
        t as f64 / n as f64
    );
    println!("crashes injected: {}", report.metrics.crashes);
    println!("survivors:        {survivors}");
    println!(
        "rounds:           {} (bound: n + 3(1+lg n) = {})",
        report.metrics.rounds,
        n + 3 * (1 + (n as f64).log2().ceil() as usize)
    );
    println!("messages:         {}", report.metrics.messages);
    println!("agreement:        {}", report.non_faulty_deciders_agree());
    println!("decision:         {:?}", report.agreed_value());

    assert!(report.all_non_faulty_decided());
    assert!(report.non_faulty_deciders_agree());
}
