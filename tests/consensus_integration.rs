//! Cross-crate integration tests: the paper's consensus algorithms driven by
//! the simulator under a variety of adversaries, checking the three consensus
//! conditions (validity, agreement, termination) end to end.

use linear_dft::core::{
    linear_consensus_for_all_nodes, FewCrashesConsensus, ManyCrashesConsensus, SystemConfig,
};
use linear_dft::sim::{
    CrashAdversary, FixedCrashSchedule, NoFaults, NodeId, RandomCrashes, Runner, SinglePortRunner,
    TargetedCrashes,
};

fn check_consensus_report(report: &linear_dft::sim::ExecutionReport<bool>, inputs: &[bool]) {
    assert!(report.all_non_faulty_decided(), "termination violated");
    assert!(report.non_faulty_deciders_agree(), "agreement violated");
    let agreed = report.agreed_value().copied().expect("agreed value");
    assert!(inputs.contains(&agreed), "validity violated");
}

fn run_few_crashes(
    n: usize,
    t: usize,
    inputs: &[bool],
    adversary: Box<dyn CrashAdversary>,
    seed: u64,
) -> linear_dft::sim::ExecutionReport<bool> {
    let config = SystemConfig::new(n, t)
        .expect("valid (n, t)")
        .with_seed(seed);
    let nodes = FewCrashesConsensus::for_all_nodes(&config, inputs).expect("valid config");
    let rounds = nodes[0].total_rounds();
    let mut runner = Runner::with_adversary(nodes, adversary, t).expect("runner");
    runner.run(rounds + 2)
}

#[test]
fn few_crashes_consensus_across_seeds_and_adversaries() {
    let n = 90;
    let t = 11;
    for seed in 0..3u64 {
        let inputs: Vec<bool> = (0..n)
            .map(|i| (i as u64 + seed).is_multiple_of(3))
            .collect();
        let adversaries: Vec<Box<dyn CrashAdversary>> = vec![
            Box::new(NoFaults),
            Box::new(RandomCrashes::new(n, t, 40, seed)),
            Box::new(TargetedCrashes::one_per_round(
                (0..t).map(NodeId::new).collect(),
            )),
        ];
        for adversary in adversaries {
            let report = run_few_crashes(n, t, &inputs, adversary, seed);
            check_consensus_report(&report, &inputs);
        }
    }
}

#[test]
fn few_crashes_decision_is_deterministic_for_fixed_seed() {
    let n = 70;
    let t = 9;
    let inputs: Vec<bool> = (0..n).map(|i| i % 2 == 1).collect();
    let a = run_few_crashes(n, t, &inputs, Box::new(RandomCrashes::new(n, t, 30, 5)), 3);
    let b = run_few_crashes(n, t, &inputs, Box::new(RandomCrashes::new(n, t, 30, 5)), 3);
    assert_eq!(a.outputs, b.outputs);
    assert_eq!(a.metrics.messages, b.metrics.messages);
    assert_eq!(a.metrics.rounds, b.metrics.rounds);
}

#[test]
fn many_crashes_consensus_with_heavy_crash_schedule() {
    // Half the cluster crashes (alpha = 0.5): the full consensus conditions
    // must hold.
    let n = 64;
    let t = 32;
    let config = SystemConfig::new(n, t).expect("valid (n, t)").with_seed(8);
    let inputs: Vec<bool> = (0..n).map(|i| i >= 60).collect();
    let nodes = ManyCrashesConsensus::for_all_nodes(&config, &inputs).unwrap();
    let rounds = nodes[0].total_rounds();
    let adversary = RandomCrashes::new(n, t, rounds / 2, 21);
    let mut runner = Runner::with_adversary(nodes, Box::new(adversary), t).unwrap();
    let report = runner.run(rounds + 2);
    check_consensus_report(&report, &inputs);
}

#[test]
fn many_crashes_consensus_safety_at_extreme_fault_fraction() {
    // At alpha ≈ 0.63 with the practical overlay degrees, a few survivors may
    // stay undecided under late crashes (documented limitation, see
    // EXPERIMENTS.md E5); safety — agreement and validity among deciders —
    // must still hold unconditionally.
    let n = 64;
    let t = 40;
    let config = SystemConfig::new(n, t).expect("valid (n, t)").with_seed(8);
    let inputs: Vec<bool> = (0..n).map(|i| i >= 60).collect();
    let nodes = ManyCrashesConsensus::for_all_nodes(&config, &inputs).unwrap();
    let rounds = nodes[0].total_rounds();
    let adversary = RandomCrashes::new(n, t, rounds / 2, 21);
    let mut runner = Runner::with_adversary(nodes, Box::new(adversary), t).unwrap();
    let report = runner.run(rounds + 2);
    assert!(report.non_faulty_deciders_agree(), "agreement violated");
    if let Some(v) = report.agreed_value() {
        assert!(inputs.contains(v), "validity violated");
    }
    // The overwhelming majority of survivors still decide.
    let survivors = report.non_faulty().len();
    let deciders = report.non_faulty_deciders().len();
    assert!(
        deciders * 2 >= survivors,
        "only {deciders} of {survivors} survivors decided"
    );
}

#[test]
fn crash_exactly_when_little_nodes_notify() {
    // Crash a batch of little nodes exactly at the AEA notification round to
    // attack the hand-off between stages.
    let n = 75;
    let t = 9;
    let config = SystemConfig::new(n, t).expect("valid (n, t)").with_seed(4);
    let inputs = vec![true; n];
    let nodes = FewCrashesConsensus::for_all_nodes(&config, &inputs).unwrap();
    let rounds = nodes[0].total_rounds();
    let aea_rounds = linear_dft::core::AeaConfig::from_system(&config)
        .unwrap()
        .total_rounds();
    let adversary = FixedCrashSchedule::new().crash_all_at(aea_rounds - 1, (0..t).map(NodeId::new));
    let mut runner = Runner::with_adversary(nodes, Box::new(adversary), t).unwrap();
    let report = runner.run(rounds + 2);
    check_consensus_report(&report, &inputs);
    assert_eq!(report.agreed_value(), Some(&true));
}

#[test]
fn single_port_and_multi_port_agree_on_the_same_inputs() {
    let n = 60;
    let t = 7;
    let inputs: Vec<bool> = (0..n).map(|i| i % 5 == 0).collect();

    let multi = run_few_crashes(n, t, &inputs, Box::new(NoFaults), 2);
    check_consensus_report(&multi, &inputs);

    let config = SystemConfig::new(n, t).expect("valid (n, t)").with_seed(2);
    let (nodes, sp_rounds) = linear_consensus_for_all_nodes(&config, &inputs).unwrap();
    let mut runner = SinglePortRunner::new(nodes).unwrap();
    let single = runner.run(sp_rounds + 4);
    assert!(single.all_non_faulty_decided());
    assert!(single.non_faulty_deciders_agree());

    // Fault-free, both port models must reach the same decision.
    assert_eq!(multi.agreed_value(), single.agreed_value());
}

#[test]
fn consensus_message_complexity_beats_flooding_baseline() {
    let n = 150;
    let t = 18;
    let inputs: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
    let ours = run_few_crashes(n, t, &inputs, Box::new(NoFaults), 6);
    let baseline_nodes = linear_dft::baselines::FloodingConsensus::for_all_nodes(n, t, &inputs);
    let mut baseline_runner = Runner::new(baseline_nodes).unwrap();
    let baseline = baseline_runner.run(t as u64 + 3);
    assert!(baseline.non_faulty_deciders_agree());
    assert!(
        ours.metrics.messages < baseline.metrics.messages,
        "paper algorithm ({}) should send fewer messages than flooding ({})",
        ours.metrics.messages,
        baseline.metrics.messages
    );
}
