//! Cross-crate integration tests for gossip and checkpointing: the paper's
//! extant-set conditions checked end to end under crash schedules.

use linear_dft::core::{Checkpointing, Gossip, SystemConfig};
use linear_dft::sim::{FixedCrashSchedule, NodeId, RandomCrashes, Runner};

#[test]
fn gossip_extant_sets_respect_both_conditions() {
    let n = 90;
    let t = 11;
    let config = SystemConfig::new(n, t).unwrap().with_seed(14);
    let rumors: Vec<u64> = (0..n as u64).map(|i| 7_000 + i).collect();
    let nodes = Gossip::for_all_nodes(&config, &rumors).unwrap();
    let rounds = nodes[0].total_rounds();
    // Crash some little nodes before they speak, and some other nodes later.
    let adversary = FixedCrashSchedule::new()
        .crash_all_at(0, [NodeId::new(0), NodeId::new(1)])
        .crash_all_at(8, (40..44).map(NodeId::new));
    let mut runner = Runner::with_adversary(nodes, Box::new(adversary), t).unwrap();
    let report = runner.run(rounds + 2);

    assert!(
        report.all_non_faulty_decided(),
        "every survivor decides an extant set"
    );
    let non_faulty = report.non_faulty();
    for id in non_faulty.iter() {
        let set = report.outputs[id.index()].as_ref().unwrap();
        // Condition (1): nodes crashed at round 0 (before sending) are absent.
        assert!(!set.is_present(0), "node 0 crashed before sending");
        assert!(!set.is_present(1), "node 1 crashed before sending");
        // Condition (2): every operational node's pair is present with its rumor.
        for other in non_faulty.iter() {
            assert_eq!(
                set.rumor_of(other.index()),
                Some(7_000 + other.index() as u64),
                "node {} missing rumor of {}",
                id.index(),
                other.index()
            );
        }
    }
}

#[test]
fn checkpointing_reaches_identical_checkpoints_under_random_crashes() {
    let n = 80;
    let t = 9;
    for seed in 0..2u64 {
        let config = SystemConfig::new(n, t).unwrap().with_seed(seed);
        let nodes = Checkpointing::for_all_nodes(&config).unwrap();
        let rounds = nodes[0].total_rounds();
        let adversary = RandomCrashes::new(n, t, 25, seed + 100);
        let mut runner = Runner::with_adversary(nodes, Box::new(adversary), t).unwrap();
        let report = runner.run(rounds + 2);

        assert!(report.all_non_faulty_decided());
        assert!(
            report.non_faulty_deciders_agree(),
            "checkpoint must be identical everywhere"
        );
        let checkpoint = report.agreed_value().unwrap();
        for id in report.non_faulty().iter() {
            assert!(checkpoint.contains(&id.index()));
        }
    }
}

#[test]
fn checkpointing_is_cheaper_than_naive_baseline_in_messages_per_round() {
    let n = 100;
    let t = 12;
    let config = SystemConfig::new(n, t).unwrap().with_seed(4);
    let nodes = Checkpointing::for_all_nodes(&config).unwrap();
    let rounds = nodes[0].total_rounds();
    let mut runner = Runner::new(nodes).unwrap();
    let ours = runner.run(rounds + 2);

    let baseline_nodes = linear_dft::baselines::NaiveCheckpointing::for_all_nodes(n, t);
    let mut baseline_runner = Runner::new(baseline_nodes).unwrap();
    let baseline = baseline_runner.run(t as u64 + 3);

    let ours_per_round = ours.metrics.messages as f64 / ours.metrics.rounds as f64;
    let baseline_per_round = baseline.metrics.messages as f64 / baseline.metrics.rounds as f64;
    assert!(
        ours_per_round < baseline_per_round,
        "per-round traffic {ours_per_round:.0} should beat the naive baseline {baseline_per_round:.0}"
    );
}
