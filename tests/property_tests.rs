//! Property-based tests (proptest): protocol safety invariants and overlay
//! substrate invariants over randomly drawn parameters and crash schedules.

use linear_dft::core::{FewCrashesConsensus, Gossip, SystemConfig};
use linear_dft::overlay::{build, properties};
use linear_dft::sim::{RandomCrashes, Runner};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Consensus safety (agreement + validity) holds for arbitrary system
    /// sizes, fault bounds, input patterns and random crash schedules.
    #[test]
    fn consensus_safety_under_random_parameters(
        n in 30usize..90,
        t_frac in 6usize..12,
        input_bits in any::<u64>(),
        crash_seed in any::<u64>(),
        overlay_seed in any::<u64>(),
    ) {
        let t = (n / t_frac).max(1);
        let config = SystemConfig::new(n, t).unwrap().with_seed(overlay_seed);
        let inputs: Vec<bool> = (0..n).map(|i| (input_bits >> (i % 64)) & 1 == 1).collect();
        let nodes = FewCrashesConsensus::for_all_nodes(&config, &inputs).unwrap();
        let rounds = nodes[0].total_rounds();
        let adversary = RandomCrashes::new(n, t, rounds, crash_seed);
        let mut runner = Runner::with_adversary(nodes, Box::new(adversary), t).unwrap();
        let report = runner.run(rounds + 2);

        // Agreement among non-faulty deciders.
        prop_assert!(report.non_faulty_deciders_agree());
        // Validity: the decision (if any) is some node's input.
        if let Some(v) = report.agreed_value() {
            prop_assert!(inputs.contains(v));
        }
        // Termination holds for every non-faulty node.
        prop_assert!(report.all_non_faulty_decided());
    }

    /// Gossip never invents rumors: every proper pair in a decided extant set
    /// is the actual rumor of that node, and the decider's own pair is there.
    #[test]
    fn gossip_never_invents_rumors(
        n in 30usize..80,
        crash_seed in any::<u64>(),
    ) {
        let t = (n / 8).max(1);
        let config = SystemConfig::new(n, t).unwrap().with_seed(5);
        let rumors: Vec<u64> = (0..n as u64).map(|i| 40_000 + i * 3).collect();
        let nodes = Gossip::for_all_nodes(&config, &rumors).unwrap();
        let rounds = nodes[0].total_rounds();
        let adversary = RandomCrashes::new(n, t, rounds, crash_seed);
        let mut runner = Runner::with_adversary(nodes, Box::new(adversary), t).unwrap();
        let report = runner.run(rounds + 2);

        for id in report.non_faulty().iter() {
            let set = report.outputs[id.index()].as_ref().unwrap();
            prop_assert!(set.is_present(id.index()), "own pair always present");
            for (j, &expected) in rumors.iter().enumerate() {
                if let Some(rumor) = set.rumor_of(j) {
                    prop_assert_eq!(rumor, expected, "rumor of {} corrupted", j);
                }
            }
        }
    }

    /// The survival-subset peeling operator returns a set in which every
    /// member keeps at least `delta` neighbours, and it is monotone in the
    /// candidate set.
    #[test]
    fn survival_subset_invariants(
        n in 50usize..200,
        d in 6usize..12,
        delta in 2usize..5,
        removed in 0usize..30,
        seed in any::<u64>(),
    ) {
        let graph = build::random_regular(n, d, seed).unwrap();
        let survivors: Vec<usize> = (removed..n).collect();
        let candidate = graph.mask(&survivors);
        let core = properties::survival_subset(&graph, &candidate, delta);
        prop_assert!(properties::is_survival_subset(&graph, &candidate, &core, delta));
        // Monotonicity: a larger candidate yields a superset core.
        let full = vec![true; n];
        let full_core = properties::survival_subset(&graph, &full, delta);
        for v in 0..n {
            if core[v] {
                prop_assert!(full_core[v], "core must be monotone in the candidate set");
            }
        }
    }

    /// Seeded overlay construction is deterministic and respects the degree
    /// cap.
    #[test]
    fn overlay_construction_is_deterministic(
        n in 20usize..150,
        d in 4usize..10,
        seed in any::<u64>(),
    ) {
        let a = build::capped_regular(n, d, seed);
        let b = build::capped_regular(n, d, seed);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.max_degree() <= d.max(n - 1));
        prop_assert_eq!(a.num_vertices(), n);
    }
}
