//! Differential tests: the batched round engines against reference
//! transcriptions of the seed engines.
//!
//! The rebuilt engines (shared batched-delivery core, incremental
//! alive/crashed sets, reusable buffers, sparse port map) must produce
//! byte-identical reports to the seed behaviour.  Each reference runner here
//! is a literal transcription of the corresponding seed engine's `step` —
//! per-round `NodeSet` rebuilds, freshly allocated inboxes, dense `n × n`
//! port matrix and all — so any divergence in delivery order, crash
//! application, halting semantics or metric accounting shows up as a
//! mismatch.  Random crash schedules are property-tested over both engine
//! paths (multi-port and single-port).

use std::collections::VecDeque;

use linear_dft::sim::{
    AdversaryView, CrashAdversary, Delivered, DeliveryFilter, ExecutionReport, Metrics, NodeId,
    NodeSet, NodeStatus, Outgoing, Payload, RandomCrashes, Round, Runner, SinglePortProtocol,
    SinglePortRunner, SyncProtocol,
};
use proptest::prelude::*;

/// Everything a reference engine produces for comparison.
struct ReferenceOutcome<O> {
    outputs: Vec<Option<O>>,
    crashed_at: Vec<Option<Round>>,
    halted_at: Vec<Option<Round>>,
    metrics: Metrics,
}

impl<O: Clone + PartialEq + std::fmt::Debug> ReferenceOutcome<O> {
    fn assert_matches(&self, report: &ExecutionReport<O>) {
        assert_eq!(report.outputs, self.outputs, "outputs diverged");
        assert_eq!(report.crashed_at, self.crashed_at, "crash rounds diverged");
        assert_eq!(report.halted_at, self.halted_at, "halt rounds diverged");
        // `Metrics` equality covers rounds, messages, bits, crashes and the
        // whole per-round window (counts, window start and peak).
        assert_eq!(report.metrics, self.metrics, "metrics diverged");
        assert_eq!(
            report.metrics.peak_messages_in_a_round(),
            self.metrics.peak_messages_in_a_round()
        );
    }
}

/// Literal transcription of the seed multi-port engine (honest nodes only):
/// rebuilds the alive/crashed sets and allocates fresh inboxes every round.
fn reference_multi_port<P: SyncProtocol>(
    mut protocols: Vec<P>,
    mut adversary: Box<dyn CrashAdversary>,
    fault_budget: usize,
    max_rounds: u64,
) -> ReferenceOutcome<P::Output> {
    let n = protocols.len();
    let mut status = vec![NodeStatus::Running; n];
    let mut outputs: Vec<Option<P::Output>> = (0..n).map(|_| None).collect();
    let mut halted_at: Vec<Option<Round>> = vec![None; n];
    let mut crashed_at: Vec<Option<Round>> = vec![None; n];
    let mut crashes = 0usize;
    let mut metrics = Metrics::new();
    let mut round = Round::ZERO;

    for _ in 0..max_rounds {
        // Phase 1: collect sends from running nodes.
        let mut outgoing: Vec<Vec<Outgoing<P::Msg>>> = Vec::with_capacity(n);
        for (i, p) in protocols.iter_mut().enumerate() {
            if status[i].is_running() {
                let mut msgs = Vec::new();
                p.send(round, &mut msgs);
                outgoing.push(msgs);
            } else {
                outgoing.push(Vec::new());
            }
        }

        // Phase 2: crash adversary over per-round rebuilt sets.
        let alive = NodeSet::from_iter(
            n,
            status
                .iter()
                .enumerate()
                .filter(|(_, s)| !s.is_crashed())
                .map(|(i, _)| NodeId::new(i)),
        );
        let crashed_set = NodeSet::from_iter(
            n,
            status
                .iter()
                .enumerate()
                .filter(|(_, s)| s.is_crashed())
                .map(|(i, _)| NodeId::new(i)),
        );
        let send_intents: Vec<Vec<NodeId>> = outgoing
            .iter()
            .map(|msgs| msgs.iter().map(|m| m.to).collect())
            .collect();
        let poll_intents: Vec<Option<NodeId>> = vec![None; n];
        let directives = adversary.plan_round(&AdversaryView {
            round,
            alive: &alive,
            crashed: &crashed_set,
            send_intents: &send_intents,
            poll_intents: &poll_intents,
            remaining_budget: fault_budget - crashes,
        });
        let mut filters: Vec<Option<DeliveryFilter>> = vec![None; n];
        for directive in directives {
            if crashes >= fault_budget {
                break;
            }
            let idx = directive.node.index();
            if idx >= n || status[idx].is_crashed() {
                continue;
            }
            status[idx] = NodeStatus::Crashed(round);
            crashed_at[idx] = Some(round);
            crashes += 1;
            metrics.record_crash();
            filters[idx] = Some(directive.deliver);
        }

        // Phase 3: deliver into freshly allocated inboxes.
        let mut inboxes: Vec<Vec<Delivered<P::Msg>>> = (0..n).map(|_| Vec::new()).collect();
        for (sender_idx, msgs) in outgoing.into_iter().enumerate() {
            for (msg_idx, out) in msgs.into_iter().enumerate() {
                if let Some(filter) = &filters[sender_idx] {
                    if !filter.allows(msg_idx, out.to) {
                        continue;
                    }
                }
                metrics.record_message(round.as_u64(), out.msg.bit_len());
                let dest = out.to.index();
                if dest < n && status[dest].is_running() {
                    inboxes[dest].push(Delivered::new(NodeId::new(sender_idx), out.msg));
                }
            }
        }

        // Phase 4: receive and update statuses.
        for (i, p) in protocols.iter_mut().enumerate() {
            if !status[i].is_running() {
                continue;
            }
            p.receive(round, &inboxes[i]);
            if let Some(output) = p.output() {
                if outputs[i].is_none() {
                    outputs[i] = Some(output);
                }
            }
            if p.has_halted() {
                status[i] = NodeStatus::Halted;
                halted_at[i] = Some(round);
            }
        }

        metrics.rounds = round.as_u64() + 1;
        round = round.next();
        if status
            .iter()
            .all(|s| matches!(s, NodeStatus::Halted | NodeStatus::Crashed(_)))
        {
            break;
        }
    }

    ReferenceOutcome {
        outputs,
        crashed_at,
        halted_at,
        metrics,
    }
}

/// Literal transcription of the seed single-port engine, dense `n × n`
/// `VecDeque` port matrix included.  (The seed buffered messages onto halted
/// nodes' ports; since a halted node never polls, that is unobservable in
/// reports — which this differential test demonstrates against the new
/// engine, which drops such messages.)
fn reference_single_port<P: SinglePortProtocol>(
    mut nodes: Vec<P>,
    mut adversary: Box<dyn CrashAdversary>,
    fault_budget: usize,
    max_rounds: u64,
) -> ReferenceOutcome<P::Output> {
    let n = nodes.len();
    let mut status = vec![NodeStatus::Running; n];
    let mut outputs: Vec<Option<P::Output>> = (0..n).map(|_| None).collect();
    let mut halted_at: Vec<Option<Round>> = vec![None; n];
    let mut crashed_at: Vec<Option<Round>> = vec![None; n];
    let mut crashes = 0usize;
    let mut metrics = Metrics::new();
    let mut round = Round::ZERO;
    let mut ports: Vec<Vec<VecDeque<P::Msg>>> = (0..n)
        .map(|_| (0..n).map(|_| VecDeque::new()).collect())
        .collect();

    for _ in 0..max_rounds {
        let mut sends: Vec<Option<Outgoing<P::Msg>>> = Vec::with_capacity(n);
        let mut polls: Vec<Option<NodeId>> = Vec::with_capacity(n);
        for (i, node) in nodes.iter_mut().enumerate() {
            if status[i].is_running() {
                sends.push(node.send(round));
                polls.push(node.poll(round));
            } else {
                sends.push(None);
                polls.push(None);
            }
        }

        let alive = NodeSet::from_iter(
            n,
            status
                .iter()
                .enumerate()
                .filter(|(_, s)| !s.is_crashed())
                .map(|(i, _)| NodeId::new(i)),
        );
        let crashed_set = NodeSet::from_iter(
            n,
            status
                .iter()
                .enumerate()
                .filter(|(_, s)| s.is_crashed())
                .map(|(i, _)| NodeId::new(i)),
        );
        let send_intents: Vec<Vec<NodeId>> = sends
            .iter()
            .map(|s| s.iter().map(|o| o.to).collect())
            .collect();
        let directives = adversary.plan_round(&AdversaryView {
            round,
            alive: &alive,
            crashed: &crashed_set,
            send_intents: &send_intents,
            poll_intents: &polls,
            remaining_budget: fault_budget - crashes,
        });
        let mut filters: Vec<Option<DeliveryFilter>> = vec![None; n];
        for directive in directives {
            if crashes >= fault_budget {
                break;
            }
            let idx = directive.node.index();
            if idx >= n || status[idx].is_crashed() {
                continue;
            }
            status[idx] = NodeStatus::Crashed(round);
            crashed_at[idx] = Some(round);
            crashes += 1;
            metrics.record_crash();
            filters[idx] = Some(directive.deliver);
        }

        for (sender_idx, send) in sends.into_iter().enumerate() {
            let Some(out) = send else { continue };
            if let Some(filter) = &filters[sender_idx] {
                if !filter.allows(0, out.to) {
                    continue;
                }
            }
            metrics.record_message(round.as_u64(), out.msg.bit_len());
            let dest = out.to.index();
            // Seed semantics: only crashed destinations were skipped.
            if dest < n && !status[dest].is_crashed() {
                ports[dest][sender_idx].push_back(out.msg);
            }
        }

        for (i, node) in nodes.iter_mut().enumerate() {
            if !status[i].is_running() {
                continue;
            }
            if let Some(port) = polls[i] {
                let mut drained: Vec<P::Msg> = ports[i][port.index()].drain(..).collect();
                node.receive(round, port, &mut drained);
            }
            if let Some(output) = node.output() {
                if outputs[i].is_none() {
                    outputs[i] = Some(output);
                }
            }
            if node.has_halted() {
                status[i] = NodeStatus::Halted;
                halted_at[i] = Some(round);
            }
        }

        metrics.rounds = round.as_u64() + 1;
        round = round.next();
        if status.iter().all(|s| !s.is_running()) {
            break;
        }
    }

    ReferenceOutcome {
        outputs,
        crashed_at,
        halted_at,
        metrics,
    }
}

/// Multi-port workhorse: floods the OR of everything seen, decides after a
/// configurable number of rounds.
#[derive(Clone)]
struct FloodOr {
    n: usize,
    value: bool,
    horizon: u64,
    rounds_seen: u64,
    decided: Option<bool>,
}

impl SyncProtocol for FloodOr {
    type Msg = bool;
    type Output = bool;

    fn send(&mut self, _round: Round, out: &mut Vec<Outgoing<bool>>) {
        out.extend((0..self.n).map(|i| Outgoing::new(NodeId::new(i), self.value)));
    }

    fn receive(&mut self, _round: Round, inbox: &[Delivered<bool>]) {
        for msg in inbox {
            self.value |= msg.msg;
        }
        self.rounds_seen += 1;
        if self.rounds_seen >= self.horizon {
            self.decided = Some(self.value);
        }
    }

    fn output(&self) -> Option<bool> {
        self.decided
    }

    fn has_halted(&self) -> bool {
        self.decided.is_some()
    }
}

fn flood_or_nodes(n: usize, input_bits: u64, horizon: u64) -> Vec<FloodOr> {
    (0..n)
        .map(|i| FloodOr {
            n,
            value: (input_bits >> (i % 64)) & 1 == 1,
            horizon,
            rounds_seen: 0,
            decided: None,
        })
        .collect()
}

/// Single-port workhorse: a token ring that decides after `2n` receives.
#[derive(Clone)]
struct Ring {
    me: usize,
    n: usize,
    value: bool,
    rounds: u64,
    decided: Option<bool>,
}

impl SinglePortProtocol for Ring {
    type Msg = bool;
    type Output = bool;

    fn send(&mut self, _round: Round) -> Option<Outgoing<bool>> {
        Some(Outgoing::new(
            NodeId::new((self.me + 1) % self.n),
            self.value,
        ))
    }

    fn poll(&mut self, _round: Round) -> Option<NodeId> {
        Some(NodeId::new((self.me + self.n - 1) % self.n))
    }

    fn receive(&mut self, _round: Round, _from: NodeId, msgs: &mut Vec<bool>) {
        for m in msgs.drain(..) {
            self.value |= m;
        }
        self.rounds += 1;
        if self.rounds >= 2 * self.n as u64 {
            self.decided = Some(self.value);
        }
    }

    fn output(&self) -> Option<bool> {
        self.decided
    }

    fn has_halted(&self) -> bool {
        self.decided.is_some()
    }
}

fn ring_nodes(n: usize, input_bits: u64) -> Vec<Ring> {
    (0..n)
        .map(|me| Ring {
            me,
            n,
            value: (input_bits >> (me % 64)) & 1 == 1,
            rounds: 0,
            decided: None,
        })
        .collect()
}

#[test]
fn multi_port_engine_matches_reference_without_faults() {
    let n = 12;
    let nodes = flood_or_nodes(n, 0b1010, 3);
    let mut runner = Runner::new(nodes.clone().into_iter().collect()).unwrap();
    let report = runner.run(10);
    let reference = reference_multi_port(nodes, Box::new(linear_dft::sim::NoFaults), 0, 10);
    reference.assert_matches(&report);
}

#[test]
fn single_port_engine_matches_reference_without_faults() {
    let n = 9;
    let nodes = ring_nodes(n, 0b1);
    let mut runner = SinglePortRunner::new(nodes.clone()).unwrap();
    let report = runner.run(3 * n as u64);
    let reference = reference_single_port(
        ring_nodes(n, 0b1),
        Box::new(linear_dft::sim::NoFaults),
        0,
        3 * n as u64,
    );
    reference.assert_matches(&report);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random crash schedules through the batched multi-port engine and the
    /// seed-behaviour reference produce identical reports, including the
    /// full per-round message profile.
    #[test]
    fn multi_port_engine_matches_reference_under_random_crashes(
        n in 4usize..40,
        t_frac in 3usize..8,
        input_bits in any::<u64>(),
        horizon in 2u64..6,
        crash_seed in any::<u64>(),
    ) {
        let t = (n / t_frac).max(1).min(n - 1);
        let max_rounds = horizon + t as u64 + 4;
        let nodes = flood_or_nodes(n, input_bits, horizon);
        let adversary = RandomCrashes::new(n, t, max_rounds, crash_seed);
        let mut runner =
            Runner::with_adversary(nodes.clone(), Box::new(adversary), t).unwrap();
        let report = runner.run(max_rounds);
        let adversary = RandomCrashes::new(n, t, max_rounds, crash_seed);
        let reference =
            reference_multi_port(nodes, Box::new(adversary), t, max_rounds);
        reference.assert_matches(&report);
    }

    /// The same property over the single-port engine path: the sparse port
    /// map reproduces the dense seed matrix byte for byte.
    #[test]
    fn single_port_engine_matches_reference_under_random_crashes(
        n in 3usize..24,
        t_frac in 3usize..8,
        input_bits in any::<u64>(),
        crash_seed in any::<u64>(),
    ) {
        let t = (n / t_frac).max(1).min(n - 1);
        let max_rounds = 3 * n as u64;
        let nodes = ring_nodes(n, input_bits);
        let adversary = RandomCrashes::new(n, t, max_rounds, crash_seed);
        let mut runner =
            SinglePortRunner::with_adversary(nodes.clone(), Box::new(adversary), t).unwrap();
        let report = runner.run(max_rounds);
        let adversary = RandomCrashes::new(n, t, max_rounds, crash_seed);
        let reference =
            reference_single_port(nodes, Box::new(adversary), t, max_rounds);
        reference.assert_matches(&report);
    }
}
