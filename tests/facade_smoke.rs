//! Workspace-wiring smoke test: instantiates one protocol (or primitive)
//! from each member crate strictly through the `linear_dft::` facade
//! re-exports, proving the inter-crate dependency graph and the facade
//! aliases (`core`, `sim`, `overlay`, `auth`, `baselines`) are wired
//! correctly.

use linear_dft::auth::{KeyDirectory, SignedValue};
use linear_dft::baselines::FloodingConsensus;
use linear_dft::core::{FewCrashesConsensus, SystemConfig};
use linear_dft::overlay::{build, properties};
use linear_dft::sim::{NoFaults, RandomCrashes, Runner};

/// `dft-core` + `dft-sim`: a full consensus execution through the facade.
#[test]
fn facade_runs_core_consensus_on_sim_runner() {
    let n = 40;
    let t = 5;
    let config = SystemConfig::new(n, t).unwrap().with_seed(13);
    let inputs: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
    let nodes = FewCrashesConsensus::for_all_nodes(&config, &inputs).unwrap();
    let rounds = nodes[0].total_rounds();
    let adversary = RandomCrashes::new(n, t, rounds, 2);
    let mut runner = Runner::with_adversary(nodes, Box::new(adversary), t).unwrap();
    let report = runner.run(rounds + 2);
    assert!(report.all_non_faulty_decided());
    assert!(report.non_faulty_deciders_agree());
}

/// `dft-overlay`: construction and fault-tolerance properties.
#[test]
fn facade_builds_overlay_and_checks_properties() {
    let graph = build::random_regular(64, 8, 7).unwrap();
    assert_eq!(graph.num_vertices(), 64);
    let candidate = vec![true; 64];
    let core = properties::survival_subset(&graph, &candidate, 2);
    assert!(properties::is_survival_subset(&graph, &candidate, &core, 2));
}

/// `dft-auth`: key directory, signing chains, verification.
#[test]
fn facade_signs_and_verifies_through_auth() {
    let directory = KeyDirectory::generate(6, 99);
    let mut signed = SignedValue::originate(&directory.signer(0), 42);
    assert!(signed.countersign(&directory.signer(1)));
    assert!(signed.verify_chain(&directory));
    assert_eq!(signed.chain_len(), 2);
}

/// `dft-baselines` + `dft-sim`: the flooding baseline runs fault-free.
#[test]
fn facade_runs_baseline_flooding_consensus() {
    let n = 24;
    let t = 3;
    let inputs: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
    let nodes = FloodingConsensus::for_all_nodes(n, t, &inputs);
    let rounds = FloodingConsensus::total_rounds(t);
    let mut runner = Runner::with_adversary(nodes, Box::new(NoFaults), t).unwrap();
    let report = runner.run(rounds + 1);
    assert!(report.all_non_faulty_decided());
    assert!(report.non_faulty_deciders_agree());
}
