//! Constructions of overlay graphs.
//!
//! The paper uses constant-degree Ramanujan graphs as overlays (Section 3).
//! Explicit Ramanujan families (Lubotzky–Phillips–Sarnak) exist only for
//! special parameter pairs and the paper's degrees (for example `d = 5⁸`)
//! exceed any laptop-scale vertex count, so this module provides the
//! practical catalogue documented in `DESIGN.md`:
//!
//! * [`random_regular`] — seeded union-of-random-cycles construction whose
//!   measured spectral gap is near-Ramanujan with overwhelming probability;
//!   the experiment harness verifies `λ ≤ 2√(d−1)` explicitly.
//! * [`margulis`] — the deterministic Margulis–Gabber–Galil 8-regular
//!   expander on `m²` vertices.
//! * [`complete`], [`cycle`], [`circulant`], [`hypercube`] — reference
//!   topologies: the complete graph is the degree-capped fallback when a
//!   sub-network is smaller than the requested degree, and the others serve
//!   as non-expanding or mildly expanding comparison points in tests and
//!   benchmarks.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::error::{OverlayError, OverlayResult};
use crate::graph::Graph;

/// The complete graph `K_n` (built directly in `O(n²)`; see
/// [`Graph::complete`]).
pub fn complete(n: usize) -> Graph {
    Graph::complete(n)
}

/// The cycle `C_n`.
pub fn cycle(n: usize) -> Graph {
    let mut g = Graph::empty(n);
    if n >= 2 {
        for u in 0..n {
            g.add_edge(u, (u + 1) % n);
        }
    }
    g
}

/// A circulant graph: vertex `v` is adjacent to `v ± offset` (mod `n`) for
/// every listed offset.
pub fn circulant(n: usize, offsets: &[usize]) -> Graph {
    let mut g = Graph::empty(n);
    for v in 0..n {
        for &off in offsets {
            if off % n != 0 {
                g.add_edge(v, (v + off) % n);
            }
        }
    }
    g
}

/// The `dim`-dimensional hypercube on `2^dim` vertices.
pub fn hypercube(dim: u32) -> Graph {
    let n = 1usize << dim;
    let mut g = Graph::empty(n);
    for v in 0..n {
        for bit in 0..dim {
            g.add_edge(v, v ^ (1 << bit));
        }
    }
    g
}

/// The Margulis–Gabber–Galil expander on `m² ` vertices.
///
/// Vertex `(x, y) ∈ ℤ_m × ℤ_m` is adjacent to `(x ± 2y, y)`,
/// `(x ± (2y+1), y)`, `(x, y ± 2x)` and `(x, y ± (2x+1))`, all mod `m` — an
/// explicit 8-regular (as a multigraph) expander with constant spectral gap.
/// Collapsing parallel edges can lower some degrees slightly; the expansion
/// is preserved.
pub fn margulis(m: usize) -> Graph {
    let n = m * m;
    let mut g = Graph::empty(n);
    let idx = |x: usize, y: usize| -> usize { x * m + y };
    for x in 0..m {
        for y in 0..m {
            let v = idx(x, y);
            let neighbors = [
                ((x + 2 * y) % m, y),
                ((x + m - (2 * y) % m) % m, y),
                ((x + 2 * y + 1) % m, y),
                ((x + m - (2 * y + 1) % m) % m, y),
                (x, (y + 2 * x) % m),
                (x, (y + m - (2 * x) % m) % m),
                (x, (y + 2 * x + 1) % m),
                (x, (y + m - (2 * x + 1) % m) % m),
            ];
            for (nx, ny) in neighbors {
                g.add_edge(v, idx(nx, ny));
            }
        }
    }
    g
}

/// A seeded random `d`-regular-style graph built as the union of `⌈d/2⌉`
/// random Hamiltonian cycles (plus a perfect matching for odd `d` and even
/// `n`).
///
/// The result is exactly `d`-regular when no two cycles share an edge; edge
/// collisions (rare for `d ≪ n`) lower individual degrees by at most the
/// number of collisions at that vertex.  Such graphs are expanders with
/// overwhelming probability and their measured second eigenvalue is close to
/// the Ramanujan bound `2√(d−1)`; the benchmark suite checks this.
///
/// # Errors
///
/// Returns [`OverlayError::InvalidParameters`] if `d >= n` or `d == 0` or
/// `n < 3`.
pub fn random_regular(n: usize, d: usize, seed: u64) -> OverlayResult<Graph> {
    if n < 3 {
        return Err(OverlayError::InvalidParameters(format!(
            "need at least 3 vertices, got {n}"
        )));
    }
    if d == 0 || d >= n {
        return Err(OverlayError::InvalidParameters(format!(
            "degree {d} must satisfy 1 <= d < n = {n}"
        )));
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Collect the edge list and build the graph in one bulk pass
    // (`Graph::from_edges` sorts each adjacency list once): identical result
    // to inserting edge by edge, but `O(n·d log d)` instead of `O(n·d²)` —
    // the difference between seconds and minutes for the near-complete
    // inquiry-phase graphs at paper scale.
    let cycles = d / 2;
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(cycles * n + n / 2);
    for _ in 0..cycles {
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        for i in 0..n {
            edges.push((order[i], order[(i + 1) % n]));
        }
    }
    if d % 2 == 1 {
        // Add a random perfect matching (drop one vertex if n is odd).
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        for pair in order.chunks_exact(2) {
            edges.push((pair[0], pair[1]));
        }
    }
    Ok(Graph::from_edges(n, &edges).expect("endpoints in range by construction"))
}

/// The degree-capped overlay the protocols actually use: a seeded
/// random-regular graph of degree `min(d, n-1)`, falling back to the
/// complete graph when the requested degree cannot be realised on `n`
/// vertices.
///
/// This is the substitution documented in `DESIGN.md`: the paper's Ramanujan
/// degrees (for example `5⁸`) are far larger than any practical sub-network,
/// in which case the complete graph trivially provides the expansion and
/// compactness the algorithms rely on.
pub fn capped_regular(n: usize, d: usize, seed: u64) -> Graph {
    if n <= 2 || d + 1 >= n {
        return complete(n);
    }
    random_regular(n, d, seed).unwrap_or_else(|_| complete(n))
}

/// A seeded Erdős–Rényi-style graph in which each ordered pair `(v, w)`
/// chooses the edge with probability `degree_target / n`, matching the
/// random construction in the proof of Lemma 5.
pub fn bernoulli(n: usize, degree_target: f64, seed: u64) -> Graph {
    use rand::Rng;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let p = (degree_target / n as f64).clamp(0.0, 1.0);
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for v in 0..n {
        for w in 0..n {
            if v != w && rng.gen_bool(p) {
                edges.push((v, w));
            }
        }
    }
    Graph::from_edges(n, &edges).expect("endpoints in range by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_graph_has_all_edges() {
        let g = complete(5);
        assert_eq!(g.num_edges(), 10);
        assert!(g.is_regular(4));
    }

    #[test]
    fn cycle_is_two_regular() {
        let g = cycle(7);
        assert!(g.is_regular(2));
        assert!(g.is_connected(None));
    }

    #[test]
    fn circulant_degree() {
        let g = circulant(10, &[1, 2]);
        assert!(g.is_regular(4));
    }

    #[test]
    fn hypercube_structure() {
        let g = hypercube(4);
        assert_eq!(g.num_vertices(), 16);
        assert!(g.is_regular(4));
        assert!(g.is_connected(None));
    }

    #[test]
    fn margulis_is_near_eight_regular_and_connected() {
        let g = margulis(8);
        assert_eq!(g.num_vertices(), 64);
        assert!(g.is_connected(None));
        assert!(g.max_degree() <= 8);
        assert!(g.min_degree() >= 4, "min degree {}", g.min_degree());
    }

    #[test]
    fn random_regular_is_regular_and_deterministic() {
        let g = random_regular(100, 6, 7).unwrap();
        assert_eq!(g.max_degree(), 6);
        assert!(g.min_degree() >= 4, "collisions are rare and bounded");
        assert!(g.is_connected(None));
        let h = random_regular(100, 6, 7).unwrap();
        assert_eq!(g, h, "same seed, same graph");
        let k = random_regular(100, 6, 8).unwrap();
        assert_ne!(g, k, "different seed, different graph");
    }

    #[test]
    fn random_regular_rejects_bad_parameters() {
        assert!(random_regular(2, 1, 0).is_err());
        assert!(random_regular(10, 0, 0).is_err());
        assert!(random_regular(10, 10, 0).is_err());
    }

    #[test]
    fn capped_regular_falls_back_to_complete() {
        let g = capped_regular(6, 1000, 3);
        assert_eq!(g.num_edges(), 15, "complete graph fallback");
        let g = capped_regular(200, 8, 3);
        assert_eq!(g.max_degree(), 8);
    }

    #[test]
    fn bernoulli_degree_concentrates() {
        let g = bernoulli(400, 20.0, 11);
        let avg = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
        // Each unordered pair is selected by either endpoint, so the expected
        // degree is close to 2 * 20 (minus overlaps).
        assert!(avg > 25.0 && avg < 55.0, "average degree {avg}");
    }
}
