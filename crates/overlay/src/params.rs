//! The paper's overlay parameter formulas and their practical scaling.
//!
//! Section 3 defines, for a `d`-regular Ramanujan graph on `n` vertices,
//!
//! * `ℓ(n, d) = 4 n d^{-1/8}` — the expansion/compactness threshold,
//! * `δ(d) = ½ (d^{7/8} − d^{5/8})` — the survival-subset degree,
//!
//! and the algorithms pick `d` so that `ℓ` matches the number of non-faulty
//! vertices they need to keep connected (for example `d = 5⁸` in
//! `Almost-Everywhere-Agreement`, giving `ℓ = 4t` on the `5t` little nodes).
//! Those degrees exceed any laptop-scale sub-network, so [`OverlayParams`]
//! offers both the verbatim [`OverlayParams::paper`] formulas and a
//! [`OverlayParams::practical`] scaling that preserves the *structure* (a
//! constant-degree expander plus the peeling threshold `δ` and probing radius
//! `γ`) at sizes where the simulation can actually run.  The substitution is
//! documented in `DESIGN.md` and evaluated in experiment E11.

use serde::{Deserialize, Serialize};

/// `ℓ(n, d) = 4 n d^{-1/8}`, the minimum set size for which expansion and
/// compactness of a Ramanujan graph are guaranteed (Section 3).
pub fn ell(n: usize, d: usize) -> f64 {
    4.0 * n as f64 * (d as f64).powf(-1.0 / 8.0)
}

/// `δ(d) = ½ (d^{7/8} − d^{5/8})`, the survival-subset degree threshold used
/// by local probing (Section 3).
pub fn delta(d: usize) -> f64 {
    0.5 * ((d as f64).powf(7.0 / 8.0) - (d as f64).powf(5.0 / 8.0))
}

/// The paper's degree choice for `Many-Crashes-Consensus`:
/// `d(α) = (4 / (1 − α))⁸` where `α = t/n` (Section 4.4).
pub fn many_crashes_degree(alpha: f64) -> f64 {
    (4.0 / (1.0 - alpha)).powi(8)
}

/// The paper's probing radius `γ(m) = 2 + ⌈lg m⌉` for a sub-network of `m`
/// vertices (Theorem 3 and the pseudocode of Sections 4–5).
pub fn probing_radius(m: usize) -> usize {
    2 + (m.max(1) as f64).log2().ceil() as usize
}

/// Parameters of one overlay instance: the graph degree, the local-probing
/// radius `γ` and the survival threshold `δ`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct OverlayParams {
    /// Vertex degree of the overlay graph (capped at `m − 1` by the
    /// constructions).
    pub degree: usize,
    /// Local-probing duration / neighbourhood radius `γ`.
    pub gamma: usize,
    /// Survival-subset degree threshold `δ`.
    pub delta: usize,
}

impl OverlayParams {
    /// The verbatim paper parameters for a sub-network of `m` vertices and
    /// requested degree `d`: `γ = 2 + ⌈lg m⌉`, `δ = δ(d)` (rounded down, at
    /// least 1).
    ///
    /// Note that for the paper's own degree choices `δ(d)` is enormous; use
    /// [`OverlayParams::practical`] for runnable configurations.
    pub fn paper(m: usize, d: usize) -> Self {
        OverlayParams {
            degree: d,
            gamma: probing_radius(m),
            delta: (delta(d).floor() as usize).max(1),
        }
    }

    /// A laptop-scale configuration for a sub-network of `m` vertices
    /// tolerating up to `faults` crashes among them.
    ///
    /// The degree is chosen so the expander retains a large connected core
    /// after removing `faults` vertices (empirically, degree
    /// `max(8, ⌈4·faults/m·degree-margin⌉)` suffices; we use a simple rule
    /// `clamp(8 + 8·faults·8/m, 8, m−1)`), `γ` keeps the paper's
    /// `2 + ⌈lg m⌉`, and `δ` is a small constant fraction of the degree so
    /// that peeling under `faults` crashes leaves most of the graph intact.
    pub fn practical(m: usize, faults: usize) -> Self {
        if m <= 2 {
            return OverlayParams {
                degree: m.saturating_sub(1).max(1),
                gamma: 1,
                delta: 1,
            };
        }
        let fault_fraction = faults as f64 / m as f64;
        let degree = ((8.0 + 64.0 * fault_fraction).ceil() as usize)
            .min(m - 1)
            .max(1);
        let delta = ((degree as f64 * 0.25).floor() as usize)
            .clamp(1, degree)
            .max(1);
        OverlayParams {
            degree,
            gamma: probing_radius(m),
            delta,
        }
    }

    /// Duration of one local-probing instance in rounds.
    pub fn probing_rounds(&self) -> u64 {
        self.gamma as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ell_matches_paper_examples() {
        // For the little-node graph G(5t, 5^8): ℓ = 4·5t·(5^8)^{-1/8} = 4t.
        let t = 100usize;
        let value = ell(5 * t, 5usize.pow(8));
        assert!((value - 4.0 * t as f64).abs() < 1e-6, "ell = {value}");
    }

    #[test]
    fn many_crashes_degree_matches_paper_example() {
        // ℓ(n, d(α)) should equal (1 − α)·n.
        let n = 1000usize;
        let alpha = 0.5;
        let d = many_crashes_degree(alpha);
        let value = 4.0 * n as f64 * d.powf(-1.0 / 8.0);
        assert!((value - (1.0 - alpha) * n as f64).abs() < 1e-6);
    }

    #[test]
    fn delta_is_positive_and_growing() {
        assert!(delta(64) > 0.0);
        assert!(delta(256) > delta(64));
    }

    #[test]
    fn probing_radius_is_two_plus_log() {
        assert_eq!(probing_radius(1), 2);
        assert_eq!(probing_radius(8), 5);
        assert_eq!(probing_radius(1000), 12);
    }

    #[test]
    fn paper_params_round_delta() {
        let p = OverlayParams::paper(500, 64);
        assert_eq!(p.degree, 64);
        assert_eq!(p.gamma, probing_radius(500));
        assert_eq!(p.delta, delta(64).floor() as usize);
    }

    #[test]
    fn practical_params_are_runnable() {
        let p = OverlayParams::practical(500, 90);
        assert!(p.degree >= 8 && p.degree < 500);
        assert!(p.delta >= 2 && p.delta <= p.degree);
        assert_eq!(p.gamma, probing_radius(500));
        let tiny = OverlayParams::practical(2, 0);
        assert_eq!(tiny.degree, 1);
        // Small sub-networks (e.g. 5 little nodes when t = 1) must still
        // produce a feasible degree below the vertex count.
        let small = OverlayParams::practical(5, 1);
        assert!(small.degree >= 1 && small.degree < 5);
        assert!(small.delta >= 1 && small.delta <= small.degree);
    }

    #[test]
    fn practical_degree_grows_with_fault_fraction() {
        let light = OverlayParams::practical(1000, 10);
        let heavy = OverlayParams::practical(1000, 190);
        assert!(heavy.degree > light.degree);
    }
}
