//! Fault-tolerance properties of overlay graphs (Section 3 of the paper).
//!
//! * **Survival subsets and compactness** (Theorem 2) — given a set `B` of
//!   operational vertices, the constructive `F`-operator from the proof
//!   iteratively discards vertices with fewer than `δ` neighbours among the
//!   survivors; the fixed point is a `δ`-survival subset.  Local probing
//!   (Proposition 1) guarantees that every member of such a subset survives.
//! * **Dense neighbourhoods** (Theorem 3) — the `(γ, δ)`-dense-neighbourhood
//!   of a vertex characterises exactly which vertices survive local probing.
//! * **Expansion** (Theorem 1, Theorem 4) — any two large enough vertex sets
//!   are connected by an edge; checked here both exhaustively (small sets)
//!   and by seeded sampling.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::graph::{Graph, VertexId};

/// Computes the maximal `δ`-survival subset of `candidate` in `graph`:
/// the largest `C ⊆ candidate` such that every vertex of `C` has at least
/// `delta` neighbours inside `C`.
///
/// This is the fixed point of the paper's `F_B` operator (proof of
/// Theorem 2), computed by repeatedly peeling vertices of in-set degree
/// below `delta`.  The result may be empty.
pub fn survival_subset(graph: &Graph, candidate: &[bool], delta: usize) -> Vec<bool> {
    let n = graph.num_vertices();
    let mut inside: Vec<bool> = (0..n).map(|v| candidate.get(v) == Some(&true)).collect();
    let mut degree: Vec<usize> = (0..n)
        .map(|v| {
            if inside[v] {
                graph.degree_within(v, &inside)
            } else {
                0
            }
        })
        .collect();
    let mut queue: Vec<VertexId> = (0..n).filter(|&v| inside[v] && degree[v] < delta).collect();
    while let Some(v) = queue.pop() {
        if !inside[v] {
            continue;
        }
        inside[v] = false;
        for &u in graph.neighbors(v) {
            if inside[u] {
                degree[u] -= 1;
                if degree[u] < delta {
                    queue.push(u);
                }
            }
        }
    }
    inside
}

/// Whether `subset` is a `δ`-survival subset for `candidate`: it is contained
/// in `candidate` and every member has at least `delta` neighbours inside
/// `subset`.
pub fn is_survival_subset(
    graph: &Graph,
    candidate: &[bool],
    subset: &[bool],
    delta: usize,
) -> bool {
    let n = graph.num_vertices();
    (0..n).all(|v| {
        if subset.get(v) != Some(&true) {
            return true;
        }
        candidate.get(v) == Some(&true) && graph.degree_within(v, subset) >= delta
    })
}

/// Checks `(ℓ, ε, δ)`-compactness of a graph on a specific candidate set:
/// returns the survival subset if it contains at least `ε·ℓ` vertices, and
/// `None` otherwise.
///
/// Theorem 2 states that Ramanujan graphs are `(ℓ(n,d), 3/4, δ(d))`-compact:
/// *every* candidate set of at least `ℓ` vertices admits such a subset; the
/// experiment harness samples candidate sets and applies this check.
pub fn compact_survival_subset(
    graph: &Graph,
    candidate: &[bool],
    ell: usize,
    epsilon: f64,
    delta: usize,
) -> Option<Vec<bool>> {
    let members = candidate.iter().filter(|&&b| b).count();
    if members < ell {
        return None;
    }
    let subset = survival_subset(graph, candidate, delta);
    let survivors = subset.iter().filter(|&&b| b).count();
    if survivors as f64 + 1e-9 >= epsilon * ell as f64 {
        Some(subset)
    } else {
        None
    }
}

/// Computes the maximal `(γ, δ)`-dense neighbourhood of `vertex` inside the
/// vertex set `within`: the largest `S ⊆ N^γ(vertex) ∩ within` such that
/// every vertex of `S ∩ N^{γ-1}(vertex)` has at least `delta` neighbours in
/// `S`.
///
/// Returns the membership mask of `S`.  By Proposition 1, `vertex` survives
/// local probing on the subgraph induced by `within` if and only if it
/// belongs to such a set (and, being within distance `γ−1 ≥ 0` of itself,
/// has `δ` neighbours in it).
pub fn dense_neighborhood(
    graph: &Graph,
    vertex: VertexId,
    gamma: usize,
    delta: usize,
    within: &[bool],
) -> Vec<bool> {
    let n = graph.num_vertices();
    if vertex >= n || within.get(vertex) != Some(&true) || gamma == 0 {
        return vec![false; n];
    }
    let dist = graph.bfs_distances(vertex, Some(within));
    let mut inside: Vec<bool> = (0..n)
        .map(|v| dist[v].is_some_and(|d| d <= gamma))
        .collect();
    // Iteratively remove inner vertices (distance ≤ γ−1) with fewer than δ
    // neighbours inside the current set.
    loop {
        let mut removed = false;
        for v in 0..n {
            if inside[v]
                && dist[v].is_some_and(|d| d < gamma)
                && graph.degree_within(v, &inside) < delta
            {
                inside[v] = false;
                removed = true;
            }
        }
        if !removed {
            break;
        }
    }
    inside
}

/// Whether `vertex` has a `(γ, δ)`-dense neighbourhood inside `within` — the
/// condition under which it survives local probing (Proposition 1).
pub fn has_dense_neighborhood(
    graph: &Graph,
    vertex: VertexId,
    gamma: usize,
    delta: usize,
    within: &[bool],
) -> bool {
    let hood = dense_neighborhood(graph, vertex, gamma, delta, within);
    hood.get(vertex) == Some(&true) && graph.degree_within(vertex, &hood) >= delta
}

/// The edge-expansion ratio of a specific vertex set: `|∂W| / |W|`.
///
/// Returns `f64::INFINITY` for an empty set.
pub fn expansion_of_set(graph: &Graph, w: &[bool]) -> f64 {
    let size = w.iter().filter(|&&b| b).count();
    if size == 0 {
        return f64::INFINITY;
    }
    graph.edge_boundary(w) as f64 / size as f64
}

/// Samples `samples` pairs of disjoint vertex sets of size `ell` and reports
/// whether every sampled pair is connected by an edge — a randomized check of
/// the paper's `ℓ`-expansion property (Theorem 1).  Deterministic for a fixed
/// seed.
pub fn sampled_expansion_check(graph: &Graph, ell: usize, samples: usize, seed: u64) -> bool {
    let n = graph.num_vertices();
    if 2 * ell > n || ell == 0 {
        return true;
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut vertices: Vec<VertexId> = (0..n).collect();
    for _ in 0..samples {
        vertices.shuffle(&mut rng);
        let a = graph.mask(&vertices[0..ell]);
        let b = graph.mask(&vertices[ell..2 * ell]);
        if graph.edges_between(&a, &b) == 0 {
            return false;
        }
    }
    true
}

/// Verifies the Expander Mixing Lemma inequality
/// `|e(A,B) − d·|A|·|B|/n| ≤ λ √(|A|·|B|)` for a specific pair of sets,
/// given a bound `lambda` on the second eigenvalue.
pub fn expander_mixing_holds(graph: &Graph, a: &[bool], b: &[bool], lambda: f64) -> bool {
    let n = graph.num_vertices();
    if n == 0 {
        return true;
    }
    let d = 2.0 * graph.num_edges() as f64 / n as f64;
    let size_a = a.iter().filter(|&&x| x).count() as f64;
    let size_b = b.iter().filter(|&&x| x).count() as f64;
    let e_ab = graph.edges_between(a, b) as f64;
    (e_ab - d * size_a * size_b / n as f64).abs() <= lambda * (size_a * size_b).sqrt() + 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build;

    #[test]
    fn survival_subset_peels_low_degree_vertices() {
        // A triangle with a pendant vertex: with δ = 2 the pendant (and only
        // the pendant) is peeled.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]).unwrap();
        let all = vec![true; 4];
        let surv = survival_subset(&g, &all, 2);
        assert_eq!(surv, vec![true, true, true, false]);
        assert!(is_survival_subset(&g, &all, &surv, 2));
    }

    #[test]
    fn survival_subset_can_be_empty() {
        let g = build::cycle(6);
        let all = vec![true; 6];
        let surv = survival_subset(&g, &all, 3);
        assert!(surv.iter().all(|&b| !b), "cycle has no 3-core");
    }

    #[test]
    fn survival_subset_respects_candidate_restriction() {
        let g = build::complete(6);
        let candidate = g.mask(&[0, 1, 2]);
        let surv = survival_subset(&g, &candidate, 2);
        assert_eq!(surv.iter().filter(|&&b| b).count(), 3);
        assert!(is_survival_subset(&g, &candidate, &surv, 2));
        // δ larger than the candidate's internal degree empties it.
        let surv = survival_subset(&g, &candidate, 3);
        assert!(surv.iter().all(|&b| !b));
    }

    #[test]
    fn compactness_on_complete_graph() {
        // K_20 with any 10-vertex candidate set: every vertex keeps 9 in-set
        // neighbours, so the survival subset is the whole candidate set.
        let g = build::complete(20);
        let candidate = g.mask(&(0..10).collect::<Vec<_>>());
        let subset = compact_survival_subset(&g, &candidate, 10, 0.75, 5).unwrap();
        assert_eq!(subset.iter().filter(|&&b| b).count(), 10);
        // Candidate smaller than ℓ yields None.
        assert!(compact_survival_subset(&g, &candidate, 11, 0.75, 5).is_none());
    }

    #[test]
    fn dense_neighborhood_on_complete_graph_is_everything() {
        let g = build::complete(12);
        let all = vec![true; 12];
        assert!(has_dense_neighborhood(&g, 0, 2, 5, &all));
        let hood = dense_neighborhood(&g, 0, 2, 5, &all);
        assert_eq!(hood.iter().filter(|&&b| b).count(), 12);
    }

    #[test]
    fn dense_neighborhood_fails_for_high_delta_on_sparse_graph() {
        let g = build::cycle(12);
        let all = vec![true; 12];
        assert!(has_dense_neighborhood(&g, 0, 3, 2, &all));
        assert!(!has_dense_neighborhood(&g, 0, 3, 3, &all));
    }

    #[test]
    fn dense_neighborhood_excluded_vertex_is_empty() {
        let g = build::complete(8);
        let mut within = vec![true; 8];
        within[0] = false;
        assert!(!has_dense_neighborhood(&g, 0, 2, 3, &within));
    }

    #[test]
    fn expansion_checks_on_expander_and_edgeless_graph() {
        let g = build::random_regular(200, 8, 9).unwrap();
        assert!(sampled_expansion_check(&g, 40, 50, 1));
        // A graph with no edges at all cannot connect any pair of sets.
        let edgeless = Graph::empty(40);
        assert!(!sampled_expansion_check(&edgeless, 10, 5, 2));
        // Degenerate parameters are vacuously expanding.
        assert!(sampled_expansion_check(&edgeless, 0, 5, 2));
        assert!(sampled_expansion_check(&edgeless, 30, 5, 2));
    }

    #[test]
    fn expansion_of_set_values() {
        let g = build::cycle(8);
        let half = g.mask(&[0, 1, 2, 3]);
        assert!((expansion_of_set(&g, &half) - 0.5).abs() < 1e-9);
        assert_eq!(expansion_of_set(&g, &[false; 8]), f64::INFINITY);
    }

    #[test]
    fn expander_mixing_lemma_holds_on_random_regular() {
        let g = build::random_regular(300, 10, 17).unwrap();
        let est = crate::spectral::second_eigenvalue(&g, 200, 5);
        let a = g.mask(&(0..60).collect::<Vec<_>>());
        let b = g.mask(&(60..150).collect::<Vec<_>>());
        assert!(expander_mixing_holds(&g, &a, &b, est.lambda * 1.2 + 1.0));
    }
}
