//! Error type for overlay-graph construction and analysis.

use std::error::Error as StdError;
use std::fmt;

/// Errors produced while building or analysing overlay graphs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OverlayError {
    /// A vertex index was outside the graph's vertex range.
    VertexOutOfRange {
        /// The offending vertex index.
        vertex: usize,
        /// The number of vertices in the graph.
        n: usize,
    },
    /// The requested construction parameters are infeasible (for example a
    /// regular graph with degree at least the number of vertices).
    InvalidParameters(String),
    /// A randomized construction failed to converge within its retry budget.
    ConstructionFailed(String),
}

impl fmt::Display for OverlayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OverlayError::VertexOutOfRange { vertex, n } => {
                write!(
                    f,
                    "vertex {vertex} out of range for a graph on {n} vertices"
                )
            }
            OverlayError::InvalidParameters(msg) => write!(f, "invalid parameters: {msg}"),
            OverlayError::ConstructionFailed(msg) => write!(f, "construction failed: {msg}"),
        }
    }
}

impl StdError for OverlayError {}

/// Convenience result alias for overlay operations.
pub type OverlayResult<T> = Result<T, OverlayError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(OverlayError::VertexOutOfRange { vertex: 9, n: 4 }
            .to_string()
            .contains("vertex 9"));
        assert!(OverlayError::InvalidParameters("d >= n".into())
            .to_string()
            .contains("d >= n"));
        assert!(OverlayError::ConstructionFailed("retries".into())
            .to_string()
            .contains("retries"));
    }
}
