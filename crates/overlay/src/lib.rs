//! # dft-overlay — expander / Ramanujan overlay-graph substrate
//!
//! Overlay networks are the communication backbone of the `linear-dft`
//! algorithms: the paper (Section 3) routes all of its sub-quadratic
//! communication along constant-degree Ramanujan graphs, whose expansion
//! (Theorem 1), compactness (Theorem 2), dense-neighbourhood growth
//! (Theorem 3) and cross-set edges (Theorem 4) are exactly the properties
//! local probing and the inquiry phases rely on.
//!
//! This crate provides:
//!
//! * [`Graph`] — the undirected simple-graph type with the set-volume,
//!   boundary and neighbourhood primitives used in the paper's analysis;
//! * [`build`] — constructions: seeded random-regular (near-Ramanujan),
//!   Margulis–Gabber–Galil, complete/cycle/circulant/hypercube references and
//!   the degree-capped [`build::capped_regular`] used by the protocols;
//! * [`spectral`] — power-iteration estimates of `λ = max(|λ₂|,|λ_n|)` and
//!   the Ramanujan test `λ ≤ 2√(d−1)`;
//! * [`properties`] — survival subsets (the constructive Theorem 2
//!   `F`-operator), dense neighbourhoods, expansion and Expander-Mixing
//!   checks;
//! * [`params`] — the paper's `ℓ(n,d)`, `δ(d)`, `γ` formulas and the
//!   practical scaling documented in `DESIGN.md`;
//! * [`family`] — the per-phase inquiry graph families of Lemma 5 and
//!   Section 4.4.
//!
//! # Example
//!
//! ```
//! use dft_overlay::{build, properties, spectral};
//!
//! // A seeded 8-regular expander on 200 vertices.
//! let g = build::random_regular(200, 8, 42).unwrap();
//! assert!(g.is_connected(None));
//!
//! // Its spectral gap is large...
//! let est = spectral::second_eigenvalue(&g, 200, 7);
//! assert!(est.spectral_gap() > 1.0);
//!
//! // ...and after adversarially removing 30 vertices, the peeling operator
//! // still finds a large 3-survival subset (the structure local probing
//! // exploits).
//! let survivors: Vec<usize> = (30..200).collect();
//! let candidate = g.mask(&survivors);
//! let core = properties::survival_subset(&g, &candidate, 3);
//! assert!(core.iter().filter(|&&b| b).count() > 150);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build;
mod error;
pub mod family;
mod graph;
pub mod params;
pub mod properties;
pub mod spectral;

pub use error::{OverlayError, OverlayResult};
pub use family::{FamilyKind, InquiryFamily};
pub use graph::{Graph, VertexId};
pub use params::OverlayParams;
pub use spectral::SpectralEstimate;
