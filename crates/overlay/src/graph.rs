//! The core undirected simple-graph type used for overlay networks.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::error::{OverlayError, OverlayResult};

/// Index of a vertex in an overlay graph.
///
/// Overlay graphs are independent of the simulator's node identities; the
/// protocols map overlay vertices onto network nodes (for example, vertex `i`
/// of the "little nodes" overlay is the node with the `i`-th smallest name).
pub type VertexId = usize;

/// An undirected simple graph stored as sorted adjacency lists.
///
/// This is the representation of the paper's overlay networks: nodes are
/// vertices and messages are only sent along edges (Section 2, "Overlay
/// graphs").
///
/// # Examples
///
/// ```
/// use dft_overlay::Graph;
///
/// let mut g = Graph::empty(4);
/// g.add_edge(0, 1);
/// g.add_edge(1, 2);
/// assert_eq!(g.degree(1), 2);
/// assert!(g.has_edge(0, 1));
/// assert!(!g.has_edge(0, 2));
/// assert_eq!(g.num_edges(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    adjacency: Vec<Vec<VertexId>>,
    num_edges: usize,
}

impl Graph {
    /// Creates a graph with `n` vertices and no edges.
    pub fn empty(n: usize) -> Self {
        Graph {
            adjacency: vec![Vec::new(); n],
            num_edges: 0,
        }
    }

    /// Creates a graph from an explicit edge list.
    ///
    /// Self-loops and duplicate edges are ignored.  Adjacency lists are
    /// built in bulk — pushed unsorted, then sorted and deduplicated once
    /// per vertex — so construction is `O(E log E)` instead of the
    /// `O(E · degree)` that repeated [`Graph::add_edge`] sorted insertions
    /// cost.  The result is identical to inserting the edges one at a time
    /// (same edge set, same sorted lists); the bulk path is what keeps
    /// paper-scale high-degree overlays (the inquiry families' near-complete
    /// graphs at `n = 4 · 10^3`) affordable to build.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::VertexOutOfRange`] if an endpoint is ≥ `n`.
    pub fn from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> OverlayResult<Self> {
        let mut adjacency: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        for &(u, v) in edges {
            if u >= n || v >= n {
                return Err(OverlayError::VertexOutOfRange {
                    vertex: u.max(v),
                    n,
                });
            }
            if u == v {
                continue;
            }
            adjacency[u].push(v);
            adjacency[v].push(u);
        }
        let mut endpoint_count = 0;
        for adj in &mut adjacency {
            adj.sort_unstable();
            adj.dedup();
            endpoint_count += adj.len();
        }
        Ok(Graph {
            adjacency,
            num_edges: endpoint_count / 2,
        })
    }

    /// The complete graph `K_n`, built directly (each adjacency list is
    /// `0..n` minus the vertex itself, already sorted) — `O(n²)`, versus the
    /// cubic cost of inserting the edges one at a time.
    pub fn complete(n: usize) -> Self {
        let adjacency: Vec<Vec<VertexId>> = (0..n)
            .map(|u| (0..n).filter(|&v| v != u).collect())
            .collect();
        Graph {
            adjacency,
            num_edges: if n < 2 { 0 } else { n * (n - 1) / 2 },
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of (undirected) edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Adds the undirected edge `{u, v}`; self-loops and duplicates are
    /// ignored.  Returns `true` if the edge was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        let n = self.num_vertices();
        assert!(
            u < n && v < n,
            "edge ({u},{v}) out of range for {n} vertices"
        );
        if u == v {
            return false;
        }
        // Adjacency lists are kept sorted, so the binary search doubles as
        // the membership test: `Ok` means the edge already exists.
        let pos_u = match self.adjacency[u].binary_search(&v) {
            Ok(_) => return false,
            Err(pos) => pos,
        };
        let pos_v = match self.adjacency[v].binary_search(&u) {
            Ok(_) => return false,
            Err(pos) => pos,
        };
        self.adjacency[u].insert(pos_u, v);
        self.adjacency[v].insert(pos_v, u);
        self.num_edges += 1;
        true
    }

    /// Whether the edge `{u, v}` is present.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.adjacency
            .get(u)
            .is_some_and(|adj| adj.binary_search(&v).is_ok())
    }

    /// The sorted neighbour list of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.adjacency[v]
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: VertexId) -> usize {
        self.adjacency[v].len()
    }

    /// Maximum vertex degree (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.adjacency.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Minimum vertex degree (0 for an empty graph).
    pub fn min_degree(&self) -> usize {
        self.adjacency.iter().map(Vec::len).min().unwrap_or(0)
    }

    /// Whether every vertex has exactly degree `d`.
    pub fn is_regular(&self, d: usize) -> bool {
        self.adjacency.iter().all(|adj| adj.len() == d)
    }

    /// Iterates over all edges, each reported once with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.adjacency
            .iter()
            .enumerate()
            .flat_map(|(u, adj)| adj.iter().filter(move |&&v| u < v).map(move |&v| (u, v)))
    }

    /// Number of edges with both endpoints inside `set` — the paper's
    /// `vol(S)` (Section 3).
    pub fn volume(&self, set: &[bool]) -> usize {
        self.edges()
            .filter(|&(u, v)| set.get(u) == Some(&true) && set.get(v) == Some(&true))
            .count()
    }

    /// Number of edges connecting `a` with `b` — the paper's `e(A, B)`.
    ///
    /// The sets are membership masks over the vertex range; they need not be
    /// disjoint, but shared vertices contribute nothing (self-pairs are not
    /// edges).
    pub fn edges_between(&self, a: &[bool], b: &[bool]) -> usize {
        self.edges()
            .filter(|&(u, v)| {
                let ua = a.get(u) == Some(&true);
                let ub = b.get(u) == Some(&true);
                let va = a.get(v) == Some(&true);
                let vb = b.get(v) == Some(&true);
                (ua && vb) || (va && ub)
            })
            .count()
    }

    /// Size of the edge boundary `∂W`: edges with exactly one endpoint in `w`.
    pub fn edge_boundary(&self, w: &[bool]) -> usize {
        self.edges()
            .filter(|&(u, v)| (w.get(u) == Some(&true)) != (w.get(v) == Some(&true)))
            .count()
    }

    /// Degree of `v` counting only neighbours inside `set`.
    pub fn degree_within(&self, v: VertexId, set: &[bool]) -> usize {
        self.adjacency[v]
            .iter()
            .filter(|&&u| set.get(u) == Some(&true))
            .count()
    }

    /// Breadth-first distances from `source`, `None` for unreachable
    /// vertices.  Only vertices for which `allowed` is true are traversed
    /// (pass `None` to allow all).
    pub fn bfs_distances(&self, source: VertexId, allowed: Option<&[bool]>) -> Vec<Option<usize>> {
        let n = self.num_vertices();
        let mut dist = vec![None; n];
        let permitted = |v: VertexId| allowed.is_none_or(|a| a.get(v) == Some(&true));
        if source >= n || !permitted(source) {
            return dist;
        }
        dist[source] = Some(0);
        let mut queue = VecDeque::from([source]);
        while let Some(u) = queue.pop_front() {
            let du = dist[u].expect("queued vertices have distances");
            for &v in &self.adjacency[u] {
                if dist[v].is_none() && permitted(v) {
                    dist[v] = Some(du + 1);
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// The generalized neighbourhood `N^i_G(W)`: all vertices at distance at
    /// most `radius` from some vertex of `sources` (Section 2).
    pub fn generalized_neighborhood(&self, sources: &[VertexId], radius: usize) -> Vec<bool> {
        let n = self.num_vertices();
        let mut reached = vec![false; n];
        let mut frontier: Vec<VertexId> = Vec::new();
        for &s in sources {
            if s < n && !reached[s] {
                reached[s] = true;
                frontier.push(s);
            }
        }
        for _ in 0..radius {
            let mut next = Vec::new();
            for &u in &frontier {
                for &v in &self.adjacency[u] {
                    if !reached[v] {
                        reached[v] = true;
                        next.push(v);
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        reached
    }

    /// Connected components of the subgraph induced by `allowed` (all
    /// vertices when `None`); returns one vertex list per component.
    pub fn connected_components(&self, allowed: Option<&[bool]>) -> Vec<Vec<VertexId>> {
        let n = self.num_vertices();
        let permitted = |v: VertexId| allowed.is_none_or(|a| a.get(v) == Some(&true));
        let mut seen = vec![false; n];
        let mut components = Vec::new();
        for start in 0..n {
            if seen[start] || !permitted(start) {
                continue;
            }
            let mut component = Vec::new();
            let mut queue = VecDeque::from([start]);
            seen[start] = true;
            while let Some(u) = queue.pop_front() {
                component.push(u);
                for &v in &self.adjacency[u] {
                    if !seen[v] && permitted(v) {
                        seen[v] = true;
                        queue.push_back(v);
                    }
                }
            }
            components.push(component);
        }
        components
    }

    /// Whether the subgraph induced by `allowed` is connected (an empty
    /// induced subgraph counts as connected).
    pub fn is_connected(&self, allowed: Option<&[bool]>) -> bool {
        self.connected_components(allowed).len() <= 1
    }

    /// The subgraph induced by the vertex mask `keep`, preserving vertex
    /// indices (vertices outside the mask become isolated).
    pub fn induced_subgraph(&self, keep: &[bool]) -> Graph {
        let mut sub = Graph::empty(self.num_vertices());
        for (u, v) in self.edges() {
            if keep.get(u) == Some(&true) && keep.get(v) == Some(&true) {
                sub.add_edge(u, v);
            }
        }
        sub
    }

    /// Builds a membership mask from a vertex list.
    pub fn mask(&self, vertices: &[VertexId]) -> Vec<bool> {
        let mut mask = vec![false; self.num_vertices()];
        for &v in vertices {
            if v < mask.len() {
                mask[v] = true;
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn add_edge_deduplicates_and_ignores_loops() {
        let mut g = Graph::empty(3);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(1, 0), "duplicate ignored");
        assert!(!g.add_edge(2, 2), "self-loop ignored");
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn from_edges_rejects_out_of_range() {
        let err = Graph::from_edges(2, &[(0, 5)]).unwrap_err();
        assert!(matches!(
            err,
            OverlayError::VertexOutOfRange { vertex: 5, n: 2 }
        ));
    }

    #[test]
    fn degrees_and_regularity() {
        let g = path(4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.min_degree(), 1);
        assert!(!g.is_regular(2));
        let cycle = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert!(cycle.is_regular(2));
    }

    #[test]
    fn edges_iterator_reports_each_edge_once() {
        let g = path(5);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        assert!(edges.iter().all(|&(u, v)| u < v));
    }

    #[test]
    fn volume_boundary_and_between() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]).unwrap();
        let left = g.mask(&[0, 1, 2]);
        let right = g.mask(&[3, 4, 5]);
        assert_eq!(g.volume(&left), 2);
        assert_eq!(g.edge_boundary(&left), 2);
        assert_eq!(g.edges_between(&left, &right), 2);
        assert_eq!(g.degree_within(1, &left), 2);
        assert_eq!(g.degree_within(2, &left), 1);
    }

    #[test]
    fn bfs_and_neighborhoods() {
        let g = path(6);
        let dist = g.bfs_distances(0, None);
        assert_eq!(dist[5], Some(5));
        let blocked = {
            let mut mask = vec![true; 6];
            mask[3] = false;
            mask
        };
        let dist = g.bfs_distances(0, Some(&blocked));
        assert_eq!(dist[2], Some(2));
        assert_eq!(dist[4], None, "path cut at the blocked vertex");
        let hood = g.generalized_neighborhood(&[0], 2);
        assert_eq!(hood.iter().filter(|&&b| b).count(), 3);
    }

    #[test]
    fn components_and_connectivity() {
        let g = Graph::from_edges(5, &[(0, 1), (2, 3)]).unwrap();
        let comps = g.connected_components(None);
        assert_eq!(comps.len(), 3);
        assert!(!g.is_connected(None));
        let mask = g.mask(&[0, 1]);
        assert!(g.is_connected(Some(&mask)));
    }

    #[test]
    fn induced_subgraph_preserves_indices() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let keep = g.mask(&[1, 2, 3]);
        let sub = g.induced_subgraph(&keep);
        assert_eq!(sub.num_vertices(), 4);
        assert!(!sub.has_edge(0, 1));
        assert!(sub.has_edge(1, 2));
        assert!(sub.has_edge(2, 3));
    }
}
