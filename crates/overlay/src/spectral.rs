//! Spectral estimates: the second eigenvalue and the Ramanujan property.
//!
//! For a `d`-regular graph with adjacency eigenvalues
//! `λ₁ ≥ λ₂ ≥ … ≥ λ_n` (so `λ₁ = d`), the paper works with
//! `λ = max(|λ₂|, |λ_n|)` and calls the graph *Ramanujan* when
//! `λ ≤ 2√(d−1)` (Section 3).  This module estimates `λ` by power iteration
//! on the adjacency operator with the all-ones direction deflated, which is
//! exact in the limit for regular graphs and a good estimate for the
//! near-regular graphs produced by [`crate::build::random_regular`].

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::graph::Graph;

/// Result of a spectral estimate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpectralEstimate {
    /// Estimated `λ = max(|λ₂|, |λ_n|)`.
    pub lambda: f64,
    /// Average degree of the graph (equals `d` for `d`-regular graphs).
    pub average_degree: f64,
    /// The Ramanujan bound `2√(d̄ − 1)` computed from the average degree.
    pub ramanujan_bound: f64,
}

impl SpectralEstimate {
    /// Whether the estimate satisfies the Ramanujan bound within `tolerance`
    /// (a small positive slack absorbs power-iteration error).
    pub fn is_ramanujan(&self, tolerance: f64) -> bool {
        self.lambda <= self.ramanujan_bound + tolerance
    }

    /// The spectral gap `d̄ − λ`, which lower-bounds twice the edge expansion
    /// via Cheeger's inequality (`h(G) ≥ (d − λ₂)/2`).
    pub fn spectral_gap(&self) -> f64 {
        self.average_degree - self.lambda
    }
}

/// Estimates `λ = max(|λ₂|, |λ_n|)` by power iteration with the uniform
/// vector deflated.
///
/// `iterations` in the low hundreds is plenty for the graph sizes used in the
/// experiments; the estimate is deterministic for a fixed `seed`.
///
/// Returns an estimate of zero for graphs with fewer than two vertices.
pub fn second_eigenvalue(graph: &Graph, iterations: usize, seed: u64) -> SpectralEstimate {
    let n = graph.num_vertices();
    let average_degree = if n == 0 {
        0.0
    } else {
        2.0 * graph.num_edges() as f64 / n as f64
    };
    let ramanujan_bound = if average_degree > 1.0 {
        2.0 * (average_degree - 1.0).sqrt()
    } else {
        average_degree
    };
    if n < 2 {
        return SpectralEstimate {
            lambda: 0.0,
            average_degree,
            ramanujan_bound,
        };
    }

    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut v: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    deflate_uniform(&mut v);
    normalize(&mut v);

    let mut lambda = 0.0;
    for _ in 0..iterations.max(1) {
        let mut next = vec![0.0; n];
        for (u, next_u) in next.iter_mut().enumerate() {
            let mut acc = 0.0;
            for &w in graph.neighbors(u) {
                acc += v[w];
            }
            *next_u = acc;
        }
        deflate_uniform(&mut next);
        let norm = l2(&next);
        if norm < 1e-12 {
            lambda = 0.0;
            break;
        }
        lambda = norm;
        for x in &mut next {
            *x /= norm;
        }
        v = next;
    }

    SpectralEstimate {
        lambda,
        average_degree,
        ramanujan_bound,
    }
}

/// Whether the graph satisfies the Ramanujan bound `λ ≤ 2√(d−1)` up to a 2%
/// relative tolerance, using a default estimator configuration.
pub fn is_ramanujan(graph: &Graph) -> bool {
    let estimate = second_eigenvalue(graph, 200, 0xD1F7);
    estimate.is_ramanujan(0.02 * estimate.ramanujan_bound.max(1.0))
}

fn deflate_uniform(v: &mut [f64]) {
    let mean = v.iter().sum::<f64>() / v.len() as f64;
    for x in v.iter_mut() {
        *x -= mean;
    }
}

fn normalize(v: &mut [f64]) {
    let norm = l2(v);
    if norm > 1e-12 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

fn l2(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build;

    #[test]
    fn complete_graph_lambda_is_one() {
        // K_n has eigenvalues n-1 and -1 (multiplicity n-1), so λ = 1.
        let g = build::complete(30);
        let est = second_eigenvalue(&g, 300, 1);
        assert!((est.lambda - 1.0).abs() < 0.05, "lambda = {}", est.lambda);
        assert!(est.is_ramanujan(0.05));
    }

    #[test]
    fn cycle_lambda_is_close_to_two() {
        // C_n has λ₂ = 2cos(2π/n) → 2, far above the Ramanujan bound for d=2.
        let g = build::cycle(100);
        let est = second_eigenvalue(&g, 500, 2);
        assert!(est.lambda > 1.9, "lambda = {}", est.lambda);
        assert!(est.spectral_gap() < 0.2);
    }

    #[test]
    fn random_regular_is_near_ramanujan() {
        let g = build::random_regular(300, 8, 5).unwrap();
        let est = second_eigenvalue(&g, 300, 3);
        // Ramanujan bound for d=8 is 2√7 ≈ 5.29; random regular graphs sit
        // close to it.  Allow generous slack — we only need a clear gap.
        assert!(est.lambda < 6.5, "lambda = {}", est.lambda);
        assert!(est.spectral_gap() > 1.0);
    }

    #[test]
    fn margulis_has_constant_gap() {
        let g = build::margulis(12);
        let est = second_eigenvalue(&g, 300, 4);
        assert!(est.spectral_gap() > 0.5, "gap = {}", est.spectral_gap());
    }

    #[test]
    fn is_ramanujan_helper_accepts_complete_rejects_disconnected() {
        assert!(is_ramanujan(&build::complete(20)));
        // Two disjoint copies of K_10: λ₂ = 9 for a 9-regular graph, far above
        // the Ramanujan bound 2√8 ≈ 5.66.
        let mut disconnected = Graph::empty(20);
        for u in 0..10 {
            for v in (u + 1)..10 {
                disconnected.add_edge(u, v);
                disconnected.add_edge(u + 10, v + 10);
            }
        }
        assert!(!is_ramanujan(&disconnected));
    }

    #[test]
    fn tiny_graphs_do_not_panic() {
        let est = second_eigenvalue(&Graph::empty(0), 10, 0);
        assert_eq!(est.lambda, 0.0);
        let est = second_eigenvalue(&Graph::empty(1), 10, 0);
        assert_eq!(est.lambda, 0.0);
    }
}
