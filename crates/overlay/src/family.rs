//! Per-phase inquiry graph families.
//!
//! Two of the paper's algorithms spread a decision to the remaining undecided
//! nodes by having them inquire along overlay graphs whose degree doubles
//! each phase:
//!
//! * `Spread-Common-Value`, Part 2 (Lemma 5): phase `i` uses a graph `G_i`
//!   of degree `Θ(2^i)` in which any set of `C·(t+1)/2^i` vertices has at
//!   least `2(t+1)` external neighbours;
//! * `Many-Crashes-Consensus`, Part 3 (Section 4.4): phase `i` uses a
//!   Ramanujan graph `G(n, d_i)` with `d_i = 64/(3(1−α)(1+3α)) · 2^i`.
//!
//! [`InquiryFamily`] materialises these families with seeded constructions,
//! capping each degree at `n − 1` (complete graph) as documented in
//! `DESIGN.md`.

use serde::{Deserialize, Serialize};

use crate::build;
use crate::graph::Graph;

/// How the per-phase degrees of an [`InquiryFamily`] are derived.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum FamilyKind {
    /// The `Spread-Common-Value` family of Lemma 5: degree `10·2^i` in
    /// phase `i` (1-based).
    SpreadCommonValue,
    /// The `Many-Crashes-Consensus` Part 3 family: degree
    /// `64/(3(1−α)(1+3α))·2^i` where `α = t/n`.
    ManyCrashes {
        /// The fault fraction `α = t/n` scaled by 1000 (kept integral so the
        /// family stays `Eq`-comparable and serializable without float
        /// caveats).
        alpha_milli: u32,
    },
}

/// A family of per-phase overlay graphs with geometrically growing degree.
#[derive(Clone, Debug)]
pub struct InquiryFamily {
    graphs: Vec<Graph>,
    degrees: Vec<usize>,
    kind: FamilyKind,
}

impl InquiryFamily {
    /// Builds the `Spread-Common-Value` family for `n` nodes and fault bound
    /// `t`: one graph per phase `i = 1 … ⌈lg(t+1)⌉`, with target degree
    /// `10·2^i`, capped at `n − 1`.
    pub fn spread_common_value(n: usize, t: usize, seed: u64) -> Self {
        let phases = ((t + 1) as f64).log2().ceil().max(1.0) as usize;
        Self::build(
            n,
            phases,
            |i| 10.0 * 2f64.powi(i as i32),
            seed,
            FamilyKind::SpreadCommonValue,
        )
    }

    /// Builds the `Many-Crashes-Consensus` Part 3 family for `n` nodes and
    /// fault fraction `alpha = t/n`: one graph per phase
    /// `i = 1 … 1 + ⌈lg((1+3α)n/4)⌉`, with target degree
    /// `64/(3(1−α)(1+3α))·2^i`, capped at `n − 1`.
    pub fn many_crashes(n: usize, alpha: f64, seed: u64) -> Self {
        let m = (1.0 + 3.0 * alpha) * n as f64 / 4.0;
        let phases = (1.0 + m.log2().ceil()).max(1.0) as usize;
        let base = 64.0 / (3.0 * (1.0 - alpha) * (1.0 + 3.0 * alpha));
        Self::build(
            n,
            phases,
            move |i| base * 2f64.powi(i as i32),
            seed,
            FamilyKind::ManyCrashes {
                alpha_milli: (alpha * 1000.0).round() as u32,
            },
        )
    }

    fn build(
        n: usize,
        phases: usize,
        degree_of_phase: impl Fn(usize) -> f64,
        seed: u64,
        kind: FamilyKind,
    ) -> Self {
        let mut graphs = Vec::with_capacity(phases);
        let mut degrees = Vec::with_capacity(phases);
        for i in 1..=phases {
            let target = degree_of_phase(i).ceil().max(1.0) as usize;
            let degree = target.min(n.saturating_sub(1));
            graphs.push(build::capped_regular(
                n,
                degree,
                seed.wrapping_add(i as u64),
            ));
            degrees.push(degree);
        }
        InquiryFamily {
            graphs,
            degrees,
            kind,
        }
    }

    /// Number of phases in the family.
    pub fn phases(&self) -> usize {
        self.graphs.len()
    }

    /// The graph used in phase `i` (1-based, clamped to the last phase).
    ///
    /// # Panics
    ///
    /// Panics if the family is empty (it never is: constructors always build
    /// at least one phase).
    pub fn graph(&self, phase: usize) -> &Graph {
        let idx = phase.max(1).min(self.graphs.len()) - 1;
        &self.graphs[idx]
    }

    /// The capped degree used in phase `i` (1-based, clamped).
    pub fn degree(&self, phase: usize) -> usize {
        let idx = phase.max(1).min(self.degrees.len()) - 1;
        self.degrees[idx]
    }

    /// Which family this is.
    pub fn kind(&self) -> FamilyKind {
        self.kind
    }

    /// Total of all phase degrees — proportional to the worst-case number of
    /// inquiry messages a single undecided node can send across all phases.
    pub fn total_degree(&self) -> usize {
        self.degrees.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scv_family_degrees_double_until_cap() {
        let family = InquiryFamily::spread_common_value(1000, 63, 5);
        assert_eq!(family.phases(), 6);
        assert_eq!(family.degree(1), 20);
        assert_eq!(family.degree(2), 40);
        assert!(family.degree(6) <= 999);
        assert_eq!(family.kind(), FamilyKind::SpreadCommonValue);
        for phase in 1..=family.phases() {
            assert_eq!(family.graph(phase).num_vertices(), 1000);
        }
    }

    #[test]
    fn scv_family_caps_at_complete_graph() {
        let family = InquiryFamily::spread_common_value(20, 15, 5);
        let last = family.phases();
        assert_eq!(family.degree(last), 19);
        assert!(family.graph(last).is_regular(19), "complete graph fallback");
    }

    #[test]
    fn many_crashes_family_has_expected_phase_count() {
        let n = 256;
        let alpha = 0.5;
        let family = InquiryFamily::many_crashes(n, alpha, 3);
        // 1 + ⌈lg((1+3α)n/4)⌉ = 1 + ⌈lg 160⌉ = 9.
        assert_eq!(family.phases(), 9);
        assert!(matches!(
            family.kind(),
            FamilyKind::ManyCrashes { alpha_milli: 500 }
        ));
        assert!(family.degree(1) >= 1);
        assert!(family.degree(9) < n);
    }

    #[test]
    fn phase_index_is_clamped() {
        let family = InquiryFamily::spread_common_value(100, 7, 1);
        assert_eq!(family.degree(0), family.degree(1));
        assert_eq!(family.degree(100), family.degree(family.phases()));
    }

    #[test]
    fn total_degree_bounds_inquiry_cost() {
        let family = InquiryFamily::spread_common_value(500, 31, 2);
        assert_eq!(
            family.total_degree(),
            (1..=family.phases())
                .map(|i| family.degree(i))
                .sum::<usize>()
        );
    }
}
