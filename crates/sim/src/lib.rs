//! # dft-sim — synchronous message-passing network simulator
//!
//! The substrate beneath the `linear-dft` reproduction of *Deterministic
//! Fault-Tolerant Distributed Computing in Linear Time and Communication*
//! (Chlebus, Kowalski, Olkowski, PODC 2023).  The paper assumes a synchronous
//! complete network of `n` nodes prone to crash or authenticated-Byzantine
//! failures, in either the multi-port or the single-port communication model
//! (Section 2); this crate provides that execution environment:
//!
//! * [`SyncProtocol`] / [`Runner`] — the multi-port model: in each round a
//!   node may send to any set of nodes and receives everything addressed to
//!   it in that round.
//! * [`SinglePortProtocol`] / [`SinglePortRunner`] — the single-port model of
//!   Section 8: one send and one buffered-port poll per node per round.
//! * [`CrashAdversary`] and concrete schedules ([`NoFaults`],
//!   [`FixedCrashSchedule`], [`RandomCrashes`], [`TargetedCrashes`],
//!   [`AdaptiveSplitAdversary`]) — adaptive crash fault injection limited by
//!   the fault budget `t`.
//! * [`adversary::byzantine`] — Byzantine node strategies for the
//!   authenticated-Byzantine model of Section 7.
//! * [`Metrics`] / [`ExecutionReport`] — the paper's performance accounting:
//!   rounds until all non-faulty nodes halt, point-to-point messages and the
//!   total bits they carry, counting only non-faulty senders in the Byzantine
//!   model.
//! * [`driver`] — the sans-I/O round cores ([`RoundCore`] /
//!   [`SinglePortCore`]): the four-phase round semantics as pure state
//!   transitions, with no knowledge of threads, pipes, or sockets.  Every
//!   backend below — the in-process runners, the worker pool, the shard
//!   workers, and the `dft-node` TCP cluster — drives these same structs.
//! * [`parallel`] — the deterministic parallel-execution layer: both
//!   runners accept a job count (`set_jobs`) and split their per-node phase
//!   loops across a *persistent* worker pool (spawned once per runner,
//!   parked between phases; see the `pool` module), merging per-worker
//!   scratch in fixed node-index order so parallel runs are byte-identical
//!   to serial ones.  The crash-adversary phase always stays serial.
//! * [`shard`] — the cross-process layer above the pool: one execution's
//!   chunks served by shard workers (in-process threads or
//!   `run_experiments --shard-worker` child processes) behind a versioned
//!   binary wire format, with the crash phase and the fixed-chunk-order
//!   merge kept in the coordinating process so sharded runs stay
//!   byte-identical too.
//!
//! # Quick example
//!
//! ```
//! use dft_sim::{
//!     CrashDirective, Delivered, FixedCrashSchedule, NodeId, Outgoing, Round, Runner,
//!     SyncProtocol,
//! };
//!
//! /// Every node broadcasts the OR of everything it has seen, then decides
//! /// after three rounds.
//! struct FloodOr {
//!     n: usize,
//!     value: bool,
//!     rounds: u64,
//!     decided: Option<bool>,
//! }
//!
//! impl SyncProtocol for FloodOr {
//!     type Msg = bool;
//!     type Output = bool;
//!
//!     fn send(&mut self, _round: Round, out: &mut Vec<Outgoing<bool>>) {
//!         out.extend((0..self.n).map(|i| Outgoing::new(NodeId::new(i), self.value)));
//!     }
//!
//!     fn receive(&mut self, _round: Round, inbox: &[Delivered<bool>]) {
//!         for m in inbox {
//!             self.value |= m.msg;
//!         }
//!         self.rounds += 1;
//!         if self.rounds == 3 {
//!             self.decided = Some(self.value);
//!         }
//!     }
//!
//!     fn output(&self) -> Option<bool> {
//!         self.decided
//!     }
//!
//!     fn has_halted(&self) -> bool {
//!         self.decided.is_some()
//!     }
//! }
//!
//! let n = 8;
//! let nodes: Vec<FloodOr> = (0..n)
//!     .map(|i| FloodOr { n, value: i == 0, rounds: 0, decided: None })
//!     .collect();
//! let schedule = FixedCrashSchedule::new().crash_at(1, CrashDirective::silent(NodeId::new(2)));
//! let mut runner = Runner::with_adversary(nodes, Box::new(schedule), 1).unwrap();
//! let report = runner.run(10);
//! assert!(report.non_faulty_deciders_agree());
//! assert_eq!(report.agreed_value(), Some(&true));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
mod delivery;
pub mod driver;
mod error;
mod message;
mod metrics;
mod node;
pub mod parallel;
pub mod pool;
mod protocol;
mod report;
mod round;
mod runner;
pub mod shard;
mod single_port;
mod trace;

pub use adversary::{
    AdaptiveSplitAdversary, AdversaryView, CrashAdversary, CrashDirective, DeliveryFilter,
    FixedCrashSchedule, NoFaults, RandomCrashes, TargetedCrashes,
};
pub use driver::{NodeEvent, RoundCore, RoundOutcome, SinglePortCore};
pub use error::{SimError, SimResult};
pub use message::{Delivered, Outgoing, Payload};
pub use metrics::Metrics;
pub use node::{NodeId, NodeSet};
pub use parallel::available_jobs;
pub use protocol::{NodeStatus, SinglePortProtocol, SyncProtocol};
pub use report::{ExecutionReport, Termination};
pub use round::Round;
pub use runner::{run_with_crashes, Participant, Runner};
pub use single_port::SinglePortRunner;
pub use trace::{Event, Trace};
