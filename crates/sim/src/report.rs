//! Execution reports produced by the runners.

use std::collections::BTreeMap;
use std::fmt;

use crate::metrics::Metrics;
use crate::node::{NodeId, NodeSet};
use crate::round::Round;

/// Why an execution ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Termination {
    /// Every non-faulty node halted voluntarily.
    AllHalted,
    /// The round cap was reached before every non-faulty node halted.
    RoundLimit,
}

/// The outcome of a simulated execution.
///
/// Indexed views (`outputs`, `crashed_at`, `halted_at`) are per node.  The
/// helper methods implement the checks the paper's correctness definitions
/// need: which nodes decided, whether all deciders agree, and so on.
///
/// Reports compare by value (given comparable outputs); the determinism
/// suite relies on this to assert that serial and parallel executions of the
/// same seeded workload are indistinguishable.
#[derive(Clone, Debug, PartialEq)]
pub struct ExecutionReport<O> {
    /// Per-node decision value, if the node decided.
    pub outputs: Vec<Option<O>>,
    /// Per-node crash round, if the node crashed.
    pub crashed_at: Vec<Option<Round>>,
    /// Per-node voluntary halt round, if the node halted.
    pub halted_at: Vec<Option<Round>>,
    /// Which nodes were Byzantine (empty set for crash-only executions).
    pub byzantine: NodeSet,
    /// Communication and runtime metrics.
    pub metrics: Metrics,
    /// Why the execution stopped.
    pub termination: Termination,
}

impl<O: Clone + PartialEq + fmt::Debug> ExecutionReport<O> {
    /// Number of nodes in the execution.
    pub fn n(&self) -> usize {
        self.outputs.len()
    }

    /// Nodes that crashed.
    pub fn crashed(&self) -> NodeSet {
        NodeSet::from_iter(
            self.n(),
            self.crashed_at
                .iter()
                .enumerate()
                .filter(|(_, c)| c.is_some())
                .map(|(i, _)| NodeId::new(i)),
        )
    }

    /// Nodes that are non-faulty: neither crashed nor Byzantine.
    pub fn non_faulty(&self) -> NodeSet {
        NodeSet::from_iter(
            self.n(),
            (0..self.n()).map(NodeId::new).filter(|&id| {
                self.crashed_at[id.index()].is_none() && !self.byzantine.contains(id)
            }),
        )
    }

    /// Nodes that decided (produced an output), including ones that later
    /// crashed.
    pub fn deciders(&self) -> NodeSet {
        NodeSet::from_iter(
            self.n(),
            self.outputs
                .iter()
                .enumerate()
                .filter(|(_, o)| o.is_some())
                .map(|(i, _)| NodeId::new(i)),
        )
    }

    /// Non-faulty nodes that decided.
    pub fn non_faulty_deciders(&self) -> NodeSet {
        let mut set = self.deciders();
        set.intersect_with(&self.non_faulty());
        set
    }

    /// The decision of `node`, if any.
    pub fn output_of(&self, node: NodeId) -> Option<&O> {
        self.outputs[node.index()].as_ref()
    }

    /// Whether every pair of deciding nodes decided on the same value
    /// (the paper's *agreement* condition restricted to deciders).
    pub fn deciders_agree(&self) -> bool {
        let mut first: Option<&O> = None;
        for output in self.outputs.iter().flatten() {
            match first {
                None => first = Some(output),
                Some(v) if v == output => {}
                Some(_) => return false,
            }
        }
        true
    }

    /// Whether every pair of *non-faulty* deciding nodes agrees.
    pub fn non_faulty_deciders_agree(&self) -> bool {
        let non_faulty = self.non_faulty();
        let mut first: Option<&O> = None;
        for (i, output) in self.outputs.iter().enumerate() {
            if !non_faulty.contains(NodeId::new(i)) {
                continue;
            }
            if let Some(output) = output {
                match first {
                    None => first = Some(output),
                    Some(v) if v == output => {}
                    Some(_) => return false,
                }
            }
        }
        true
    }

    /// Whether every non-faulty node decided (the paper's *termination*
    /// condition for consensus, gossiping and checkpointing).
    pub fn all_non_faulty_decided(&self) -> bool {
        let non_faulty = self.non_faulty();
        let all_decided = non_faulty
            .iter()
            .all(|id| self.outputs[id.index()].is_some());
        all_decided
    }

    /// The unique decision value of non-faulty deciders, if they agree and at
    /// least one decided.
    pub fn agreed_value(&self) -> Option<&O> {
        if !self.non_faulty_deciders_agree() {
            return None;
        }
        let non_faulty = self.non_faulty();
        self.outputs
            .iter()
            .enumerate()
            .filter(|(i, _)| non_faulty.contains(NodeId::new(*i)))
            .find_map(|(_, o)| o.as_ref())
    }

    /// Histogram of decision values among non-faulty deciders (useful when
    /// checking almost-everywhere agreement, where a minority may be
    /// undecided but deciders must agree).
    pub fn decision_histogram(&self) -> BTreeMap<String, usize>
    where
        O: fmt::Debug,
    {
        let mut hist = BTreeMap::new();
        let non_faulty = self.non_faulty();
        for (i, output) in self.outputs.iter().enumerate() {
            if !non_faulty.contains(NodeId::new(i)) {
                continue;
            }
            if let Some(o) = output {
                *hist.entry(format!("{o:?}")).or_insert(0) += 1;
            }
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(outputs: Vec<Option<u8>>, crashed: Vec<Option<Round>>) -> ExecutionReport<u8> {
        let n = outputs.len();
        ExecutionReport {
            outputs,
            crashed_at: crashed,
            halted_at: vec![None; n],
            byzantine: NodeSet::empty(n),
            metrics: Metrics::new(),
            termination: Termination::AllHalted,
        }
    }

    #[test]
    fn agreement_checks() {
        let r = report(
            vec![Some(1), Some(1), None, Some(1)],
            vec![None, None, Some(Round::new(2)), None],
        );
        assert!(r.deciders_agree());
        assert!(r.non_faulty_deciders_agree());
        assert_eq!(r.deciders().len(), 3);
        assert_eq!(r.non_faulty().len(), 3);
        assert!(r.all_non_faulty_decided());
        assert_eq!(r.agreed_value(), Some(&1));
    }

    #[test]
    fn disagreement_detected() {
        let r = report(vec![Some(1), Some(0)], vec![None, None]);
        assert!(!r.deciders_agree());
        assert!(!r.non_faulty_deciders_agree());
        assert_eq!(r.agreed_value(), None);
    }

    #[test]
    fn faulty_disagreement_ignored() {
        // Node 1 crashed after deciding differently; non-faulty deciders still agree.
        let r = report(vec![Some(1), Some(0)], vec![None, Some(Round::new(0))]);
        assert!(!r.deciders_agree());
        assert!(r.non_faulty_deciders_agree());
        assert_eq!(r.agreed_value(), Some(&1));
    }

    #[test]
    fn histogram_counts_non_faulty_only() {
        let r = report(
            vec![Some(1), Some(1), Some(0)],
            vec![None, None, Some(Round::new(1))],
        );
        let hist = r.decision_histogram();
        assert_eq!(hist.get("1"), Some(&2));
        assert_eq!(hist.get("0"), None);
    }

    #[test]
    fn undecided_non_faulty_blocks_termination() {
        let r = report(vec![Some(1), None], vec![None, None]);
        assert!(!r.all_non_faulty_decided());
    }
}
