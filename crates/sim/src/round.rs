//! Round counters for the synchronous model.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A round number in a synchronous execution, starting from zero.
///
/// All non-faulty nodes begin an execution at round zero and proceed in lock
/// step; runtime performance is the number of rounds until all non-faulty
/// nodes have halted (Section 2).
///
/// # Examples
///
/// ```
/// use dft_sim::Round;
///
/// let r = Round::ZERO;
/// assert_eq!((r + 3).as_u64(), 3);
/// assert!(r < r + 1);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Round(u64);

impl Round {
    /// The first round of an execution.
    pub const ZERO: Round = Round(0);

    /// Creates a round from a raw counter value.
    pub const fn new(value: u64) -> Self {
        Round(value)
    }

    /// Raw counter value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The round immediately following this one.
    pub const fn next(self) -> Round {
        Round(self.0 + 1)
    }

    /// Whether this round lies in the half-open window `[start, start+len)`.
    ///
    /// Protocol implementations use this to map the global round counter onto
    /// the pseudocode's "Part 1 / Part 2 / Phase i" structure.
    pub const fn in_window(self, start: u64, len: u64) -> bool {
        self.0 >= start && self.0 < start + len
    }

    /// Offset of this round within a window starting at `start`.
    ///
    /// # Panics
    ///
    /// Panics if the round precedes `start`.
    pub fn offset_in(self, start: u64) -> u64 {
        assert!(
            self.0 >= start,
            "round {} precedes window start {start}",
            self.0
        );
        self.0 - start
    }
}

impl fmt::Debug for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Add<u64> for Round {
    type Output = Round;

    fn add(self, rhs: u64) -> Round {
        Round(self.0 + rhs)
    }
}

impl AddAssign<u64> for Round {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Round> for Round {
    type Output = u64;

    fn sub(self, rhs: Round) -> u64 {
        self.0 - rhs.0
    }
}

impl From<u64> for Round {
    fn from(value: u64) -> Self {
        Round(value)
    }
}

impl From<Round> for u64 {
    fn from(round: Round) -> Self {
        round.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let r = Round::new(5);
        assert_eq!(r + 2, Round::new(7));
        assert_eq!(Round::new(7) - r, 2);
        assert_eq!(r.next(), Round::new(6));
        let mut r2 = r;
        r2 += 10;
        assert_eq!(r2.as_u64(), 15);
    }

    #[test]
    fn windows() {
        let r = Round::new(10);
        assert!(r.in_window(10, 1));
        assert!(r.in_window(5, 6));
        assert!(!r.in_window(5, 5));
        assert_eq!(r.offset_in(7), 3);
    }

    #[test]
    #[should_panic(expected = "precedes window start")]
    fn offset_before_window_panics() {
        let _ = Round::new(3).offset_in(5);
    }
}
