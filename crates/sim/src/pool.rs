//! A persistent, deterministic worker pool for the round engines.
//!
//! PR 3 parallelised the per-node phase loops with one [`std::thread::scope`]
//! per phase — three fork/joins per round, each costing ~0.3–0.5 ms of thread
//! spawn/teardown.  Single-port executions run for Θ(t + log n) rounds (tens
//! of thousands at paper scale), so that overhead forced the single-port
//! fork threshold up to 8192 nodes.  This pool spawns its workers **once**
//! (lazily, on the first forked round of a runner) and hands them phase work
//! over per-worker channels; between phases the workers block on their queue
//! (a futex wait — parked, not spinning), so a phase handoff costs about a
//! microsecond of channel traffic instead of a fresh spawn.
//!
//! # Ownership-shuttle design (why there is no `unsafe` here)
//!
//! Scoped threads get their borrows from the scope's lifetime; a persistent
//! pool has no scope, and this crate forbids `unsafe`, so the runners never
//! *lend* state to workers at all.  Instead each runner partitions its
//! per-node state into owned chunk structs (one per worker, contiguous node
//! ranges).  A phase dispatch **moves** each chunk into a boxed closure,
//! sends it to the chunk's dedicated worker, and the closure sends the chunk
//! back through a per-phase result channel when done.  Moving a chunk moves
//! a few `Vec` headers, not node state, and the chunk's scratch buffers
//! (outgoing queues, delivered-message scratch, event lists, metric
//! counters) persist across rounds inside the chunk instead of being
//! reallocated per phase.
//!
//! Determinism is unchanged from the scoped design: chunk `i` always covers
//! the same contiguous node range and always runs on worker `i`, and the
//! main thread merges returned chunks in fixed chunk order (= node-index
//! order).  The determinism suite in `crates/bench/tests/determinism.rs`
//! pins byte-identical reports, traces and tables against serial runs.
//!
//! # Panic behaviour
//!
//! If a phase closure panics, its worker thread unwinds and the closure's
//! clone of the result sender is dropped without a send.  Dispatch sites
//! drop their own sender before collecting, so the receiver disconnects
//! instead of deadlocking and the main thread panics with a clear message
//! (matching the old `scope.join().expect(...)` behaviour).
//!
//! The module is public so `crates/bench/benches/pool_handoff.rs` can put a
//! number on the handoff itself (against a fresh `thread::scope` fork/join,
//! the cost the runners used to pay per phase); the runners remain the only
//! in-tree dispatchers.

use std::sync::mpsc::{Receiver, Sender};
use std::thread::JoinHandle;

/// A unit of phase work: owns everything it touches (see the module docs),
/// so it can cross into the pool's `'static` worker threads.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// A persistent set of worker threads, one job queue per worker.
///
/// Workers are identified by index; the runners always send chunk `i` to
/// worker `i`, which keeps the chunk's cache footprint on one thread across
/// rounds and makes the assignment deterministic by construction.
pub struct WorkerPool {
    senders: Vec<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads (at least one), each blocking on its own
    /// job queue until the pool is dropped.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for index in 0..workers {
            let (tx, rx): (Sender<Job>, Receiver<Job>) = std::sync::mpsc::channel();
            let handle = std::thread::Builder::new()
                .name(format!("dft-sim-worker-{index}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        job();
                    }
                })
                .expect("spawn pool worker");
            senders.push(tx);
            handles.push(handle);
        }
        WorkerPool { senders, handles }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.senders.len()
    }

    /// Queues `job` on worker `index`'s channel; the worker runs jobs in
    /// submission order.
    ///
    /// # Panics
    ///
    /// Panics if the worker died (which only happens after a previous job
    /// panicked) or `index` is out of range.
    pub fn submit(&self, index: usize, job: Job) {
        self.senders[index]
            .send(job)
            .expect("pool worker died (a previous phase job panicked)");
    }

    /// One full phase dispatch of the ownership-shuttle protocol: moves
    /// each chunk in `chunks` (all slots must be home, i.e. `Some`) to its
    /// pinned worker, runs `phase` on it there, and waits for every chunk
    /// to come home.  Both runners route all their phase loops through
    /// this, so the dispatch/panic protocol lives in exactly one place.
    ///
    /// # Panics
    ///
    /// Panics if a phase closure panicked on a worker: the closure's
    /// result sender is dropped without a send, the receiver disconnects,
    /// and the panic is re-raised here on the main thread.
    pub fn run_phase<C: Send + 'static>(
        &self,
        chunks: &mut [Option<C>],
        phase: impl Fn(&mut C) + Clone + Send + 'static,
    ) {
        let (tx, rx) = std::sync::mpsc::channel::<(usize, C)>();
        for (ci, slot) in chunks.iter_mut().enumerate() {
            let mut chunk = slot.take().expect("chunk home");
            let tx = tx.clone();
            let phase = phase.clone();
            self.submit(
                ci,
                Box::new(move || {
                    phase(&mut chunk);
                    tx.send((ci, chunk)).ok();
                }),
            );
        }
        drop(tx);
        for _ in 0..chunks.len() {
            let (ci, chunk) = rx.recv().expect("phase worker panicked");
            chunks[ci] = Some(chunk);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the queues lets each worker's `recv` loop end; joining
        // bounds teardown.  A worker that panicked already unwound — its
        // `Err` join result carries nothing we can recover here.
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    /// One dispatch round in miniature: move owned state out, mutate it on
    /// the workers, collect it back in deterministic (index-merged) order.
    #[test]
    fn jobs_shuttle_owned_state_and_results_merge_in_index_order() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.workers(), 3);
        let (tx, rx) = mpsc::channel::<(usize, Vec<u64>)>();
        for index in 0..pool.workers() {
            let tx = tx.clone();
            let mut chunk: Vec<u64> = vec![index as u64; 4];
            pool.submit(
                index,
                Box::new(move || {
                    for value in &mut chunk {
                        *value += 10;
                    }
                    tx.send((index, chunk)).ok();
                }),
            );
        }
        drop(tx);
        let mut slots: Vec<Option<Vec<u64>>> = vec![None; pool.workers()];
        for _ in 0..pool.workers() {
            let (index, chunk) = rx.recv().expect("worker panicked");
            slots[index] = Some(chunk);
        }
        for (index, slot) in slots.into_iter().enumerate() {
            assert_eq!(slot.unwrap(), vec![index as u64 + 10; 4]);
        }
    }

    /// Workers persist across dispatches: scratch capacity moved into a job
    /// comes back and can be reused by the next round's job.
    #[test]
    fn scratch_capacity_survives_across_dispatches() {
        let pool = WorkerPool::new(1);
        let mut scratch: Vec<u64> = Vec::with_capacity(1024);
        let mut seen_ptr = None;
        for round in 0..3u64 {
            let (tx, rx) = mpsc::channel();
            let mut owned = std::mem::take(&mut scratch);
            pool.submit(
                0,
                Box::new(move || {
                    owned.clear();
                    owned.push(round);
                    tx.send(owned).ok();
                }),
            );
            scratch = rx.recv().expect("worker panicked");
            assert_eq!(scratch, vec![round]);
            assert!(scratch.capacity() >= 1024, "capacity persists");
            let ptr = scratch.as_ptr();
            if let Some(previous) = seen_ptr {
                assert_eq!(previous, ptr, "no reallocation across rounds");
            }
            seen_ptr = Some(ptr);
        }
    }

    /// A panicking job disconnects the result channel instead of
    /// deadlocking the dispatcher.
    #[test]
    fn panicking_job_is_observed_as_disconnect() {
        let pool = WorkerPool::new(2);
        let (tx, rx) = mpsc::channel::<usize>();
        let tx_ok = tx.clone();
        pool.submit(0, Box::new(move || tx_ok.send(0).map_or((), drop)));
        pool.submit(1, Box::new(|| panic!("phase job failed")));
        drop(tx);
        let mut received = 0;
        while rx.recv().is_ok() {
            received += 1;
        }
        assert_eq!(received, 1, "only the healthy worker reported");
    }

    #[test]
    fn drop_joins_all_workers() {
        let pool = WorkerPool::new(4);
        let (tx, rx) = mpsc::channel();
        for index in 0..4 {
            let tx = tx.clone();
            pool.submit(index, Box::new(move || tx.send(index).map_or((), drop)));
        }
        drop(tx);
        let mut ids: Vec<usize> = rx.iter().collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        drop(pool); // must not hang
    }
}
