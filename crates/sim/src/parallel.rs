//! Deterministic parallel-execution helpers for the round engines.
//!
//! Both runners can split their per-node phase loops (send collection,
//! delivery, receive) across the persistent worker pool in
//! [`crate::pool`].  The parallel schedule is *deterministic by
//! construction*: nodes are partitioned into contiguous index chunks, each
//! chunk is pinned to one pool worker, and every cross-chunk effect
//! (delivered messages, metric counters, decision and halt events) is
//! collected into per-chunk scratch buffers that the main thread merges in
//! fixed node-index order.  Serial and parallel executions of the same
//! seeded workload therefore produce byte-identical reports, traces and
//! experiment tables — the determinism suite in
//! `crates/bench/tests/determinism.rs` pins this.
//!
//! The crash-adversary phase is *never* parallelised: the adversary contract
//! ([`crate::CrashAdversary`]) hands a single mutable strategy a coherent
//! view of the whole round, so it runs serially on the main thread between
//! the send and delivery phases (see `EngineCore::apply_crash_phase`).

/// Number of worker threads worth spawning on this machine: the standard
/// library's available-parallelism estimate, with a fallback of 1 when the
/// estimate is unavailable (e.g. restricted sandboxes).
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Below this node count the per-round dispatch overhead outweighs any
/// speedup; the runners fall back to their serial loops (which are
/// observationally identical, so the cutoff is invisible to callers).
///
/// This is the multi-port threshold: a multi-port round moves
/// `O(n · degree)` messages, so even modest systems amortise the ~µs cost
/// of handing the phase closures to the persistent pool (the
/// `pool_handoff` criterion bench measures the handoff against the retired
/// per-phase `thread::scope` spawn, which cost ~0.3–0.5 ms).
pub(crate) const MIN_NODES_PER_FORK: usize = 128;

/// The single-port fork threshold: a single-port round is one send and one
/// poll per node — `O(n)` work with a tiny constant — while executions run
/// for `Θ(t + log n)` slots (tens of thousands of rounds at paper scale).
/// Under the per-phase `thread::scope` engine this had to be 8192: three
/// ~0.3–0.5 ms spawns per round would have dominated 10⁴–10⁵-round
/// executions.  The persistent pool's ~µs handoff amortises three orders
/// of magnitude earlier, so paper-scale single-port systems (n ≥ 1024) now
/// engage the pool (measured in `crates/bench/benches/pool_handoff.rs`;
/// numbers recorded in `DESIGN.md`).
pub(crate) const MIN_NODES_PER_FORK_SINGLE_PORT: usize = 1024;

/// Normalises a requested job count: `0` means "pick for me"
/// ([`available_jobs`]), anything else is used as given.
pub(crate) fn effective_jobs(requested: usize) -> usize {
    if requested == 0 {
        available_jobs()
    } else {
        requested
    }
}

/// The contiguous partition of `n` nodes across at most `jobs` workers.
///
/// `chunk_len` is the ceiling division `⌈n / jobs⌉`, which can leave the
/// trailing workers with *zero* nodes (e.g. `n = 9, jobs = 8` gives eight
/// 2-node chunks worth of length but only five non-empty chunks).  `chunks`
/// is therefore the number of **non-empty** chunks — the pool spawns
/// exactly that many workers, never an idle trailing one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct ChunkPlan {
    /// Nodes per chunk (the last non-empty chunk may be shorter).
    pub chunk_len: usize,
    /// Number of non-empty chunks = number of pool workers to use.
    pub chunks: usize,
}

impl ChunkPlan {
    /// Plans the partition of `n` nodes across at most `jobs` workers.
    pub fn new(n: usize, jobs: usize) -> Self {
        let chunk_len = n.div_ceil(jobs.max(1)).max(1);
        ChunkPlan {
            chunk_len,
            chunks: n.div_ceil(chunk_len).max(1),
        }
    }

    /// The chunk index owning node `node`.
    pub fn chunk_of(&self, node: usize) -> usize {
        node / self.chunk_len
    }

    /// The node range of chunk `index` within an `n`-node system.
    pub fn range(&self, index: usize, n: usize) -> std::ops::Range<usize> {
        let start = index * self.chunk_len;
        start..((start + self.chunk_len).min(n))
    }
}

/// Whether a runner over `n` nodes with this job setting and fork threshold
/// should take the parallel path.
pub(crate) fn should_fork(n: usize, jobs: usize, threshold: usize) -> bool {
    jobs > 1 && n >= threshold
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn available_jobs_is_positive() {
        assert!(available_jobs() >= 1);
    }

    #[test]
    fn chunk_plan_covers_all_nodes_without_empty_chunks() {
        for n in [1usize, 5, 9, 127, 128, 1000] {
            for jobs in [1usize, 2, 3, 4, 8, 16] {
                let plan = ChunkPlan::new(n, jobs);
                assert!(plan.chunk_len >= 1);
                // Never more chunks than jobs, and never an empty chunk.
                assert!(plan.chunks <= jobs.max(1), "n={n} jobs={jobs}");
                for chunk in 0..plan.chunks {
                    let range = plan.range(chunk, n);
                    assert!(!range.is_empty(), "empty chunk {chunk} n={n} jobs={jobs}");
                }
                // The ranges tile 0..n exactly and `chunk_of` is their
                // inverse.
                let mut covered = 0;
                for chunk in 0..plan.chunks {
                    for node in plan.range(chunk, n) {
                        assert_eq!(node, covered, "contiguous coverage");
                        assert_eq!(plan.chunk_of(node), chunk);
                        covered += 1;
                    }
                }
                assert_eq!(covered, n);
            }
        }
    }

    /// The regression the clamp exists for: `⌈n / jobs⌉`-length chunks can
    /// satisfy all of `0..n` before the worker count runs out, and the pool
    /// must not spawn (or park) the leftover workers at all.
    #[test]
    fn trailing_zero_node_workers_are_never_planned() {
        let plan = ChunkPlan::new(9, 8);
        assert_eq!(plan.chunk_len, 2);
        assert_eq!(plan.chunks, 5, "three trailing workers clamped away");
        let plan = ChunkPlan::new(65, 64);
        assert_eq!(plan.chunk_len, 2);
        assert_eq!(plan.chunks, 33);
        // Exact division plans every worker.
        assert_eq!(
            ChunkPlan::new(64, 4),
            ChunkPlan {
                chunk_len: 16,
                chunks: 4
            }
        );
    }

    #[test]
    fn effective_jobs_resolves_zero() {
        assert_eq!(effective_jobs(3), 3);
        assert!(effective_jobs(0) >= 1);
    }

    #[test]
    fn forking_needs_both_jobs_and_scale() {
        assert!(!should_fork(10000, 1, MIN_NODES_PER_FORK));
        assert!(!should_fork(10, 4, MIN_NODES_PER_FORK));
        assert!(should_fork(MIN_NODES_PER_FORK, 2, MIN_NODES_PER_FORK));
        assert!(!should_fork(
            MIN_NODES_PER_FORK,
            4,
            MIN_NODES_PER_FORK_SINGLE_PORT
        ));
        assert!(should_fork(
            MIN_NODES_PER_FORK_SINGLE_PORT,
            4,
            MIN_NODES_PER_FORK_SINGLE_PORT
        ));
    }
}
