//! Deterministic worker-pool helpers for the parallel round engines.
//!
//! Both runners can split their per-node phase loops (send collection,
//! delivery, receive) across a [`std::thread::scope`] worker pool.  The
//! parallel schedule is *deterministic by construction*: nodes are
//! partitioned into contiguous index chunks, each worker owns one chunk, and
//! every cross-chunk effect (delivered messages, metric counters, decision
//! and halt events) is collected into per-worker scratch buffers that the
//! main thread merges in fixed node-index order.  Serial and parallel
//! executions of the same seeded workload therefore produce byte-identical
//! reports, traces and experiment tables — the determinism suite in
//! `crates/bench/tests/determinism.rs` pins this.
//!
//! The crash-adversary phase is *never* parallelised: the adversary contract
//! ([`crate::CrashAdversary`]) hands a single mutable strategy a coherent
//! view of the whole round, so it runs serially on the main thread between
//! the send and delivery phases (see `EngineCore::apply_crash_phase`).

/// Number of worker threads worth spawning on this machine: the standard
/// library's available-parallelism estimate, with a fallback of 1 when the
/// estimate is unavailable (e.g. restricted sandboxes).
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Below this node count the per-round fork/join overhead outweighs any
/// speedup; the runners fall back to their serial loops (which are
/// observationally identical, so the cutoff is invisible to callers).
///
/// This is the multi-port threshold: a multi-port round moves
/// `O(n · degree)` messages, so even modest systems amortise the
/// ~0.3–0.5 ms cost of spawning the phase workers.
pub(crate) const MIN_NODES_PER_FORK: usize = 128;

/// The single-port fork threshold is far higher: a single-port round is one
/// send and one poll per node — `O(n)` work with a tiny constant — while
/// executions run for `Θ(t + log n)` *slots* (tens of thousands of rounds at
/// paper scale), so per-round forking only pays off once a single round's
/// node loop is itself worth ~1 ms.
pub(crate) const MIN_NODES_PER_FORK_SINGLE_PORT: usize = 8192;

/// Normalises a requested job count: `0` means "pick for me"
/// ([`available_jobs`]), anything else is used as given.
pub(crate) fn effective_jobs(requested: usize) -> usize {
    if requested == 0 {
        available_jobs()
    } else {
        requested
    }
}

/// The contiguous chunk length that splits `n` nodes across `jobs` workers.
pub(crate) fn chunk_len(n: usize, jobs: usize) -> usize {
    n.div_ceil(jobs.max(1)).max(1)
}

/// A decision/halt event observed by a phase worker, replayed by the main
/// thread in node-index order so traces and statuses update exactly as in a
/// serial run.  Shared by both runners' receive phases (the replay loops
/// themselves differ: the single-port runner additionally frees a halted
/// node's buffered ports).
pub(crate) struct NodeEvent {
    /// The node the event concerns.
    pub node: usize,
    /// The node produced its first output this round.
    pub decided: bool,
    /// The node voluntarily halted this round.
    pub halted: bool,
}

/// Whether a runner over `n` nodes with this job setting and fork threshold
/// should take the parallel path.
pub(crate) fn should_fork(n: usize, jobs: usize, threshold: usize) -> bool {
    jobs > 1 && n >= threshold
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn available_jobs_is_positive() {
        assert!(available_jobs() >= 1);
    }

    #[test]
    fn chunking_covers_all_nodes() {
        for n in [1usize, 5, 127, 128, 1000] {
            for jobs in [1usize, 2, 3, 4, 16] {
                let chunk = chunk_len(n, jobs);
                assert!(chunk >= 1);
                assert!(chunk * jobs >= n, "n={n} jobs={jobs} chunk={chunk}");
                // No more than `jobs` chunks are ever produced.
                assert!(n.div_ceil(chunk) <= jobs.max(1));
            }
        }
    }

    #[test]
    fn effective_jobs_resolves_zero() {
        assert_eq!(effective_jobs(3), 3);
        assert!(effective_jobs(0) >= 1);
    }

    #[test]
    fn forking_needs_both_jobs_and_scale() {
        assert!(!should_fork(1000, 1, MIN_NODES_PER_FORK));
        assert!(!should_fork(10, 4, MIN_NODES_PER_FORK));
        assert!(should_fork(MIN_NODES_PER_FORK, 2, MIN_NODES_PER_FORK));
        assert!(!should_fork(
            MIN_NODES_PER_FORK,
            4,
            MIN_NODES_PER_FORK_SINGLE_PORT
        ));
    }
}
