//! The batched-delivery core shared by both round engines.
//!
//! [`Runner`](crate::Runner) and [`SinglePortRunner`](crate::SinglePortRunner)
//! drive different communication models but share the same round skeleton:
//! collect intents from running nodes, let the crash adversary pick this
//! round's victims, deliver the surviving messages, then advance node
//! statuses.  [`EngineCore`] holds the state both engines need across rounds
//! and keeps it *incremental*: the alive/crashed [`NodeSet`]s handed to the
//! adversary are updated on each crash instead of being re-derived from the
//! status vector every round, and the per-node delivery-filter slots are
//! reused flat buffers rather than a fresh allocation per round.
//!
//! [`PortMap`] is the sparse replacement for the single-port engine's dense
//! `n × n` port matrix: it stores only ports that currently buffer messages,
//! so memory stays `O(n + live messages)` at paper-scale `n`.

use std::collections::HashMap;
use std::fmt;

use crate::adversary::{AdversaryView, CrashAdversary, DeliveryFilter};
use crate::metrics::Metrics;
use crate::node::{NodeId, NodeSet};
use crate::protocol::NodeStatus;
use crate::round::Round;
use crate::trace::{Event, Trace};

/// Round-engine state shared by the multi-port and single-port runners:
/// statuses, incremental alive/crashed sets, crash bookkeeping, metrics and
/// tracing.
pub(crate) struct EngineCore {
    /// Per-node status.
    pub status: Vec<NodeStatus>,
    /// Nodes that have not crashed (running or halted) — maintained
    /// incrementally, matching what the seed engines re-derived per round.
    alive: NodeSet,
    /// Nodes that crashed in earlier rounds (or this one).
    crashed: NodeSet,
    /// Per-node voluntary halt round.
    pub halted_at: Vec<Option<Round>>,
    /// Per-node crash round.
    pub crashed_at: Vec<Option<Round>>,
    /// Maximum number of crashes the adversary may cause.
    pub fault_budget: usize,
    /// Crashes caused so far.
    pub crashes: usize,
    /// The round currently being executed (the next one, between rounds).
    pub round: Round,
    /// Communication counters.
    pub metrics: Metrics,
    /// Coarse-grained event trace.
    pub trace: Trace,
    /// Reusable per-node delivery-filter slots for the current round; only
    /// the indices listed in `struck` are ever `Some`.
    filters: Vec<Option<DeliveryFilter>>,
    /// Nodes crashed in the current round (indices into `filters`).
    struck: Vec<usize>,
    /// Number of nodes still [`NodeStatus::Running`] — maintained on every
    /// crash/halt transition so the runners' per-round "has everyone
    /// halted?" check is O(1) instead of an O(n) status scan (single-port
    /// executions run for tens of thousands of rounds).
    running: usize,
}

impl EngineCore {
    /// Creates core state for `n` nodes with the given crash budget.
    pub fn new(n: usize, fault_budget: usize) -> Self {
        EngineCore {
            status: vec![NodeStatus::Running; n],
            alive: NodeSet::full(n),
            crashed: NodeSet::empty(n),
            halted_at: vec![None; n],
            crashed_at: vec![None; n],
            fault_budget,
            crashes: 0,
            round: Round::ZERO,
            metrics: Metrics::new(),
            trace: Trace::disabled(),
            filters: vec![None; n],
            struck: Vec::new(),
            running: n,
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.status.len()
    }

    /// Number of nodes still running (neither crashed nor halted).
    pub fn running_nodes(&self) -> usize {
        self.running
    }

    /// Runs the crash-adversary phase of the current round: builds the
    /// adversary's view from the incrementally maintained sets, applies its
    /// directives up to the fault budget, and records the delivery filters
    /// of nodes crashing mid-round.
    pub fn apply_crash_phase(
        &mut self,
        adversary: &mut dyn CrashAdversary,
        send_intents: &[Vec<NodeId>],
        poll_intents: &[Option<NodeId>],
    ) {
        let round = self.round;
        let directives = adversary.plan_round(&AdversaryView {
            round,
            alive: &self.alive,
            crashed: &self.crashed,
            send_intents,
            poll_intents,
            remaining_budget: self.fault_budget - self.crashes,
        });
        for directive in directives {
            if self.crashes >= self.fault_budget {
                break;
            }
            let idx = directive.node.index();
            if idx >= self.n() || self.status[idx].is_crashed() {
                continue;
            }
            if self.status[idx].is_running() {
                self.running -= 1;
            }
            self.status[idx] = NodeStatus::Crashed(round);
            self.crashed_at[idx] = Some(round);
            self.alive.remove(directive.node);
            self.crashed.insert(directive.node);
            self.crashes += 1;
            self.metrics.record_crash();
            self.trace.record(Event::Crashed {
                round,
                node: directive.node,
            });
            self.filters[idx] = Some(directive.deliver);
            self.struck.push(idx);
        }
    }

    /// The delivery filter of a node that crashed this round, if any.
    pub fn filter(&self, idx: usize) -> Option<&DeliveryFilter> {
        self.filters[idx].as_ref()
    }

    /// Nodes crashed during the current round.
    pub fn crashed_this_round(&self) -> &[usize] {
        &self.struck
    }

    /// Marks a node as voluntarily halted in the current round.
    pub fn mark_halted(&mut self, idx: usize) {
        if self.status[idx].is_running() {
            self.running -= 1;
        }
        self.status[idx] = NodeStatus::Halted;
        self.halted_at[idx] = Some(self.round);
        self.trace.record(Event::Halted {
            round: self.round,
            node: NodeId::new(idx),
        });
    }

    /// Traces a node's first decision (the value is only rendered when
    /// tracing is enabled).
    pub fn record_decision<O: fmt::Debug>(&mut self, idx: usize, value: &O) {
        if self.trace.is_enabled() {
            self.trace.record(Event::Decided {
                round: self.round,
                node: NodeId::new(idx),
                value: format!("{value:?}"),
            });
        }
    }

    /// Finishes the current round: clears this round's filter slots and
    /// advances the round counter and metrics.
    pub fn finish_round(&mut self) {
        for &idx in &self.struck {
            self.filters[idx] = None;
        }
        self.struck.clear();
        self.metrics.rounds = self.round.as_u64() + 1;
        self.round = self.round.next();
    }
}

/// A sparse map of buffered single-port message queues, keyed by
/// `(destination, sender)`.
///
/// The seed engine kept a dense `n × n` matrix of [`std::collections::VecDeque`]s —
/// `O(n²)` memory before a single message moved, which is what ruled out
/// paper-scale `n`.  Only ports that currently hold at least one undelivered
/// message occupy an entry here; draining a port removes its entry, and a
/// destination's queues are dropped wholesale when it crashes or halts, so
/// memory stays proportional to live traffic.
pub(crate) struct PortMap<M> {
    /// Two-level map (destination, then sender) so dropping a destination's
    /// queues when it crashes or halts is one outer-entry removal, not a
    /// scan of every occupied port.
    queues: HashMap<usize, HashMap<usize, Vec<M>>>,
    buffered: usize,
    /// Emptied queue buffers waiting for reuse.  Drained queues leave the
    /// map (that is what keeps it sparse), so without recycling every
    /// drain/push cycle of a port would drop one `Vec` and construct
    /// another; backends return finished poll buffers here each round (see
    /// [`PortMap::reclaim`]) and `push`/`drain` take from the pool first.
    /// Growth is bounded: at most one buffer per node enters per round and
    /// steady-state traffic takes them right back out.
    spares: Vec<Vec<M>>,
}

impl<M> PortMap<M> {
    /// Creates an empty port map.
    pub fn new() -> Self {
        PortMap {
            queues: HashMap::new(),
            buffered: 0,
            spares: Vec::new(),
        }
    }

    /// Buffers `msg` on destination `to`'s in-port from `from`.
    pub fn push(&mut self, to: usize, from: usize, msg: M) {
        let spares = &mut self.spares;
        self.queues
            .entry(to)
            .or_default()
            .entry(from)
            .or_insert_with(|| spares.pop().unwrap_or_default())
            .push(msg);
        self.buffered += 1;
    }

    /// Drains destination `to`'s in-port from `from`, in arrival order.
    ///
    /// An empty port still yields a buffer — the poller's `receive` runs
    /// either way — but it comes from the spare pool, not a fresh
    /// construction.
    pub fn drain(&mut self, to: usize, from: usize) -> Vec<M> {
        let mut drained = None;
        if let Some(inner) = self.queues.get_mut(&to) {
            if let Some(msgs) = inner.remove(&from) {
                if inner.is_empty() {
                    self.queues.remove(&to);
                }
                self.buffered -= msgs.len();
                drained = Some(msgs);
            }
        }
        drained.unwrap_or_else(|| self.spares.pop().unwrap_or_default())
    }

    /// Moves the emptied poll buffers in `bufs` into the spare pool for
    /// reuse by later `push`/`drain` calls.  Buffers must already be empty
    /// (the cores clear them as part of recycling).
    pub fn reclaim(&mut self, bufs: &mut Vec<Vec<M>>) {
        debug_assert!(bufs.iter().all(Vec::is_empty));
        self.spares.append(bufs);
    }

    /// Drops every queue addressed to `to` (the node crashed or halted and
    /// will never poll again).
    pub fn drop_destination(&mut self, to: usize) {
        if let Some(inner) = self.queues.remove(&to) {
            self.buffered -= inner.values().map(Vec::len).sum::<usize>();
        }
    }

    /// Total number of buffered (sent but not yet polled) messages.
    pub fn buffered_messages(&self) -> usize {
        self.buffered
    }

    /// Number of ports currently holding at least one message.
    pub fn ports_in_use(&self) -> usize {
        self.queues.values().map(HashMap::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{CrashDirective, FixedCrashSchedule, NoFaults};

    #[test]
    fn core_tracks_crashes_incrementally() {
        let mut core = EngineCore::new(4, 2);
        let mut adversary = FixedCrashSchedule::new()
            .crash_at(0, CrashDirective::silent(NodeId::new(1)))
            .crash_at(1, CrashDirective::silent(NodeId::new(2)))
            .crash_at(1, CrashDirective::silent(NodeId::new(3)));
        let intents = vec![Vec::new(); 4];
        let polls = vec![None; 4];

        core.apply_crash_phase(&mut adversary, &intents, &polls);
        assert_eq!(core.crashed_this_round(), &[1]);
        assert!(core.filter(1).is_some());
        assert!(core.status[1].is_crashed());
        core.finish_round();
        assert!(core.filter(1).is_none(), "filter slot cleared");

        // Round 1 wants two crashes but only one budget slot remains.
        core.apply_crash_phase(&mut adversary, &intents, &polls);
        assert_eq!(core.crashes, 2);
        assert!(core.status[2].is_crashed());
        assert!(!core.status[3].is_crashed(), "budget exhausted");
        assert_eq!(core.metrics.crashes, 2);
        core.finish_round();
        assert_eq!(core.round, Round::new(2));
        assert_eq!(core.metrics.rounds, 2);
    }

    #[test]
    fn core_view_matches_maintained_sets() {
        /// An adversary that asserts the view's sets are consistent with
        /// incremental maintenance.
        struct Checking {
            expect_alive: usize,
        }
        impl CrashAdversary for Checking {
            fn plan_round(&mut self, view: &AdversaryView<'_>) -> Vec<CrashDirective> {
                assert_eq!(view.alive.len(), self.expect_alive);
                assert_eq!(view.crashed.len(), view.n() - self.expect_alive);
                if self.expect_alive == 3 {
                    vec![CrashDirective::silent(NodeId::new(0))]
                } else {
                    Vec::new()
                }
            }
        }
        let mut core = EngineCore::new(3, 1);
        let intents = vec![Vec::new(); 3];
        let polls = vec![None; 3];
        let mut adversary = Checking { expect_alive: 3 };
        core.apply_crash_phase(&mut adversary, &intents, &polls);
        core.finish_round();
        adversary.expect_alive = 2;
        core.apply_crash_phase(&mut adversary, &intents, &polls);
    }

    #[test]
    fn halted_nodes_stay_in_alive_set() {
        // `alive` means "not crashed": halted nodes still belong, matching
        // the per-round sets the seed engines derived from the status vector.
        let mut core = EngineCore::new(2, 1);
        core.mark_halted(0);
        let intents = vec![Vec::new(); 2];
        let polls = vec![None; 2];
        struct Expect;
        impl CrashAdversary for Expect {
            fn plan_round(&mut self, view: &AdversaryView<'_>) -> Vec<CrashDirective> {
                assert_eq!(view.alive.len(), 2);
                Vec::new()
            }
        }
        core.apply_crash_phase(&mut Expect, &intents, &polls);
        let _ = NoFaults;
    }

    #[test]
    fn running_count_tracks_crashes_and_halts() {
        let mut core = EngineCore::new(4, 2);
        assert_eq!(core.running_nodes(), 4);
        core.mark_halted(0);
        assert_eq!(core.running_nodes(), 3);
        // Re-halting an already-halted node must not double-count.
        core.mark_halted(0);
        assert_eq!(core.running_nodes(), 3);
        let mut adversary = FixedCrashSchedule::new()
            .crash_at(0, CrashDirective::silent(NodeId::new(0)))
            .crash_at(0, CrashDirective::silent(NodeId::new(1)));
        let intents = vec![Vec::new(); 4];
        let polls = vec![None; 4];
        // Node 0 is halted (not running) when crashed: only node 1's crash
        // takes a running node away.
        core.apply_crash_phase(&mut adversary, &intents, &polls);
        assert_eq!(core.running_nodes(), 2);
        assert_eq!(core.crashes, 2);
    }

    #[test]
    fn port_map_buffers_and_drains_sparsely() {
        let mut ports: PortMap<u32> = PortMap::new();
        assert_eq!(ports.buffered_messages(), 0);
        assert_eq!(ports.ports_in_use(), 0);
        ports.push(1, 0, 10);
        ports.push(1, 0, 11);
        ports.push(2, 0, 20);
        assert_eq!(ports.buffered_messages(), 3);
        assert_eq!(ports.ports_in_use(), 2);
        assert_eq!(ports.drain(1, 0), vec![10, 11]);
        assert_eq!(ports.drain(1, 0), Vec::<u32>::new(), "drained port empty");
        assert_eq!(ports.buffered_messages(), 1);
        assert_eq!(ports.ports_in_use(), 1);
    }

    #[test]
    fn port_map_drops_destinations() {
        let mut ports: PortMap<u8> = PortMap::new();
        ports.push(0, 1, 1);
        ports.push(0, 2, 2);
        ports.push(1, 0, 3);
        ports.drop_destination(0);
        assert_eq!(ports.buffered_messages(), 1);
        assert_eq!(ports.ports_in_use(), 1);
        assert_eq!(ports.drain(1, 0), vec![3]);
    }
}
