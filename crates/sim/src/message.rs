//! Message payloads, outgoing/delivered envelopes and bit accounting.
//!
//! The paper measures communication either by the *number of point-to-point
//! messages* or by the *total number of bits* carried in those messages
//! (Section 2).  Every payload type therefore reports its own size in bits
//! through [`Payload::bit_len`]; the runners aggregate both counters.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::node::NodeId;

/// A message payload exchanged by a protocol.
///
/// Implementors report their own wire size in bits so the simulator can
/// reproduce the paper's bit-communication accounting (e.g. the consensus
/// algorithms of Section 4 send one-bit messages).
///
/// Payloads are `Send + Sync + 'static` so the runners may hand a round's
/// messages to the persistent worker pool, whose threads outlive any single
/// borrow (see the threading-model notes in `DESIGN.md`); every payload in
/// this repository is plain owned data, so the bounds are auto-derived.
///
/// # Examples
///
/// ```
/// use dft_sim::Payload;
///
/// #[derive(Clone, Debug)]
/// struct Rumor(bool);
///
/// impl Payload for Rumor {
///     fn bit_len(&self) -> u64 {
///         1
///     }
/// }
///
/// assert_eq!(Rumor(true).bit_len(), 1);
/// ```
pub trait Payload: Clone + fmt::Debug + Send + Sync + 'static {
    /// Number of bits this payload occupies on the wire.
    fn bit_len(&self) -> u64;
}

impl Payload for bool {
    fn bit_len(&self) -> u64 {
        1
    }
}

impl Payload for u8 {
    fn bit_len(&self) -> u64 {
        8
    }
}

impl Payload for u32 {
    fn bit_len(&self) -> u64 {
        32
    }
}

impl Payload for u64 {
    fn bit_len(&self) -> u64 {
        64
    }
}

impl Payload for () {
    /// An empty "ping" still occupies one bit on the wire: the paper never
    /// counts a message as free.
    fn bit_len(&self) -> u64 {
        1
    }
}

impl<T: Payload> Payload for Option<T> {
    fn bit_len(&self) -> u64 {
        1 + self.as_ref().map_or(0, Payload::bit_len)
    }
}

impl<T: Payload> Payload for Vec<T> {
    fn bit_len(&self) -> u64 {
        // Length prefix (64 bits) plus the elements.
        64 + self.iter().map(Payload::bit_len).sum::<u64>()
    }
}

impl<A: Payload, B: Payload> Payload for (A, B) {
    fn bit_len(&self) -> u64 {
        self.0.bit_len() + self.1.bit_len()
    }
}

impl<T: Payload> Payload for std::sync::Arc<T> {
    /// An `Arc` is a zero-cost sharing wrapper: the wire size is the inner
    /// payload's.  Protocols that broadcast one (potentially large) value to
    /// many destinations can wrap it in an `Arc` so the runner's per-copy
    /// cost is a reference-count bump instead of a deep clone, without
    /// changing the bit accounting.
    fn bit_len(&self) -> u64 {
        self.as_ref().bit_len()
    }
}

/// A message a node asks the runner to transmit this round.
///
/// Carries `serde` derives for the day the real crates.io `serde` replaces
/// the vendored stand-in; the shard layer's explicit codec
/// ([`crate::shard::Wire`]) is what moves envelopes between processes today.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Outgoing<M> {
    /// Destination node.
    pub to: NodeId,
    /// Payload to deliver.
    pub msg: M,
}

impl<M> Outgoing<M> {
    /// Convenience constructor.
    pub fn new(to: NodeId, msg: M) -> Self {
        Outgoing { to, msg }
    }
}

/// A message delivered to a node, tagged with its sender.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Delivered<M> {
    /// The node that sent the message.
    pub from: NodeId,
    /// Payload received.
    pub msg: M,
}

impl<M> Delivered<M> {
    /// Convenience constructor.
    pub fn new(from: NodeId, msg: M) -> Self {
        Delivered { from, msg }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_bit_lengths() {
        assert_eq!(true.bit_len(), 1);
        assert_eq!(7u8.bit_len(), 8);
        assert_eq!(7u32.bit_len(), 32);
        assert_eq!(7u64.bit_len(), 64);
        assert_eq!(().bit_len(), 1);
    }

    #[test]
    fn composite_bit_lengths() {
        assert_eq!(Some(true).bit_len(), 2);
        assert_eq!(None::<bool>.bit_len(), 1);
        assert_eq!(vec![true, false, true].bit_len(), 64 + 3);
        assert_eq!((true, 5u8).bit_len(), 9);
    }

    #[test]
    fn envelopes_carry_endpoints() {
        let out = Outgoing::new(NodeId::new(3), true);
        assert_eq!(out.to, NodeId::new(3));
        let del = Delivered::new(NodeId::new(1), false);
        assert_eq!(del.from, NodeId::new(1));
        assert!(!del.msg);
    }
}
