//! Error type for the simulator.

use std::error::Error as StdError;
use std::fmt;

/// A structured shard-protocol failure: which shard misbehaved, which frame
/// tag (if any) was in flight, and the round the coordinator was executing.
///
/// Recovery decisions (see `crate::shard`'s respawn/replay ladder) and
/// diagnostics match on these fields directly instead of parsing strings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardError {
    /// Index of the shard whose transport or worker failed.
    pub shard: usize,
    /// The frame tag in flight when the failure surfaced, if known.
    pub frame_tag: Option<u8>,
    /// The coordinator round during which the failure surfaced, if known.
    pub round: Option<u64>,
    /// Human-readable failure detail.
    pub detail: String,
}

impl ShardError {
    /// A shard error with no frame/round context yet.
    pub fn new(shard: usize, detail: impl Into<String>) -> Self {
        ShardError {
            shard,
            frame_tag: None,
            round: None,
            detail: detail.into(),
        }
    }

    /// Attaches the frame tag that was in flight.
    #[must_use]
    pub fn with_tag(mut self, tag: u8) -> Self {
        self.frame_tag = Some(tag);
        self
    }

    /// Attaches the coordinator round during which the failure surfaced.
    #[must_use]
    pub fn with_round(mut self, round: u64) -> Self {
        self.round = Some(round);
        self
    }
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard {}", self.shard)?;
        match (self.frame_tag, self.round) {
            (Some(tag), Some(round)) => write!(f, " (tag {tag}, round {round})")?,
            (Some(tag), None) => write!(f, " (tag {tag})")?,
            (None, Some(round)) => write!(f, " (round {round})")?,
            (None, None) => {}
        }
        write!(f, ": {}", self.detail)
    }
}

/// Errors produced by the runners.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The runner was constructed with zero nodes.
    EmptySystem,
    /// A protocol violated an invariant the simulator enforces (for example
    /// changing an irrevocable decision).
    ProtocolViolation(String),
    /// A configuration value was invalid (for example a fault budget larger
    /// than the number of nodes).
    InvalidConfig(String),
    /// A shard transport failed or a shard worker sent a malformed or
    /// unexpected frame (see [`crate::shard`]).
    Shard(ShardError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::EmptySystem => write!(f, "simulation requires at least one node"),
            SimError::ProtocolViolation(msg) => write!(f, "protocol violation: {msg}"),
            SimError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SimError::Shard(err) => write!(f, "shard protocol failure: {err}"),
        }
    }
}

impl StdError for SimError {}

impl From<ShardError> for SimError {
    fn from(err: ShardError) -> Self {
        SimError::Shard(err)
    }
}

/// Convenience result alias for simulator operations.
pub type SimResult<T> = Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            SimError::EmptySystem.to_string(),
            "simulation requires at least one node"
        );
        assert!(SimError::ProtocolViolation("decision changed".into())
            .to_string()
            .contains("decision changed"));
        assert!(SimError::InvalidConfig("t > n".into())
            .to_string()
            .contains("t > n"));
    }

    #[test]
    fn shard_error_display_carries_structure() {
        let bare = ShardError::new(3, "worker hung up");
        assert_eq!(bare.to_string(), "shard 3: worker hung up");

        let tagged = ShardError::new(1, "bad frame").with_tag(64);
        assert_eq!(tagged.to_string(), "shard 1 (tag 64): bad frame");

        let full = ShardError::new(2, "decode failed")
            .with_tag(66)
            .with_round(5);
        assert_eq!(full.to_string(), "shard 2 (tag 66, round 5): decode failed");
        assert_eq!(full.shard, 2);
        assert_eq!(full.frame_tag, Some(66));
        assert_eq!(full.round, Some(5));

        let rounded = ShardError::new(0, "stalled").with_round(9);
        assert_eq!(rounded.to_string(), "shard 0 (round 9): stalled");

        let sim: SimError = full.into();
        assert!(sim
            .to_string()
            .starts_with("shard protocol failure: shard 2"));
    }
}
