//! Error type for the simulator.

use std::error::Error as StdError;
use std::fmt;

/// Errors produced by the runners.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The runner was constructed with zero nodes.
    EmptySystem,
    /// A protocol violated an invariant the simulator enforces (for example
    /// changing an irrevocable decision).
    ProtocolViolation(String),
    /// A configuration value was invalid (for example a fault budget larger
    /// than the number of nodes).
    InvalidConfig(String),
    /// A shard transport failed or a shard worker sent a malformed or
    /// unexpected frame (see [`crate::shard`]).
    Shard(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::EmptySystem => write!(f, "simulation requires at least one node"),
            SimError::ProtocolViolation(msg) => write!(f, "protocol violation: {msg}"),
            SimError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SimError::Shard(msg) => write!(f, "shard protocol failure: {msg}"),
        }
    }
}

impl StdError for SimError {}

/// Convenience result alias for simulator operations.
pub type SimResult<T> = Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            SimError::EmptySystem.to_string(),
            "simulation requires at least one node"
        );
        assert!(SimError::ProtocolViolation("decision changed".into())
            .to_string()
            .contains("decision changed"));
        assert!(SimError::InvalidConfig("t > n".into())
            .to_string()
            .contains("t > n"));
    }
}
