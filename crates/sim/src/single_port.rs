//! The single-port synchronous runner (Section 8 of the paper).
//!
//! In the single-port model a node may choose only one other node to send a
//! message to in a round, and may retrieve buffered messages from only one of
//! its in-ports per round.  A node gets no signal that a port holds pending
//! messages; it must decide which port to poll blindly.  Messages sent to a
//! port are buffered until polled.
//!
//! The engine shares the batched-delivery core of
//! [`delivery`](crate::delivery) with the multi-port runner, and drives the
//! sans-I/O [`SinglePortCore`] of [`crate::driver`]
//! for the per-node phase bodies.  Port buffers live in a sparse
//! `PortMap`(crate::delivery) rather than the seed's dense `n × n` queue
//! matrix, so a runner over `n` nodes costs `O(n + live messages)` memory —
//! the property that makes paper-scale `n = 10^3`–`10^4` runs feasible.

use crate::adversary::{CrashAdversary, NoFaults};
use crate::delivery::{EngineCore, PortMap};
use crate::driver::SinglePortCore;
use crate::error::{SimError, SimResult};
use crate::message::{Outgoing, Payload};
use crate::metrics::Metrics;
use crate::node::{NodeId, NodeSet};
use crate::parallel::{self, ChunkPlan};
use crate::pool::WorkerPool;
use crate::protocol::{NodeStatus, SinglePortProtocol};
use crate::report::{ExecutionReport, Termination};
use crate::trace::Trace;

/// Single-port synchronous runner.
///
/// Messages addressed to nodes that have crashed **or halted** are dropped
/// instead of buffered (the send is still counted): a halted node never
/// polls again, so buffering onto its ports could only leak memory.  This
/// matches the multi-port `Runner`'s halted-destination rule.
///
/// # Examples
///
/// ```
/// use dft_sim::{NodeId, Outgoing, Round, SinglePortProtocol, SinglePortRunner};
///
/// /// Node 0 sends its value to node 1 in round 0; node 1 polls port 0 in
/// /// round 1 and decides on what it finds.
/// struct Relay {
///     me: usize,
///     value: bool,
///     decided: Option<bool>,
/// }
///
/// impl SinglePortProtocol for Relay {
///     type Msg = bool;
///     type Output = bool;
///
///     fn send(&mut self, round: Round) -> Option<Outgoing<bool>> {
///         (self.me == 0 && round.as_u64() == 0).then(|| Outgoing::new(NodeId::new(1), self.value))
///     }
///
///     fn poll(&mut self, round: Round) -> Option<NodeId> {
///         (self.me == 1 && round.as_u64() == 1).then(|| NodeId::new(0))
///     }
///
///     fn receive(&mut self, _round: Round, _from: NodeId, msgs: &mut Vec<bool>) {
///         if let Some(&v) = msgs.first() {
///             self.decided = Some(v);
///         }
///     }
///
///     fn output(&self) -> Option<bool> {
///         self.decided.or(if self.me == 0 { Some(self.value) } else { None })
///     }
///
///     fn has_halted(&self) -> bool {
///         self.output().is_some()
///     }
/// }
///
/// let nodes = vec![
///     Relay { me: 0, value: true, decided: None },
///     Relay { me: 1, value: false, decided: None },
/// ];
/// let mut runner = SinglePortRunner::new(nodes).unwrap();
/// let report = runner.run(5);
/// assert_eq!(report.agreed_value(), Some(&true));
/// ```
pub struct SinglePortRunner<P: SinglePortProtocol> {
    adversary: Box<dyn CrashAdversary>,
    core: EngineCore,
    /// Per-node poll intent for the current round, copied flat from the
    /// cores for the adversary view and the port pre-drain walk (reused).
    polls: Vec<Option<NodeId>>,
    /// Per-node intended destinations handed to the adversary (reused; each
    /// holds at most one entry in this model).
    send_intents: Vec<Vec<NodeId>>,
    /// Sparse `(destination, sender)` port buffers.
    ports: PortMap<P::Msg>,
    /// Scratch used to ferry emptied poll buffers from the cores back into
    /// the port map each round (reused; empty between rounds).
    spares: Vec<Vec<P::Msg>>,
    /// Worker threads used for the per-node phase loops (1 = serial).
    jobs: usize,
    /// Node count above which `jobs > 1` engages the worker pool.  The
    /// single-port default (`parallel::MIN_NODES_PER_FORK_SINGLE_PORT`)
    /// is higher than the multi-port one: a single-port round is one send
    /// and one poll per node, so even the pool's ~µs dispatch only pays
    /// off once a round's node loop is itself substantial.
    fork_threshold: usize,
    /// Persistent phase workers; spawned lazily on the first forked round
    /// and reused for every subsequent one.
    pool: Option<WorkerPool>,
    /// The sans-I/O cores holding all per-node state, partitioned per
    /// `plan` (one core while serial).  Slots are `None` only transiently,
    /// while their core is out on a pool worker.
    cores: Vec<Option<SinglePortCore<P>>>,
    /// The partition the current `cores` were built with.
    plan: ChunkPlan,
}

impl<P: SinglePortProtocol> SinglePortRunner<P> {
    /// Creates a fault-free single-port runner.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptySystem`] if `nodes` is empty.
    pub fn new(nodes: Vec<P>) -> SimResult<Self> {
        Self::with_adversary(nodes, Box::new(NoFaults), 0)
    }

    /// Creates a single-port runner with a crash adversary limited to
    /// `fault_budget` crashes.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptySystem`] if `nodes` is empty, or
    /// [`SimError::InvalidConfig`] if the budget is not smaller than the
    /// number of nodes.
    pub fn with_adversary(
        nodes: Vec<P>,
        adversary: Box<dyn CrashAdversary>,
        fault_budget: usize,
    ) -> SimResult<Self> {
        if nodes.is_empty() {
            return Err(SimError::EmptySystem);
        }
        if fault_budget >= nodes.len() {
            return Err(SimError::InvalidConfig(format!(
                "fault budget {fault_budget} must be smaller than the number of nodes {}",
                nodes.len()
            )));
        }
        let n = nodes.len();
        Ok(SinglePortRunner {
            adversary,
            core: EngineCore::new(n, fault_budget),
            polls: vec![None; n],
            send_intents: (0..n).map(|_| Vec::new()).collect(),
            ports: PortMap::new(),
            spares: Vec::new(),
            jobs: 1,
            fork_threshold: parallel::MIN_NODES_PER_FORK_SINGLE_PORT,
            pool: None,
            cores: vec![Some(SinglePortCore::new(0, nodes))],
            plan: ChunkPlan::new(n, 1),
        })
    }

    /// Sets the number of worker threads for the per-node phase loops.
    ///
    /// `1` (the default) keeps the single inline core; `0` means "pick for
    /// me" ([`parallel::available_jobs`]).  Parallel execution is
    /// deterministic — reports, metrics and traces are byte-identical to a
    /// serial run — so this is purely a performance knob.
    pub fn set_jobs(&mut self, jobs: usize) -> &mut Self {
        self.jobs = parallel::effective_jobs(jobs);
        self
    }

    /// Builder-style variant of [`SinglePortRunner::set_jobs`].
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.set_jobs(jobs);
        self
    }

    /// The configured worker-thread count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Overrides the node-count threshold above which `jobs > 1` engages
    /// the worker pool (default:
    /// `parallel::MIN_NODES_PER_FORK_SINGLE_PORT`).  Both paths are
    /// byte-identical; this only trades fork/join overhead against
    /// parallel speedup, e.g. for protocols with unusually heavy per-node
    /// `send`/`receive` work.
    pub fn set_fork_threshold(&mut self, nodes: usize) -> &mut Self {
        self.fork_threshold = nodes.max(1);
        self
    }

    /// Enables coarse-grained event tracing.
    pub fn enable_trace(&mut self) -> &mut Self {
        self.core.trace = Trace::enabled();
        self
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.core.n()
    }

    /// The recorded trace.
    pub fn trace(&self) -> &Trace {
        &self.core.trace
    }

    /// Total number of sent-but-not-yet-polled messages currently buffered
    /// on ports.  Together with [`SinglePortRunner::ports_in_use`] this
    /// exposes the engine's memory footprint: both are `O(live messages)`,
    /// never `O(n²)`.
    pub fn buffered_messages(&self) -> usize {
        self.ports.buffered_messages()
    }

    /// Number of ports currently buffering at least one message.
    pub fn ports_in_use(&self) -> usize {
        self.ports.ports_in_use()
    }

    /// Whether every node that has not crashed has halted voluntarily.
    ///
    /// O(1): the engine core counts running nodes incrementally, so
    /// long-running single-port executions do not pay an O(n) status scan
    /// per round.
    pub fn all_non_faulty_halted(&self) -> bool {
        self.core.running_nodes() == 0
    }

    /// Runs until all non-faulty nodes halt or `max_rounds` rounds elapse.
    pub fn run(&mut self, max_rounds: u64) -> ExecutionReport<P::Output> {
        let mut termination = Termination::RoundLimit;
        for _ in 0..max_rounds {
            self.step();
            if self.all_non_faulty_halted() {
                termination = Termination::AllHalted;
                break;
            }
        }
        self.report(termination)
    }

    /// Executes one single-port round.
    ///
    /// The per-node phase bodies (send/poll collection, receive) drive the
    /// sans-I/O [`SinglePortCore`]s; with more than one configured job (see
    /// [`SinglePortRunner::set_jobs`]) they run on the runner's persistent
    /// worker pool.  The crash-adversary phase and the port-map mutations
    /// (enqueue in sender order, pre-drain in poller order, halt-time
    /// drops) always stay serial — the sparse `PortMap` is shared state,
    /// and at one message per node per round the enqueue loop is
    /// memory-movement bound anyway.  The partition is invisible to
    /// callers: every core count produces byte-identical state.
    pub fn step(&mut self) {
        let n = self.n();
        let desired = if parallel::should_fork(n, self.jobs, self.fork_threshold) {
            ChunkPlan::new(n, self.jobs)
        } else {
            ChunkPlan::new(n, 1)
        };
        self.ensure_plan(desired);
        let plan = self.plan;
        let round = self.core.round;

        // Phase 1: collect sends and poll intents in the cores.
        self.run_phase(move |core| core.begin_round(round));

        // Phase 2 (always serial): expose intents to the adversary through
        // the flat per-node view its contract promises, then apply crashes
        // and mirror the new statuses into the owning cores.
        for slot in &mut self.cores {
            let core = slot.as_mut().expect("core home between phases");
            for (i, send) in core.sends.iter().enumerate() {
                let global = core.base + i;
                self.send_intents[global].clear();
                self.send_intents[global].extend(send.iter().map(|o| o.to));
                self.polls[global] = core.polls[i];
            }
        }
        self.apply_crash_phase();
        for &victim in self.core.crashed_this_round() {
            let core = self.cores[plan.chunk_of(victim)]
                .as_mut()
                .expect("core home between phases");
            core.status[victim - core.base] = self.core.status[victim];
        }

        // Return the poll buffers the cores emptied last round to the port
        // map before enqueueing, so this round's pushes and drains reuse
        // them instead of constructing fresh queues.
        for slot in &mut self.cores {
            let core = slot.as_mut().expect("core home");
            core.take_spares(&mut self.spares);
        }
        self.ports.reclaim(&mut self.spares);

        // Phase 3 (always serial): enqueue onto destination ports, walking
        // cores in ascending order — exactly sender-index order.
        for ci in 0..self.cores.len() {
            let (base, len) = {
                let core = self.cores[ci].as_ref().expect("core home");
                (core.base, core.len())
            };
            for i in 0..len {
                let out = self.cores[ci].as_mut().expect("core home").take_send(i);
                let Some(out) = out else { continue };
                self.enqueue(base + i, out);
            }
        }

        // Pre-drain polled ports serially in node-index order (each drain
        // touches only the polling node's own in-ports, and `receive` never
        // touches the port map, so draining everything up front is exactly
        // equivalent to draining inside the receive loop).
        for slot in &mut self.cores {
            let core = slot.as_mut().expect("core home");
            for i in 0..core.len() {
                let global = core.base + i;
                let drained = if core.status[i].is_running() {
                    core.polls[i].map(|port| self.ports.drain(global, port.index()))
                } else {
                    None
                };
                core.set_drained(i, drained);
            }
        }

        // Phase 4: cores drive `receive`; the replay below walks cores in
        // ascending order so decisions, halts and halted-port drops land in
        // node-index order, independent of the partition.
        self.run_phase(move |core| {
            core.finalize(round);
        });
        for ci in 0..self.cores.len() {
            let events = {
                let core = self.cores[ci].as_mut().expect("core home");
                std::mem::take(&mut core.events)
            };
            for event in &events {
                if event.decided {
                    let core = self.cores[ci].as_ref().expect("core home");
                    let output = core.outputs[event.node - core.base]
                        .as_ref()
                        .expect("decision recorded");
                    self.core.record_decision(event.node, output);
                }
                if event.halted {
                    self.core.mark_halted(event.node);
                    // A halted node never polls again; free its buffered
                    // ports.
                    self.ports.drop_destination(event.node);
                    let core = self.cores[ci].as_mut().expect("core home");
                    core.status[event.node - core.base] = NodeStatus::Halted;
                }
            }
            self.cores[ci].as_mut().expect("core home").events = events;
        }
        self.core.finish_round();
    }

    /// Runs the crash phase and frees crashed destinations' buffered ports
    /// (every crash routes through here).
    fn apply_crash_phase(&mut self) {
        self.core
            .apply_crash_phase(&mut *self.adversary, &self.send_intents, &self.polls);
        for &victim in self.core.crashed_this_round() {
            // A crashed node never polls again; free its buffered ports.
            self.ports.drop_destination(victim);
        }
    }

    /// Phase 3 body: filters, counts and buffers one sender's message.
    fn enqueue(&mut self, sender_idx: usize, out: Outgoing<P::Msg>) {
        if let Some(filter) = self.core.filter(sender_idx) {
            if !filter.allows(0, out.to) {
                return;
            }
        }
        self.core
            .metrics
            .record_message(self.core.round.as_u64(), out.msg.bit_len());
        let dest = out.to.index();
        if dest < self.core.n() && self.core.status[dest].is_running() {
            self.ports.push(dest, sender_idx, out.msg);
        }
    }

    /// Runs one phase body over every core: inline on this thread while the
    /// partition has a single core, on the persistent pool otherwise (see
    /// [`WorkerPool::run_phase`] for the ownership-shuttle protocol and the
    /// panic behaviour).
    fn run_phase(&mut self, phase: impl Fn(&mut SinglePortCore<P>) + Clone + Send + 'static) {
        if self.cores.len() > 1 {
            let pool = self.pool.as_ref().expect("pool engaged");
            pool.run_phase(&mut self.cores, phase);
        } else {
            let core = self.cores[0].as_mut().expect("core home");
            phase(core);
        }
    }

    /// Re-partitions the cores (and spawns or resizes the pool) according
    /// to `plan`.  No-op when the current cores already follow `plan`.
    fn ensure_plan(&mut self, plan: ChunkPlan) {
        if self.plan == plan {
            return;
        }
        let n = self.n();
        if plan.chunks > 1 && self.pool.as_ref().map(WorkerPool::workers) != Some(plan.chunks) {
            self.pool = Some(WorkerPool::new(plan.chunks));
        }
        // Drain the old partition into flat per-node state, then deal it
        // back out chunk by chunk (statuses re-mirrored from the engine
        // core, scratch rebuilt empty — it is between-rounds state).
        let mut nodes = Vec::with_capacity(n);
        let mut outputs = Vec::with_capacity(n);
        for slot in self.cores.drain(..) {
            let core = slot.expect("core home");
            nodes.extend(core.nodes);
            outputs.extend(core.outputs);
        }
        let mut nodes = nodes.drain(..);
        let mut outputs = outputs.drain(..);
        self.cores = (0..plan.chunks)
            .map(|ci| {
                let range = plan.range(ci, n);
                let len = range.len();
                Some(SinglePortCore {
                    base: range.start,
                    nodes: nodes.by_ref().take(len).collect(),
                    status: self.core.status[range].to_vec(),
                    sends: (0..len).map(|_| None).collect(),
                    polls: vec![None; len],
                    drained: (0..len).map(|_| None).collect(),
                    spare: Vec::new(),
                    outputs: outputs.by_ref().take(len).collect(),
                    events: Vec::new(),
                })
            })
            .collect();
        self.plan = plan;
    }

    /// Builds the final report: outputs are gathered from the cores in
    /// ascending base order.
    fn report(&self, termination: Termination) -> ExecutionReport<P::Output> {
        let outputs = self
            .cores
            .iter()
            .flat_map(|slot| slot.as_ref().expect("core home").outputs.iter().cloned())
            .collect();
        ExecutionReport {
            outputs,
            crashed_at: self.core.crashed_at.clone(),
            halted_at: self.core.halted_at.clone(),
            byzantine: NodeSet::empty(self.n()),
            metrics: self.core.metrics.clone(),
            termination,
        }
    }

    /// The metrics accumulated so far (also available via the report).
    pub fn metrics(&self) -> &Metrics {
        &self.core.metrics
    }
}

impl<P: SinglePortProtocol> std::fmt::Debug for SinglePortRunner<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SinglePortRunner")
            .field("n", &self.n())
            .field("round", &self.core.round)
            .field("crashes", &self.core.crashes)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::AdaptiveSplitAdversary;
    use crate::message::Outgoing;
    use crate::round::Round;

    /// A round-robin token ring: node i sends its accumulated OR to node
    /// (i+1) mod n in round i, and polls port (i-1) mod n in every round.
    struct Ring {
        me: usize,
        n: usize,
        value: bool,
        decided: Option<bool>,
        rounds: u64,
    }

    impl SinglePortProtocol for Ring {
        type Msg = bool;
        type Output = bool;

        fn send(&mut self, _round: Round) -> Option<Outgoing<bool>> {
            Some(Outgoing::new(
                NodeId::new((self.me + 1) % self.n),
                self.value,
            ))
        }

        fn poll(&mut self, _round: Round) -> Option<NodeId> {
            Some(NodeId::new((self.me + self.n - 1) % self.n))
        }

        fn receive(&mut self, _round: Round, _from: NodeId, msgs: &mut Vec<bool>) {
            for m in msgs.drain(..) {
                self.value |= m;
            }
        }

        fn output(&self) -> Option<bool> {
            self.decided
        }

        fn has_halted(&self) -> bool {
            self.decided.is_some()
        }
    }

    impl Ring {
        fn tick(&mut self) {
            self.rounds += 1;
        }
    }

    /// Wrapper that decides after 2n rounds.
    struct RingUntil(Ring);

    impl SinglePortProtocol for RingUntil {
        type Msg = bool;
        type Output = bool;

        fn send(&mut self, round: Round) -> Option<Outgoing<bool>> {
            self.0.send(round)
        }

        fn poll(&mut self, round: Round) -> Option<NodeId> {
            self.0.poll(round)
        }

        fn receive(&mut self, round: Round, from: NodeId, msgs: &mut Vec<bool>) {
            self.0.receive(round, from, msgs);
            self.0.tick();
            if self.0.rounds >= 2 * self.0.n as u64 {
                self.0.decided = Some(self.0.value);
            }
        }

        fn output(&self) -> Option<bool> {
            self.0.output()
        }

        fn has_halted(&self) -> bool {
            self.0.has_halted()
        }
    }

    fn ring(n: usize, one_at: usize) -> Vec<RingUntil> {
        (0..n)
            .map(|i| {
                RingUntil(Ring {
                    me: i,
                    n,
                    value: i == one_at,
                    decided: None,
                    rounds: 0,
                })
            })
            .collect()
    }

    #[test]
    fn rejects_empty_system() {
        let nodes: Vec<RingUntil> = Vec::new();
        assert!(matches!(
            SinglePortRunner::new(nodes),
            Err(SimError::EmptySystem)
        ));
    }

    #[test]
    fn ring_propagates_value_one_hop_per_round() {
        let n = 6;
        let mut runner = SinglePortRunner::new(ring(n, 0)).unwrap();
        let report = runner.run(3 * n as u64);
        assert!(report.all_non_faulty_decided());
        assert!(report.non_faulty_deciders_agree());
        assert_eq!(report.agreed_value(), Some(&true));
        // Each node sends exactly one message per round.
        assert_eq!(report.metrics.peak_messages_in_a_round(), n as u64);
    }

    #[test]
    fn ports_buffer_until_polled() {
        // A node that never polls never sees the message, but the message is
        // still counted as sent.
        struct SendOnly {
            me: usize,
            done: bool,
        }
        impl SinglePortProtocol for SendOnly {
            type Msg = bool;
            type Output = bool;
            fn send(&mut self, round: Round) -> Option<Outgoing<bool>> {
                (self.me == 0 && round.as_u64() == 0).then(|| Outgoing::new(NodeId::new(1), true))
            }
            fn poll(&mut self, _round: Round) -> Option<NodeId> {
                None
            }
            fn receive(&mut self, _round: Round, _from: NodeId, _msgs: &mut Vec<bool>) {}
            fn output(&self) -> Option<bool> {
                self.done.then_some(false)
            }
            fn has_halted(&self) -> bool {
                self.done
            }
        }
        let nodes = vec![
            SendOnly { me: 0, done: false },
            SendOnly { me: 1, done: false },
        ];
        let mut runner = SinglePortRunner::new(nodes).unwrap();
        let report = runner.run(3);
        assert_eq!(report.metrics.messages, 1);
        assert_eq!(runner.buffered_messages(), 1, "unpolled message buffered");
        assert_eq!(runner.ports_in_use(), 1);
        assert_eq!(report.termination, Termination::RoundLimit);
    }

    #[test]
    fn adaptive_split_adversary_isolates_a_node() {
        let n = 8;
        let t = 6;
        let adversary = AdaptiveSplitAdversary::new(NodeId::new(0));
        let mut runner =
            SinglePortRunner::with_adversary(ring(n, 0), Box::new(adversary), t).unwrap();
        let report = runner.run(3 * n as u64);
        // Node 0's neighbours get crashed, so the `true` held by node 0 cannot
        // spread to everyone; the nodes far from 0 decide `false`.
        let crashed = report.crashed();
        assert!(crashed.len() <= t);
        assert!(!crashed.is_empty());
        let zero_output = report.output_of(NodeId::new(0));
        // Node 0 remains operational (the adversary crashes its neighbours,
        // not node 0 itself).
        assert!(report.non_faulty().contains(NodeId::new(0)));
        assert_eq!(zero_output, Some(&true));
    }

    /// Regression test for the halted-destination rule: the seed engine kept
    /// buffering messages onto halted nodes' ports (only crashed
    /// destinations were dropped), which leaks memory at scale — a halted
    /// node can never poll.  Both runners now drop such messages while still
    /// counting them against the sender.
    #[test]
    fn messages_to_halted_nodes_are_counted_but_not_buffered() {
        /// Node 1 halts in round 0; node 0 keeps sending to node 1 forever.
        struct Pesterer {
            me: usize,
        }
        impl SinglePortProtocol for Pesterer {
            type Msg = bool;
            type Output = bool;
            fn send(&mut self, _round: Round) -> Option<Outgoing<bool>> {
                (self.me == 0).then(|| Outgoing::new(NodeId::new(1), true))
            }
            fn poll(&mut self, _round: Round) -> Option<NodeId> {
                None
            }
            fn receive(&mut self, _round: Round, _from: NodeId, _msgs: &mut Vec<bool>) {}
            fn output(&self) -> Option<bool> {
                (self.me == 1).then_some(true)
            }
            fn has_halted(&self) -> bool {
                self.me == 1
            }
        }
        let nodes = vec![Pesterer { me: 0 }, Pesterer { me: 1 }];
        let mut runner = SinglePortRunner::new(nodes).unwrap();
        // Round 0: node 1 still runs, so node 0's first message is buffered;
        // node 1 halts at the end of the round and its ports are dropped.
        runner.step();
        assert_eq!(runner.core.halted_at[1], Some(Round::new(0)));
        assert_eq!(runner.buffered_messages(), 0, "halted ports freed");
        // Rounds 1..: messages to the halted node are counted, not buffered.
        for _ in 0..4 {
            runner.step();
        }
        assert_eq!(runner.metrics().messages, 5, "every send is counted");
        assert_eq!(runner.buffered_messages(), 0);
        assert_eq!(runner.ports_in_use(), 0);
    }

    /// Parallel phase loops must be observationally identical to the serial
    /// ones: same report, same trace, same buffered-port diagnostics.
    #[test]
    fn parallel_execution_is_byte_identical_to_serial() {
        use crate::adversary::{CrashDirective, FixedCrashSchedule};
        use crate::parallel::MIN_NODES_PER_FORK;
        let n = MIN_NODES_PER_FORK + 5;
        let run = |jobs: usize| {
            let adversary = FixedCrashSchedule::new()
                .crash_at(1, CrashDirective::silent(NodeId::new(2)))
                .crash_at(3, CrashDirective::after_send(NodeId::new(n - 1)));
            let mut runner = SinglePortRunner::with_adversary(ring(n, 0), Box::new(adversary), 2)
                .unwrap()
                .with_jobs(jobs);
            // The single-port default threshold only engages the pool for
            // very large systems; force it so this test exercises the
            // parallel path at a testable size.
            runner.set_fork_threshold(1);
            runner.enable_trace();
            let report = runner.run(3 * n as u64);
            (
                report,
                runner.trace().events().to_vec(),
                runner.buffered_messages(),
                runner.ports_in_use(),
            )
        };
        let serial = run(1);
        for jobs in [2, 4] {
            let parallel = run(jobs);
            assert_eq!(serial.0, parallel.0, "report with jobs={jobs}");
            assert_eq!(serial.1, parallel.1, "trace with jobs={jobs}");
            assert_eq!(serial.2, parallel.2, "buffered messages with jobs={jobs}");
            assert_eq!(serial.3, parallel.3, "ports in use with jobs={jobs}");
        }
        assert_eq!(serial.0.metrics.crashes, 2);
    }

    /// A pool reused across two consecutive `run()`s on the same runner
    /// produces transcripts identical to two fresh serial runs (the
    /// single-port variant of the multi-port runner's test: port buffers
    /// carry state across the boundary too).
    #[test]
    fn pool_reused_across_two_runs_matches_two_serial_runs() {
        use crate::adversary::{CrashDirective, FixedCrashSchedule};
        let n = 40;
        let run_twice = |jobs: usize| {
            let adversary = FixedCrashSchedule::new()
                .crash_at(2, CrashDirective::silent(NodeId::new(3)))
                .crash_at(n as u64, CrashDirective::after_send(NodeId::new(7)));
            let mut runner = SinglePortRunner::with_adversary(ring(n, 0), Box::new(adversary), 2)
                .unwrap()
                .with_jobs(jobs);
            // Force the pool at a testable size (the production threshold
            // only engages it at paper scale).
            runner.set_fork_threshold(1);
            runner.enable_trace();
            let first = runner.run(n as u64);
            let second = runner.run(3 * n as u64);
            (
                first,
                second,
                runner.trace().events().to_vec(),
                runner.buffered_messages(),
            )
        };
        let serial = run_twice(1);
        let pooled = run_twice(4);
        assert_eq!(serial.0, pooled.0, "first run() report");
        assert_eq!(serial.1, pooled.1, "second run() report");
        assert_eq!(serial.2, pooled.2, "combined trace");
        assert_eq!(serial.3, pooled.3, "buffered ports after both runs");
    }

    #[test]
    fn crashed_destination_ports_are_freed() {
        use crate::adversary::{CrashDirective, FixedCrashSchedule};
        /// Node 0 sends to node 2 every round; node 2 never polls, so its
        /// port from node 0 accumulates messages until node 2 crashes.
        struct Pester;
        impl SinglePortProtocol for Pester {
            type Msg = bool;
            type Output = bool;
            fn send(&mut self, _round: Round) -> Option<Outgoing<bool>> {
                Some(Outgoing::new(NodeId::new(2), true))
            }
            fn poll(&mut self, _round: Round) -> Option<NodeId> {
                None
            }
            fn receive(&mut self, _round: Round, _from: NodeId, _msgs: &mut Vec<bool>) {}
            fn output(&self) -> Option<bool> {
                None
            }
            fn has_halted(&self) -> bool {
                false
            }
        }
        let adversary =
            FixedCrashSchedule::new().crash_at(2, CrashDirective::silent(NodeId::new(2)));
        let nodes = vec![Pester, Pester, Pester];
        let mut runner = SinglePortRunner::with_adversary(nodes, Box::new(adversary), 1).unwrap();
        runner.step();
        runner.step();
        // Two rounds of three senders each, all addressed to node 2.
        assert_eq!(runner.buffered_messages(), 6);
        // Round 2: node 2 crashes before delivery; its buffered ports are
        // dropped and this round's sends to it are skipped at push time.
        runner.step();
        assert!(runner.core.status[2].is_crashed());
        assert_eq!(runner.buffered_messages(), 0, "crash freed node 2's ports");
        assert_eq!(runner.ports_in_use(), 0);
        assert_eq!(runner.metrics().messages, 8, "sends still counted");
    }
}
