//! The single-port synchronous runner (Section 8 of the paper).
//!
//! In the single-port model a node may choose only one other node to send a
//! message to in a round, and may retrieve buffered messages from only one of
//! its in-ports per round.  A node gets no signal that a port holds pending
//! messages; it must decide which port to poll blindly.  Messages sent to a
//! port are buffered until polled.
//!
//! The engine shares the batched-delivery core of
//! [`delivery`](crate::delivery) with the multi-port runner.  Port buffers
//! live in a sparse `PortMap`(crate::delivery) rather than the seed's
//! dense `n × n` queue matrix, so a runner over `n` nodes costs
//! `O(n + live messages)` memory — the property that makes paper-scale
//! `n = 10^3`–`10^4` runs feasible.

use crate::adversary::{CrashAdversary, NoFaults};
use crate::delivery::{EngineCore, PortMap};
use crate::error::{SimError, SimResult};
use crate::message::{Outgoing, Payload};
use crate::metrics::Metrics;
use crate::node::{NodeId, NodeSet};
use crate::parallel::{self, ChunkPlan, NodeEvent};
use crate::pool::WorkerPool;
use crate::protocol::{NodeStatus, SinglePortProtocol};
use crate::report::{ExecutionReport, Termination};
use crate::trace::Trace;

/// Single-port synchronous runner.
///
/// Messages addressed to nodes that have crashed **or halted** are dropped
/// instead of buffered (the send is still counted): a halted node never
/// polls again, so buffering onto its ports could only leak memory.  This
/// matches the multi-port `Runner`'s halted-destination rule.
///
/// # Examples
///
/// ```
/// use dft_sim::{NodeId, Outgoing, Round, SinglePortProtocol, SinglePortRunner};
///
/// /// Node 0 sends its value to node 1 in round 0; node 1 polls port 0 in
/// /// round 1 and decides on what it finds.
/// struct Relay {
///     me: usize,
///     value: bool,
///     decided: Option<bool>,
/// }
///
/// impl SinglePortProtocol for Relay {
///     type Msg = bool;
///     type Output = bool;
///
///     fn send(&mut self, round: Round) -> Option<Outgoing<bool>> {
///         (self.me == 0 && round.as_u64() == 0).then(|| Outgoing::new(NodeId::new(1), self.value))
///     }
///
///     fn poll(&mut self, round: Round) -> Option<NodeId> {
///         (self.me == 1 && round.as_u64() == 1).then(|| NodeId::new(0))
///     }
///
///     fn receive(&mut self, _round: Round, _from: NodeId, msgs: Vec<bool>) {
///         if let Some(&v) = msgs.first() {
///             self.decided = Some(v);
///         }
///     }
///
///     fn output(&self) -> Option<bool> {
///         self.decided.or(if self.me == 0 { Some(self.value) } else { None })
///     }
///
///     fn has_halted(&self) -> bool {
///         self.output().is_some()
///     }
/// }
///
/// let nodes = vec![
///     Relay { me: 0, value: true, decided: None },
///     Relay { me: 1, value: false, decided: None },
/// ];
/// let mut runner = SinglePortRunner::new(nodes).unwrap();
/// let report = runner.run(5);
/// assert_eq!(report.agreed_value(), Some(&true));
/// ```
pub struct SinglePortRunner<P: SinglePortProtocol> {
    nodes: Vec<P>,
    outputs: Vec<Option<P::Output>>,
    adversary: Box<dyn CrashAdversary>,
    core: EngineCore,
    /// Per-node single send for the current round (reused).
    sends: Vec<Option<crate::message::Outgoing<P::Msg>>>,
    /// Per-node poll intent for the current round (reused).
    polls: Vec<Option<NodeId>>,
    /// Per-node intended destinations handed to the adversary (reused; each
    /// holds at most one entry in this model).
    send_intents: Vec<Vec<NodeId>>,
    /// Sparse `(destination, sender)` port buffers.
    ports: PortMap<P::Msg>,
    /// Worker threads used for the per-node phase loops (1 = serial).
    jobs: usize,
    /// Node count above which `jobs > 1` engages the worker pool.  The
    /// single-port default (`parallel::MIN_NODES_PER_FORK_SINGLE_PORT`)
    /// is higher than the multi-port one: a single-port round is one send
    /// and one poll per node, so even the pool's ~µs dispatch only pays
    /// off once a round's node loop is itself substantial.
    fork_threshold: usize,
    /// Persistent phase workers; spawned lazily on the first forked round
    /// and reused for every subsequent one.
    pool: Option<WorkerPool>,
    /// Owned per-worker node-range partitions (empty while serial; see the
    /// multi-port `Runner` for the representation contract).
    chunks: Vec<Option<SpChunk<P>>>,
    /// The partition the current `chunks` were built with.
    plan: Option<ChunkPlan>,
}

/// One worker's owned slice of the single-port runner state while the pool
/// is engaged (nodes `base .. base + nodes.len()`).  Scratch (the per-node
/// option slots and the event list) persists across rounds with the chunk.
pub(crate) struct SpChunk<P: SinglePortProtocol> {
    /// Global index of the first node in this chunk.
    pub(crate) base: usize,
    pub(crate) nodes: Vec<P>,
    /// Chunk-local mirror of `EngineCore::status[base..]`.
    pub(crate) status: Vec<NodeStatus>,
    /// Per-node single send for the current round.
    pub(crate) sends: Vec<Option<Outgoing<P::Msg>>>,
    /// Per-node poll intent for the current round.
    pub(crate) polls: Vec<Option<NodeId>>,
    /// Per-node pre-drained poll results (`Some` only for running nodes
    /// that polled this round; filled serially by the main thread).
    pub(crate) drained: Vec<Option<Vec<P::Msg>>>,
    pub(crate) outputs: Vec<Option<P::Output>>,
    /// Receive scratch: decision/halt events for the main thread's replay.
    pub(crate) events: Vec<NodeEvent>,
}

impl<P: SinglePortProtocol> SpChunk<P> {
    /// A fresh chunk at the start of an execution (every node `Running`,
    /// all scratch empty) — how a shard worker starts before round 0.
    pub(crate) fn fresh(base: usize, nodes: Vec<P>) -> Self {
        let len = nodes.len();
        SpChunk {
            base,
            nodes,
            status: vec![NodeStatus::Running; len],
            sends: (0..len).map(|_| None).collect(),
            polls: vec![None; len],
            drained: (0..len).map(|_| None).collect(),
            outputs: (0..len).map(|_| None).collect(),
            events: Vec::new(),
        }
    }

    /// Phase 1: collect each running node's single send and poll intent —
    /// the chunked transcription of the serial collect loop.
    pub(crate) fn collect_sends(&mut self, round: crate::round::Round) {
        for (i, node) in self.nodes.iter_mut().enumerate() {
            if self.status[i].is_running() {
                self.sends[i] = node.send(round);
                self.polls[i] = node.poll(round);
            } else {
                self.sends[i] = None;
                self.polls[i] = None;
            }
        }
    }

    /// Phase 4, worker side: deliver pre-drained polls and advance outputs,
    /// recording decision/halt events for the main thread's in-order replay.
    pub(crate) fn receive(&mut self, round: crate::round::Round) {
        self.events.clear();
        for (i, node) in self.nodes.iter_mut().enumerate() {
            if !self.status[i].is_running() {
                continue;
            }
            if let Some(port) = self.polls[i] {
                let msgs = self.drained[i].take().unwrap_or_default();
                node.receive(round, port, msgs);
            }
            let mut decided = false;
            if let Some(output) = node.output() {
                if self.outputs[i].is_none() {
                    self.outputs[i] = Some(output);
                    decided = true;
                }
            }
            let halted = node.has_halted();
            if decided || halted {
                self.events.push(NodeEvent {
                    node: self.base + i,
                    decided,
                    halted,
                });
            }
        }
    }
}

impl<P: SinglePortProtocol> SinglePortRunner<P> {
    /// Creates a fault-free single-port runner.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptySystem`] if `nodes` is empty.
    pub fn new(nodes: Vec<P>) -> SimResult<Self> {
        Self::with_adversary(nodes, Box::new(NoFaults), 0)
    }

    /// Creates a single-port runner with a crash adversary limited to
    /// `fault_budget` crashes.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptySystem`] if `nodes` is empty, or
    /// [`SimError::InvalidConfig`] if the budget is not smaller than the
    /// number of nodes.
    pub fn with_adversary(
        nodes: Vec<P>,
        adversary: Box<dyn CrashAdversary>,
        fault_budget: usize,
    ) -> SimResult<Self> {
        if nodes.is_empty() {
            return Err(SimError::EmptySystem);
        }
        if fault_budget >= nodes.len() {
            return Err(SimError::InvalidConfig(format!(
                "fault budget {fault_budget} must be smaller than the number of nodes {}",
                nodes.len()
            )));
        }
        let n = nodes.len();
        Ok(SinglePortRunner {
            nodes,
            outputs: (0..n).map(|_| None).collect(),
            adversary,
            core: EngineCore::new(n, fault_budget),
            sends: (0..n).map(|_| None).collect(),
            polls: vec![None; n],
            send_intents: (0..n).map(|_| Vec::new()).collect(),
            ports: PortMap::new(),
            jobs: 1,
            fork_threshold: parallel::MIN_NODES_PER_FORK_SINGLE_PORT,
            pool: None,
            chunks: Vec::new(),
            plan: None,
        })
    }

    /// Sets the number of worker threads for the per-node phase loops.
    ///
    /// `1` (the default) keeps the serial loops; `0` means "pick for me"
    /// ([`parallel::available_jobs`]).  Parallel execution is deterministic —
    /// reports, metrics and traces are byte-identical to a serial run — so
    /// this is purely a performance knob.
    pub fn set_jobs(&mut self, jobs: usize) -> &mut Self {
        self.jobs = parallel::effective_jobs(jobs);
        self
    }

    /// Builder-style variant of [`SinglePortRunner::set_jobs`].
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.set_jobs(jobs);
        self
    }

    /// The configured worker-thread count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Overrides the node-count threshold above which `jobs > 1` engages
    /// the worker pool (default:
    /// `parallel::MIN_NODES_PER_FORK_SINGLE_PORT`).  Both paths are
    /// byte-identical; this only trades fork/join overhead against
    /// parallel speedup, e.g. for protocols with unusually heavy per-node
    /// `send`/`receive` work.
    pub fn set_fork_threshold(&mut self, nodes: usize) -> &mut Self {
        self.fork_threshold = nodes.max(1);
        self
    }

    /// Enables coarse-grained event tracing.
    pub fn enable_trace(&mut self) -> &mut Self {
        self.core.trace = Trace::enabled();
        self
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        // Not `nodes.len()`: that vector is drained into the pool chunks
        // while the forked path is engaged.
        self.core.n()
    }

    /// The recorded trace.
    pub fn trace(&self) -> &Trace {
        &self.core.trace
    }

    /// Total number of sent-but-not-yet-polled messages currently buffered
    /// on ports.  Together with [`SinglePortRunner::ports_in_use`] this
    /// exposes the engine's memory footprint: both are `O(live messages)`,
    /// never `O(n²)`.
    pub fn buffered_messages(&self) -> usize {
        self.ports.buffered_messages()
    }

    /// Number of ports currently buffering at least one message.
    pub fn ports_in_use(&self) -> usize {
        self.ports.ports_in_use()
    }

    /// Whether every node that has not crashed has halted voluntarily.
    ///
    /// O(1): the engine core counts running nodes incrementally, so
    /// long-running single-port executions do not pay an O(n) status scan
    /// per round.
    pub fn all_non_faulty_halted(&self) -> bool {
        self.core.running_nodes() == 0
    }

    /// Runs until all non-faulty nodes halt or `max_rounds` rounds elapse.
    pub fn run(&mut self, max_rounds: u64) -> ExecutionReport<P::Output> {
        let mut termination = Termination::RoundLimit;
        for _ in 0..max_rounds {
            self.step();
            if self.all_non_faulty_halted() {
                termination = Termination::AllHalted;
                break;
            }
        }
        self.report(termination)
    }

    /// Executes one single-port round.
    ///
    /// With more than one configured job (see [`SinglePortRunner::set_jobs`])
    /// the send-collection and receive loops run on the runner's persistent
    /// worker pool; the crash-adversary phase and the port-map mutations
    /// (enqueue, drain, drop) always stay serial — the sparse `PortMap` is
    /// shared state, and at one message per node per round the enqueue loop
    /// is memory-movement bound anyway.  Both paths produce byte-identical
    /// state.
    pub fn step(&mut self) {
        if parallel::should_fork(self.n(), self.jobs, self.fork_threshold) {
            self.step_forked();
        } else {
            self.step_serial();
        }
    }

    /// One round on the serial path (also the reference semantics the
    /// forked path must reproduce byte for byte).
    fn step_serial(&mut self) {
        self.ensure_flat();
        let n = self.n();
        let round = self.core.round;

        // Phase 1: collect each running node's single send and poll intent.
        for (i, node) in self.nodes.iter_mut().enumerate() {
            if self.core.status[i].is_running() {
                self.sends[i] = node.send(round);
                self.polls[i] = node.poll(round);
            } else {
                self.sends[i] = None;
                self.polls[i] = None;
            }
        }

        // Phase 2 (always serial): crash adversary.
        for (intents, send) in self.send_intents.iter_mut().zip(&self.sends) {
            intents.clear();
            intents.extend(send.iter().map(|o| o.to));
        }
        self.apply_crash_phase();

        // Phase 3 (always serial): enqueue messages onto destination ports.
        for sender_idx in 0..n {
            let Some(out) = self.sends[sender_idx].take() else {
                continue;
            };
            self.enqueue(sender_idx, out);
        }

        // Phase 4: polled ports are drained and delivered.
        for (i, node) in self.nodes.iter_mut().enumerate() {
            if !self.core.status[i].is_running() {
                continue;
            }
            if let Some(port) = self.polls[i] {
                let drained = self.ports.drain(i, port.index());
                node.receive(round, port, drained);
            }
            if let Some(output) = node.output() {
                if self.outputs[i].is_none() {
                    self.core.record_decision(i, &output);
                    self.outputs[i] = Some(output);
                }
            }
            if node.has_halted() {
                self.core.mark_halted(i);
                // A halted node never polls again; free its buffered ports.
                self.ports.drop_destination(i);
            }
        }

        self.core.finish_round();
    }

    /// Runs the crash phase and frees crashed destinations' buffered ports
    /// (both execution paths route crashes through here).
    fn apply_crash_phase(&mut self) {
        self.core
            .apply_crash_phase(&mut *self.adversary, &self.send_intents, &self.polls);
        for &victim in self.core.crashed_this_round() {
            // A crashed node never polls again; free its buffered ports.
            self.ports.drop_destination(victim);
        }
    }

    /// Phase 3 body shared by both paths: filters, counts and buffers one
    /// sender's message.
    fn enqueue(&mut self, sender_idx: usize, out: Outgoing<P::Msg>) {
        if let Some(filter) = self.core.filter(sender_idx) {
            if !filter.allows(0, out.to) {
                return;
            }
        }
        self.core
            .metrics
            .record_message(self.core.round.as_u64(), out.msg.bit_len());
        let dest = out.to.index();
        if dest < self.core.n() && self.core.status[dest].is_running() {
            self.ports.push(dest, sender_idx, out.msg);
        }
    }

    /// One round on the forked path: the send-collection and receive loops
    /// run on the persistent pool, one owned [`SpChunk`] per worker; the
    /// adversary view, the port-map mutations (enqueue in sender order,
    /// pre-drain in poller order, halt-time drops) and the decision/halt
    /// replay stay on the main thread in fixed node-index order.
    fn step_forked(&mut self) {
        let plan = ChunkPlan::new(self.n(), self.jobs);
        self.ensure_chunked(plan);
        let round = self.core.round;

        // Phase 1: collect sends and poll intents on the workers.
        self.run_phase(move |chunk| chunk.collect_sends(round));

        // Phase 2 (always serial): expose intents to the adversary through
        // the flat per-node view its contract promises, then apply crashes
        // and mirror the new statuses into the owning chunks.
        for slot in &mut self.chunks {
            let chunk = slot.as_mut().expect("chunk home between phases");
            for (i, send) in chunk.sends.iter().enumerate() {
                let global = chunk.base + i;
                self.send_intents[global].clear();
                self.send_intents[global].extend(send.iter().map(|o| o.to));
                self.polls[global] = chunk.polls[i];
            }
        }
        self.apply_crash_phase();
        for &victim in self.core.crashed_this_round() {
            let chunk = self.chunks[plan.chunk_of(victim)]
                .as_mut()
                .expect("chunk home between phases");
            chunk.status[victim - chunk.base] = self.core.status[victim];
        }

        // Phase 3 (always serial): enqueue onto destination ports, walking
        // chunks in ascending order — exactly the serial sender order.
        for ci in 0..self.chunks.len() {
            let (base, len) = {
                let chunk = self.chunks[ci].as_ref().expect("chunk home");
                (chunk.base, chunk.nodes.len())
            };
            for i in 0..len {
                let out = self.chunks[ci].as_mut().expect("chunk home").sends[i].take();
                let Some(out) = out else { continue };
                self.enqueue(base + i, out);
            }
        }

        // Pre-drain polled ports serially in node-index order (each drain
        // touches only the polling node's own in-ports, so this is exactly
        // what the serial loop does).
        for slot in &mut self.chunks {
            let chunk = slot.as_mut().expect("chunk home");
            for i in 0..chunk.nodes.len() {
                let global = chunk.base + i;
                chunk.drained[i] = if chunk.status[i].is_running() {
                    chunk.polls[i].map(|port| self.ports.drain(global, port.index()))
                } else {
                    None
                };
            }
        }

        // Phase 4: workers drive `receive`; the replay below walks chunks
        // in ascending order so decisions, halts and halted-port drops land
        // in node-index order, matching the serial loop (and its trace).
        self.run_phase(move |chunk| chunk.receive(round));
        for ci in 0..self.chunks.len() {
            let events = {
                let chunk = self.chunks[ci].as_mut().expect("chunk home");
                std::mem::take(&mut chunk.events)
            };
            for event in &events {
                if event.decided {
                    let chunk = self.chunks[ci].as_ref().expect("chunk home");
                    let output = chunk.outputs[event.node - chunk.base]
                        .as_ref()
                        .expect("decision recorded");
                    self.core.record_decision(event.node, output);
                }
                if event.halted {
                    self.core.mark_halted(event.node);
                    self.ports.drop_destination(event.node);
                    let chunk = self.chunks[ci].as_mut().expect("chunk home");
                    chunk.status[event.node - chunk.base] = NodeStatus::Halted;
                }
            }
            self.chunks[ci].as_mut().expect("chunk home").events = events;
        }
        self.core.finish_round();
    }

    /// Dispatches one phase closure per chunk to the persistent pool and
    /// waits for every chunk to come home (see [`WorkerPool::run_phase`]
    /// for the ownership-shuttle protocol and panic behaviour).
    fn run_phase(&mut self, phase: impl Fn(&mut SpChunk<P>) + Clone + Send + 'static) {
        let pool = self.pool.as_ref().expect("pool engaged");
        pool.run_phase(&mut self.chunks, phase);
    }

    /// Splits the flat per-node state into owned per-worker chunks (and
    /// spawns or resizes the pool) according to `plan`.  No-op when the
    /// current chunks already follow `plan`.
    fn ensure_chunked(&mut self, plan: ChunkPlan) {
        if self.plan == Some(plan) {
            return;
        }
        self.ensure_flat();
        let n = self.n();
        if self.pool.as_ref().map(WorkerPool::workers) != Some(plan.chunks) {
            self.pool = Some(WorkerPool::new(plan.chunks));
        }
        let mut nodes = std::mem::take(&mut self.nodes);
        let mut outputs = std::mem::take(&mut self.outputs);
        let mut nodes = nodes.drain(..);
        let mut outputs = outputs.drain(..);
        self.chunks = (0..plan.chunks)
            .map(|ci| {
                let range = plan.range(ci, n);
                let len = range.len();
                Some(SpChunk {
                    base: range.start,
                    nodes: nodes.by_ref().take(len).collect(),
                    status: self.core.status[range].to_vec(),
                    sends: (0..len).map(|_| None).collect(),
                    polls: vec![None; len],
                    drained: (0..len).map(|_| None).collect(),
                    outputs: outputs.by_ref().take(len).collect(),
                    events: Vec::new(),
                })
            })
            .collect();
        self.plan = Some(plan);
    }

    /// Moves chunked state back into the flat per-node vectors (the serial
    /// path's representation).  The pool itself is kept: re-entering the
    /// forked path reuses its workers.
    fn ensure_flat(&mut self) {
        if self.chunks.is_empty() {
            return;
        }
        for slot in self.chunks.drain(..) {
            let chunk = slot.expect("chunk home");
            self.nodes.extend(chunk.nodes);
            self.outputs.extend(chunk.outputs);
        }
        self.plan = None;
    }

    /// Builds the final report.  Works in either representation: outputs
    /// are gathered from the chunks (in ascending base order) whenever the
    /// pool holds the node state.
    fn report(&self, termination: Termination) -> ExecutionReport<P::Output> {
        let outputs = if self.chunks.is_empty() {
            self.outputs.clone()
        } else {
            self.chunks
                .iter()
                .flat_map(|slot| slot.as_ref().expect("chunk home").outputs.iter().cloned())
                .collect()
        };
        ExecutionReport {
            outputs,
            crashed_at: self.core.crashed_at.clone(),
            halted_at: self.core.halted_at.clone(),
            byzantine: NodeSet::empty(self.n()),
            metrics: self.core.metrics.clone(),
            termination,
        }
    }

    /// The metrics accumulated so far (also available via the report).
    pub fn metrics(&self) -> &Metrics {
        &self.core.metrics
    }
}

impl<P: SinglePortProtocol> std::fmt::Debug for SinglePortRunner<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SinglePortRunner")
            .field("n", &self.n())
            .field("round", &self.core.round)
            .field("crashes", &self.core.crashes)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::AdaptiveSplitAdversary;
    use crate::message::Outgoing;
    use crate::round::Round;

    /// A round-robin token ring: node i sends its accumulated OR to node
    /// (i+1) mod n in round i, and polls port (i-1) mod n in every round.
    struct Ring {
        me: usize,
        n: usize,
        value: bool,
        decided: Option<bool>,
        rounds: u64,
    }

    impl SinglePortProtocol for Ring {
        type Msg = bool;
        type Output = bool;

        fn send(&mut self, _round: Round) -> Option<Outgoing<bool>> {
            Some(Outgoing::new(
                NodeId::new((self.me + 1) % self.n),
                self.value,
            ))
        }

        fn poll(&mut self, _round: Round) -> Option<NodeId> {
            Some(NodeId::new((self.me + self.n - 1) % self.n))
        }

        fn receive(&mut self, _round: Round, _from: NodeId, msgs: Vec<bool>) {
            for m in msgs {
                self.value |= m;
            }
        }

        fn output(&self) -> Option<bool> {
            self.decided
        }

        fn has_halted(&self) -> bool {
            self.decided.is_some()
        }
    }

    impl Ring {
        fn tick(&mut self) {
            self.rounds += 1;
        }
    }

    /// Wrapper that decides after 2n rounds.
    struct RingUntil(Ring);

    impl SinglePortProtocol for RingUntil {
        type Msg = bool;
        type Output = bool;

        fn send(&mut self, round: Round) -> Option<Outgoing<bool>> {
            self.0.send(round)
        }

        fn poll(&mut self, round: Round) -> Option<NodeId> {
            self.0.poll(round)
        }

        fn receive(&mut self, round: Round, from: NodeId, msgs: Vec<bool>) {
            self.0.receive(round, from, msgs);
            self.0.tick();
            if self.0.rounds >= 2 * self.0.n as u64 {
                self.0.decided = Some(self.0.value);
            }
        }

        fn output(&self) -> Option<bool> {
            self.0.output()
        }

        fn has_halted(&self) -> bool {
            self.0.has_halted()
        }
    }

    fn ring(n: usize, one_at: usize) -> Vec<RingUntil> {
        (0..n)
            .map(|i| {
                RingUntil(Ring {
                    me: i,
                    n,
                    value: i == one_at,
                    decided: None,
                    rounds: 0,
                })
            })
            .collect()
    }

    #[test]
    fn rejects_empty_system() {
        let nodes: Vec<RingUntil> = Vec::new();
        assert!(matches!(
            SinglePortRunner::new(nodes),
            Err(SimError::EmptySystem)
        ));
    }

    #[test]
    fn ring_propagates_value_one_hop_per_round() {
        let n = 6;
        let mut runner = SinglePortRunner::new(ring(n, 0)).unwrap();
        let report = runner.run(3 * n as u64);
        assert!(report.all_non_faulty_decided());
        assert!(report.non_faulty_deciders_agree());
        assert_eq!(report.agreed_value(), Some(&true));
        // Each node sends exactly one message per round.
        assert_eq!(report.metrics.peak_messages_in_a_round(), n as u64);
    }

    #[test]
    fn ports_buffer_until_polled() {
        // A node that never polls never sees the message, but the message is
        // still counted as sent.
        struct SendOnly {
            me: usize,
            done: bool,
        }
        impl SinglePortProtocol for SendOnly {
            type Msg = bool;
            type Output = bool;
            fn send(&mut self, round: Round) -> Option<Outgoing<bool>> {
                (self.me == 0 && round.as_u64() == 0).then(|| Outgoing::new(NodeId::new(1), true))
            }
            fn poll(&mut self, _round: Round) -> Option<NodeId> {
                None
            }
            fn receive(&mut self, _round: Round, _from: NodeId, _msgs: Vec<bool>) {}
            fn output(&self) -> Option<bool> {
                self.done.then_some(false)
            }
            fn has_halted(&self) -> bool {
                self.done
            }
        }
        let nodes = vec![
            SendOnly { me: 0, done: false },
            SendOnly { me: 1, done: false },
        ];
        let mut runner = SinglePortRunner::new(nodes).unwrap();
        let report = runner.run(3);
        assert_eq!(report.metrics.messages, 1);
        assert_eq!(runner.buffered_messages(), 1, "unpolled message buffered");
        assert_eq!(runner.ports_in_use(), 1);
        assert_eq!(report.termination, Termination::RoundLimit);
    }

    #[test]
    fn adaptive_split_adversary_isolates_a_node() {
        let n = 8;
        let t = 6;
        let adversary = AdaptiveSplitAdversary::new(NodeId::new(0));
        let mut runner =
            SinglePortRunner::with_adversary(ring(n, 0), Box::new(adversary), t).unwrap();
        let report = runner.run(3 * n as u64);
        // Node 0's neighbours get crashed, so the `true` held by node 0 cannot
        // spread to everyone; the nodes far from 0 decide `false`.
        let crashed = report.crashed();
        assert!(crashed.len() <= t);
        assert!(!crashed.is_empty());
        let zero_output = report.output_of(NodeId::new(0));
        // Node 0 remains operational (the adversary crashes its neighbours,
        // not node 0 itself).
        assert!(report.non_faulty().contains(NodeId::new(0)));
        assert_eq!(zero_output, Some(&true));
    }

    /// Regression test for the halted-destination rule: the seed engine kept
    /// buffering messages onto halted nodes' ports (only crashed
    /// destinations were dropped), which leaks memory at scale — a halted
    /// node can never poll.  Both runners now drop such messages while still
    /// counting them against the sender.
    #[test]
    fn messages_to_halted_nodes_are_counted_but_not_buffered() {
        /// Node 1 halts in round 0; node 0 keeps sending to node 1 forever.
        struct Pesterer {
            me: usize,
        }
        impl SinglePortProtocol for Pesterer {
            type Msg = bool;
            type Output = bool;
            fn send(&mut self, _round: Round) -> Option<Outgoing<bool>> {
                (self.me == 0).then(|| Outgoing::new(NodeId::new(1), true))
            }
            fn poll(&mut self, _round: Round) -> Option<NodeId> {
                None
            }
            fn receive(&mut self, _round: Round, _from: NodeId, _msgs: Vec<bool>) {}
            fn output(&self) -> Option<bool> {
                (self.me == 1).then_some(true)
            }
            fn has_halted(&self) -> bool {
                self.me == 1
            }
        }
        let nodes = vec![Pesterer { me: 0 }, Pesterer { me: 1 }];
        let mut runner = SinglePortRunner::new(nodes).unwrap();
        // Round 0: node 1 still runs, so node 0's first message is buffered;
        // node 1 halts at the end of the round and its ports are dropped.
        runner.step();
        assert_eq!(runner.core.halted_at[1], Some(Round::new(0)));
        assert_eq!(runner.buffered_messages(), 0, "halted ports freed");
        // Rounds 1..: messages to the halted node are counted, not buffered.
        for _ in 0..4 {
            runner.step();
        }
        assert_eq!(runner.metrics().messages, 5, "every send is counted");
        assert_eq!(runner.buffered_messages(), 0);
        assert_eq!(runner.ports_in_use(), 0);
    }

    /// Parallel phase loops must be observationally identical to the serial
    /// ones: same report, same trace, same buffered-port diagnostics.
    #[test]
    fn parallel_execution_is_byte_identical_to_serial() {
        use crate::adversary::{CrashDirective, FixedCrashSchedule};
        use crate::parallel::MIN_NODES_PER_FORK;
        let n = MIN_NODES_PER_FORK + 5;
        let run = |jobs: usize| {
            let adversary = FixedCrashSchedule::new()
                .crash_at(1, CrashDirective::silent(NodeId::new(2)))
                .crash_at(3, CrashDirective::after_send(NodeId::new(n - 1)));
            let mut runner = SinglePortRunner::with_adversary(ring(n, 0), Box::new(adversary), 2)
                .unwrap()
                .with_jobs(jobs);
            // The single-port default threshold only engages the pool for
            // very large systems; force it so this test exercises the
            // parallel path at a testable size.
            runner.set_fork_threshold(1);
            runner.enable_trace();
            let report = runner.run(3 * n as u64);
            (
                report,
                runner.trace().events().to_vec(),
                runner.buffered_messages(),
                runner.ports_in_use(),
            )
        };
        let serial = run(1);
        for jobs in [2, 4] {
            let parallel = run(jobs);
            assert_eq!(serial.0, parallel.0, "report with jobs={jobs}");
            assert_eq!(serial.1, parallel.1, "trace with jobs={jobs}");
            assert_eq!(serial.2, parallel.2, "buffered messages with jobs={jobs}");
            assert_eq!(serial.3, parallel.3, "ports in use with jobs={jobs}");
        }
        assert_eq!(serial.0.metrics.crashes, 2);
    }

    /// A pool reused across two consecutive `run()`s on the same runner
    /// produces transcripts identical to two fresh serial runs (the
    /// single-port variant of the multi-port runner's test: port buffers
    /// carry state across the boundary too).
    #[test]
    fn pool_reused_across_two_runs_matches_two_serial_runs() {
        use crate::adversary::{CrashDirective, FixedCrashSchedule};
        let n = 40;
        let run_twice = |jobs: usize| {
            let adversary = FixedCrashSchedule::new()
                .crash_at(2, CrashDirective::silent(NodeId::new(3)))
                .crash_at(n as u64, CrashDirective::after_send(NodeId::new(7)));
            let mut runner = SinglePortRunner::with_adversary(ring(n, 0), Box::new(adversary), 2)
                .unwrap()
                .with_jobs(jobs);
            // Force the pool at a testable size (the production threshold
            // only engages it at paper scale).
            runner.set_fork_threshold(1);
            runner.enable_trace();
            let first = runner.run(n as u64);
            let second = runner.run(3 * n as u64);
            (
                first,
                second,
                runner.trace().events().to_vec(),
                runner.buffered_messages(),
            )
        };
        let serial = run_twice(1);
        let pooled = run_twice(4);
        assert_eq!(serial.0, pooled.0, "first run() report");
        assert_eq!(serial.1, pooled.1, "second run() report");
        assert_eq!(serial.2, pooled.2, "combined trace");
        assert_eq!(serial.3, pooled.3, "buffered ports after both runs");
    }

    #[test]
    fn crashed_destination_ports_are_freed() {
        use crate::adversary::{CrashDirective, FixedCrashSchedule};
        /// Node 0 sends to node 2 every round; node 2 never polls, so its
        /// port from node 0 accumulates messages until node 2 crashes.
        struct Pester;
        impl SinglePortProtocol for Pester {
            type Msg = bool;
            type Output = bool;
            fn send(&mut self, _round: Round) -> Option<Outgoing<bool>> {
                Some(Outgoing::new(NodeId::new(2), true))
            }
            fn poll(&mut self, _round: Round) -> Option<NodeId> {
                None
            }
            fn receive(&mut self, _round: Round, _from: NodeId, _msgs: Vec<bool>) {}
            fn output(&self) -> Option<bool> {
                None
            }
            fn has_halted(&self) -> bool {
                false
            }
        }
        let adversary =
            FixedCrashSchedule::new().crash_at(2, CrashDirective::silent(NodeId::new(2)));
        let nodes = vec![Pester, Pester, Pester];
        let mut runner = SinglePortRunner::with_adversary(nodes, Box::new(adversary), 1).unwrap();
        runner.step();
        runner.step();
        // Two rounds of three senders each, all addressed to node 2.
        assert_eq!(runner.buffered_messages(), 6);
        // Round 2: node 2 crashes before delivery; its buffered ports are
        // dropped and this round's sends to it are skipped at push time.
        runner.step();
        assert!(runner.core.status[2].is_crashed());
        assert_eq!(runner.buffered_messages(), 0, "crash freed node 2's ports");
        assert_eq!(runner.ports_in_use(), 0);
        assert_eq!(runner.metrics().messages, 8, "sends still counted");
    }
}
