//! The single-port synchronous runner (Section 8 of the paper).
//!
//! In the single-port model a node may choose only one other node to send a
//! message to in a round, and may retrieve buffered messages from only one of
//! its in-ports per round.  A node gets no signal that a port holds pending
//! messages; it must decide which port to poll blindly.  Messages sent to a
//! port are buffered until polled.

use std::collections::VecDeque;

use crate::adversary::{AdversaryView, CrashAdversary, NoFaults};
use crate::error::{SimError, SimResult};
use crate::message::Payload;
use crate::metrics::Metrics;
use crate::node::{NodeId, NodeSet};
use crate::protocol::{NodeStatus, SinglePortProtocol};
use crate::report::{ExecutionReport, Termination};
use crate::round::Round;
use crate::trace::{Event, Trace};

/// Single-port synchronous runner.
///
/// # Examples
///
/// ```
/// use dft_sim::{NodeId, Outgoing, Round, SinglePortProtocol, SinglePortRunner};
///
/// /// Node 0 sends its value to node 1 in round 0; node 1 polls port 0 in
/// /// round 1 and decides on what it finds.
/// struct Relay {
///     me: usize,
///     value: bool,
///     decided: Option<bool>,
/// }
///
/// impl SinglePortProtocol for Relay {
///     type Msg = bool;
///     type Output = bool;
///
///     fn send(&mut self, round: Round) -> Option<Outgoing<bool>> {
///         (self.me == 0 && round.as_u64() == 0).then(|| Outgoing::new(NodeId::new(1), self.value))
///     }
///
///     fn poll(&mut self, round: Round) -> Option<NodeId> {
///         (self.me == 1 && round.as_u64() == 1).then(|| NodeId::new(0))
///     }
///
///     fn receive(&mut self, _round: Round, _from: NodeId, msgs: Vec<bool>) {
///         if let Some(&v) = msgs.first() {
///             self.decided = Some(v);
///         }
///     }
///
///     fn output(&self) -> Option<bool> {
///         self.decided.or(if self.me == 0 { Some(self.value) } else { None })
///     }
///
///     fn has_halted(&self) -> bool {
///         self.output().is_some()
///     }
/// }
///
/// let nodes = vec![
///     Relay { me: 0, value: true, decided: None },
///     Relay { me: 1, value: false, decided: None },
/// ];
/// let mut runner = SinglePortRunner::new(nodes).unwrap();
/// let report = runner.run(5);
/// assert_eq!(report.agreed_value(), Some(&true));
/// ```
pub struct SinglePortRunner<P: SinglePortProtocol> {
    nodes: Vec<P>,
    status: Vec<NodeStatus>,
    outputs: Vec<Option<P::Output>>,
    halted_at: Vec<Option<Round>>,
    crashed_at: Vec<Option<Round>>,
    adversary: Box<dyn CrashAdversary>,
    fault_budget: usize,
    crashes: usize,
    round: Round,
    metrics: Metrics,
    trace: Trace,
    /// `ports[to][from]` buffers messages sent from `from` to `to` that have
    /// not been polled yet.
    ports: Vec<Vec<VecDeque<P::Msg>>>,
}

impl<P: SinglePortProtocol> SinglePortRunner<P> {
    /// Creates a fault-free single-port runner.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptySystem`] if `nodes` is empty.
    pub fn new(nodes: Vec<P>) -> SimResult<Self> {
        Self::with_adversary(nodes, Box::new(NoFaults), 0)
    }

    /// Creates a single-port runner with a crash adversary limited to
    /// `fault_budget` crashes.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptySystem`] if `nodes` is empty, or
    /// [`SimError::InvalidConfig`] if the budget is not smaller than the
    /// number of nodes.
    pub fn with_adversary(
        nodes: Vec<P>,
        adversary: Box<dyn CrashAdversary>,
        fault_budget: usize,
    ) -> SimResult<Self> {
        if nodes.is_empty() {
            return Err(SimError::EmptySystem);
        }
        if fault_budget >= nodes.len() {
            return Err(SimError::InvalidConfig(format!(
                "fault budget {fault_budget} must be smaller than the number of nodes {}",
                nodes.len()
            )));
        }
        let n = nodes.len();
        Ok(SinglePortRunner {
            nodes,
            status: vec![NodeStatus::Running; n],
            outputs: (0..n).map(|_| None).collect(),
            halted_at: vec![None; n],
            crashed_at: vec![None; n],
            adversary,
            fault_budget,
            crashes: 0,
            round: Round::ZERO,
            metrics: Metrics::new(),
            trace: Trace::disabled(),
            ports: (0..n)
                .map(|_| (0..n).map(|_| VecDeque::new()).collect())
                .collect(),
        })
    }

    /// Enables coarse-grained event tracing.
    pub fn enable_trace(&mut self) -> &mut Self {
        self.trace = Trace::enabled();
        self
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.nodes.len()
    }

    /// The recorded trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Whether every node that has not crashed has halted voluntarily.
    pub fn all_non_faulty_halted(&self) -> bool {
        self.status.iter().all(|s| !s.is_running())
    }

    /// Runs until all non-faulty nodes halt or `max_rounds` rounds elapse.
    pub fn run(&mut self, max_rounds: u64) -> ExecutionReport<P::Output> {
        let mut termination = Termination::RoundLimit;
        for _ in 0..max_rounds {
            self.step();
            if self.all_non_faulty_halted() {
                termination = Termination::AllHalted;
                break;
            }
        }
        self.report(termination)
    }

    /// Executes one single-port round.
    pub fn step(&mut self) {
        let n = self.n();
        let round = self.round;

        // Phase 1: collect each running node's single send and poll intent.
        let mut sends: Vec<Option<crate::message::Outgoing<P::Msg>>> = Vec::with_capacity(n);
        let mut polls: Vec<Option<NodeId>> = Vec::with_capacity(n);
        for (i, node) in self.nodes.iter_mut().enumerate() {
            if self.status[i].is_running() {
                sends.push(node.send(round));
                polls.push(node.poll(round));
            } else {
                sends.push(None);
                polls.push(None);
            }
        }

        // Phase 2: crash adversary.
        let alive = NodeSet::from_iter(
            n,
            self.status
                .iter()
                .enumerate()
                .filter(|(_, s)| !s.is_crashed())
                .map(|(i, _)| NodeId::new(i)),
        );
        let crashed_set = NodeSet::from_iter(
            n,
            self.status
                .iter()
                .enumerate()
                .filter(|(_, s)| s.is_crashed())
                .map(|(i, _)| NodeId::new(i)),
        );
        let send_intents: Vec<Vec<NodeId>> = sends
            .iter()
            .map(|s| s.iter().map(|o| o.to).collect())
            .collect();
        let view = AdversaryView {
            round,
            alive: &alive,
            crashed: &crashed_set,
            send_intents: &send_intents,
            poll_intents: &polls,
            remaining_budget: self.fault_budget - self.crashes,
        };
        let directives = self.adversary.plan_round(&view);
        let mut crashed_this_round: Vec<Option<crate::adversary::DeliveryFilter>> = vec![None; n];
        for directive in directives {
            if self.crashes >= self.fault_budget {
                break;
            }
            let idx = directive.node.index();
            if idx >= n || self.status[idx].is_crashed() {
                continue;
            }
            self.status[idx] = NodeStatus::Crashed(round);
            self.crashed_at[idx] = Some(round);
            self.crashes += 1;
            self.metrics.record_crash();
            self.trace.record(Event::Crashed {
                round,
                node: directive.node,
            });
            crashed_this_round[idx] = Some(directive.deliver);
        }

        // Phase 3: enqueue messages onto destination ports.
        for (sender_idx, send) in sends.into_iter().enumerate() {
            let Some(out) = send else { continue };
            if let Some(filter) = &crashed_this_round[sender_idx] {
                if !filter.allows(0, out.to) {
                    continue;
                }
            }
            self.metrics
                .record_message(round.as_u64(), out.msg.bit_len());
            let dest = out.to.index();
            if dest < n && !self.status[dest].is_crashed() {
                self.ports[dest][sender_idx].push_back(out.msg);
            }
        }

        // Phase 4: polled ports are drained and delivered.
        for (i, node) in self.nodes.iter_mut().enumerate() {
            if !self.status[i].is_running() {
                continue;
            }
            if let Some(port) = polls[i] {
                let drained: Vec<P::Msg> = self.ports[i][port.index()].drain(..).collect();
                node.receive(round, port, drained);
            }
            if let Some(output) = node.output() {
                if self.outputs[i].is_none() {
                    self.trace.record(Event::Decided {
                        round,
                        node: NodeId::new(i),
                        value: format!("{output:?}"),
                    });
                    self.outputs[i] = Some(output);
                }
            }
            if node.has_halted() {
                self.status[i] = NodeStatus::Halted;
                self.halted_at[i] = Some(round);
                self.trace.record(Event::Halted {
                    round,
                    node: NodeId::new(i),
                });
            }
        }

        self.metrics.rounds = round.as_u64() + 1;
        self.round = round.next();
    }

    fn report(&self, termination: Termination) -> ExecutionReport<P::Output> {
        ExecutionReport {
            outputs: self.outputs.clone(),
            crashed_at: self.crashed_at.clone(),
            halted_at: self.halted_at.clone(),
            byzantine: NodeSet::empty(self.n()),
            metrics: self.metrics.clone(),
            termination,
        }
    }
}

impl<P: SinglePortProtocol> std::fmt::Debug for SinglePortRunner<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SinglePortRunner")
            .field("n", &self.n())
            .field("round", &self.round)
            .field("crashes", &self.crashes)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::AdaptiveSplitAdversary;
    use crate::message::Outgoing;

    /// A round-robin token ring: node i sends its accumulated OR to node
    /// (i+1) mod n in round i, and polls port (i-1) mod n in every round.
    struct Ring {
        me: usize,
        n: usize,
        value: bool,
        decided: Option<bool>,
        rounds: u64,
    }

    impl SinglePortProtocol for Ring {
        type Msg = bool;
        type Output = bool;

        fn send(&mut self, _round: Round) -> Option<Outgoing<bool>> {
            Some(Outgoing::new(
                NodeId::new((self.me + 1) % self.n),
                self.value,
            ))
        }

        fn poll(&mut self, _round: Round) -> Option<NodeId> {
            Some(NodeId::new((self.me + self.n - 1) % self.n))
        }

        fn receive(&mut self, _round: Round, _from: NodeId, msgs: Vec<bool>) {
            for m in msgs {
                self.value |= m;
            }
        }

        fn output(&self) -> Option<bool> {
            self.decided
        }

        fn has_halted(&self) -> bool {
            self.decided.is_some()
        }
    }

    impl Ring {
        fn tick(&mut self) {
            self.rounds += 1;
        }
    }

    /// Wrapper that decides after 2n rounds.
    struct RingUntil(Ring);

    impl SinglePortProtocol for RingUntil {
        type Msg = bool;
        type Output = bool;

        fn send(&mut self, round: Round) -> Option<Outgoing<bool>> {
            self.0.send(round)
        }

        fn poll(&mut self, round: Round) -> Option<NodeId> {
            self.0.poll(round)
        }

        fn receive(&mut self, round: Round, from: NodeId, msgs: Vec<bool>) {
            self.0.receive(round, from, msgs);
            self.0.tick();
            if self.0.rounds >= 2 * self.0.n as u64 {
                self.0.decided = Some(self.0.value);
            }
        }

        fn output(&self) -> Option<bool> {
            self.0.output()
        }

        fn has_halted(&self) -> bool {
            self.0.has_halted()
        }
    }

    fn ring(n: usize, one_at: usize) -> Vec<RingUntil> {
        (0..n)
            .map(|i| {
                RingUntil(Ring {
                    me: i,
                    n,
                    value: i == one_at,
                    decided: None,
                    rounds: 0,
                })
            })
            .collect()
    }

    #[test]
    fn rejects_empty_system() {
        let nodes: Vec<RingUntil> = Vec::new();
        assert!(matches!(
            SinglePortRunner::new(nodes),
            Err(SimError::EmptySystem)
        ));
    }

    #[test]
    fn ring_propagates_value_one_hop_per_round() {
        let n = 6;
        let mut runner = SinglePortRunner::new(ring(n, 0)).unwrap();
        let report = runner.run(3 * n as u64);
        assert!(report.all_non_faulty_decided());
        assert!(report.non_faulty_deciders_agree());
        assert_eq!(report.agreed_value(), Some(&true));
        // Each node sends exactly one message per round.
        assert_eq!(report.metrics.peak_messages_in_a_round(), n as u64);
    }

    #[test]
    fn ports_buffer_until_polled() {
        // A node that never polls never sees the message, but the message is
        // still counted as sent.
        struct SendOnly {
            me: usize,
            done: bool,
        }
        impl SinglePortProtocol for SendOnly {
            type Msg = bool;
            type Output = bool;
            fn send(&mut self, round: Round) -> Option<Outgoing<bool>> {
                (self.me == 0 && round.as_u64() == 0).then(|| Outgoing::new(NodeId::new(1), true))
            }
            fn poll(&mut self, _round: Round) -> Option<NodeId> {
                None
            }
            fn receive(&mut self, _round: Round, _from: NodeId, _msgs: Vec<bool>) {}
            fn output(&self) -> Option<bool> {
                self.done.then_some(false)
            }
            fn has_halted(&self) -> bool {
                self.done
            }
        }
        let nodes = vec![
            SendOnly { me: 0, done: false },
            SendOnly { me: 1, done: false },
        ];
        let mut runner = SinglePortRunner::new(nodes).unwrap();
        let report = runner.run(3);
        assert_eq!(report.metrics.messages, 1);
        assert_eq!(report.termination, Termination::RoundLimit);
    }

    #[test]
    fn adaptive_split_adversary_isolates_a_node() {
        let n = 8;
        let t = 6;
        let adversary = AdaptiveSplitAdversary::new(NodeId::new(0));
        let mut runner =
            SinglePortRunner::with_adversary(ring(n, 0), Box::new(adversary), t).unwrap();
        let report = runner.run(3 * n as u64);
        // Node 0's neighbours get crashed, so the `true` held by node 0 cannot
        // spread to everyone; the nodes far from 0 decide `false`.
        let crashed = report.crashed();
        assert!(crashed.len() <= t);
        assert!(!crashed.is_empty());
        let zero_output = report.output_of(NodeId::new(0));
        // Node 0 remains operational (the adversary crashes its neighbours,
        // not node 0 itself).
        assert!(report.non_faulty().contains(NodeId::new(0)));
        assert_eq!(zero_output, Some(&true));
    }
}
