//! Frame transports for the sharding layer.
//!
//! A [`ShardTransport`] moves opaque byte frames between the coordinating
//! (parent) process and one shard worker.  Two backends are provided:
//!
//! * [`ChannelTransport`] — in-process `mpsc` channel pairs, used when shard
//!   workers run as threads on the runner's persistent [`WorkerPool`]
//!   (see [`crate::pool`]); this is also how the wire codec is exercised by
//!   every in-process test.
//! * [`StreamTransport`] — length-prefixed frames over any `Read`/`Write`
//!   pair, used for the pipes of `run_experiments --shard-worker` child
//!   processes (and, later, sockets to remote machines: swapping the stream
//!   is the whole transport change).
//!
//! [`WorkerPool`]: crate::pool::WorkerPool

use std::io::{self, Read, Write};
use std::sync::mpsc::{Receiver, Sender};

/// Maximum accepted frame length (1 GiB).  A corrupt length prefix must
/// not make the receiver allocate unbounded memory, so the cap exists as a
/// sanity bound, not a workload limit — but note that one `Delivered`
/// response carries a chunk's whole round of surviving messages with
/// `Arc`-shared payloads encoded **per copy**, so broadcast-heavy
/// experiments at paper-scale `n` can reach hundreds of megabytes per
/// frame.  Payload interning (ROADMAP) is the planned fix for that regime;
/// until then this cap is sized to clear it rather than reject it.
pub const MAX_FRAME_LEN: u32 = 1024 * 1024 * 1024;

/// A bidirectional, ordered, reliable frame pipe to one shard worker.
///
/// Implementations must preserve frame boundaries and order; the shard
/// protocol is strictly request/response per worker, so no concurrency is
/// required of a single transport.
pub trait ShardTransport: Send {
    /// Sends one frame.
    ///
    /// # Errors
    ///
    /// Returns an I/O error when the peer is gone or the underlying stream
    /// fails.
    fn send(&mut self, frame: &[u8]) -> io::Result<()>;

    /// Receives the next frame, blocking until one arrives.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::UnexpectedEof`] when the peer closed the
    /// connection.
    fn recv(&mut self) -> io::Result<Vec<u8>>;
}

/// In-process transport: a pair of unbounded `mpsc` channels.
pub struct ChannelTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

impl ChannelTransport {
    /// Creates a connected pair of endpoints.
    pub fn pair() -> (ChannelTransport, ChannelTransport) {
        let (a_tx, b_rx) = std::sync::mpsc::channel();
        let (b_tx, a_rx) = std::sync::mpsc::channel();
        (
            ChannelTransport { tx: a_tx, rx: a_rx },
            ChannelTransport { tx: b_tx, rx: b_rx },
        )
    }
}

impl ShardTransport for ChannelTransport {
    fn send(&mut self, frame: &[u8]) -> io::Result<()> {
        self.tx
            .send(frame.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "shard peer hung up"))
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        self.rx
            .recv()
            .map_err(|_| io::Error::new(io::ErrorKind::UnexpectedEof, "shard peer hung up"))
    }
}

/// Stream transport: `[u32 little-endian length][bytes]` frames over any
/// reader/writer pair (child-process pipes today, sockets tomorrow).
pub struct StreamTransport<R, W> {
    reader: R,
    writer: W,
}

impl<R: Read + Send, W: Write + Send> StreamTransport<R, W> {
    /// Wraps a reader/writer pair.
    pub fn new(reader: R, writer: W) -> Self {
        StreamTransport { reader, writer }
    }
}

impl<R: Read + Send, W: Write + Send> ShardTransport for StreamTransport<R, W> {
    fn send(&mut self, frame: &[u8]) -> io::Result<()> {
        let len = u32::try_from(frame.len()).map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                "shard frame exceeds u32 length",
            )
        })?;
        if len > MAX_FRAME_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("shard frame of {len} bytes exceeds MAX_FRAME_LEN"),
            ));
        }
        self.writer.write_all(&len.to_le_bytes())?;
        self.writer.write_all(frame)?;
        self.writer.flush()
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        let mut header = [0u8; 4];
        self.reader.read_exact(&mut header)?;
        let len = u32::from_le_bytes(header);
        if len > MAX_FRAME_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("shard frame length {len} exceeds MAX_FRAME_LEN"),
            ));
        }
        let mut frame = vec![0u8; len as usize];
        self.reader.read_exact(&mut frame)?;
        Ok(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_pair_is_bidirectional_and_ordered() {
        let (mut a, mut b) = ChannelTransport::pair();
        a.send(b"one").unwrap();
        a.send(b"two").unwrap();
        assert_eq!(b.recv().unwrap(), b"one");
        assert_eq!(b.recv().unwrap(), b"two");
        b.send(b"ack").unwrap();
        assert_eq!(a.recv().unwrap(), b"ack");
    }

    #[test]
    fn channel_reports_hangup() {
        let (mut a, b) = ChannelTransport::pair();
        drop(b);
        assert_eq!(a.send(b"x").unwrap_err().kind(), io::ErrorKind::BrokenPipe);
        assert_eq!(a.recv().unwrap_err().kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn stream_frames_round_trip() {
        // Half-duplex simulation: encode into a buffer, then read it back.
        let mut written: Vec<u8> = Vec::new();
        {
            let mut tx = StreamTransport::new(io::empty(), &mut written);
            tx.send(b"hello").unwrap();
            tx.send(b"").unwrap();
            tx.send(&[7u8; 300]).unwrap();
        }
        let mut rx = StreamTransport::new(written.as_slice(), io::sink());
        assert_eq!(rx.recv().unwrap(), b"hello");
        assert_eq!(rx.recv().unwrap(), b"");
        assert_eq!(rx.recv().unwrap(), vec![7u8; 300]);
        assert_eq!(
            rx.recv().unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof,
            "stream exhausted"
        );
    }

    #[test]
    fn stream_rejects_oversized_length_prefix() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        let mut rx = StreamTransport::new(bytes.as_slice(), io::sink());
        assert_eq!(rx.recv().unwrap_err().kind(), io::ErrorKind::InvalidData);
    }
}
