//! Frame transports for the sharding layer.
//!
//! A [`ShardTransport`] moves opaque byte frames between the coordinating
//! (parent) process and one shard worker.  Two backends are provided:
//!
//! * [`ChannelTransport`] — in-process `mpsc` channel pairs, used when shard
//!   workers run as threads on the runner's persistent [`WorkerPool`]
//!   (see [`crate::pool`]); this is also how the wire codec is exercised by
//!   every in-process test.
//! * [`StreamTransport`] — length-prefixed frames over any `Read`/`Write`
//!   pair, used for the pipes of `run_experiments --shard-worker` child
//!   processes (and, later, sockets to remote machines: swapping the stream
//!   is the whole transport change).
//!
//! [`WorkerPool`]: crate::pool::WorkerPool

use std::io::{self, Read, Write};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::time::Duration;

/// Maximum accepted frame length (1 GiB).  A corrupt length prefix must
/// not make the receiver allocate unbounded memory, so the cap exists as a
/// sanity bound, not a workload limit — but note that one `Delivered`
/// response carries a chunk's whole round of surviving messages with
/// `Arc`-shared payloads encoded **per copy**, so broadcast-heavy
/// experiments at paper-scale `n` can reach hundreds of megabytes per
/// frame.  Payload interning (ROADMAP) is the planned fix for that regime;
/// until then this cap is sized to clear it rather than reject it.
pub const MAX_FRAME_LEN: u32 = 1024 * 1024 * 1024;

/// A bidirectional, ordered, reliable frame pipe to one shard worker.
///
/// Implementations must preserve frame boundaries and order; the shard
/// protocol is strictly request/response per worker, so no concurrency is
/// required of a single transport.
pub trait ShardTransport: Send {
    /// Sends one frame.
    ///
    /// # Errors
    ///
    /// Returns an I/O error when the peer is gone or the underlying stream
    /// fails.
    fn send(&mut self, frame: &[u8]) -> io::Result<()>;

    /// Receives the next frame, blocking until one arrives.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::UnexpectedEof`] when the peer closed the
    /// connection.
    fn recv(&mut self) -> io::Result<Vec<u8>>;
}

/// In-process transport: a pair of unbounded `mpsc` channels.
pub struct ChannelTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

impl ChannelTransport {
    /// Creates a connected pair of endpoints.
    pub fn pair() -> (ChannelTransport, ChannelTransport) {
        let (a_tx, b_rx) = std::sync::mpsc::channel();
        let (b_tx, a_rx) = std::sync::mpsc::channel();
        (
            ChannelTransport { tx: a_tx, rx: a_rx },
            ChannelTransport { tx: b_tx, rx: b_rx },
        )
    }
}

impl ShardTransport for ChannelTransport {
    fn send(&mut self, frame: &[u8]) -> io::Result<()> {
        self.tx
            .send(frame.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "shard peer hung up"))
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        self.rx
            .recv()
            .map_err(|_| io::Error::new(io::ErrorKind::UnexpectedEof, "shard peer hung up"))
    }
}

/// Stream transport: `[u32 little-endian length][bytes]` frames over any
/// reader/writer pair (child-process pipes today, sockets tomorrow).
pub struct StreamTransport<R, W> {
    reader: R,
    writer: W,
}

impl<R: Read + Send, W: Write + Send> StreamTransport<R, W> {
    /// Wraps a reader/writer pair.
    pub fn new(reader: R, writer: W) -> Self {
        StreamTransport { reader, writer }
    }
}

impl<R: Read + Send, W: Write + Send> ShardTransport for StreamTransport<R, W> {
    fn send(&mut self, frame: &[u8]) -> io::Result<()> {
        write_frame(&mut self.writer, frame)
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        read_frame(&mut self.reader)
    }
}

/// Writes one `[u32 little-endian length][bytes]` frame and flushes.
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidInput`] when the frame exceeds
/// [`MAX_FRAME_LEN`], or the underlying write/flush error.
pub fn write_frame(writer: &mut impl Write, frame: &[u8]) -> io::Result<()> {
    let len = u32::try_from(frame.len()).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            "shard frame exceeds u32 length",
        )
    })?;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("shard frame of {len} bytes exceeds MAX_FRAME_LEN ({MAX_FRAME_LEN} bytes)"),
        ));
    }
    writer.write_all(&len.to_le_bytes())?;
    writer.write_all(frame)?;
    writer.flush()
}

/// Reads one `[u32 little-endian length][bytes]` frame.
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] on a length prefix above
/// [`MAX_FRAME_LEN`], [`io::ErrorKind::UnexpectedEof`] on a stream that ends
/// mid-frame, or the underlying read error.
pub fn read_frame(reader: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut header = [0u8; 4];
    read_full(reader, &mut header)?;
    let len = u32::from_le_bytes(header);
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("shard frame length {len} exceeds MAX_FRAME_LEN ({MAX_FRAME_LEN} bytes)"),
        ));
    }
    let mut frame = vec![0u8; len as usize];
    read_full(reader, &mut frame)?;
    Ok(frame)
}

/// A [`StreamTransport`] whose reads carry a deadline: a stalled peer trips
/// [`io::ErrorKind::TimedOut`] instead of blocking the coordinator forever.
///
/// The reader half is moved onto a dedicated thread that assembles frames
/// (using the same [`read_frame`] codec) and hands them over an in-process
/// channel; `recv` waits on that channel with a timeout.  Writes stay on the
/// caller's thread.  The reader thread exits after delivering its first
/// error (EOF included), so an abandoned transport does not leak a spinning
/// thread — at worst the thread stays parked in `read(2)` until the peer's
/// stream closes.
pub struct DeadlineTransport<W> {
    writer: W,
    frames: Receiver<io::Result<Vec<u8>>>,
    deadline: Duration,
}

impl<W: Write + Send> DeadlineTransport<W> {
    /// Spawns the reader thread and wraps the pair.
    pub fn new<R: Read + Send + 'static>(reader: R, writer: W, deadline: Duration) -> Self {
        let (tx, rx) = std::sync::mpsc::channel::<io::Result<Vec<u8>>>();
        std::thread::spawn(move || {
            let mut reader = reader;
            loop {
                let result = read_frame(&mut reader);
                let failed = result.is_err();
                if tx.send(result).is_err() || failed {
                    return;
                }
            }
        });
        DeadlineTransport {
            writer,
            frames: rx,
            deadline,
        }
    }

    /// The configured per-frame read deadline.
    pub fn deadline(&self) -> Duration {
        self.deadline
    }
}

impl<W: Write + Send> ShardTransport for DeadlineTransport<W> {
    fn send(&mut self, frame: &[u8]) -> io::Result<()> {
        write_frame(&mut self.writer, frame)
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        match self.frames.recv_timeout(self.deadline) {
            Ok(result) => result,
            Err(RecvTimeoutError::Timeout) => Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("no shard frame within {:?}", self.deadline),
            )),
            // The reader thread already delivered its terminal error and
            // exited; any further recv finds the channel closed.
            Err(RecvTimeoutError::Disconnected) => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "shard stream reader terminated",
            )),
        }
    }
}

/// Fills `buf` completely from `reader` — `read_exact` semantics, written
/// out so the frame layer's behaviour on real sockets is guaranteed locally
/// rather than inherited: short reads are retried until the buffer is full
/// (a TCP `read` returns whatever one segment delivered, routinely less
/// than a frame), `ErrorKind::Interrupted` is transparently retried (a
/// signal landing mid-`read(2)` must not kill a cluster node), and EOF
/// before the buffer fills maps to [`io::ErrorKind::UnexpectedEof`] (how
/// the serve loops recognise a cleanly departed peer).
fn read_full(reader: &mut impl Read, mut buf: &mut [u8]) -> io::Result<()> {
    while !buf.is_empty() {
        match reader.read(buf) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "shard stream closed mid-frame",
                ))
            }
            Ok(n) => buf = &mut buf[n..],
            Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
            Err(err) => return Err(err),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_pair_is_bidirectional_and_ordered() {
        let (mut a, mut b) = ChannelTransport::pair();
        a.send(b"one").unwrap();
        a.send(b"two").unwrap();
        assert_eq!(b.recv().unwrap(), b"one");
        assert_eq!(b.recv().unwrap(), b"two");
        b.send(b"ack").unwrap();
        assert_eq!(a.recv().unwrap(), b"ack");
    }

    #[test]
    fn channel_reports_hangup() {
        let (mut a, b) = ChannelTransport::pair();
        drop(b);
        assert_eq!(a.send(b"x").unwrap_err().kind(), io::ErrorKind::BrokenPipe);
        assert_eq!(a.recv().unwrap_err().kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn stream_frames_round_trip() {
        // Half-duplex simulation: encode into a buffer, then read it back.
        let mut written: Vec<u8> = Vec::new();
        {
            let mut tx = StreamTransport::new(io::empty(), &mut written);
            tx.send(b"hello").unwrap();
            tx.send(b"").unwrap();
            tx.send(&[7u8; 300]).unwrap();
        }
        let mut rx = StreamTransport::new(written.as_slice(), io::sink());
        assert_eq!(rx.recv().unwrap(), b"hello");
        assert_eq!(rx.recv().unwrap(), b"");
        assert_eq!(rx.recv().unwrap(), vec![7u8; 300]);
        assert_eq!(
            rx.recv().unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof,
            "stream exhausted"
        );
    }

    #[test]
    fn stream_rejects_oversized_length_prefix() {
        let len = MAX_FRAME_LEN + 1;
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&len.to_le_bytes());
        let mut rx = StreamTransport::new(bytes.as_slice(), io::sink());
        let err = rx.recv().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(
            msg.contains(&len.to_string()),
            "error names the offending length: {msg}"
        );
        assert!(
            msg.contains(&MAX_FRAME_LEN.to_string()),
            "error names the cap: {msg}"
        );
    }

    #[test]
    fn oversized_send_error_names_length_and_cap() {
        // A zeroed vec this large is untouched virtual memory: `send`
        // rejects it on length alone, before reading a single byte.
        let len = MAX_FRAME_LEN as usize + 1;
        let huge = vec![0u8; len];
        let mut tx = StreamTransport::new(io::empty(), io::sink());
        let err = tx.send(&huge).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        let msg = err.to_string();
        assert!(
            msg.contains(&len.to_string()),
            "error names the offending length: {msg}"
        );
        assert!(
            msg.contains(&MAX_FRAME_LEN.to_string()),
            "error names the cap: {msg}"
        );
    }

    /// A reader that delivers one byte at a time and injects a spurious
    /// `ErrorKind::Interrupted` before every byte — the worst-case behaviour
    /// a signal-heavy socket read can exhibit.  Frames must still round-trip
    /// byte-identically.
    struct InterruptingReader<'a> {
        data: &'a [u8],
        pos: usize,
        interrupt_next: bool,
    }

    impl Read for InterruptingReader<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.interrupt_next {
                self.interrupt_next = false;
                return Err(io::Error::new(io::ErrorKind::Interrupted, "signal"));
            }
            self.interrupt_next = true;
            if self.pos >= self.data.len() || buf.is_empty() {
                return Ok(0);
            }
            buf[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn short_and_interrupted_reads_still_assemble_frames() {
        let mut written: Vec<u8> = Vec::new();
        {
            let mut tx = StreamTransport::new(io::empty(), &mut written);
            tx.send(b"hello").unwrap();
            tx.send(&[42u8; 97]).unwrap();
            tx.send(b"").unwrap();
        }
        let reader = InterruptingReader {
            data: &written,
            pos: 0,
            interrupt_next: true,
        };
        let mut rx = StreamTransport::new(reader, io::sink());
        assert_eq!(rx.recv().unwrap(), b"hello");
        assert_eq!(rx.recv().unwrap(), vec![42u8; 97]);
        assert_eq!(rx.recv().unwrap(), b"");
        assert_eq!(rx.recv().unwrap_err().kind(), io::ErrorKind::UnexpectedEof);
    }

    /// A blocking reader fed by an in-process channel: `read` parks until
    /// bytes arrive (like a quiet socket) and reports EOF when the feeding
    /// end is dropped.
    struct ChannelReader {
        rx: Receiver<Vec<u8>>,
        buf: Vec<u8>,
        pos: usize,
    }

    impl Read for ChannelReader {
        fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
            while self.pos >= self.buf.len() {
                match self.rx.recv() {
                    Ok(bytes) => {
                        self.buf = bytes;
                        self.pos = 0;
                    }
                    Err(_) => return Ok(0),
                }
            }
            let n = (self.buf.len() - self.pos).min(out.len());
            out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn deadline_transport_delivers_then_times_out_then_reports_eof() {
        let (tx, rx) = std::sync::mpsc::channel::<Vec<u8>>();
        let reader = ChannelReader {
            rx,
            buf: Vec::new(),
            pos: 0,
        };
        let mut transport = DeadlineTransport::new(reader, io::sink(), Duration::from_millis(200));
        assert_eq!(transport.deadline(), Duration::from_millis(200));

        // A frame that arrives within the deadline is delivered intact.
        let mut encoded = Vec::new();
        write_frame(&mut encoded, b"payload").unwrap();
        tx.send(encoded).unwrap();
        assert_eq!(transport.recv().unwrap(), b"payload");

        // A silent peer trips the deadline instead of blocking forever.
        let err = transport.recv().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert!(
            err.to_string().contains("200ms"),
            "timeout error names the deadline: {err}"
        );

        // A departed peer surfaces as EOF, now and on every later recv.
        drop(tx);
        assert_eq!(
            transport.recv().unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        assert_eq!(
            transport.recv().unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn deadline_transport_writes_plain_stream_frames() {
        let (_tx, rx) = std::sync::mpsc::channel::<Vec<u8>>();
        let reader = ChannelReader {
            rx,
            buf: Vec::new(),
            pos: 0,
        };
        let mut written: Vec<u8> = Vec::new();
        {
            let mut transport =
                DeadlineTransport::new(reader, &mut written, Duration::from_millis(50));
            transport.send(b"one").unwrap();
            transport.send(&[5u8; 40]).unwrap();
        }
        let mut rx = StreamTransport::new(written.as_slice(), io::sink());
        assert_eq!(rx.recv().unwrap(), b"one");
        assert_eq!(rx.recv().unwrap(), vec![5u8; 40]);
    }

    #[test]
    fn eof_mid_frame_is_unexpected_eof() {
        let mut written: Vec<u8> = Vec::new();
        {
            let mut tx = StreamTransport::new(io::empty(), &mut written);
            tx.send(&[9u8; 50]).unwrap();
        }
        // Truncate inside the payload: header promises 50 bytes, stream
        // delivers 10.
        written.truncate(4 + 10);
        let mut rx = StreamTransport::new(written.as_slice(), io::sink());
        let err = rx.recv().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}
