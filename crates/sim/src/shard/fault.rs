//! Deterministic fault injection for shard transports.
//!
//! A [`FaultPlan`] names process-level faults by *position* — shard index
//! and worker→parent frame index — so a test or CI job can kill, corrupt,
//! or stall a specific worker at a specific point of the execution and get
//! the same failure every run.  [`ArmedPlan::wrap`] layers a
//! [`FaultyTransport`] over any [`ShardTransport`]; each fault is one-shot
//! and its fired state is shared (via `Arc`) across every wrapper armed
//! from the same plan, so a transport recreated by the coordinator's
//! respawn ladder does not re-fire the fault it just recovered from.
//!
//! The four kinds exercise the four recovery entry points:
//!
//! * [`FaultKind::Kill`] — the transport reports EOF and stays dead
//!   (transport-error path; the respawn factory must produce a new worker);
//! * [`FaultKind::Torn`] — one response arrives as a strict prefix of the
//!   real frame (payload decode-failure path);
//! * [`FaultKind::Garbage`] — one response arrives as junk bytes that fail
//!   the wire-version check (frame decode-failure path);
//! * [`FaultKind::Stall`] — one response is swallowed and the transport
//!   keeps listening, so a read deadline underneath (see
//!   `DeadlineTransport`) genuinely expires (deadline path).

use std::fmt;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use super::transport::ShardTransport;

/// What happens to the faulted frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The worker dies: permanent EOF on recv, broken pipe on send.
    Kill,
    /// The frame is torn: a strict prefix of the real bytes is delivered.
    Torn,
    /// The response is swallowed; the recv keeps waiting (tripping any
    /// read deadline below this wrapper).
    Stall,
    /// The frame is replaced by junk bytes with an invalid wire version.
    Garbage,
}

impl FaultKind {
    /// The spec keyword for this kind (`kill`, `torn`, `stall`, `garbage`).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Kill => "kill",
            FaultKind::Torn => "torn",
            FaultKind::Stall => "stall",
            FaultKind::Garbage => "garbage",
        }
    }

    fn parse(word: &str) -> Result<FaultKind, String> {
        match word {
            "kill" => Ok(FaultKind::Kill),
            "torn" => Ok(FaultKind::Torn),
            "stall" => Ok(FaultKind::Stall),
            "garbage" => Ok(FaultKind::Garbage),
            other => Err(format!(
                "unknown fault kind '{other}' (expected kill, torn, stall, or garbage)"
            )),
        }
    }
}

/// One planned fault: `kind` fires on shard `shard` in place of its
/// `frame`-th worker→parent frame (0-based, counted per transport
/// generation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// Which shard's transport misbehaves.
    pub shard: usize,
    /// The 0-based worker→parent frame index the fault replaces.
    pub frame: u64,
    /// What happens to that frame.
    pub kind: FaultKind,
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}@{}", self.kind.name(), self.shard, self.frame)
    }
}

/// A deterministic set of planned transport faults.
///
/// The textual form is a comma-separated list of `KIND:SHARD@FRAME`
/// entries, e.g. `kill:1@3,torn:0@2` — kill shard 1 at its fourth response
/// frame and tear shard 0's third.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The planned faults, in spec order.
    pub faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// Parses the `KIND:SHARD@FRAME[,...]` spec format.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed entry.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut faults = Vec::new();
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                return Err("empty fault entry (expected KIND:SHARD@FRAME)".to_string());
            }
            let (kind_word, position) = entry
                .split_once(':')
                .ok_or_else(|| format!("fault '{entry}' is missing ':' (KIND:SHARD@FRAME)"))?;
            let kind = FaultKind::parse(kind_word)?;
            let (shard_word, frame_word) = position
                .split_once('@')
                .ok_or_else(|| format!("fault '{entry}' is missing '@' (KIND:SHARD@FRAME)"))?;
            let shard: usize = shard_word
                .parse()
                .map_err(|_| format!("fault '{entry}' has a non-numeric shard '{shard_word}'"))?;
            let frame: u64 = frame_word
                .parse()
                .map_err(|_| format!("fault '{entry}' has a non-numeric frame '{frame_word}'"))?;
            faults.push(FaultSpec { shard, frame, kind });
        }
        Ok(FaultPlan { faults })
    }

    /// Whether the plan contains no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Arms the plan: every fault gets a shared one-shot fired flag, so
    /// all wrappers produced by the returned [`ArmedPlan`] — including
    /// those wrapping respawned transports — fire each fault exactly once.
    pub fn arm(&self) -> ArmedPlan {
        ArmedPlan {
            faults: self
                .faults
                .iter()
                .map(|&spec| ArmedFault {
                    spec,
                    fired: Arc::new(AtomicBool::new(false)),
                })
                .collect(),
        }
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for fault in &self.faults {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{fault}")?;
            first = false;
        }
        Ok(())
    }
}

#[derive(Clone)]
struct ArmedFault {
    spec: FaultSpec,
    fired: Arc<AtomicBool>,
}

/// A [`FaultPlan`] with live one-shot state, ready to wrap transports.
#[derive(Clone, Default)]
pub struct ArmedPlan {
    faults: Vec<ArmedFault>,
}

impl ArmedPlan {
    /// Wraps `inner` with this plan's faults for `shard`.  Returns `inner`
    /// unwrapped when no fault targets the shard.
    pub fn wrap(&self, shard: usize, inner: Box<dyn ShardTransport>) -> Box<dyn ShardTransport> {
        let faults: Vec<ArmedFault> = self
            .faults
            .iter()
            .filter(|fault| fault.spec.shard == shard)
            .cloned()
            .collect();
        if faults.is_empty() {
            inner
        } else {
            Box::new(FaultyTransport {
                inner,
                faults,
                received: 0,
                dead: false,
            })
        }
    }
}

/// A [`ShardTransport`] wrapper that injects the armed faults of one shard.
pub struct FaultyTransport {
    inner: Box<dyn ShardTransport>,
    faults: Vec<ArmedFault>,
    /// Worker→parent frames delivered (or faulted) by this wrapper.
    received: u64,
    dead: bool,
}

impl FaultyTransport {
    /// Claims the first unfired fault planned for the current frame index,
    /// marking it fired.
    fn claim(&mut self) -> Option<FaultKind> {
        let current = self.received;
        self.faults
            .iter()
            .find(|fault| {
                fault.spec.frame == current
                    && fault
                        .fired
                        .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
            })
            .map(|fault| fault.spec.kind)
    }
}

impl ShardTransport for FaultyTransport {
    fn send(&mut self, frame: &[u8]) -> io::Result<()> {
        if self.dead {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "injected worker kill: peer is gone",
            ));
        }
        self.inner.send(frame)
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        if self.dead {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "injected worker kill: peer is gone",
            ));
        }
        match self.claim() {
            None => {
                let frame = self.inner.recv()?;
                self.received += 1;
                Ok(frame)
            }
            Some(FaultKind::Kill) => {
                self.dead = true;
                Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "injected worker kill",
                ))
            }
            Some(FaultKind::Torn) => {
                // Consume the real frame (keeping the stream aligned) and
                // deliver a strict prefix; the parent's frame decode fails.
                let frame = self.inner.recv()?;
                self.received += 1;
                let keep = frame.len() / 2;
                Ok(frame.into_iter().take(keep).collect())
            }
            Some(FaultKind::Garbage) => {
                // Consume the real frame and deliver junk whose first two
                // bytes cannot be the wire version.
                let _ = self.inner.recv()?;
                self.received += 1;
                Ok(vec![0xEE; 16])
            }
            Some(FaultKind::Stall) => {
                // Swallow the real response, then keep listening: in a
                // strict request/response protocol nothing else arrives,
                // so a deadline below this wrapper genuinely expires.
                let _ = self.inner.recv()?;
                self.received += 1;
                let frame = self.inner.recv()?;
                self.received += 1;
                Ok(frame)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::transport::{
        write_frame, ChannelTransport, DeadlineTransport, StreamTransport,
    };
    use super::*;
    use std::io::Read;
    use std::time::Duration;

    #[test]
    fn plan_parses_and_round_trips() {
        let plan = FaultPlan::parse("kill:1@3,torn:0@2,stall:2@0,garbage:0@7").unwrap();
        assert_eq!(plan.faults.len(), 4);
        assert_eq!(
            plan.faults[0],
            FaultSpec {
                shard: 1,
                frame: 3,
                kind: FaultKind::Kill
            }
        );
        assert_eq!(plan.to_string(), "kill:1@3,torn:0@2,stall:2@0,garbage:0@7");
        assert_eq!(FaultPlan::parse(&plan.to_string()).unwrap(), plan);
        assert!(FaultPlan::default().is_empty());
        assert!(!plan.is_empty());
    }

    #[test]
    fn plan_rejects_malformed_specs() {
        for bad in [
            "",
            "kill",
            "kill:1",
            "kill:@3",
            "kill:x@3",
            "kill:1@x",
            "explode:1@3",
            "kill:1@3,,torn:0@2",
        ] {
            let err = FaultPlan::parse(bad).unwrap_err();
            assert!(!err.is_empty(), "spec '{bad}' must be rejected");
        }
    }

    fn encoded(frame: &[u8]) -> Vec<u8> {
        frame.to_vec()
    }

    #[test]
    fn kill_is_permanent_and_does_not_refire_after_rewrap() {
        let plan = FaultPlan::parse("kill:0@1").unwrap().arm();
        let (parent, mut worker) = ChannelTransport::pair();
        worker.send(&encoded(b"frame0")).unwrap();
        worker.send(&encoded(b"frame1")).unwrap();
        let mut faulty = plan.wrap(0, Box::new(parent));
        assert_eq!(faulty.recv().unwrap(), b"frame0");
        let err = faulty.recv().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // Dead for good: both directions fail from now on.
        assert_eq!(
            faulty.recv().unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        assert_eq!(
            faulty.send(b"req").unwrap_err().kind(),
            io::ErrorKind::BrokenPipe
        );
        // A respawned transport armed from the same plan does not re-fire.
        let (parent2, mut worker2) = ChannelTransport::pair();
        worker2.send(&encoded(b"frame0")).unwrap();
        worker2.send(&encoded(b"frame1")).unwrap();
        let mut fresh = plan.wrap(0, Box::new(parent2));
        assert_eq!(fresh.recv().unwrap(), b"frame0");
        assert_eq!(fresh.recv().unwrap(), b"frame1");
    }

    #[test]
    fn torn_frame_is_a_strict_prefix_once() {
        let plan = FaultPlan::parse("torn:0@0").unwrap().arm();
        let (parent, mut worker) = ChannelTransport::pair();
        worker.send(&encoded(b"0123456789")).unwrap();
        worker.send(&encoded(b"intact")).unwrap();
        let mut faulty = plan.wrap(0, Box::new(parent));
        let torn = faulty.recv().unwrap();
        assert_eq!(torn, b"01234", "strict prefix of the real frame");
        // One-shot: the next frame arrives whole.
        assert_eq!(faulty.recv().unwrap(), b"intact");
    }

    #[test]
    fn garbage_fails_the_wire_version_check() {
        let plan = FaultPlan::parse("garbage:0@0").unwrap().arm();
        let (parent, mut worker) = ChannelTransport::pair();
        worker.send(&encoded(b"real")).unwrap();
        worker.send(&encoded(b"after")).unwrap();
        let mut faulty = plan.wrap(0, Box::new(parent));
        let junk = faulty.recv().unwrap();
        assert_eq!(junk, vec![0xEE; 16]);
        assert!(
            super::super::open_frame(&junk).is_err(),
            "junk must not open as a valid frame"
        );
        assert_eq!(faulty.recv().unwrap(), b"after");
    }

    /// A blocking reader fed by an in-process channel (EOF on hangup).
    struct ChannelReader {
        rx: std::sync::mpsc::Receiver<Vec<u8>>,
        buf: Vec<u8>,
        pos: usize,
    }

    impl Read for ChannelReader {
        fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
            while self.pos >= self.buf.len() {
                match self.rx.recv() {
                    Ok(bytes) => {
                        self.buf = bytes;
                        self.pos = 0;
                    }
                    Err(_) => return Ok(0),
                }
            }
            let n = (self.buf.len() - self.pos).min(out.len());
            out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn stall_swallows_the_response_and_trips_a_real_deadline() {
        let plan = FaultPlan::parse("stall:0@0").unwrap().arm();
        let (tx, rx) = std::sync::mpsc::channel::<Vec<u8>>();
        let reader = ChannelReader {
            rx,
            buf: Vec::new(),
            pos: 0,
        };
        let deadline = DeadlineTransport::new(reader, io::sink(), Duration::from_millis(100));
        let mut faulty = plan.wrap(0, Box::new(deadline));
        let mut framed = Vec::new();
        write_frame(&mut framed, b"the response").unwrap();
        tx.send(framed).unwrap();
        let err = faulty.recv().unwrap_err();
        assert_eq!(
            err.kind(),
            io::ErrorKind::TimedOut,
            "the swallowed response leaves the deadline to expire: {err}"
        );
    }

    #[test]
    fn unplanned_shards_pass_through_unwrapped() {
        let plan = FaultPlan::parse("kill:3@0").unwrap().arm();
        let (parent, mut worker) = ChannelTransport::pair();
        worker.send(&encoded(b"clean")).unwrap();
        // Shard 0 has no faults: the transport passes through unchanged.
        let mut clean = plan.wrap(0, Box::new(parent));
        assert_eq!(clean.recv().unwrap(), b"clean");
    }

    #[test]
    fn faults_compose_on_stream_transports() {
        // Faults sit above any transport, stream included.
        let plan = FaultPlan::parse("torn:0@0").unwrap().arm();
        let mut written: Vec<u8> = Vec::new();
        {
            let mut tx = StreamTransport::new(io::empty(), &mut written);
            tx.send(b"stream-frame").unwrap();
        }
        let stream = StreamTransport::new(io::Cursor::new(written), io::sink());
        let mut faulty = plan.wrap(0, Box::new(stream));
        assert_eq!(faulty.recv().unwrap(), b"stream");
    }
}
