//! Shard-layer tests: the sharded coordinators must be byte-identical to
//! the serial runners, over both transport backends.

use std::io::{self, Read, Write};
use std::sync::mpsc::{Receiver, Sender};

use super::*;
use crate::adversary::byzantine::FloodByzantine;
use crate::adversary::{CrashDirective, FixedCrashSchedule, NoFaults};
use crate::runner::Runner;
use crate::single_port::SinglePortRunner;

/// Every node floods the OR of everything seen; decides after 3 receives.
struct FloodOr {
    n: usize,
    value: bool,
    rounds: u64,
    decided: Option<bool>,
}

impl FloodOr {
    fn nodes(n: usize, one_at: usize) -> Vec<FloodOr> {
        (0..n)
            .map(|i| FloodOr {
                n,
                value: i == one_at,
                rounds: 0,
                decided: None,
            })
            .collect()
    }
}

impl SyncProtocol for FloodOr {
    type Msg = bool;
    type Output = bool;

    fn send(&mut self, _round: Round, out: &mut Vec<Outgoing<bool>>) {
        out.extend((0..self.n).map(|i| Outgoing::new(NodeId::new(i), self.value)));
    }

    fn receive(&mut self, _round: Round, inbox: &[Delivered<bool>]) {
        for m in inbox {
            self.value |= m.msg;
        }
        self.rounds += 1;
        if self.rounds >= 3 {
            self.decided = Some(self.value);
        }
    }

    fn output(&self) -> Option<bool> {
        self.decided
    }

    fn has_halted(&self) -> bool {
        self.decided.is_some()
    }
}

/// Ring for the single-port model: node `i` sends its OR to `i + 1`, polls
/// `i − 1`, decides after `2n` receives.
struct Ring {
    me: usize,
    n: usize,
    value: bool,
    rounds: u64,
    decided: Option<bool>,
}

impl Ring {
    fn nodes(n: usize, one_at: usize) -> Vec<Ring> {
        (0..n)
            .map(|me| Ring {
                me,
                n,
                value: me == one_at,
                rounds: 0,
                decided: None,
            })
            .collect()
    }
}

impl SinglePortProtocol for Ring {
    type Msg = bool;
    type Output = bool;

    fn send(&mut self, _round: Round) -> Option<Outgoing<bool>> {
        Some(Outgoing::new(
            NodeId::new((self.me + 1) % self.n),
            self.value,
        ))
    }

    fn poll(&mut self, _round: Round) -> Option<NodeId> {
        Some(NodeId::new((self.me + self.n - 1) % self.n))
    }

    fn receive(&mut self, _round: Round, _from: NodeId, msgs: &mut Vec<bool>) {
        for m in msgs.drain(..) {
            self.value |= m;
        }
        self.rounds += 1;
        if self.rounds >= 2 * self.n as u64 {
            self.decided = Some(self.value);
        }
    }

    fn output(&self) -> Option<bool> {
        self.decided
    }

    fn has_halted(&self) -> bool {
        self.decided.is_some()
    }
}

fn crash_schedule(n: usize) -> FixedCrashSchedule {
    FixedCrashSchedule::new()
        .crash_at(0, CrashDirective::silent(NodeId::new(1)))
        .crash_at(
            1,
            CrashDirective {
                node: NodeId::new(n / 2),
                deliver: DeliveryFilter::Prefix(3),
            },
        )
        .crash_at(2, CrashDirective::after_send(NodeId::new(n - 1)))
}

#[test]
fn shard_partition_helpers_tile_the_node_range() {
    for n in [1usize, 2, 9, 64, 100] {
        for shards in [1usize, 2, 3, 8] {
            let count = shard_count(n, shards);
            assert!(count >= 1 && count <= shards.max(1));
            let mut covered = 0;
            for index in 0..count {
                let range = shard_range(n, shards, index);
                assert_eq!(range.start, covered, "contiguous n={n} shards={shards}");
                assert!(!range.is_empty());
                covered = range.end;
            }
            assert_eq!(covered, n);
        }
    }
}

#[test]
fn multi_port_sharded_transcript_matches_serial() {
    let n = 24;
    let serial = {
        let mut runner =
            Runner::with_adversary(FloodOr::nodes(n, 3), Box::new(crash_schedule(n)), 3).unwrap();
        runner.enable_trace();
        let report = runner.run(10);
        (report, runner.trace().events().to_vec())
    };
    for shards in [1usize, 2, 3, 5] {
        let participants = FloodOr::nodes(n, 3)
            .into_iter()
            .map(Participant::Honest)
            .collect();
        let mut sharded = ShardedRunner::<bool, bool>::in_process(
            participants,
            Box::new(crash_schedule(n)),
            3,
            shards,
        )
        .unwrap();
        sharded.enable_trace();
        let report = sharded.run(10).expect("sharded run");
        assert_eq!(serial.0, report, "report with shards={shards}");
        assert_eq!(
            serial.1,
            sharded.trace().events().to_vec(),
            "trace with shards={shards}"
        );
    }
    assert_eq!(serial.0.metrics.crashes, 3);
    assert!(serial.0.all_non_faulty_decided());
}

#[test]
fn multi_port_sharded_matches_serial_with_byzantine_nodes() {
    let n = 12;
    let build = || {
        let mut participants: Vec<Participant<FloodOr>> = FloodOr::nodes(n, 1)
            .into_iter()
            .skip(1)
            .map(Participant::Honest)
            .collect();
        participants.insert(
            0,
            Participant::Byzantine(Box::new(FloodByzantine::<bool>::new(n))),
        );
        participants
    };
    let serial = {
        let mut runner = Runner::with_participants(build(), Box::new(NoFaults), 0).unwrap();
        runner.run(10)
    };
    let mut sharded =
        ShardedRunner::<bool, bool>::in_process(build(), Box::new(NoFaults), 0, 3).unwrap();
    let report = sharded.run(10).expect("sharded run");
    assert_eq!(serial, report);
    assert!(report.byzantine.contains(NodeId::new(0)));
    assert!(report.metrics.byzantine_messages > 0);
}

#[test]
fn single_port_sharded_transcript_matches_serial() {
    let n = 16;
    let serial = {
        let mut runner =
            SinglePortRunner::with_adversary(Ring::nodes(n, 0), Box::new(crash_schedule(n)), 3)
                .unwrap();
        runner.enable_trace();
        let report = runner.run(3 * n as u64);
        (
            report,
            runner.trace().events().to_vec(),
            runner.buffered_messages(),
            runner.ports_in_use(),
        )
    };
    for shards in [2usize, 4] {
        let mut sharded = SpShardedRunner::<bool, bool>::in_process(
            Ring::nodes(n, 0),
            Box::new(crash_schedule(n)),
            3,
            shards,
        )
        .unwrap();
        sharded.enable_trace();
        let report = sharded.run(3 * n as u64).expect("sharded run");
        assert_eq!(serial.0, report, "report with shards={shards}");
        assert_eq!(
            serial.1,
            sharded.trace().events().to_vec(),
            "trace with shards={shards}"
        );
        assert_eq!(
            serial.2,
            sharded.buffered_messages(),
            "buffered with shards={shards}"
        );
        assert_eq!(
            serial.3,
            sharded.ports_in_use(),
            "ports with shards={shards}"
        );
    }
    assert_eq!(serial.0.metrics.crashes, 3);
}

#[test]
fn coordinator_rejects_mismatched_transport_count() {
    let (a, _b) = ChannelTransport::pair();
    let err = ShardedRunner::<bool, bool>::connect(
        10,
        Box::new(NoFaults),
        0,
        NodeSet::empty(10),
        2,
        vec![Box::new(a)],
    )
    .unwrap_err();
    assert!(matches!(err, SimError::InvalidConfig(_)), "{err}");
}

#[test]
fn coordinator_rejects_empty_and_overbudget_systems() {
    assert!(matches!(
        ShardedRunner::<bool, bool>::connect(
            0,
            Box::new(NoFaults),
            0,
            NodeSet::empty(0),
            1,
            Vec::new()
        ),
        Err(SimError::EmptySystem)
    ));
    let (a, _b) = ChannelTransport::pair();
    assert!(matches!(
        SpShardedRunner::<bool, bool>::connect(3, Box::new(NoFaults), 3, 1, vec![Box::new(a)]),
        Err(SimError::InvalidConfig(_))
    ));
}

#[test]
fn dead_worker_surfaces_as_shard_error_not_a_hang() {
    let (parent, worker) = ChannelTransport::pair();
    drop(worker); // the "worker process" died before round 0
    let mut sharded = ShardedRunner::<bool, bool>::connect(
        4,
        Box::new(NoFaults),
        0,
        NodeSet::empty(4),
        1,
        vec![Box::new(parent)],
    )
    .unwrap();
    let err = sharded.run(5).unwrap_err();
    assert!(matches!(err, SimError::Shard(_)), "{err}");
}

/// A `Read`/`Write` pair over byte channels, so the stream transport can be
/// exercised end-to-end without OS pipes.
struct ChannelStream {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    pending: Vec<u8>,
}

impl ChannelStream {
    fn pair() -> (ChannelStream, ChannelStream) {
        let (a_tx, b_rx) = std::sync::mpsc::channel();
        let (b_tx, a_rx) = std::sync::mpsc::channel();
        (
            ChannelStream {
                tx: a_tx,
                rx: a_rx,
                pending: Vec::new(),
            },
            ChannelStream {
                tx: b_tx,
                rx: b_rx,
                pending: Vec::new(),
            },
        )
    }
}

impl Read for ChannelStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.pending.is_empty() {
            match self.rx.recv() {
                Ok(bytes) => self.pending = bytes,
                Err(_) => return Ok(0), // EOF
            }
        }
        let len = buf.len().min(self.pending.len());
        buf[..len].copy_from_slice(&self.pending[..len]);
        self.pending.drain(..len);
        Ok(len)
    }
}

impl Write for ChannelStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.tx
            .send(buf.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer gone"))?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// End-to-end over the *stream* backend: a worker thread serving its chunk
/// through length-prefixed frames (the same path `--shard-worker` pipes
/// use) produces a transcript identical to the serial runner.
#[test]
fn stream_backend_matches_serial() {
    let n = 10;
    let shards = 2;
    let serial = {
        let mut runner =
            Runner::with_adversary(FloodOr::nodes(n, 2), Box::new(crash_schedule(n)), 3).unwrap();
        runner.run(10)
    };

    let mut transports: Vec<Box<dyn ShardTransport>> = Vec::new();
    let mut handles = Vec::new();
    let mut all_nodes = FloodOr::nodes(n, 2).into_iter();
    for index in 0..shard_count(n, shards) {
        let range = shard_range(n, shards, index);
        let chunk: Vec<Participant<FloodOr>> = all_nodes
            .by_ref()
            .take(range.len())
            .map(Participant::Honest)
            .collect();
        // One simplex stream per direction: the parent writes into the
        // first pair, the worker into the second.
        let (parent_to_worker_w, parent_to_worker_r) = ChannelStream::pair();
        let (worker_to_parent_w, worker_to_parent_r) = ChannelStream::pair();
        let base = range.start;
        handles.push(std::thread::spawn(move || {
            let mut transport = StreamTransport::new(parent_to_worker_r, worker_to_parent_w);
            serve_multi_port(chunk, base, &mut transport).expect("stream worker");
        }));
        transports.push(Box::new(StreamTransport::new(
            worker_to_parent_r,
            parent_to_worker_w,
        )));
    }
    let mut sharded = ShardedRunner::<bool, bool>::connect(
        n,
        Box::new(crash_schedule(n)),
        3,
        NodeSet::empty(n),
        shards,
        transports,
    )
    .unwrap();
    let report = sharded.run(10).expect("sharded run");
    assert_eq!(serial, report);
    for handle in handles {
        handle.join().expect("worker thread");
    }
}

// ---------------------------------------------------------------------------
// Worker-failure recovery
// ---------------------------------------------------------------------------

/// Spawns a fresh serving thread for multi-port shard `index`, rebuilding
/// its chunk deterministically — exactly what a respawned `--shard-worker`
/// process does from the handshake.  A replaced worker sees EOF when the
/// parent drops its old transport end and exits cleanly.
fn flood_or_worker(n: usize, shards: usize, index: usize) -> Box<dyn ShardTransport> {
    let range = shard_range(n, shards, index);
    let chunk: Vec<Participant<FloodOr>> = FloodOr::nodes(n, 2)
        .into_iter()
        .skip(range.start)
        .take(range.len())
        .map(Participant::Honest)
        .collect();
    let (parent_end, mut worker_end) = ChannelTransport::pair();
    let base = range.start;
    std::thread::spawn(move || {
        let _ = serve_multi_port(chunk, base, &mut worker_end);
    });
    Box::new(parent_end)
}

/// Same, for single-port `Ring` chunks.
fn ring_worker(n: usize, shards: usize, index: usize) -> Box<dyn ShardTransport> {
    let range = shard_range(n, shards, index);
    let chunk: Vec<Ring> = Ring::nodes(n, 0)
        .into_iter()
        .skip(range.start)
        .take(range.len())
        .collect();
    let (parent_end, mut worker_end) = ChannelTransport::pair();
    let base = range.start;
    std::thread::spawn(move || {
        let _ = serve_single_port(chunk, base, &mut worker_end);
    });
    Box::new(parent_end)
}

fn flood_or_serial(n: usize) -> ExecutionReport<bool> {
    let mut runner =
        Runner::with_adversary(FloodOr::nodes(n, 2), Box::new(crash_schedule(n)), 3).unwrap();
    runner.run(10)
}

/// Builds a faulted sharded FloodOr run with a recovery ladder whose
/// respawn factory rebuilds workers (wrapped by the same armed plan, so a
/// recovered fault must not re-fire).
fn faulted_flood_or(
    n: usize,
    shards: usize,
    plan: &FaultPlan,
    max_respawns: u32,
    with_fallback: bool,
) -> ShardedRunner<bool, bool> {
    let armed = plan.arm();
    let transports: Vec<Box<dyn ShardTransport>> = (0..shard_count(n, shards))
        .map(|index| armed.wrap(index, flood_or_worker(n, shards, index)))
        .collect();
    let mut sharded = ShardedRunner::<bool, bool>::connect(
        n,
        Box::new(crash_schedule(n)),
        3,
        NodeSet::empty(n),
        shards,
        transports,
    )
    .unwrap();
    let respawn_armed = armed.clone();
    let mut recovery = Recovery::new(
        max_respawns,
        Box::new(move |index| Ok(respawn_armed.wrap(index, flood_or_worker(n, shards, index)))),
    )
    .with_backoff(Duration::ZERO);
    if with_fallback {
        recovery =
            recovery.with_fallback(Box::new(move |index| Ok(flood_or_worker(n, shards, index))));
    }
    sharded.set_recovery(recovery);
    sharded
}

#[test]
fn killed_worker_is_respawned_and_replayed_byte_identically() {
    let n = 10;
    let shards = 2;
    let serial = flood_or_serial(n);
    let plan = FaultPlan::parse("kill:1@4").unwrap();
    let mut sharded = faulted_flood_or(n, shards, &plan, 2, false);
    let report = sharded.run(10).expect("recovered run");
    assert_eq!(serial, report);
    let stats = sharded.recovery_stats();
    assert_eq!(stats.respawns, 1, "{stats:?}");
    assert_eq!(stats.fallbacks, 0, "{stats:?}");
    assert!(stats.replayed_frames > 0, "{stats:?}");
    assert!(stats.any());
}

#[test]
fn killing_any_frame_of_any_shard_recovers_byte_identically() {
    let n = 10;
    let shards = 2;
    let serial = flood_or_serial(n);
    // The full run exchanges ~12 response frames per shard; sweep past the
    // end so the no-fire (fault never reached) edge is covered too.
    for shard in 0..shard_count(n, shards) {
        for frame in 0..14 {
            let plan = FaultPlan::parse(&format!("kill:{shard}@{frame}")).unwrap();
            let mut sharded = faulted_flood_or(n, shards, &plan, 2, false);
            let report = sharded
                .run(10)
                .unwrap_or_else(|err| panic!("kill:{shard}@{frame}: {err}"));
            assert_eq!(serial, report, "kill:{shard}@{frame}");
        }
    }
}

#[test]
fn torn_and_garbage_frames_trigger_respawn_and_stay_identical() {
    let n = 10;
    let shards = 2;
    let serial = flood_or_serial(n);
    let plan = FaultPlan::parse("torn:0@2,garbage:1@5").unwrap();
    let mut sharded = faulted_flood_or(n, shards, &plan, 2, false);
    let report = sharded.run(10).expect("recovered run");
    assert_eq!(serial, report);
    let stats = sharded.recovery_stats();
    assert_eq!(
        stats.respawns, 2,
        "one respawn per corrupted shard: {stats:?}"
    );
}

#[test]
fn dead_transport_on_send_recovers_through_the_same_ladder() {
    let n = 10;
    let shards = 2;
    let serial = flood_or_serial(n);
    // Shard 0's initial transport is already dead: the very first broadcast
    // send fails, exercising the send-side entry into recovery.
    let (dead, gone) = ChannelTransport::pair();
    drop(gone);
    let transports: Vec<Box<dyn ShardTransport>> =
        vec![Box::new(dead), flood_or_worker(n, shards, 1)];
    let mut sharded = ShardedRunner::<bool, bool>::connect(
        n,
        Box::new(crash_schedule(n)),
        3,
        NodeSet::empty(n),
        shards,
        transports,
    )
    .unwrap();
    sharded.set_recovery(
        Recovery::new(
            1,
            Box::new(move |index| Ok(flood_or_worker(n, shards, index))),
        )
        .with_backoff(Duration::ZERO),
    );
    let report = sharded.run(10).expect("recovered run");
    assert_eq!(serial, report);
    assert_eq!(sharded.recovery_stats().respawns, 1);
}

#[test]
fn exhausted_respawns_degrade_to_the_fallback() {
    let n = 10;
    let shards = 2;
    let serial = flood_or_serial(n);
    let plan = FaultPlan::parse("kill:0@3").unwrap();
    // max_respawns = 0: the first failure goes straight to the fallback —
    // the `--max-worker-respawns 0` degradation path.
    let mut sharded = faulted_flood_or(n, shards, &plan, 0, true);
    let report = sharded.run(10).expect("fallback run");
    assert_eq!(serial, report);
    let stats = sharded.recovery_stats();
    assert_eq!(stats.respawns, 0, "{stats:?}");
    assert_eq!(stats.fallbacks, 1, "{stats:?}");
}

#[test]
fn exhausted_ladder_is_a_hard_structured_error() {
    let n = 10;
    let shards = 2;
    let plan = FaultPlan::parse("kill:0@0").unwrap();
    let mut sharded = faulted_flood_or(n, shards, &plan, 0, false);
    let err = sharded.run(10).unwrap_err();
    let SimError::Shard(shard_err) = err else {
        panic!("expected a shard error, got {err}");
    };
    assert_eq!(shard_err.shard, 0);
    assert_eq!(shard_err.frame_tag, Some(RESP_INTENTS));
    assert_eq!(shard_err.round, Some(0));
    assert!(
        shard_err.detail.contains("no fallback"),
        "detail names the exhausted ladder: {}",
        shard_err.detail
    );
}

#[test]
fn stalled_worker_trips_the_read_deadline_and_recovers() {
    let n = 10;
    let shards = 2;
    let serial = flood_or_serial(n);
    let armed = FaultPlan::parse("stall:0@1").unwrap().arm();

    // A worker behind a DeadlineTransport over byte streams — the stack the
    // process backend runs — with the stall fault layered on top.
    fn deadline_worker(n: usize, shards: usize, index: usize) -> Box<dyn ShardTransport> {
        let range = shard_range(n, shards, index);
        let chunk: Vec<Participant<FloodOr>> = FloodOr::nodes(n, 2)
            .into_iter()
            .skip(range.start)
            .take(range.len())
            .map(Participant::Honest)
            .collect();
        let (parent_to_worker_w, parent_to_worker_r) = ChannelStream::pair();
        let (worker_to_parent_w, worker_to_parent_r) = ChannelStream::pair();
        let base = range.start;
        std::thread::spawn(move || {
            let mut transport = StreamTransport::new(parent_to_worker_r, worker_to_parent_w);
            let _ = serve_multi_port(chunk, base, &mut transport);
        });
        Box::new(DeadlineTransport::new(
            worker_to_parent_r,
            parent_to_worker_w,
            Duration::from_millis(150),
        ))
    }

    let transports: Vec<Box<dyn ShardTransport>> = (0..shard_count(n, shards))
        .map(|index| armed.wrap(index, deadline_worker(n, shards, index)))
        .collect();
    let mut sharded = ShardedRunner::<bool, bool>::connect(
        n,
        Box::new(crash_schedule(n)),
        3,
        NodeSet::empty(n),
        shards,
        transports,
    )
    .unwrap();
    let respawn_armed = armed.clone();
    sharded.set_recovery(
        Recovery::new(
            2,
            Box::new(move |index| Ok(respawn_armed.wrap(index, deadline_worker(n, shards, index)))),
        )
        .with_backoff(Duration::ZERO),
    );
    let report = sharded.run(10).expect("recovered run");
    assert_eq!(serial, report);
    assert_eq!(sharded.recovery_stats().respawns, 1);
}

#[test]
fn single_port_killed_worker_recovers_byte_identically() {
    let n = 8;
    let shards = 2;
    let serial = {
        let mut runner =
            SinglePortRunner::with_adversary(Ring::nodes(n, 0), Box::new(crash_schedule(n)), 3)
                .unwrap();
        runner.run(3 * n as u64)
    };
    let armed = FaultPlan::parse("kill:1@6").unwrap().arm();
    let transports: Vec<Box<dyn ShardTransport>> = (0..shard_count(n, shards))
        .map(|index| armed.wrap(index, ring_worker(n, shards, index)))
        .collect();
    let mut sharded = SpShardedRunner::<bool, bool>::connect(
        n,
        Box::new(crash_schedule(n)),
        3,
        shards,
        transports,
    )
    .unwrap();
    let respawn_armed = armed.clone();
    sharded.set_recovery(
        Recovery::new(
            2,
            Box::new(move |index| Ok(respawn_armed.wrap(index, ring_worker(n, shards, index)))),
        )
        .with_backoff(Duration::ZERO),
    );
    let report = sharded.run(3 * n as u64).expect("recovered run");
    assert_eq!(serial, report);
    assert_eq!(sharded.recovery_stats().respawns, 1);
}

#[test]
fn wire_event_round_trips() {
    let decided = WireEvent::<u64> {
        node: 17,
        halted: false,
        output: Some(42),
    };
    let halted = WireEvent::<u64> {
        node: 3,
        halted: true,
        output: None,
    };
    for event in [decided, halted] {
        let decoded: WireEvent<u64> = from_bytes(&to_bytes(&event)).expect("WireEvent round trip");
        assert_eq!(decoded.node, event.node);
        assert_eq!(decoded.halted, event.halted);
        assert_eq!(decoded.output, event.output);
        assert_eq!(
            decode_error_path_violations(&event),
            Vec::<usize>::new(),
            "every truncated or oversized WireEvent frame must fail to decode"
        );
    }
}
