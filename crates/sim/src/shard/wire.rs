//! The compact binary wire codec used by the sharding layer.
//!
//! The vendored `serde` is an offline stand-in whose derives generate no
//! code, so the shard protocol defines its own explicit codec: the [`Wire`]
//! trait encodes a value into a byte buffer and decodes it back through a
//! bounds-checked [`WireReader`].  The format is deliberately boring —
//! little-endian fixed-width integers, `u8` tags for enums, 64-bit length
//! prefixes for sequences — because both endpoints are always the same
//! binary; versioning happens at the frame level (see
//! [`WIRE_VERSION`](super::WIRE_VERSION)), not per value.  When the real
//! `serde` lands, payload types already carry `Serialize`/`Deserialize`
//! derives and this module becomes a thin adapter.
//!
//! Every decode error is a [`WireError`] naming what was expected; nothing
//! here panics on malformed input (a truncated frame from a dying worker
//! process must surface as an error, not a parent crash).

use std::sync::Arc;

use crate::adversary::DeliveryFilter;
use crate::message::{Delivered, Outgoing};
use crate::node::NodeId;
use crate::round::Round;

/// A decoding failure: what the reader expected and where.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// Human-readable description of the malformed field.
    pub message: String,
}

impl WireError {
    /// Creates an error with the given description (downstream `Wire` impls
    /// use this for their own malformed-field reports).
    pub fn new(message: impl Into<String>) -> Self {
        WireError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire decode error: {}", self.message)
    }
}

impl std::error::Error for WireError {}

/// Result alias for decoding.
pub type WireResult<T> = Result<T, WireError>;

/// A bounds-checked cursor over an encoded frame.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Wraps a byte slice for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed (frames must decode exactly).
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, len: usize, what: &str) -> WireResult<&'a [u8]> {
        if self.remaining() < len {
            return Err(WireError::new(format!(
                "truncated {what}: needed {len} bytes, had {}",
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> WireResult<u8> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> WireResult<u16> {
        let b = self.take(2, "u16")?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> WireResult<u64> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// Reads a `usize` encoded as `u64`, rejecting values that do not fit.
    pub fn len(&mut self) -> WireResult<usize> {
        usize::try_from(self.u64()?).map_err(|_| WireError::new("length does not fit in usize"))
    }
}

/// A value with an explicit binary encoding for the shard protocol.
///
/// Implementations must round-trip: `decode(encode(v)) == v`.  Protocol
/// crates implement this for their message and output types; the simulator
/// provides the primitive, container and envelope impls.
pub trait Wire: Sized {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes one value from the reader.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] describing the first malformed field.
    fn decode(r: &mut WireReader<'_>) -> WireResult<Self>;
}

/// Encodes a value into a fresh buffer (convenience for tests and frames).
pub fn to_bytes<T: Wire>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.encode(&mut out);
    out
}

/// Decodes a value from a complete buffer, requiring every byte to be
/// consumed.
///
/// # Errors
///
/// Returns a [`WireError`] on malformed or trailing bytes.
pub fn from_bytes<T: Wire>(buf: &[u8]) -> WireResult<T> {
    let mut reader = WireReader::new(buf);
    let value = T::decode(&mut reader)?;
    if !reader.is_empty() {
        return Err(WireError::new(format!(
            "{} trailing bytes after value",
            reader.remaining()
        )));
    }
    Ok(value)
}

/// Exercises every decode error path for `value`'s encoding and returns
/// the lengths that were wrongly accepted.
///
/// Every *strict* prefix of a well-formed encoding is a truncated frame
/// and must fail [`from_bytes`] (without panicking or looping); a frame
/// with one trailing byte appended must fail too.  An empty return means
/// the codec rejects all of them; tests assert exactly that.  Offending
/// lengths come back so the failing test names the bad cut point.
pub fn decode_error_path_violations<T: Wire>(value: &T) -> Vec<usize> {
    let bytes = to_bytes(value);
    let mut violations = Vec::new();
    for cut in 0..bytes.len() {
        if let Some(prefix) = bytes.get(..cut) {
            if from_bytes::<T>(prefix).is_ok() {
                violations.push(cut);
            }
        }
    }
    let mut extended = bytes.clone();
    extended.push(0);
    if from_bytes::<T>(&extended).is_ok() {
        violations.push(extended.len());
    }
    violations
}

impl Wire for () {
    fn encode(&self, _out: &mut Vec<u8>) {}

    fn decode(_r: &mut WireReader<'_>) -> WireResult<Self> {
        Ok(())
    }
}

impl Wire for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        match r.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(WireError::new(format!("invalid bool byte {other}"))),
        }
    }
}

impl Wire for u8 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        r.u8()
    }
}

impl Wire for u16 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        r.u16()
    }
}

impl Wire for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        let b = r.take(4, "u32")?;
        Ok(u32::from_le_bytes(b.try_into().expect("4-byte slice")))
    }
}

impl Wire for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        r.u64()
    }
}

impl Wire for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        r.len()
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(value) => {
                out.push(1);
                value.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            other => Err(WireError::new(format!("invalid Option tag {other}"))),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        for item in self {
            item.encode(out);
        }
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        let len = r.len()?;
        // Guard against a corrupt length prefix: no legitimate sequence has
        // more elements than a maximal frame has bytes (this also bounds
        // the loop itself for zero-size element types like `()`, which
        // would otherwise spin for up to 2^64 iterations)...
        if len as u64 > u64::from(super::transport::MAX_FRAME_LEN) {
            return Err(WireError::new(format!(
                "sequence length {len} exceeds the maximum frame size"
            )));
        }
        // ...and against a gigantic allocation: each element of non-zero
        // size costs at least one byte on the wire.
        let mut items = Vec::with_capacity(len.min(r.remaining().max(1)));
        for _ in 0..len {
            items.push(T::decode(r)?);
        }
        Ok(items)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

impl<T: Wire> Wire for Arc<T> {
    /// `Arc` is a sharing wrapper on the sending side only: each copy is
    /// encoded in full, and decoding re-wraps a fresh allocation.  (Payload
    /// interning across copies is a future optimisation; see the sharding
    /// notes in `DESIGN.md`.)
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_ref().encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        Ok(Arc::new(T::decode(r)?))
    }
}

impl Wire for NodeId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.index().encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        Ok(NodeId::new(r.len()?))
    }
}

impl Wire for Round {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_u64().encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        Ok(Round::new(r.u64()?))
    }
}

impl Wire for DeliveryFilter {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            DeliveryFilter::All => out.push(0),
            DeliveryFilter::None => out.push(1),
            DeliveryFilter::Prefix(k) => {
                out.push(2);
                k.encode(out);
            }
            DeliveryFilter::Only(dests) => {
                out.push(3);
                dests.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        match r.u8()? {
            0 => Ok(DeliveryFilter::All),
            1 => Ok(DeliveryFilter::None),
            2 => Ok(DeliveryFilter::Prefix(r.len()?)),
            3 => Ok(DeliveryFilter::Only(Vec::decode(r)?)),
            other => Err(WireError::new(format!(
                "invalid DeliveryFilter tag {other}"
            ))),
        }
    }
}

impl<M: Wire> Wire for Outgoing<M> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.to.encode(out);
        self.msg.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        Ok(Outgoing {
            to: NodeId::decode(r)?,
            msg: M::decode(r)?,
        })
    }
}

impl<M: Wire> Wire for Delivered<M> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.from.encode(out);
        self.msg.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        Ok(Delivered {
            from: NodeId::decode(r)?,
            msg: M::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The analyzer names tuple impls canonically (`Unit`, `Tuple2`, …);
    // these aliases let the coverage corpus see those names while the
    // tests exercise the real tuple impls.
    type Unit = ();
    type Tuple2 = (bool, u64);
    type Tuple3 = (u8, u16, u32);

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = to_bytes(&value);
        assert_eq!(from_bytes::<T>(&bytes).expect("round trip"), value);
        assert_eq!(
            decode_error_path_violations(&value),
            Vec::<usize>::new(),
            "every truncated or oversized frame must fail to decode"
        );
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(());
        round_trip(true);
        round_trip(false);
        round_trip(0xABu8);
        round_trip(0xBEEFu16);
        round_trip(0xDEAD_BEEFu32);
        round_trip(u64::MAX);
        round_trip(usize::MAX);
        // Width extremes, spelling out each type: the analyzer's
        // wire-untested rule requires every `impl Wire for T` to be *named*
        // by a test, and a suffixed literal like `0xBEEFu16` is not a name.
        round_trip(u8::MAX);
        round_trip(u16::MAX);
        round_trip(u32::MAX);
        round_trip(u64::MIN);
        round_trip(usize::MIN);
    }

    #[test]
    fn containers_round_trip() {
        round_trip(Some(7u64));
        round_trip(None::<u64>);
        round_trip(vec![1u64, 2, 3]);
        round_trip(Vec::<bool>::new());
        round_trip((true, 9u64));
        round_trip((1u8, 2u64, vec![false, true]));
        round_trip(Arc::new(17u64));
        round_trip(vec![Some((NodeId::new(3), 4u64)), None]);
    }

    #[test]
    fn tuple_aliases_round_trip() {
        let unit: Unit = ();
        let pair: Tuple2 = (false, 0x0102_0304_0506_0708);
        let triple: Tuple3 = (9, 0xBEEF, 0xDEAD_BEEF);
        round_trip(unit);
        round_trip(pair);
        round_trip(triple);
    }

    #[test]
    fn sim_types_round_trip() {
        round_trip(NodeId::new(12));
        round_trip(Round::new(99));
        round_trip(DeliveryFilter::All);
        round_trip(DeliveryFilter::None);
        round_trip(DeliveryFilter::Prefix(5));
        round_trip(DeliveryFilter::Only(vec![NodeId::new(1), NodeId::new(4)]));
        round_trip(Outgoing::new(NodeId::new(2), true));
        round_trip(Delivered::new(NodeId::new(3), 8u64));
    }

    #[test]
    fn malformed_input_is_an_error_not_a_panic() {
        assert!(from_bytes::<u64>(&[1, 2]).is_err(), "truncated");
        assert!(from_bytes::<bool>(&[7]).is_err(), "bad bool byte");
        assert!(from_bytes::<Option<u8>>(&[9, 0]).is_err(), "bad option tag");
        assert!(from_bytes::<u8>(&[1, 2]).is_err(), "trailing bytes");
        // A corrupt huge length prefix must error out, not try to allocate.
        let mut huge = Vec::new();
        u64::MAX.encode(&mut huge);
        assert!(from_bytes::<Vec<u64>>(&huge).is_err());
        // ... including for zero-size element types, where the decode loop
        // itself (not the allocation) is what must be bounded.
        assert!(from_bytes::<Vec<()>>(&huge).is_err());
    }

    #[test]
    fn errors_render_a_description() {
        let err = from_bytes::<u64>(&[]).unwrap_err();
        assert!(err.to_string().contains("truncated"));
    }
}
