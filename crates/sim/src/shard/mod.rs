//! Sharding a **single execution** across OS worker processes.
//!
//! The persistent worker pool (see [`crate::pool`]) exhausted intra-process
//! parallelism; this module is the next order of magnitude: the per-node
//! phase work of one run is partitioned into contiguous node-range chunks —
//! exactly the sans-I/O [`RoundCore`]/[`SinglePortCore`] ownership unit the
//! pool already dispatches (see [`crate::driver`]) — and each chunk is
//! served by a **shard worker** on the far side of a [`ShardTransport`].
//! Two backends exist:
//!
//! * in-process: workers are jobs on the runner's own [`WorkerPool`],
//!   connected by [`ChannelTransport`] pairs (every frame still crosses the
//!   full wire codec, so the in-process backend exercises the same protocol
//!   the pipes do);
//! * worker processes: `run_experiments --shard-worker` children connected
//!   by length-prefixed pipes ([`StreamTransport`]); moving a shard to
//!   another machine is a transport swap (pipe → socket), not a rewrite.
//!
//! # Determinism
//!
//! The coordinating process keeps everything order-sensitive, exactly as the
//! pool's forked path does: the **crash-adversary phase** runs only in the
//! parent (the adversary contract hands one mutable strategy a coherent view
//! of the whole round), and per-chunk results — intents, delivered messages
//! in sender order, metric deltas, decision/halt events — are merged in
//! **fixed chunk order**, which is node-index order.  A sharded run is
//! therefore byte-identical to a serial or `--jobs N` run of the same
//! seeded workload; `crates/bench/tests/determinism.rs` pins this with
//! table diffs and transcript proptests.
//!
//! # Protocol
//!
//! Each frame is `[u16 version][u8 tag][payload]` (see [`WIRE_VERSION`] and
//! the [`wire`] codec).  Per round the parent sends `Collect`, merges the
//! returned intents, runs the crash phase, sends `Deliver` (multi-port; the
//! worker returns surviving messages and metric deltas) or performs the
//! port-map mutations itself (single-port), routes inbound messages, sends
//! `Receive`, and replays the returned decision/halt events in chunk order.
//! `Shutdown` ends the loop; a worker treats transport EOF as shutdown, so
//! a dying parent never leaves workers spinning.
//!
//! # Worker-failure recovery
//!
//! A worker process is *substrate*, not a simulated node: its death must
//! not change the computed execution.  When [`Recovery`] is configured the
//! coordinator retains every request frame it sends (per shard; `Shutdown`
//! excluded), and on any transport failure — EOF, I/O error, read deadline
//! ([`DeadlineTransport`]), an unexpected tag, or a payload that fails to
//! decode — it obtains a fresh transport (the respawn factory, bounded by
//! `max_respawns` with exponential backoff, then the in-process fallback
//! factory once) and **replays** the retained log lock-step, discarding
//! every response but the last.  Replay is sound because workers rebuild
//! their state machines deterministically from the handshake and the parent
//! authors every inbound frame: the same requests in the same order produce
//! the same worker state and the same responses.  [`RecoveryStats`] counts
//! what the ladder did.  Deterministic fault injection for all four entry
//! points lives in [`fault`].
//!
//! [`WorkerPool`]: crate::pool::WorkerPool

pub mod fault;
pub mod transport;
pub mod wire;

use std::io;
use std::marker::PhantomData;
use std::ops::Range;
use std::time::Duration;

use crate::adversary::{CrashAdversary, DeliveryFilter};
use crate::delivery::{EngineCore, PortMap};
use crate::driver::{NodeEvent, RoundCore, SinglePortCore};
use crate::error::{ShardError, SimError, SimResult};
use crate::message::{Delivered, Outgoing, Payload};
use crate::node::{NodeId, NodeSet};
use crate::parallel::ChunkPlan;
use crate::pool::WorkerPool;
use crate::protocol::{NodeStatus, SinglePortProtocol, SyncProtocol};
use crate::report::{ExecutionReport, Termination};
use crate::round::Round;
use crate::runner::Participant;
use crate::trace::Trace;

pub use fault::{ArmedPlan, FaultKind, FaultPlan, FaultSpec, FaultyTransport};
pub use transport::{
    read_frame, write_frame, ChannelTransport, DeadlineTransport, ShardTransport, StreamTransport,
    MAX_FRAME_LEN,
};
pub use wire::{
    decode_error_path_violations, from_bytes, to_bytes, Wire, WireError, WireReader, WireResult,
};

/// Version of the shard wire format.  Every frame carries it; both sides
/// reject a mismatch, so a stale worker binary fails loudly instead of
/// silently mis-decoding.
pub const WIRE_VERSION: u16 = 1;

/// Frame tags (parent → worker).
const REQ_COLLECT: u8 = 1;
const REQ_DELIVER: u8 = 2;
const REQ_RECEIVE: u8 = 3;
const REQ_SP_RECEIVE: u8 = 4;
const REQ_SHUTDOWN: u8 = 5;

/// Frame tags (worker → parent).
const RESP_INTENTS: u8 = 64;
const RESP_SP_INTENTS: u8 = 65;
const RESP_DELIVERED: u8 = 66;
const RESP_EVENTS: u8 = 67;

/// Starts a frame: the `[u16 version][u8 tag]` header every shard frame
/// (including the bench layer's handshake) opens with.  Append the payload
/// with [`Wire::encode`] calls.
pub fn frame(tag: u8) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    WIRE_VERSION.encode(&mut out);
    out.push(tag);
    out
}

/// Opens a frame: checks the version and returns the tag and a reader over
/// the payload.
///
/// # Errors
///
/// Returns a [`WireError`] on a truncated header or a version mismatch (a
/// stale worker binary must fail loudly, never mis-decode).
pub fn open_frame(buf: &[u8]) -> WireResult<(u8, WireReader<'_>)> {
    let mut r = WireReader::new(buf);
    let version = r.u16()?;
    if version != WIRE_VERSION {
        return Err(WireError::new(format!(
            "shard wire version mismatch: peer speaks v{version}, this binary v{WIRE_VERSION}"
        )));
    }
    let tag = r.u8()?;
    Ok((tag, r))
}

fn wire_io(err: WireError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, err.to_string())
}

/// Produces a replacement [`ShardTransport`] for the given shard index —
/// a respawned worker process, a fresh serving thread, or an in-process
/// fallback server over a channel pair.
pub type TransportFactory = Box<dyn FnMut(usize) -> io::Result<Box<dyn ShardTransport>> + Send>;

/// The worker-failure recovery ladder a coordinator climbs when a shard
/// transport fails: up to `max_respawns` fresh transports from the respawn
/// factory (with exponential backoff between consecutive attempts), then —
/// budget exhausted — one in-process fallback, then a hard
/// [`SimError::Shard`].
pub struct Recovery {
    max_respawns: u32,
    backoff: Duration,
    respawn: TransportFactory,
    fallback: Option<TransportFactory>,
}

impl Recovery {
    /// A ladder that respawns at most `max_respawns` times via `respawn`.
    /// `max_respawns` of 0 means the first failure goes straight to the
    /// fallback (or the hard error when none is configured).
    pub fn new(max_respawns: u32, respawn: TransportFactory) -> Self {
        Recovery {
            max_respawns,
            backoff: Duration::from_millis(10),
            respawn,
            fallback: None,
        }
    }

    /// Adds the last rung: an in-process fallback used once per shard when
    /// the respawn budget is exhausted.
    #[must_use]
    pub fn with_fallback(mut self, fallback: TransportFactory) -> Self {
        self.fallback = Some(fallback);
        self
    }

    /// Sets the base backoff delay (doubled per consecutive respawn of one
    /// shard; the first respawn is immediate).  Zero disables sleeping.
    #[must_use]
    pub fn with_backoff(mut self, base: Duration) -> Self {
        self.backoff = base;
        self
    }
}

impl std::fmt::Debug for Recovery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recovery")
            .field("max_respawns", &self.max_respawns)
            .field("backoff", &self.backoff)
            .field("has_fallback", &self.fallback.is_some())
            .finish_non_exhaustive()
    }
}

/// What the recovery ladder did over one execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Fresh transports obtained from the respawn factory.
    pub respawns: u64,
    /// Shards moved onto the in-process fallback.
    pub fallbacks: u64,
    /// Request frames replayed to fresh transports.
    pub replayed_frames: u64,
    /// Completed rounds whose frames were replayed (summed per recovery).
    pub replayed_rounds: u64,
}

impl RecoveryStats {
    /// Whether any recovery action ran.
    pub fn any(&self) -> bool {
        self.respawns > 0 || self.fallbacks > 0
    }
}

/// The number of shard workers a system of `n` nodes actually uses when
/// `shards` are requested: the chunk partition never creates empty trailing
/// chunks, so tiny systems use fewer workers than requested (see
/// [`crate::parallel`]'s `ChunkPlan`).  Parent and workers must agree on
/// this; both derive it from here.
pub fn shard_count(n: usize, shards: usize) -> usize {
    ChunkPlan::new(n, shards).chunks
}

/// The node range owned by shard `index` of `shards` over `n` nodes.
pub fn shard_range(n: usize, shards: usize, index: usize) -> Range<usize> {
    ChunkPlan::new(n, shards).range(index, n)
}

/// A decision/halt event reported by a shard worker: the global node index,
/// whether the node voluntarily halted, and — on the node's first decision —
/// its output value.
struct WireEvent<O> {
    node: usize,
    halted: bool,
    output: Option<O>,
}

impl<O: Wire> Wire for WireEvent<O> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.node.encode(out);
        self.halted.encode(out);
        self.output.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        Ok(WireEvent {
            node: usize::decode(r)?,
            halted: bool::decode(r)?,
            output: Option::decode(r)?,
        })
    }
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

/// Encodes a chunk's decision/halt events as a `RESP_EVENTS` frame and
/// applies this round's voluntary halts to the chunk's local status mirror
/// (the pool's forked path does the latter during the main thread's replay;
/// on a shard worker the serve loop is the only writer).  Shared by both
/// serve loops so the event semantics cannot drift between the runner
/// families.
fn events_response<O: Wire + Clone>(
    events: &[NodeEvent],
    outputs: &[Option<O>],
    status: &mut [NodeStatus],
    base: usize,
) -> Vec<u8> {
    let mut resp = frame(RESP_EVENTS);
    let wire_events: Vec<WireEvent<O>> = events
        .iter()
        .map(|event| WireEvent {
            node: event.node,
            halted: event.halted,
            output: event.decided.then(|| {
                outputs[event.node - base]
                    .clone()
                    .expect("decided event has an output")
            }),
        })
        .collect();
    wire_events.encode(&mut resp);
    for event in events {
        if event.halted {
            status[event.node - base] = NodeStatus::Halted;
        }
    }
    resp
}

/// Serves one multi-port chunk over `transport` until `Shutdown` (or EOF).
///
/// The chunk owns nodes `base .. base + participants.len()` of the sharded
/// execution and runs the same three phase bodies every backend runs
/// ([`RoundCore`]'s `begin_round` / `deliver` / `finalize`); only the phase
/// inputs and outputs cross the transport.
///
/// # Errors
///
/// Returns an I/O error when the transport fails mid-execution or a frame is
/// malformed; a clean EOF before a request is treated as shutdown.
pub fn serve_multi_port<P>(
    participants: Vec<Participant<P>>,
    base: usize,
    transport: &mut dyn ShardTransport,
) -> io::Result<()>
where
    P: SyncProtocol,
    P::Msg: Wire,
    P::Output: Wire,
{
    let mut chunk = RoundCore::new(base, participants);
    loop {
        let request = match transport.recv() {
            Ok(frame) => frame,
            Err(err) if err.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(err) => return Err(err),
        };
        let (tag, mut r) = open_frame(&request).map_err(wire_io)?;
        match tag {
            REQ_COLLECT => {
                let round = Round::decode(&mut r).map_err(wire_io)?;
                chunk.begin_round(round);
                let mut resp = frame(RESP_INTENTS);
                chunk.send_intents.encode(&mut resp);
                transport.send(&resp)?;
            }
            REQ_DELIVER => {
                let round = Round::decode(&mut r).map_err(wire_io)?;
                let crashed: Vec<(usize, DeliveryFilter)> = Vec::decode(&mut r).map_err(wire_io)?;
                let mut filters = Vec::with_capacity(crashed.len());
                for (local, filter) in crashed {
                    chunk.status[local] = NodeStatus::Crashed(round);
                    filters.push((base + local, filter));
                }
                chunk.deliver(&filters);
                let mut resp = frame(RESP_DELIVERED);
                chunk.msgs.encode(&mut resp);
                chunk.bits.encode(&mut resp);
                chunk.byz_msgs.encode(&mut resp);
                chunk.delivered.encode(&mut resp);
                chunk.delivered.clear();
                transport.send(&resp)?;
            }
            REQ_RECEIVE => {
                let round = Round::decode(&mut r).map_err(wire_io)?;
                let inbound: Vec<(usize, Delivered<P::Msg>)> =
                    Vec::decode(&mut r).map_err(wire_io)?;
                for (local, msg) in inbound {
                    chunk.accept(local, msg);
                }
                chunk.finalize(round);
                let resp = events_response(&chunk.events, &chunk.outputs, &mut chunk.status, base);
                transport.send(&resp)?;
            }
            REQ_SHUTDOWN => return Ok(()),
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unexpected shard request tag {other}"),
                ))
            }
        }
    }
}

/// Serves one single-port chunk over `transport` until `Shutdown` (or EOF).
///
/// The port map and its mutations (enqueue, drain, drop) live in the parent
/// — they are shared, order-sensitive state — so the single-port worker only
/// runs the per-node `send`/`poll` collection and the `receive` loop over
/// parent-pre-drained port contents.
///
/// # Errors
///
/// Returns an I/O error when the transport fails mid-execution or a frame is
/// malformed; a clean EOF before a request is treated as shutdown.
pub fn serve_single_port<P>(
    nodes: Vec<P>,
    base: usize,
    transport: &mut dyn ShardTransport,
) -> io::Result<()>
where
    P: SinglePortProtocol,
    P::Msg: Wire,
    P::Output: Wire,
{
    let mut chunk = SinglePortCore::new(base, nodes);
    loop {
        let request = match transport.recv() {
            Ok(frame) => frame,
            Err(err) if err.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(err) => return Err(err),
        };
        let (tag, mut r) = open_frame(&request).map_err(wire_io)?;
        match tag {
            REQ_COLLECT => {
                let round = Round::decode(&mut r).map_err(wire_io)?;
                chunk.begin_round(round);
                let mut resp = frame(RESP_SP_INTENTS);
                // The parent enqueues the sends itself, so they are *moved*
                // out of the chunk exactly as the pool's forked path takes
                // them.
                let sends: Vec<Option<Outgoing<P::Msg>>> =
                    chunk.sends.iter_mut().map(Option::take).collect();
                sends.encode(&mut resp);
                chunk.polls.encode(&mut resp);
                transport.send(&resp)?;
            }
            REQ_SP_RECEIVE => {
                let round = Round::decode(&mut r).map_err(wire_io)?;
                let crashed: Vec<usize> = Vec::decode(&mut r).map_err(wire_io)?;
                let drained: Vec<Option<Vec<P::Msg>>> = Vec::decode(&mut r).map_err(wire_io)?;
                for local in crashed {
                    chunk.status[local] = NodeStatus::Crashed(round);
                }
                chunk.drained = drained;
                chunk.finalize(round);
                let resp = events_response(&chunk.events, &chunk.outputs, &mut chunk.status, base);
                transport.send(&resp)?;
            }
            REQ_SHUTDOWN => return Ok(()),
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unexpected shard request tag {other}"),
                ))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Parent side
// ---------------------------------------------------------------------------

/// State common to both sharded coordinators.
struct Coordinator {
    core: EngineCore,
    adversary: Box<dyn CrashAdversary>,
    transports: Vec<Box<dyn ShardTransport>>,
    plan: ChunkPlan,
    send_intents: Vec<Vec<NodeId>>,
    poll_intents: Vec<Option<NodeId>>,
    /// Per-shard retained request log (only fed while recovery is
    /// configured; `Shutdown` is never logged).  On recovery the whole log
    /// is replayed to the fresh transport — sound because the worker
    /// rebuilds deterministically and the parent authors every request.
    frame_log: Vec<Vec<Vec<u8>>>,
    /// A response produced by replay, pending consumption by `transact`.
    stashed: Vec<Option<Vec<u8>>>,
    recovery: Option<Recovery>,
    respawns_used: Vec<u32>,
    fallback_active: Vec<bool>,
    stats: RecoveryStats,
    /// Keeps in-process serving threads alive for the coordinator's
    /// lifetime; `None` for remote (process/pipe) backends.
    _pool: Option<WorkerPool>,
}

impl Coordinator {
    fn new(
        n: usize,
        adversary: Box<dyn CrashAdversary>,
        fault_budget: usize,
        shards: usize,
        transports: Vec<Box<dyn ShardTransport>>,
        pool: Option<WorkerPool>,
    ) -> SimResult<Self> {
        if n == 0 {
            return Err(SimError::EmptySystem);
        }
        if fault_budget >= n {
            return Err(SimError::InvalidConfig(format!(
                "fault budget {fault_budget} must be smaller than the number of nodes {n}"
            )));
        }
        // Parent and workers must agree on the partition, so both derive it
        // from the *requested* shard count (see [`shard_count`] /
        // [`shard_range`]), never from the transport count.
        let plan = ChunkPlan::new(n, shards.max(1));
        if plan.chunks != transports.len() {
            return Err(SimError::InvalidConfig(format!(
                "{} shard transports for a partition of {} chunks (use shard_count({n}, {shards}))",
                transports.len(),
                plan.chunks
            )));
        }
        let chunks = transports.len();
        Ok(Coordinator {
            core: EngineCore::new(n, fault_budget),
            adversary,
            transports,
            plan,
            send_intents: (0..n).map(|_| Vec::new()).collect(),
            poll_intents: vec![None; n],
            frame_log: (0..chunks).map(|_| Vec::new()).collect(),
            stashed: (0..chunks).map(|_| None).collect(),
            recovery: None,
            respawns_used: vec![0; chunks],
            fallback_active: vec![false; chunks],
            stats: RecoveryStats::default(),
            _pool: pool,
        })
    }

    fn n(&self) -> usize {
        self.core.n()
    }

    fn set_recovery(&mut self, recovery: Recovery) {
        self.recovery = Some(recovery);
    }

    /// Sends one request to shard `ci`, retaining it in the frame log and
    /// entering the recovery ladder on failure.
    fn send_to(&mut self, ci: usize, request: &[u8]) -> SimResult<()> {
        let tag = request.get(2).copied();
        if self.recovery.is_some() {
            self.frame_log[ci].push(request.to_vec());
        }
        if let Err(err) = self.transports[ci].send(request) {
            // The request is already logged, so a successful replay leaves
            // its response stashed for the upcoming `transact`.
            self.recover(ci, tag, format!("sending request: {err}"))?;
        }
        Ok(())
    }

    /// Broadcasts one already-encoded request to every shard worker.
    fn broadcast(&mut self, request: &[u8]) -> SimResult<()> {
        for ci in 0..self.transports.len() {
            self.send_to(ci, request)?;
        }
        Ok(())
    }

    /// Receives shard `ci`'s pending response, checks its tag, and decodes
    /// the payload with `parse`; any failure — transport error, bad frame,
    /// wrong tag, undecodable payload — enters the recovery ladder and the
    /// replayed response is tried again.
    fn transact<T>(
        &mut self,
        ci: usize,
        expected: u8,
        parse: impl Fn(&mut WireReader<'_>) -> Result<T, String>,
    ) -> SimResult<T> {
        loop {
            let response = match self.stashed[ci].take() {
                Some(replayed) => Ok(replayed),
                None => self.transports[ci].recv(),
            };
            let detail = match response {
                Ok(bytes) => match open_frame(&bytes) {
                    Ok((tag, mut r)) if tag == expected => match parse(&mut r) {
                        Ok(value) => return Ok(value),
                        Err(detail) => format!("response payload: {detail}"),
                    },
                    Ok((tag, _)) => format!("answered with tag {tag}, expected {expected}"),
                    Err(err) => format!("response frame: {err}"),
                },
                Err(err) => format!("receiving response: {err}"),
            };
            self.recover(ci, Some(expected), detail)?;
        }
    }

    /// Climbs the recovery ladder for shard `ci`: respawn (bounded, with
    /// backoff), then fallback (once), then the hard error.  On success the
    /// retained log has been replayed and the outstanding request's
    /// response, if any, is stashed.
    fn recover(&mut self, ci: usize, tag: Option<u8>, reason: String) -> SimResult<()> {
        let round = self.core.round.as_u64();
        let fail = move |detail: String| -> SimError {
            let mut err = ShardError::new(ci, detail).with_round(round);
            if let Some(tag) = tag {
                err = err.with_tag(tag);
            }
            SimError::Shard(err)
        };
        if self.fallback_active[ci] {
            return Err(fail(format!(
                "{reason} (already on the in-process fallback)"
            )));
        }
        let mut detail = reason;
        loop {
            let Some(recovery) = self.recovery.as_mut() else {
                return Err(fail(detail));
            };
            let attempt = self.respawns_used[ci];
            let via_fallback = attempt >= recovery.max_respawns;
            let transport = if via_fallback {
                let max_respawns = recovery.max_respawns;
                let Some(fallback) = recovery.fallback.as_mut() else {
                    return Err(fail(format!(
                        "{detail} (respawn budget {max_respawns} exhausted, no fallback)"
                    )));
                };
                match fallback(ci) {
                    Ok(transport) => transport,
                    Err(err) => {
                        return Err(fail(format!("starting the in-process fallback: {err}")));
                    }
                }
            } else {
                if attempt > 0 && !recovery.backoff.is_zero() {
                    // Exponential: immediate, base, 2*base, ... capped.
                    let factor = 1u32 << (attempt - 1).min(5);
                    std::thread::sleep(recovery.backoff * factor);
                }
                self.respawns_used[ci] += 1;
                match (recovery.respawn)(ci) {
                    Ok(transport) => transport,
                    Err(err) => {
                        detail = format!("respawning the shard worker: {err}");
                        continue;
                    }
                }
            };
            self.transports[ci] = transport;
            if via_fallback {
                self.fallback_active[ci] = true;
                self.stats.fallbacks += 1;
            } else {
                self.stats.respawns += 1;
            }
            match self.replay(ci) {
                Ok(()) => {
                    self.stats.replayed_frames += self.frame_log[ci].len() as u64;
                    self.stats.replayed_rounds += round;
                    return Ok(());
                }
                Err(err) => {
                    if via_fallback {
                        return Err(fail(format!(
                            "replay on the in-process fallback failed: {err}"
                        )));
                    }
                    detail = format!("replay after respawn: {err}");
                }
            }
        }
    }

    /// Replays every retained request to shard `ci`'s (fresh) transport in
    /// lock-step, discarding every response but the last, which is stashed
    /// for the outstanding request.
    fn replay(&mut self, ci: usize) -> io::Result<()> {
        self.stashed[ci] = None;
        let mut last_response = None;
        for request in &self.frame_log[ci] {
            self.transports[ci].send(request)?;
            last_response = Some(self.transports[ci].recv()?);
        }
        self.stashed[ci] = last_response;
        Ok(())
    }

    /// Best-effort shutdown of every worker (errors ignored: a worker that
    /// already went away has nothing left to shut down).
    fn shutdown(&mut self) {
        let request = frame(REQ_SHUTDOWN);
        for transport in &mut self.transports {
            let _ = transport.send(&request);
        }
    }
}

/// Bound alias for message types the shard protocol can carry.
pub trait WireMsg: Payload + Wire {}
impl<M: Payload + Wire> WireMsg for M {}

/// Bound alias for output types the shard protocol can carry.
pub trait WireOutput: Wire + Clone + PartialEq + std::fmt::Debug + Send + 'static {}
impl<O: Wire + Clone + PartialEq + std::fmt::Debug + Send + 'static> WireOutput for O {}

/// Coordinates one **multi-port** execution whose chunks live behind shard
/// transports.
///
/// The coordinator is generic over the message and output wire types only —
/// it never holds protocol state machines, so the worker-process backend
/// does not pay for a redundant parent-side node construction.  Use
/// [`ShardedRunner::in_process`] to serve the chunks on this process's own
/// worker pool, or [`ShardedRunner::connect`] with transports to external
/// workers (see `run_experiments --shard-worker`).
pub struct ShardedRunner<M: WireMsg, O: WireOutput> {
    inner: Coordinator,
    outputs: Vec<Option<O>>,
    byzantine: NodeSet,
    byz_running: usize,
    _msg: PhantomData<fn() -> M>,
}

impl<M: WireMsg, O: WireOutput> ShardedRunner<M, O> {
    /// Connects a coordinator over `n` nodes to already-serving shard
    /// workers (one transport per chunk of `shard_count(n, shards)`).
    ///
    /// `byzantine` names the Byzantine participants the workers were built
    /// with (empty for honest-only executions) — the coordinator needs it
    /// for message accounting and the final report.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptySystem`] for zero nodes,
    /// [`SimError::InvalidConfig`] when the fault budget or transport count
    /// is inconsistent with `n`.
    pub fn connect(
        n: usize,
        adversary: Box<dyn CrashAdversary>,
        fault_budget: usize,
        byzantine: NodeSet,
        shards: usize,
        transports: Vec<Box<dyn ShardTransport>>,
    ) -> SimResult<Self> {
        let byz_running = byzantine.len();
        Ok(ShardedRunner {
            inner: Coordinator::new(n, adversary, fault_budget, shards, transports, None)?,
            outputs: (0..n).map(|_| None).collect(),
            byzantine,
            byz_running,
            _msg: PhantomData,
        })
    }

    /// Spawns an in-process sharded execution: the participants are split
    /// into `shard_count(n, shards)` chunks, each served by a job on a
    /// fresh [`WorkerPool`] behind a [`ChannelTransport`] — the same wire
    /// protocol the worker-process backend speaks, without the processes.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptySystem`] if `participants` is empty, or
    /// [`SimError::InvalidConfig`] if the budget is not smaller than the
    /// number of nodes.
    pub fn in_process<P>(
        participants: Vec<Participant<P>>,
        adversary: Box<dyn CrashAdversary>,
        fault_budget: usize,
        shards: usize,
    ) -> SimResult<ShardedRunner<P::Msg, P::Output>>
    where
        P: SyncProtocol<Msg = M, Output = O>,
    {
        if participants.is_empty() {
            return Err(SimError::EmptySystem);
        }
        let n = participants.len();
        let byzantine = NodeSet::from_iter(
            n,
            participants
                .iter()
                .enumerate()
                .filter(|(_, p)| matches!(p, Participant::Byzantine(_)))
                .map(|(i, _)| NodeId::new(i)),
        );
        let plan = ChunkPlan::new(n, shards.max(1));
        let pool = WorkerPool::new(plan.chunks);
        let mut transports: Vec<Box<dyn ShardTransport>> = Vec::with_capacity(plan.chunks);
        let mut participants = participants.into_iter();
        for ci in 0..plan.chunks {
            let range = plan.range(ci, n);
            let chunk_participants: Vec<Participant<P>> =
                participants.by_ref().take(range.len()).collect();
            let (parent_end, mut worker_end) = ChannelTransport::pair();
            let base = range.start;
            pool.submit(
                ci,
                Box::new(move || {
                    serve_multi_port(chunk_participants, base, &mut worker_end)
                        .expect("in-process shard worker failed");
                }),
            );
            transports.push(Box::new(parent_end));
        }
        let byz_running = byzantine.len();
        Ok(ShardedRunner {
            inner: Coordinator::new(n, adversary, fault_budget, shards, transports, Some(pool))?,
            outputs: (0..n).map(|_| None).collect(),
            byzantine,
            byz_running,
            _msg: PhantomData,
        })
    }

    /// Enables coarse-grained event tracing (decisions, halts, crashes) in
    /// the coordinator.
    pub fn enable_trace(&mut self) -> &mut Self {
        self.inner.core.trace = Trace::enabled();
        self
    }

    /// The recorded trace.
    pub fn trace(&self) -> &Trace {
        &self.inner.core.trace
    }

    /// Arms worker-failure recovery: from now on every request frame is
    /// retained and a failing shard transport climbs the
    /// respawn → fallback → error ladder instead of aborting the run.
    pub fn set_recovery(&mut self, recovery: Recovery) -> &mut Self {
        self.inner.set_recovery(recovery);
        self
    }

    /// What the recovery ladder did so far.
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.inner.stats
    }

    /// Whether every node that has not crashed has halted voluntarily.
    pub fn all_non_faulty_halted(&self) -> bool {
        self.inner.core.running_nodes() == self.byz_running
    }

    /// Runs the sharded execution until every non-faulty node has halted or
    /// `max_rounds` rounds have been executed, shuts the workers down, and
    /// returns the execution report.
    ///
    /// Single-shot: the workers are gone afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Shard`] when a worker dies or answers with a
    /// malformed frame mid-execution.
    pub fn run(&mut self, max_rounds: u64) -> SimResult<ExecutionReport<O>> {
        let mut termination = Termination::RoundLimit;
        for _ in 0..max_rounds {
            self.step()?;
            if self.all_non_faulty_halted() {
                termination = Termination::AllHalted;
                break;
            }
        }
        self.inner.shutdown();
        Ok(ExecutionReport {
            outputs: self.outputs.clone(),
            crashed_at: self.inner.core.crashed_at.clone(),
            halted_at: self.inner.core.halted_at.clone(),
            byzantine: self.byzantine.clone(),
            metrics: self.inner.core.metrics.clone(),
            termination,
        })
    }

    /// One sharded multi-port round: the transcription of the pool engine's
    /// forked `step` with the three phase dispatches replaced by frames.
    fn step(&mut self) -> SimResult<()> {
        let n = self.inner.n();
        let plan = self.inner.plan;
        let round = self.inner.core.round;

        // Phase 1: collect sends on the workers; merge intents flat.
        let mut request = frame(REQ_COLLECT);
        round.encode(&mut request);
        self.inner.broadcast(&request)?;
        for ci in 0..self.inner.transports.len() {
            let range = plan.range(ci, n);
            let range_len = range.len();
            let intents: Vec<Vec<NodeId>> = self.inner.transact(ci, RESP_INTENTS, move |r| {
                let intents: Vec<Vec<NodeId>> =
                    Vec::decode(r).map_err(|err| format!("intents: {err}"))?;
                if intents.len() != range_len {
                    return Err(format!(
                        "{} intent lists for {range_len} nodes",
                        intents.len()
                    ));
                }
                Ok(intents)
            })?;
            for (i, list) in intents.into_iter().enumerate() {
                self.inner.send_intents[range.start + i] = list;
            }
        }

        // Phase 2 (parent only): the crash adversary sees the whole round.
        self.inner.core.apply_crash_phase(
            &mut *self.inner.adversary,
            &self.inner.send_intents,
            &self.inner.poll_intents,
        );
        let mut crashed_by_chunk: Vec<Vec<(usize, DeliveryFilter)>> =
            (0..self.inner.transports.len())
                .map(|_| Vec::new())
                .collect();
        for &idx in self.inner.core.crashed_this_round() {
            if self.byzantine.contains(NodeId::new(idx)) {
                self.byz_running -= 1;
            }
            let ci = plan.chunk_of(idx);
            let filter = self
                .inner
                .core
                .filter(idx)
                .cloned()
                .unwrap_or(DeliveryFilter::All);
            crashed_by_chunk[ci].push((idx - plan.range(ci, n).start, filter));
        }

        // Phase 3: workers deliver; merge metric deltas and route surviving
        // messages in ascending chunk (= sender) order.
        for (ci, crashed) in crashed_by_chunk.into_iter().enumerate() {
            let mut request = frame(REQ_DELIVER);
            round.encode(&mut request);
            crashed.encode(&mut request);
            self.inner.send_to(ci, &request)?;
        }
        let mut inbound_by_chunk: Vec<Vec<(usize, Delivered<M>)>> =
            (0..self.inner.transports.len())
                .map(|_| Vec::new())
                .collect();
        for ci in 0..self.inner.transports.len() {
            let (msgs, bits, byz_msgs, delivered) =
                self.inner.transact(ci, RESP_DELIVERED, |r| {
                    let context = |err| format!("delivery: {err}");
                    let msgs = u64::decode(r).map_err(context)?;
                    let bits = u64::decode(r).map_err(context)?;
                    let byz_msgs = u64::decode(r).map_err(context)?;
                    let delivered: Vec<(usize, Delivered<M>)> = Vec::decode(r).map_err(context)?;
                    Ok((msgs, bits, byz_msgs, delivered))
                })?;
            self.inner
                .core
                .metrics
                .record_messages(round.as_u64(), msgs, bits);
            self.inner.core.metrics.byzantine_messages += byz_msgs;
            for (dest, msg) in delivered {
                if dest < n && self.inner.core.status[dest].is_running() {
                    let dest_chunk = plan.chunk_of(dest);
                    let local = dest - plan.range(dest_chunk, n).start;
                    inbound_by_chunk[dest_chunk].push((local, msg));
                }
            }
        }

        // Phase 4: workers receive; replay decision/halt events in chunk
        // order so traces and statuses update exactly as in a serial run.
        for (ci, inbound) in inbound_by_chunk.into_iter().enumerate() {
            let mut request = frame(REQ_RECEIVE);
            round.encode(&mut request);
            inbound.encode(&mut request);
            self.inner.send_to(ci, &request)?;
        }
        for ci in 0..self.inner.transports.len() {
            let events: Vec<WireEvent<O>> = self.inner.transact(ci, RESP_EVENTS, |r| {
                let events: Vec<WireEvent<O>> =
                    Vec::decode(r).map_err(|err| format!("events: {err}"))?;
                if let Some(event) = events.iter().find(|event| event.node >= n) {
                    return Err(format!("an event for node {} of {n}", event.node));
                }
                Ok(events)
            })?;
            for event in events {
                if let Some(output) = event.output {
                    self.inner.core.record_decision(event.node, &output);
                    self.outputs[event.node] = Some(output);
                }
                if event.halted {
                    self.inner.core.mark_halted(event.node);
                }
            }
        }
        self.inner.core.finish_round();
        Ok(())
    }
}

impl<M: WireMsg, O: WireOutput> std::fmt::Debug for ShardedRunner<M, O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedRunner")
            .field("n", &self.inner.n())
            .field("round", &self.inner.core.round)
            .field("shards", &self.inner.transports.len())
            .finish_non_exhaustive()
    }
}

/// Coordinates one **single-port** execution whose chunks live behind shard
/// transports.
///
/// The sparse port map and every mutation of it (enqueue in sender order,
/// pre-drain in poller order, crash/halt-time drops) stay in the parent —
/// exactly the split the pool's forked path uses.
pub struct SpShardedRunner<M: WireMsg, O: WireOutput> {
    inner: Coordinator,
    outputs: Vec<Option<O>>,
    ports: PortMap<M>,
    sends: Vec<Option<Outgoing<M>>>,
}

impl<M: WireMsg, O: WireOutput> SpShardedRunner<M, O> {
    /// Connects a coordinator over `n` nodes to already-serving single-port
    /// shard workers (one transport per chunk of `shard_count(n, shards)`).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptySystem`] for zero nodes,
    /// [`SimError::InvalidConfig`] when the fault budget or transport count
    /// is inconsistent with `n`.
    pub fn connect(
        n: usize,
        adversary: Box<dyn CrashAdversary>,
        fault_budget: usize,
        shards: usize,
        transports: Vec<Box<dyn ShardTransport>>,
    ) -> SimResult<Self> {
        Ok(SpShardedRunner {
            inner: Coordinator::new(n, adversary, fault_budget, shards, transports, None)?,
            outputs: (0..n).map(|_| None).collect(),
            ports: PortMap::new(),
            sends: (0..n).map(|_| None).collect(),
        })
    }

    /// Spawns an in-process sharded single-port execution (see
    /// [`ShardedRunner::in_process`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptySystem`] if `nodes` is empty, or
    /// [`SimError::InvalidConfig`] if the budget is not smaller than the
    /// number of nodes.
    pub fn in_process<P>(
        nodes: Vec<P>,
        adversary: Box<dyn CrashAdversary>,
        fault_budget: usize,
        shards: usize,
    ) -> SimResult<SpShardedRunner<P::Msg, P::Output>>
    where
        P: SinglePortProtocol<Msg = M, Output = O>,
    {
        if nodes.is_empty() {
            return Err(SimError::EmptySystem);
        }
        let n = nodes.len();
        let plan = ChunkPlan::new(n, shards.max(1));
        let pool = WorkerPool::new(plan.chunks);
        let mut transports: Vec<Box<dyn ShardTransport>> = Vec::with_capacity(plan.chunks);
        let mut nodes = nodes.into_iter();
        for ci in 0..plan.chunks {
            let range = plan.range(ci, n);
            let chunk_nodes: Vec<P> = nodes.by_ref().take(range.len()).collect();
            let (parent_end, mut worker_end) = ChannelTransport::pair();
            let base = range.start;
            pool.submit(
                ci,
                Box::new(move || {
                    serve_single_port(chunk_nodes, base, &mut worker_end)
                        .expect("in-process shard worker failed");
                }),
            );
            transports.push(Box::new(parent_end));
        }
        Ok(SpShardedRunner {
            inner: Coordinator::new(n, adversary, fault_budget, shards, transports, Some(pool))?,
            outputs: (0..n).map(|_| None).collect(),
            ports: PortMap::new(),
            sends: (0..n).map(|_| None).collect(),
        })
    }

    /// Enables coarse-grained event tracing in the coordinator.
    pub fn enable_trace(&mut self) -> &mut Self {
        self.inner.core.trace = Trace::enabled();
        self
    }

    /// The recorded trace.
    pub fn trace(&self) -> &Trace {
        &self.inner.core.trace
    }

    /// Arms worker-failure recovery (see [`ShardedRunner::set_recovery`]).
    pub fn set_recovery(&mut self, recovery: Recovery) -> &mut Self {
        self.inner.set_recovery(recovery);
        self
    }

    /// What the recovery ladder did so far.
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.inner.stats
    }

    /// Total sent-but-not-yet-polled messages currently buffered on ports.
    pub fn buffered_messages(&self) -> usize {
        self.ports.buffered_messages()
    }

    /// Number of ports currently buffering at least one message.
    pub fn ports_in_use(&self) -> usize {
        self.ports.ports_in_use()
    }

    /// Whether every node that has not crashed has halted voluntarily.
    pub fn all_non_faulty_halted(&self) -> bool {
        self.inner.core.running_nodes() == 0
    }

    /// Runs the sharded execution until every non-faulty node has halted or
    /// `max_rounds` rounds have been executed, shuts the workers down, and
    /// returns the execution report.  Single-shot.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Shard`] when a worker dies or answers with a
    /// malformed frame mid-execution.
    pub fn run(&mut self, max_rounds: u64) -> SimResult<ExecutionReport<O>> {
        let mut termination = Termination::RoundLimit;
        for _ in 0..max_rounds {
            self.step()?;
            if self.all_non_faulty_halted() {
                termination = Termination::AllHalted;
                break;
            }
        }
        self.inner.shutdown();
        Ok(ExecutionReport {
            outputs: self.outputs.clone(),
            crashed_at: self.inner.core.crashed_at.clone(),
            halted_at: self.inner.core.halted_at.clone(),
            byzantine: NodeSet::empty(self.inner.n()),
            metrics: self.inner.core.metrics.clone(),
            termination,
        })
    }

    /// One sharded single-port round: the transcription of the pool
    /// engine's forked `step` with the two phase dispatches replaced by
    /// frames.
    fn step(&mut self) -> SimResult<()> {
        let n = self.inner.n();
        let plan = self.inner.plan;
        let round = self.inner.core.round;

        // Phase 1: collect each node's single send and poll intent.
        let mut request = frame(REQ_COLLECT);
        round.encode(&mut request);
        self.inner.broadcast(&request)?;
        for ci in 0..self.inner.transports.len() {
            let range = plan.range(ci, n);
            let range_len = range.len();
            let (sends, polls) = self.inner.transact(ci, RESP_SP_INTENTS, move |r| {
                let context = |err| format!("intents: {err}");
                let sends: Vec<Option<Outgoing<M>>> = Vec::decode(r).map_err(context)?;
                let polls: Vec<Option<NodeId>> = Vec::decode(r).map_err(context)?;
                if sends.len() != range_len || polls.len() != range_len {
                    return Err(format!(
                        "{}/{} send/poll slots for {range_len} nodes",
                        sends.len(),
                        polls.len()
                    ));
                }
                Ok((sends, polls))
            })?;
            for (i, (send, poll)) in sends.into_iter().zip(polls).enumerate() {
                let global = range.start + i;
                self.inner.send_intents[global].clear();
                self.inner.send_intents[global].extend(send.iter().map(|o| o.to));
                self.sends[global] = send;
                self.inner.poll_intents[global] = poll;
            }
        }

        // Phase 2 (parent only): crash adversary; crashed destinations'
        // buffered ports are freed, exactly as in the serial engine.
        self.inner.core.apply_crash_phase(
            &mut *self.inner.adversary,
            &self.inner.send_intents,
            &self.inner.poll_intents,
        );
        let mut crashed_by_chunk: Vec<Vec<usize>> = (0..self.inner.transports.len())
            .map(|_| Vec::new())
            .collect();
        for &victim in self.inner.core.crashed_this_round() {
            self.ports.drop_destination(victim);
            let ci = plan.chunk_of(victim);
            crashed_by_chunk[ci].push(victim - plan.range(ci, n).start);
        }

        // Phase 3 (parent only): enqueue onto destination ports in sender
        // order, applying mid-round crash filters and counting every send.
        for sender_idx in 0..n {
            let Some(out) = self.sends[sender_idx].take() else {
                continue;
            };
            if let Some(filter) = self.inner.core.filter(sender_idx) {
                if !filter.allows(0, out.to) {
                    continue;
                }
            }
            self.inner
                .core
                .metrics
                .record_message(round.as_u64(), out.msg.bit_len());
            let dest = out.to.index();
            if dest < n && self.inner.core.status[dest].is_running() {
                self.ports.push(dest, sender_idx, out.msg);
            }
        }

        // Pre-drain polled ports in node-index order, then hand each chunk
        // its drained contents together with this round's crash mirror.
        for (ci, crashed) in crashed_by_chunk.into_iter().enumerate() {
            let range = plan.range(ci, n);
            let drained: Vec<Option<Vec<M>>> = range
                .clone()
                .map(|global| {
                    if self.inner.core.status[global].is_running() {
                        self.inner.poll_intents[global]
                            .map(|port| self.ports.drain(global, port.index()))
                    } else {
                        None
                    }
                })
                .collect();
            let mut request = frame(REQ_SP_RECEIVE);
            round.encode(&mut request);
            crashed.encode(&mut request);
            drained.encode(&mut request);
            self.inner.send_to(ci, &request)?;
        }

        // Phase 4: replay decision/halt events in chunk order; halted
        // nodes' buffered ports are freed.
        for ci in 0..self.inner.transports.len() {
            let events: Vec<WireEvent<O>> = self.inner.transact(ci, RESP_EVENTS, |r| {
                let events: Vec<WireEvent<O>> =
                    Vec::decode(r).map_err(|err| format!("events: {err}"))?;
                if let Some(event) = events.iter().find(|event| event.node >= n) {
                    return Err(format!("an event for node {} of {n}", event.node));
                }
                Ok(events)
            })?;
            for event in events {
                if let Some(output) = event.output {
                    self.inner.core.record_decision(event.node, &output);
                    self.outputs[event.node] = Some(output);
                }
                if event.halted {
                    self.inner.core.mark_halted(event.node);
                    self.ports.drop_destination(event.node);
                }
            }
        }
        self.inner.core.finish_round();
        Ok(())
    }
}

impl<M: WireMsg, O: WireOutput> std::fmt::Debug for SpShardedRunner<M, O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpShardedRunner")
            .field("n", &self.inner.n())
            .field("round", &self.inner.core.round)
            .field("shards", &self.inner.transports.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests;
