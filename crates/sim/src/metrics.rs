//! Communication and runtime metrics.
//!
//! The paper measures (Section 2):
//!
//! * **running time** — the number of rounds until all non-faulty nodes have
//!   halted;
//! * **communication** — either the number of point-to-point messages or the
//!   total number of bits carried in them; for Byzantine faults, only
//!   messages sent by non-faulty nodes are counted.

use serde::{Deserialize, Serialize};

/// Aggregated communication counters for one execution.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Metrics {
    /// Rounds elapsed until the runner stopped (all non-faulty nodes halted
    /// or the round cap was hit).
    pub rounds: u64,
    /// Point-to-point messages sent by counted (non-faulty) nodes.
    pub messages: u64,
    /// Total bits in counted messages.
    pub bits: u64,
    /// Messages per round, for plotting communication profiles.
    pub messages_per_round: Vec<u64>,
    /// Number of nodes that crashed during the execution.
    pub crashes: u64,
    /// Messages sent by Byzantine nodes (informational; excluded from
    /// `messages`).
    pub byzantine_messages: u64,
}

impl Metrics {
    /// Creates an empty metrics record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a counted message of `bits` bits sent in round `round`.
    pub fn record_message(&mut self, round: u64, bits: u64) {
        self.messages += 1;
        self.bits += bits;
        if self.messages_per_round.len() <= round as usize {
            self.messages_per_round.resize(round as usize + 1, 0);
        }
        self.messages_per_round[round as usize] += 1;
    }

    /// Records a message sent by a Byzantine node (not counted).
    pub fn record_byzantine_message(&mut self) {
        self.byzantine_messages += 1;
    }

    /// Records a crash.
    pub fn record_crash(&mut self) {
        self.crashes += 1;
    }

    /// Average messages per node, given the system size.
    pub fn messages_per_node(&self, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.messages as f64 / n as f64
        }
    }

    /// Peak per-round message count.
    pub fn peak_messages_in_a_round(&self) -> u64 {
        self.messages_per_round.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_aggregates() {
        let mut m = Metrics::new();
        m.record_message(0, 1);
        m.record_message(0, 1);
        m.record_message(3, 8);
        m.record_crash();
        m.record_byzantine_message();
        assert_eq!(m.messages, 3);
        assert_eq!(m.bits, 10);
        assert_eq!(m.messages_per_round, vec![2, 0, 0, 1]);
        assert_eq!(m.crashes, 1);
        assert_eq!(m.byzantine_messages, 1);
        assert_eq!(m.peak_messages_in_a_round(), 2);
        assert!((m.messages_per_node(3) - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn messages_per_node_handles_empty_system() {
        let m = Metrics::new();
        assert_eq!(m.messages_per_node(0), 0.0);
    }
}
