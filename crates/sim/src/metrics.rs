//! Communication and runtime metrics.
//!
//! The paper measures (Section 2):
//!
//! * **running time** — the number of rounds until all non-faulty nodes have
//!   halted;
//! * **communication** — either the number of point-to-point messages or the
//!   total number of bits carried in them; for Byzantine faults, only
//!   messages sent by non-faulty nodes are counted.

use serde::{Deserialize, Serialize};

/// How many trailing rounds of the per-round message profile are retained.
///
/// Long single-port executions run tens of thousands of rounds; an unbounded
/// per-round vector would grow with the execution and get cloned into every
/// [`ExecutionReport`](crate::ExecutionReport).  The window keeps the profile
/// bounded while [`Metrics::peak_messages_in_a_round`] stays exact over the
/// whole run (the peak is tracked separately as rounds slide out).
pub const MESSAGES_PER_ROUND_WINDOW: usize = 1024;

/// Aggregated communication counters for one execution.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Metrics {
    /// Rounds elapsed until the runner stopped (all non-faulty nodes halted
    /// or the round cap was hit).
    pub rounds: u64,
    /// Point-to-point messages sent by counted (non-faulty) nodes.
    pub messages: u64,
    /// Total bits in counted messages.
    pub bits: u64,
    /// Bounded per-round message profile (see
    /// [`Metrics::messages_per_round`]).
    per_round: PerRoundWindow,
    /// Number of nodes that crashed during the execution.
    pub crashes: u64,
    /// Messages sent by Byzantine nodes (informational; excluded from
    /// `messages`).
    pub byzantine_messages: u64,
}

/// A sliding window over per-round message counts: the last
/// `MESSAGES_PER_ROUND_WINDOW` rounds, plus the exact all-time peak.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
struct PerRoundWindow {
    /// `counts[i]` is the number of messages recorded in round
    /// `first_round + i`.
    counts: Vec<u64>,
    /// The round `counts[0]` refers to.
    first_round: u64,
    /// Largest per-round count ever seen, including rounds that have slid
    /// out of the window.
    peak: u64,
}

impl PerRoundWindow {
    fn record(&mut self, round: u64) {
        self.record_many(round, 1);
    }

    fn record_many(&mut self, round: u64, count: u64) {
        debug_assert!(
            round >= self.first_round,
            "rounds are recorded monotonically"
        );
        if round < self.first_round {
            return;
        }
        let mut idx = (round - self.first_round) as usize;
        if idx >= MESSAGES_PER_ROUND_WINDOW {
            // Slide the window so `round` lands on its last slot, without
            // materialising the (possibly huge) gap of idle rounds: `counts`
            // never grows past the window, neither in length nor capacity.
            let new_first = round - (MESSAGES_PER_ROUND_WINDOW as u64 - 1);
            let shift = new_first - self.first_round;
            if shift >= self.counts.len() as u64 {
                self.counts.clear();
            } else {
                self.counts.drain(..shift as usize);
            }
            self.first_round = new_first;
            idx = MESSAGES_PER_ROUND_WINDOW - 1;
        }
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += count;
        self.peak = self.peak.max(self.counts[idx]);
    }
}

impl Metrics {
    /// Creates an empty metrics record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a counted message of `bits` bits sent in round `round`.
    ///
    /// Rounds must be non-decreasing across calls (the runners record in
    /// round order).  An out-of-order round still counts towards `messages`
    /// and `bits`, but its slot in the bounded per-round profile may already
    /// have slid out of the window; debug builds assert monotonicity.
    pub fn record_message(&mut self, round: u64, bits: u64) {
        self.messages += 1;
        self.bits += bits;
        self.per_round.record(round);
    }

    /// Records `count` counted messages totalling `bits` bits, all sent in
    /// round `round`.
    ///
    /// Equivalent to `count` calls to [`Metrics::record_message`] with the
    /// same round (the per-round profile, its peak and the aggregate counters
    /// end up byte-identical) — this is how the parallel round engines merge
    /// per-worker message counters without replaying every message.  A zero
    /// `count` is a no-op, exactly like not recording at all.
    pub fn record_messages(&mut self, round: u64, count: u64, bits: u64) {
        if count == 0 {
            return;
        }
        self.messages += count;
        self.bits += bits;
        self.per_round.record_many(round, count);
    }

    /// Records a message sent by a Byzantine node (not counted).
    pub fn record_byzantine_message(&mut self) {
        self.byzantine_messages += 1;
    }

    /// Records a crash.
    pub fn record_crash(&mut self) {
        self.crashes += 1;
    }

    /// Per-round message counts for the most recent rounds, for plotting
    /// communication profiles.
    ///
    /// Slot `i` holds the count for round [`Metrics::messages_per_round_start`]` + i`.
    /// At most `MESSAGES_PER_ROUND_WINDOW` trailing rounds are retained;
    /// executions shorter than the window keep their full profile (as the
    /// unbounded seed implementation did).  Like the seed, the profile ends
    /// at the last round in which a message was recorded.
    pub fn messages_per_round(&self) -> &[u64] {
        &self.per_round.counts
    }

    /// The round the first slot of [`Metrics::messages_per_round`] refers to
    /// (zero until the execution outgrows the retention window).
    pub fn messages_per_round_start(&self) -> u64 {
        self.per_round.first_round
    }

    /// Average messages per node, given the system size.
    pub fn messages_per_node(&self, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.messages as f64 / n as f64
        }
    }

    /// Peak per-round message count, exact over the whole execution (not
    /// just the retained window).
    pub fn peak_messages_in_a_round(&self) -> u64 {
        self.per_round.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_aggregates() {
        let mut m = Metrics::new();
        m.record_message(0, 1);
        m.record_message(0, 1);
        m.record_message(3, 8);
        m.record_crash();
        m.record_byzantine_message();
        assert_eq!(m.messages, 3);
        assert_eq!(m.bits, 10);
        assert_eq!(m.messages_per_round(), &[2, 0, 0, 1]);
        assert_eq!(m.messages_per_round_start(), 0);
        assert_eq!(m.crashes, 1);
        assert_eq!(m.byzantine_messages, 1);
        assert_eq!(m.peak_messages_in_a_round(), 2);
        assert!((m.messages_per_node(3) - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn batched_recording_matches_repeated_recording() {
        let mut one_by_one = Metrics::new();
        for _ in 0..5 {
            one_by_one.record_message(2, 3);
        }
        one_by_one.record_message(4, 1);
        let mut batched = Metrics::new();
        batched.record_messages(2, 5, 15);
        batched.record_messages(3, 0, 0); // no-op, like not recording at all
        batched.record_messages(4, 1, 1);
        assert_eq!(one_by_one, batched);
        assert_eq!(batched.peak_messages_in_a_round(), 5);
    }

    #[test]
    fn messages_per_node_handles_empty_system() {
        let m = Metrics::new();
        assert_eq!(m.messages_per_node(0), 0.0);
    }

    #[test]
    fn per_round_profile_is_bounded() {
        let mut m = Metrics::new();
        let window = MESSAGES_PER_ROUND_WINDOW as u64;
        for round in 0..3 * window {
            m.record_message(round, 1);
        }
        assert_eq!(m.messages, 3 * window);
        assert_eq!(m.messages_per_round().len(), MESSAGES_PER_ROUND_WINDOW);
        assert_eq!(m.messages_per_round_start(), 2 * window);
        assert!(m.messages_per_round().iter().all(|&c| c == 1));
    }

    #[test]
    fn peak_survives_window_slide() {
        let mut m = Metrics::new();
        // A burst of 5 messages in round 0, then one message per round far
        // beyond the window: the burst must still be the reported peak.
        for _ in 0..5 {
            m.record_message(0, 1);
        }
        for round in 1..2 * MESSAGES_PER_ROUND_WINDOW as u64 {
            m.record_message(round, 1);
        }
        assert_eq!(m.peak_messages_in_a_round(), 5);
        assert!(m.messages_per_round_start() > 0, "round 0 slid out");
    }

    #[test]
    fn sparse_rounds_slide_in_one_step() {
        let mut m = Metrics::new();
        m.record_message(0, 1);
        // A jump far past the window drops everything before it in one go,
        // without ever materialising the gap (a transient Vec of gap length
        // would be gigabytes for adversarially idle single-port runs).
        let far = 1_000_000 * MESSAGES_PER_ROUND_WINDOW as u64;
        m.record_message(far, 1);
        assert_eq!(m.messages_per_round().len(), MESSAGES_PER_ROUND_WINDOW);
        assert_eq!(
            m.messages_per_round_start(),
            far + 1 - MESSAGES_PER_ROUND_WINDOW as u64
        );
        assert_eq!(m.peak_messages_in_a_round(), 1);
        assert_eq!(m.messages_per_round().last(), Some(&1));
    }
}
