//! Node identities and dense node sets.
//!
//! The paper models a system of `n` nodes with unique integer names in
//! `[n] = {1, …, n}`.  Internally we use zero-based indices; [`NodeId::name`]
//! recovers the one-based paper name when printing or comparing against the
//! pseudocode (for example "little nodes are those with name at most `5t`").

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identity of a node in a synchronous network of `n` nodes.
///
/// `NodeId` is a zero-based index; the paper's one-based *name* is available
/// via [`NodeId::name`].
///
/// # Examples
///
/// ```
/// use dft_sim::NodeId;
///
/// let id = NodeId::new(0);
/// assert_eq!(id.index(), 0);
/// assert_eq!(id.name(), 1); // the paper's smallest node name
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(usize);

impl NodeId {
    /// Creates a node identity from a zero-based index.
    pub const fn new(index: usize) -> Self {
        NodeId(index)
    }

    /// Creates a node identity from a one-based paper name.
    ///
    /// # Panics
    ///
    /// Panics if `name` is zero.
    pub fn from_name(name: usize) -> Self {
        assert!(name >= 1, "paper node names are one-based");
        NodeId(name - 1)
    }

    /// Zero-based index of this node.
    pub const fn index(self) -> usize {
        self.0
    }

    /// One-based name as used in the paper's pseudocode.
    pub const fn name(self) -> usize {
        self.0 + 1
    }

    /// Whether this node is a *little node*, i.e. has one of the `count`
    /// smallest names (the paper uses the `5t` smallest names).
    pub const fn is_little(self, count: usize) -> bool {
        self.0 < count
    }

    /// The little node this node is *related to*: the one whose name is
    /// congruent to this node's name modulo `little_count` (Section 4.1,
    /// Part 3 of `Almost-Everywhere-Agreement`).
    ///
    /// Little nodes are related to themselves.
    ///
    /// # Panics
    ///
    /// Panics if `little_count` is zero.
    pub fn related_little(self, little_count: usize) -> NodeId {
        assert!(little_count > 0, "little_count must be positive");
        NodeId(self.0 % little_count)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(index: usize) -> Self {
        NodeId(index)
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> Self {
        id.0
    }
}

/// A dense set of nodes over a fixed universe `{0, …, n-1}`, stored as a
/// bitmap.
///
/// Used throughout the runners and protocols to track alive nodes, deciders,
/// completion sets and extant sets without per-element allocation.
///
/// # Examples
///
/// ```
/// use dft_sim::{NodeId, NodeSet};
///
/// let mut alive = NodeSet::full(4);
/// alive.remove(NodeId::new(2));
/// assert_eq!(alive.len(), 3);
/// assert!(!alive.contains(NodeId::new(2)));
/// assert!(alive.contains(NodeId::new(0)));
/// ```
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeSet {
    words: Vec<u64>,
    universe: usize,
}

impl NodeSet {
    /// Creates an empty set over a universe of `universe` nodes.
    pub fn empty(universe: usize) -> Self {
        NodeSet {
            words: vec![0; universe.div_ceil(64)],
            universe,
        }
    }

    /// Creates the full set `{0, …, universe-1}`.
    pub fn full(universe: usize) -> Self {
        let mut set = Self::empty(universe);
        for i in 0..universe {
            set.insert(NodeId::new(i));
        }
        set
    }

    /// Builds a set from an iterator of node identities.
    ///
    /// # Panics
    ///
    /// Panics if any node index is outside the universe.
    pub fn from_iter<I: IntoIterator<Item = NodeId>>(universe: usize, nodes: I) -> Self {
        let mut set = Self::empty(universe);
        for node in nodes {
            set.insert(node);
        }
        set
    }

    /// Size of the universe this set ranges over.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of nodes in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Whether `node` is in the set.
    ///
    /// # Panics
    ///
    /// Panics if the node index is outside the universe.
    pub fn contains(&self, node: NodeId) -> bool {
        let i = node.index();
        assert!(
            i < self.universe,
            "node {i} outside universe {}",
            self.universe
        );
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Inserts `node`; returns `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if the node index is outside the universe.
    pub fn insert(&mut self, node: NodeId) -> bool {
        let i = node.index();
        assert!(
            i < self.universe,
            "node {i} outside universe {}",
            self.universe
        );
        let fresh = self.words[i / 64] & (1 << (i % 64)) == 0;
        self.words[i / 64] |= 1 << (i % 64);
        fresh
    }

    /// Removes `node`; returns `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if the node index is outside the universe.
    pub fn remove(&mut self, node: NodeId) -> bool {
        let i = node.index();
        assert!(
            i < self.universe,
            "node {i} outside universe {}",
            self.universe
        );
        let present = self.words[i / 64] & (1 << (i % 64)) != 0;
        self.words[i / 64] &= !(1 << (i % 64));
        present
    }

    /// Iterates over members in increasing index order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.universe)
            .map(NodeId::new)
            .filter(move |&id| self.contains(id))
    }

    /// In-place union with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn union_with(&mut self, other: &NodeSet) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// In-place intersection with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn intersect_with(&mut self, other: &NodeSet) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// Set difference `self \ other`, in place.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn subtract(&mut self, other: &NodeSet) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !*b;
        }
    }

    /// Whether `self` is a subset of `other`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn is_subset(&self, other: &NodeSet) -> bool {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Collects the members into a vector of node identities.
    pub fn to_vec(&self) -> Vec<NodeId> {
        self.iter().collect()
    }
}

impl fmt::Debug for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<NodeId> for NodeSet {
    /// Builds a set whose universe is one past the largest member.
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let nodes: Vec<NodeId> = iter.into_iter().collect();
        let universe = nodes.iter().map(|n| n.index() + 1).max().unwrap_or(0);
        NodeSet::from_iter(universe, nodes)
    }
}

impl Extend<NodeId> for NodeSet {
    fn extend<I: IntoIterator<Item = NodeId>>(&mut self, iter: I) {
        for node in iter {
            self.insert(node);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_name_round_trip() {
        for i in 0..10 {
            let id = NodeId::new(i);
            assert_eq!(NodeId::from_name(id.name()), id);
        }
    }

    #[test]
    fn little_nodes_are_smallest_names() {
        assert!(NodeId::new(0).is_little(5));
        assert!(NodeId::new(4).is_little(5));
        assert!(!NodeId::new(5).is_little(5));
    }

    #[test]
    fn related_little_is_mod_class() {
        // With 5 little nodes, node index 7 is related to little node 7 % 5 = 2.
        assert_eq!(NodeId::new(7).related_little(5), NodeId::new(2));
        // A little node is related to itself.
        assert_eq!(NodeId::new(3).related_little(5), NodeId::new(3));
    }

    #[test]
    #[should_panic(expected = "one-based")]
    fn from_name_rejects_zero() {
        let _ = NodeId::from_name(0);
    }

    #[test]
    fn node_set_basic_operations() {
        let mut set = NodeSet::empty(130);
        assert!(set.is_empty());
        assert!(set.insert(NodeId::new(0)));
        assert!(set.insert(NodeId::new(129)));
        assert!(!set.insert(NodeId::new(129)));
        assert_eq!(set.len(), 2);
        assert!(set.contains(NodeId::new(129)));
        assert!(set.remove(NodeId::new(0)));
        assert!(!set.remove(NodeId::new(0)));
        assert_eq!(set.to_vec(), vec![NodeId::new(129)]);
    }

    #[test]
    fn node_set_full_and_algebra() {
        let full = NodeSet::full(10);
        assert_eq!(full.len(), 10);
        let mut evens = NodeSet::from_iter(10, (0..10).step_by(2).map(NodeId::new));
        let odds = NodeSet::from_iter(10, (1..10).step_by(2).map(NodeId::new));
        assert!(evens.is_subset(&full));
        let mut union = evens.clone();
        union.union_with(&odds);
        assert_eq!(union, full);
        evens.intersect_with(&odds);
        assert!(evens.is_empty());
        let mut diff = full.clone();
        diff.subtract(&odds);
        assert_eq!(diff.len(), 5);
    }

    #[test]
    fn node_set_from_iterator_universe() {
        let set: NodeSet = [NodeId::new(3), NodeId::new(7)].into_iter().collect();
        assert_eq!(set.universe(), 8);
        assert_eq!(set.len(), 2);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn node_set_rejects_out_of_universe() {
        let set = NodeSet::empty(4);
        let _ = set.contains(NodeId::new(4));
    }
}
