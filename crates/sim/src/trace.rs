//! Lightweight execution tracing.
//!
//! Traces record coarse-grained events (crashes, halts, decisions) rather
//! than every message, so they stay cheap enough to leave enabled in tests
//! while still explaining *why* an execution unfolded the way it did.

use std::fmt;

use crate::node::NodeId;
use crate::round::Round;

/// A coarse-grained execution event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A node crashed.
    Crashed {
        /// Round of the crash.
        round: Round,
        /// The crashed node.
        node: NodeId,
    },
    /// A node halted voluntarily.
    Halted {
        /// Round of the halt.
        round: Round,
        /// The halting node.
        node: NodeId,
    },
    /// A node decided (its output became `Some`); the value is rendered with
    /// `Debug` to keep the trace type-erased.
    Decided {
        /// Round of the decision.
        round: Round,
        /// The deciding node.
        node: NodeId,
        /// `Debug` rendering of the decided value.
        value: String,
    },
}

impl Event {
    /// The round the event happened in.
    pub fn round(&self) -> Round {
        match self {
            Event::Crashed { round, .. }
            | Event::Halted { round, .. }
            | Event::Decided { round, .. } => *round,
        }
    }

    /// The node the event concerns.
    pub fn node(&self) -> NodeId {
        match self {
            Event::Crashed { node, .. }
            | Event::Halted { node, .. }
            | Event::Decided { node, .. } => *node,
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Crashed { round, node } => write!(f, "[{round}] {node:?} crashed"),
            Event::Halted { round, node } => write!(f, "[{round}] {node:?} halted"),
            Event::Decided { round, node, value } => {
                write!(f, "[{round}] {node:?} decided {value}")
            }
        }
    }
}

/// An append-only log of [`Event`]s for one execution.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    events: Vec<Event>,
    enabled: bool,
}

impl Trace {
    /// Creates a disabled (no-op) trace.
    pub fn disabled() -> Self {
        Trace {
            events: Vec::new(),
            enabled: false,
        }
    }

    /// Creates an enabled trace.
    pub fn enabled() -> Self {
        Trace {
            events: Vec::new(),
            enabled: true,
        }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event if tracing is enabled.
    pub fn record(&mut self, event: Event) {
        if self.enabled {
            self.events.push(event);
        }
    }

    /// All recorded events in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Events concerning a particular node.
    pub fn events_for(&self, node: NodeId) -> Vec<&Event> {
        self.events.iter().filter(|e| e.node() == node).collect()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_drops_events() {
        let mut t = Trace::disabled();
        t.record(Event::Crashed {
            round: Round::ZERO,
            node: NodeId::new(0),
        });
        assert!(t.is_empty());
    }

    #[test]
    fn enabled_trace_records_and_filters() {
        let mut t = Trace::enabled();
        t.record(Event::Crashed {
            round: Round::ZERO,
            node: NodeId::new(0),
        });
        t.record(Event::Decided {
            round: Round::new(2),
            node: NodeId::new(1),
            value: "1".to_string(),
        });
        assert_eq!(t.len(), 2);
        assert_eq!(t.events_for(NodeId::new(1)).len(), 1);
        assert_eq!(t.events()[0].round(), Round::ZERO);
        assert_eq!(format!("{}", t.events()[1]), "[2] n1 decided 1".to_string());
    }
}
