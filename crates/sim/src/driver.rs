//! The sans-I/O round cores every execution backend drives.
//!
//! A [`RoundCore`] (multi-port) or [`SinglePortCore`] (single-port) owns a
//! contiguous range of one execution's protocol state machines and exposes
//! the four phase bodies of a synchronous round as pure state transitions:
//!
//! 1. [`RoundCore::begin_round`] — collect outgoing messages and
//!    adversary-visible intents;
//! 2. (the crash phase happens *outside* the core — see below);
//! 3. [`RoundCore::deliver`] — apply crash delivery filters, count surviving
//!    messages, and stage them in sender order;
//! 4. [`RoundCore::finalize`] — drive `receive`, record decisions and halts,
//!    and return a [`RoundOutcome`].
//!
//! The core knows nothing about threads, pipes, or sockets: every backend —
//! the in-process runners ([`crate::Runner`] / [`crate::SinglePortRunner`]),
//! their worker-pool phase dispatch, the shard workers of [`crate::shard`],
//! and the `dft-node` TCP cluster — drives the *same* struct and differs
//! only in how phase inputs and outputs move.  That is what keeps every
//! backend byte-identical: the round semantics live here exactly once.
//!
//! This module is a layer boundary enforced by `dft-analyze`'s
//! `sans-io-boundary` rule: no `std::net`, `std::io` or `std::thread`
//! imports may appear here or in `crates/core`.
//!
//! # The crash phase stays outside
//!
//! The crash adversary's contract ([`crate::CrashAdversary`]) hands one
//! mutable strategy a coherent view of the *whole* round, so the phase can
//! never be split across cores.  Backends run it centrally (the runners on
//! the main thread, the shard coordinator in the parent process, the
//! cluster launcher before spawning) and mirror its verdicts into each
//! core with [`RoundCore::set_crashed`]; the resulting delivery filters are
//! passed to [`RoundCore::deliver`].  Because the shipped adversaries are
//! deterministic functions of `(seed, round)`, every backend derives the
//! same crash schedule independently.

use crate::adversary::DeliveryFilter;
use crate::message::{Delivered, Outgoing, Payload};
use crate::node::NodeId;
use crate::protocol::{NodeStatus, SinglePortProtocol, SyncProtocol};
use crate::round::Round;
use crate::runner::Participant;

/// A decision/halt event produced by a core's [`RoundCore::finalize`] (or
/// [`SinglePortCore::finalize`]): the global node index, whether the node
/// produced its first output this round, and whether it voluntarily halted.
///
/// Backends replay these in node-index order so traces and statuses update
/// exactly as in a serial run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeEvent {
    /// The node the event concerns (global index).
    pub node: usize,
    /// The node produced its first output this round.
    pub decided: bool,
    /// The node voluntarily halted this round.
    pub halted: bool,
}

/// What one core's round produced: the decision/halt events of
/// [`RoundCore::finalize`] plus the metric deltas counted by
/// [`RoundCore::deliver`].
///
/// Single-port cores report zero message counters — in that model the
/// backend owns the port buffers and counts sends itself.
#[derive(Debug)]
pub struct RoundOutcome<'c> {
    /// Decision/halt events in node-index order.
    pub events: &'c [NodeEvent],
    /// Messages sent by this core's non-Byzantine senders this round
    /// (surviving their crash filters; destinations' fates don't matter).
    pub messages: u64,
    /// Total bits carried by those messages.
    pub bits: u64,
    /// Messages sent by this core's Byzantine senders this round (counted
    /// separately; the paper excludes them from communication totals).
    pub byzantine_messages: u64,
}

/// The multi-port sans-I/O core: one backend-agnostic slice of an
/// execution, owning nodes `base .. base + len()`.
///
/// The scratch fields (`delivered`, `events`, the metric counters and every
/// per-node queue) persist across rounds: a pool phase dispatch moves the
/// whole core to its worker and back, a shard worker holds one for the
/// execution's lifetime, and a `dft-node` process drives a single-node core
/// over TCP — in every case buffer capacity survives instead of being
/// reallocated per phase.
pub struct RoundCore<P: SyncProtocol> {
    /// Global index of the first node in this core.
    pub(crate) base: usize,
    pub(crate) participants: Vec<Participant<P>>,
    /// Core-local mirror of the backend's status vector, kept in sync via
    /// [`RoundCore::set_crashed`] and the event replay.
    pub(crate) status: Vec<NodeStatus>,
    /// Core-local mirror of the Byzantine mask.
    pub(crate) byz: Vec<bool>,
    pub(crate) outgoing: Vec<Vec<Outgoing<P::Msg>>>,
    pub(crate) send_intents: Vec<Vec<NodeId>>,
    pub(crate) inboxes: Vec<Vec<Delivered<P::Msg>>>,
    pub(crate) byz_inboxes: Vec<Vec<Delivered<P::Msg>>>,
    pub(crate) outputs: Vec<Option<P::Output>>,
    /// Delivery scratch: surviving messages in sender order, tagged with
    /// their global destination for the backend's merge.
    pub(crate) delivered: Vec<(usize, Delivered<P::Msg>)>,
    /// Receive scratch: decision/halt events for the backend's replay.
    pub(crate) events: Vec<NodeEvent>,
    /// Messages / bits sent by non-Byzantine senders this round.
    pub(crate) msgs: u64,
    pub(crate) bits: u64,
    /// Messages sent by Byzantine senders this round (counted separately).
    pub(crate) byz_msgs: u64,
}

impl<P: SyncProtocol> RoundCore<P> {
    /// A fresh core at the start of an execution (every node `Running`,
    /// all scratch empty) — how a shard worker or cluster node starts
    /// before round 0.
    pub fn new(base: usize, participants: Vec<Participant<P>>) -> Self {
        let len = participants.len();
        let byz = participants.iter().map(Participant::is_byzantine).collect();
        RoundCore {
            base,
            participants,
            status: vec![NodeStatus::Running; len],
            byz,
            outgoing: (0..len).map(|_| Vec::new()).collect(),
            send_intents: (0..len).map(|_| Vec::new()).collect(),
            inboxes: (0..len).map(|_| Vec::new()).collect(),
            byz_inboxes: (0..len).map(|_| Vec::new()).collect(),
            outputs: (0..len).map(|_| None).collect(),
            delivered: Vec::new(),
            events: Vec::new(),
            msgs: 0,
            bits: 0,
            byz_msgs: 0,
        }
    }

    /// Global index of the first node in this core.
    pub fn base(&self) -> usize {
        self.base
    }

    /// Number of nodes this core owns.
    pub fn len(&self) -> usize {
        self.participants.len()
    }

    /// Whether this core owns no nodes.
    pub fn is_empty(&self) -> bool {
        self.participants.is_empty()
    }

    /// Phase 1: collect sends and adversary-visible intents for this
    /// core's nodes.
    pub fn begin_round(&mut self, round: Round) {
        for (i, participant) in self.participants.iter_mut().enumerate() {
            match (&self.status[i], participant) {
                (NodeStatus::Running, Participant::Honest(p)) => {
                    // The queue doubles as the node's send scratch: cleared
                    // here, filled by the protocol, drained by `deliver` —
                    // its capacity is the only thing that survives the
                    // round.
                    self.outgoing[i].clear();
                    p.send(round, &mut self.outgoing[i]);
                }
                (NodeStatus::Running, Participant::Byzantine(b)) => {
                    // Byzantine nodes act on last round's inbox when sending.
                    self.outgoing[i] = b.act(round, &self.byz_inboxes[i]);
                }
                // Clear-don't-drop: a crashed/halted sender keeps its (long
                // empty) queue instead of swapping in a fresh one per round.
                _ => self.outgoing[i].clear(),
            }
            self.send_intents[i].clear();
            let intents = self.outgoing[i].iter().map(|m| m.to);
            self.send_intents[i].extend(intents);
        }
    }

    /// The per-node destination lists collected by the last
    /// [`RoundCore::begin_round`] — what the crash adversary is shown.
    pub fn send_intents(&self) -> &[Vec<NodeId>] {
        &self.send_intents
    }

    /// Mirrors a crash verdict from the backend's central crash phase into
    /// this core (`local` indexes from [`RoundCore::base`]).
    pub fn set_crashed(&mut self, local: usize, round: Round) {
        self.status[local] = NodeStatus::Crashed(round);
    }

    /// Mirrors a voluntary halt into this core's status (backends that
    /// replay events centrally use this; [`RoundCore::finalize`] does not
    /// mark halts itself so the replay order stays with the backend).
    pub fn set_halted(&mut self, local: usize) {
        self.status[local] = NodeStatus::Halted;
    }

    /// A node's current status as this core sees it.
    pub fn status(&self, local: usize) -> NodeStatus {
        self.status[local]
    }

    /// Phase 3: scan this core's senders into the delivery scratch
    /// (surviving messages in sender order plus message / bit / Byzantine
    /// counters).  `filters` holds the delivery filters of nodes that
    /// crashed this round (globally indexed; almost always empty).  The
    /// destination-status check happens in the backend during the merge,
    /// which also clears this core's inboxes for the new round — done here,
    /// while the core is exclusively owned by its driver.
    pub fn deliver(&mut self, filters: &[(usize, DeliveryFilter)]) {
        for inbox in &mut self.inboxes {
            inbox.clear();
        }
        self.delivered.clear();
        self.msgs = 0;
        self.bits = 0;
        self.byz_msgs = 0;
        for (i, queue) in self.outgoing.iter_mut().enumerate() {
            let sender_idx = self.base + i;
            let sender = NodeId::new(sender_idx);
            let is_byzantine = self.byz[i];
            let filter = filters
                .iter()
                .find(|(node, _)| *node == sender_idx)
                .map(|(_, filter)| filter);
            for (msg_idx, out) in queue.drain(..).enumerate() {
                if let Some(filter) = filter {
                    if !filter.allows(msg_idx, out.to) {
                        continue;
                    }
                }
                if is_byzantine {
                    self.byz_msgs += 1;
                } else {
                    self.msgs += 1;
                    self.bits += out.msg.bit_len();
                }
                self.delivered
                    .push((out.to.index(), Delivered::new(sender, out.msg)));
            }
        }
    }

    /// The surviving messages staged by the last [`RoundCore::deliver`], in
    /// sender order, tagged with their global destination.  The backend
    /// routes each entry to its destination core with
    /// [`RoundCore::accept`] (dropping entries whose destination is no
    /// longer running).
    pub fn delivered(&self) -> &[(usize, Delivered<P::Msg>)] {
        &self.delivered
    }

    /// Routes one inbound message into a node's inbox for the current
    /// round (`local` indexes from [`RoundCore::base`]).
    pub fn accept(&mut self, local: usize, msg: Delivered<P::Msg>) {
        self.inboxes[local].push(msg);
    }

    /// Phase 4: drive `receive` for this core's nodes, record first
    /// decisions and voluntary halts, and return the round's outcome.
    ///
    /// The core does **not** advance its own status on a halt: the backend
    /// replays the returned events in global node order (and only then
    /// mirrors statuses back), so cross-core event ordering — and therefore
    /// traces — cannot depend on which core finalized first.
    pub fn finalize(&mut self, round: Round) -> RoundOutcome<'_> {
        self.events.clear();
        for (i, participant) in self.participants.iter_mut().enumerate() {
            if !self.status[i].is_running() {
                continue;
            }
            match participant {
                Participant::Honest(p) => {
                    p.receive(round, &self.inboxes[i]);
                    let mut decided = false;
                    if let Some(output) = p.output() {
                        if self.outputs[i].is_none() {
                            self.outputs[i] = Some(output);
                            decided = true;
                        }
                    }
                    let halted = p.has_halted();
                    if decided || halted {
                        self.events.push(NodeEvent {
                            node: self.base + i,
                            decided,
                            halted,
                        });
                    }
                }
                Participant::Byzantine(_) => {
                    // Byzantine nodes just remember their inbox for next round.
                    std::mem::swap(&mut self.byz_inboxes[i], &mut self.inboxes[i]);
                }
            }
        }
        RoundOutcome {
            events: &self.events,
            messages: self.msgs,
            bits: self.bits,
            byzantine_messages: self.byz_msgs,
        }
    }

    /// A node's first output, if it has decided (`local` indexes from
    /// [`RoundCore::base`]).
    pub fn output(&self, local: usize) -> Option<&P::Output> {
        self.outputs[local].as_ref()
    }
}

/// The single-port sans-I/O core: one backend-agnostic slice of a
/// single-port execution, owning nodes `base .. base + len()`.
///
/// Port buffers are shared, order-sensitive state and therefore live in the
/// backend (the runners' sparse `PortMap`, the shard coordinator's parent
/// side): the core only collects each node's single send and poll intent
/// ([`SinglePortCore::begin_round`]) and consumes backend-pre-drained port
/// contents ([`SinglePortCore::finalize`]).
pub struct SinglePortCore<P: SinglePortProtocol> {
    /// Global index of the first node in this core.
    pub(crate) base: usize,
    pub(crate) nodes: Vec<P>,
    /// Core-local mirror of the backend's status vector.
    pub(crate) status: Vec<NodeStatus>,
    /// Per-node single send for the current round.
    pub(crate) sends: Vec<Option<Outgoing<P::Msg>>>,
    /// Per-node poll intent for the current round.
    pub(crate) polls: Vec<Option<NodeId>>,
    /// Per-node pre-drained poll results (`Some` only for running nodes
    /// that polled this round; filled by the backend).
    pub(crate) drained: Vec<Option<Vec<P::Msg>>>,
    /// Emptied poll buffers waiting to be recycled.  [`SinglePortCore::finalize`]
    /// clears each consumed `drained` buffer into this pool instead of
    /// dropping it; in-process backends reclaim it into their `PortMap`
    /// every round ([`SinglePortCore::take_spares`]), and backends that
    /// cannot (a shard worker's buffers arrive off the wire) are protected
    /// by the `len()` cap in `finalize` — at most one retained buffer per
    /// node, so memory stays `O(n)` either way.
    pub(crate) spare: Vec<Vec<P::Msg>>,
    pub(crate) outputs: Vec<Option<P::Output>>,
    /// Receive scratch: decision/halt events for the backend's replay.
    pub(crate) events: Vec<NodeEvent>,
}

impl<P: SinglePortProtocol> SinglePortCore<P> {
    /// A fresh core at the start of an execution (every node `Running`,
    /// all scratch empty).
    pub fn new(base: usize, nodes: Vec<P>) -> Self {
        let len = nodes.len();
        SinglePortCore {
            base,
            nodes,
            status: vec![NodeStatus::Running; len],
            sends: (0..len).map(|_| None).collect(),
            polls: vec![None; len],
            drained: (0..len).map(|_| None).collect(),
            spare: Vec::new(),
            outputs: (0..len).map(|_| None).collect(),
            events: Vec::new(),
        }
    }

    /// Global index of the first node in this core.
    pub fn base(&self) -> usize {
        self.base
    }

    /// Number of nodes this core owns.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether this core owns no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Phase 1: collect each running node's single send and poll intent.
    pub fn begin_round(&mut self, round: Round) {
        for (i, node) in self.nodes.iter_mut().enumerate() {
            if self.status[i].is_running() {
                self.sends[i] = node.send(round);
                self.polls[i] = node.poll(round);
            } else {
                self.sends[i] = None;
                self.polls[i] = None;
            }
        }
    }

    /// The per-node sends collected by the last
    /// [`SinglePortCore::begin_round`].
    pub fn sends(&self) -> &[Option<Outgoing<P::Msg>>] {
        &self.sends
    }

    /// Moves a node's pending send out of the core (the backend enqueues
    /// it onto the destination's port, applying crash filters and
    /// counting).
    pub fn take_send(&mut self, local: usize) -> Option<Outgoing<P::Msg>> {
        self.sends[local].take()
    }

    /// The per-node poll intents collected by the last
    /// [`SinglePortCore::begin_round`].
    pub fn polls(&self) -> &[Option<NodeId>] {
        &self.polls
    }

    /// Hands a node the contents the backend drained from its polled port
    /// (`None` when the node did not poll or is not running).
    pub fn set_drained(&mut self, local: usize, msgs: Option<Vec<P::Msg>>) {
        self.drained[local] = msgs;
    }

    /// Moves the emptied poll buffers the last [`SinglePortCore::finalize`]
    /// retained into `out` (for the backend to recycle into its port
    /// buffers).
    pub fn take_spares(&mut self, out: &mut Vec<Vec<P::Msg>>) {
        out.append(&mut self.spare);
    }

    /// Mirrors a crash verdict from the backend's central crash phase.
    pub fn set_crashed(&mut self, local: usize, round: Round) {
        self.status[local] = NodeStatus::Crashed(round);
    }

    /// Mirrors a voluntary halt into this core's status.
    pub fn set_halted(&mut self, local: usize) {
        self.status[local] = NodeStatus::Halted;
    }

    /// A node's current status as this core sees it.
    pub fn status(&self, local: usize) -> NodeStatus {
        self.status[local]
    }

    /// Phase 4: deliver pre-drained polls, advance outputs, and return the
    /// round's outcome (message counters are zero — the backend counts
    /// single-port sends as it enqueues them).
    pub fn finalize(&mut self, round: Round) -> RoundOutcome<'_> {
        self.events.clear();
        let spare_cap = self.nodes.len();
        for (i, node) in self.nodes.iter_mut().enumerate() {
            if !self.status[i].is_running() {
                continue;
            }
            if let Some(port) = self.polls[i] {
                let mut msgs = self.drained[i].take().unwrap_or_default();
                node.receive(round, port, &mut msgs);
                // Recycle whatever the protocol left behind (capped so a
                // backend that never reclaims holds at most one buffer per
                // node).
                if self.spare.len() < spare_cap {
                    msgs.clear();
                    self.spare.push(msgs);
                }
            }
            let mut decided = false;
            if let Some(output) = node.output() {
                if self.outputs[i].is_none() {
                    self.outputs[i] = Some(output);
                    decided = true;
                }
            }
            let halted = node.has_halted();
            if decided || halted {
                self.events.push(NodeEvent {
                    node: self.base + i,
                    decided,
                    halted,
                });
            }
        }
        RoundOutcome {
            events: &self.events,
            messages: 0,
            bits: 0,
            byzantine_messages: 0,
        }
    }

    /// A node's first output, if it has decided.
    pub fn output(&self, local: usize) -> Option<&P::Output> {
        self.outputs[local].as_ref()
    }
}
