//! The multi-port synchronous runner.
//!
//! Drives a set of protocol state machines through lock-step rounds under a
//! crash adversary and/or Byzantine participants, collecting the metrics the
//! paper reports: rounds until all non-faulty nodes halt, messages and bits
//! sent by non-faulty nodes.
//!
//! The round semantics live in the sans-I/O [`RoundCore`]
//! (see [`crate::driver`]): the runner partitions its nodes into one or more
//! cores and drives the same four-phase protocol every backend drives —
//! collect sends, run the crash adversary centrally, deliver, finalize.
//! With one core (the default) the phases run inline on this thread; with
//! [`Runner::set_jobs`] the per-core phase bodies run on the persistent
//! worker pool of [`crate::pool`] (workers are spawned once, on the first
//! forked round, and phase work is handed to them by moving owned cores
//! over channels — the ownership-shuttle design described in the pool
//! module docs).  The crash-adversary phase always stays serial.
//!
//! Execution is deterministic regardless of the partition: per-core scratch
//! buffers are merged in fixed node-index order, so reports, metrics and
//! traces are byte-identical across core counts (see [`crate::parallel`]
//! and the threading-model notes in `DESIGN.md`).

use std::sync::Arc;

use crate::adversary::byzantine::ByzantineStrategy;
use crate::adversary::{CrashAdversary, DeliveryFilter, NoFaults};
use crate::delivery::EngineCore;
use crate::driver::RoundCore;
use crate::error::{SimError, SimResult};
use crate::node::{NodeId, NodeSet};
use crate::parallel::{self, ChunkPlan};
use crate::pool::WorkerPool;
use crate::protocol::{NodeStatus, SyncProtocol};
use crate::report::{ExecutionReport, Termination};
use crate::round::Round;
use crate::trace::Trace;

/// A participant in an execution: either an honest node running the protocol
/// under test or a Byzantine node running an arbitrary strategy.
///
/// Byzantine strategies are boxed with a `Send` bound so the runner may call
/// them from phase workers; every strategy in this repository is plain data.
pub enum Participant<P: SyncProtocol> {
    /// An honest node executing the protocol.
    Honest(P),
    /// A Byzantine node executing an adversarial strategy over the same
    /// message type.
    Byzantine(Box<dyn ByzantineStrategy<P::Msg> + Send>),
}

impl<P: SyncProtocol> Participant<P> {
    pub(crate) fn is_byzantine(&self) -> bool {
        matches!(self, Participant::Byzantine(_))
    }
}

impl<P: SyncProtocol> std::fmt::Debug for Participant<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Participant::Honest(_) => write!(f, "Honest"),
            Participant::Byzantine(_) => write!(f, "Byzantine"),
        }
    }
}

/// Multi-port synchronous runner.
///
/// Messages addressed to nodes that have crashed **or halted** are dropped
/// at delivery time (they are still counted against the sender): a halted
/// node no longer participates in the protocol.  Both runners share this
/// rule — see `SinglePortRunner` for the buffered-port variant.
///
/// # Examples
///
/// Running a toy protocol in which every node halts immediately:
///
/// ```
/// use dft_sim::{Delivered, Outgoing, Round, Runner, SyncProtocol};
///
/// struct Halt;
/// impl SyncProtocol for Halt {
///     type Msg = bool;
///     type Output = bool;
///     fn send(&mut self, _: Round, _: &mut Vec<Outgoing<bool>>) {}
///     fn receive(&mut self, _: Round, _: &[Delivered<bool>]) {}
///     fn output(&self) -> Option<bool> { Some(true) }
///     fn has_halted(&self) -> bool { true }
/// }
///
/// let mut runner = Runner::new((0..4).map(|_| Halt).collect()).unwrap();
/// let report = runner.run(10);
/// assert!(report.all_non_faulty_decided());
/// assert_eq!(report.metrics.rounds, 1);
/// ```
pub struct Runner<P: SyncProtocol> {
    /// `byzantine_mask[i]` iff participant `i` is Byzantine.  Membership is
    /// fixed at construction; the mask lets delivery workers read it without
    /// requiring `Sync` on participants.
    byzantine_mask: Vec<bool>,
    adversary: Box<dyn CrashAdversary>,
    core: EngineCore,
    /// Worker threads used for the per-node phase loops (1 = serial).
    jobs: usize,
    /// Node count above which `jobs > 1` engages the worker pool (see
    /// `parallel::MIN_NODES_PER_FORK`).
    fork_threshold: usize,
    /// Per-node intended destinations handed to the adversary (reused).
    send_intents: Vec<Vec<NodeId>>,
    /// The multi-port model has no polling; the adversary still sees one
    /// (always-`None`) slot per node.  See [`crate::AdversaryView`].
    poll_intents: Vec<Option<NodeId>>,
    /// Byzantine participants still running — with
    /// [`EngineCore::running_nodes`] this makes the per-round "has every
    /// non-faulty node halted?" check O(1).
    byz_running: usize,
    /// Persistent phase workers; spawned lazily on the first forked round
    /// and reused for every subsequent one (kept across re-partitions).
    pool: Option<WorkerPool>,
    /// The shared empty filter list for rounds with no fresh crashes (the
    /// overwhelmingly common case): cloning this `Arc` is a refcount bump,
    /// so the delivery phase only allocates a filter list on the at most
    /// `t` rounds in which a crash actually lands.
    no_filters: Arc<Vec<(usize, DeliveryFilter)>>,
    /// The sans-I/O cores holding all per-node state, partitioned per
    /// `plan` (one core while serial).  Slots are `None` only transiently,
    /// while their core is out on a pool worker.
    cores: Vec<Option<RoundCore<P>>>,
    /// The partition the current `cores` were built with.
    plan: ChunkPlan,
}

impl<P: SyncProtocol> Runner<P> {
    /// Creates a runner over honest nodes only, with no faults.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptySystem`] if `protocols` is empty.
    pub fn new(protocols: Vec<P>) -> SimResult<Self> {
        Self::with_adversary(protocols, Box::new(NoFaults), 0)
    }

    /// Creates a runner over honest nodes with a crash adversary limited to
    /// `fault_budget` crashes.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptySystem`] if `protocols` is empty, or
    /// [`SimError::InvalidConfig`] if the budget is not smaller than the
    /// number of nodes.
    pub fn with_adversary(
        protocols: Vec<P>,
        adversary: Box<dyn CrashAdversary>,
        fault_budget: usize,
    ) -> SimResult<Self> {
        let participants = protocols.into_iter().map(Participant::Honest).collect();
        Self::with_participants(participants, adversary, fault_budget)
    }

    /// Creates a runner over a mix of honest and Byzantine participants.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptySystem`] if `participants` is empty, or
    /// [`SimError::InvalidConfig`] if the crash budget is not smaller than
    /// the number of nodes.
    pub fn with_participants(
        participants: Vec<Participant<P>>,
        adversary: Box<dyn CrashAdversary>,
        fault_budget: usize,
    ) -> SimResult<Self> {
        if participants.is_empty() {
            return Err(SimError::EmptySystem);
        }
        if fault_budget >= participants.len() {
            return Err(SimError::InvalidConfig(format!(
                "fault budget {fault_budget} must be smaller than the number of nodes {}",
                participants.len()
            )));
        }
        let n = participants.len();
        let byzantine_mask: Vec<bool> =
            participants.iter().map(Participant::is_byzantine).collect();
        let byz_running = byzantine_mask.iter().filter(|&&b| b).count();
        Ok(Runner {
            byzantine_mask,
            adversary,
            core: EngineCore::new(n, fault_budget),
            jobs: 1,
            fork_threshold: parallel::MIN_NODES_PER_FORK,
            send_intents: (0..n).map(|_| Vec::new()).collect(),
            poll_intents: vec![None; n],
            byz_running,
            pool: None,
            no_filters: Arc::new(Vec::new()),
            cores: vec![Some(RoundCore::new(0, participants))],
            plan: ChunkPlan::new(n, 1),
        })
    }

    /// Enables coarse-grained event tracing.
    pub fn enable_trace(&mut self) -> &mut Self {
        self.core.trace = Trace::enabled();
        self
    }

    /// Sets the number of worker threads for the per-node phase loops.
    ///
    /// `1` (the default) keeps the single inline core; `0` means "pick for
    /// me" ([`parallel::available_jobs`]).  Parallel execution is
    /// deterministic — reports, metrics and traces are byte-identical to a
    /// serial run — so this is purely a performance knob.  Systems below
    /// the fork threshold stay on the single-core path regardless.
    pub fn set_jobs(&mut self, jobs: usize) -> &mut Self {
        self.jobs = parallel::effective_jobs(jobs);
        self
    }

    /// Builder-style variant of [`Runner::set_jobs`].
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.set_jobs(jobs);
        self
    }

    /// The configured worker-thread count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Overrides the node-count threshold above which `jobs > 1` engages
    /// the worker pool (default: `parallel::MIN_NODES_PER_FORK`).  Both
    /// paths are byte-identical; this only trades fork/join overhead
    /// against parallel speedup, e.g. for rounds that do unusually heavy
    /// per-node work.
    pub fn set_fork_threshold(&mut self, nodes: usize) -> &mut Self {
        self.fork_threshold = nodes.max(1);
        self
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.core.n()
    }

    /// The current round (the next one to be executed).
    pub fn round(&self) -> Round {
        self.core.round
    }

    /// The recorded trace (empty unless [`Runner::enable_trace`] was called).
    pub fn trace(&self) -> &Trace {
        &self.core.trace
    }

    /// Runs rounds until every non-faulty node has halted or `max_rounds`
    /// rounds have been executed, and returns the execution report.
    pub fn run(&mut self, max_rounds: u64) -> ExecutionReport<P::Output> {
        let mut termination = Termination::RoundLimit;
        for _ in 0..max_rounds {
            self.step();
            if self.all_non_faulty_halted() {
                termination = Termination::AllHalted;
                break;
            }
        }
        self.report(termination)
    }

    /// Whether every node that has not crashed has halted voluntarily.
    ///
    /// O(1): the engine core counts running nodes incrementally and
    /// Byzantine participants never halt, so the check reduces to "are the
    /// only nodes still running the surviving Byzantine ones?".
    pub fn all_non_faulty_halted(&self) -> bool {
        self.core.running_nodes() == self.byz_running
    }

    /// Executes one synchronous round: collect sends, apply the crash
    /// adversary, deliver, finalize statuses.
    ///
    /// The four phases drive the sans-I/O [`RoundCore`]s; everything
    /// order-sensitive (crash phase, metric merge, inbox routing,
    /// decision/halt replay) happens on this thread in fixed node-index
    /// order.  With more than one configured job (see [`Runner::set_jobs`])
    /// the per-core phase bodies run on the runner's persistent worker
    /// pool; the partition is invisible to callers.
    pub fn step(&mut self) {
        let n = self.n();
        let desired = if parallel::should_fork(n, self.jobs, self.fork_threshold) {
            ChunkPlan::new(n, self.jobs)
        } else {
            ChunkPlan::new(n, 1)
        };
        self.ensure_plan(desired);
        let plan = self.plan;
        let round = self.core.round;

        // Phase 1: collect sends and intents in the cores.
        self.run_phase(move |core| core.begin_round(round));
        // Expose the freshly collected intents to the adversary through the
        // flat per-node view its contract promises: ownership of each
        // node's intent vector ping-pongs between the core and the flat
        // slot (both sides rebuild per round, so only capacity persists).
        for slot in &mut self.cores {
            let core = slot.as_mut().expect("core home between phases");
            for (i, intents) in core.send_intents.iter_mut().enumerate() {
                std::mem::swap(&mut self.send_intents[core.base + i], intents);
            }
        }

        // Phase 2 (always serial): the crash adversary picks this round's
        // victims from one coherent view of the whole round; new crashes
        // are mirrored into the owning cores' status copies, and their
        // delivery filters collected for the delivery phase.
        self.apply_crash_phase();
        let mut filters: Vec<(usize, DeliveryFilter)> = Vec::new();
        for &idx in self.core.crashed_this_round() {
            let core = self.cores[plan.chunk_of(idx)]
                .as_mut()
                .expect("core home between phases");
            let local = idx - core.base;
            core.status[local] = self.core.status[idx];
            if let Some(filter) = self.core.filter(idx) {
                filters.push((idx, filter.clone()));
            }
        }

        // Phase 3: cores scan their senders into per-core delivery
        // scratch; the merge below walks cores in ascending order, which
        // *is* sender-index order, so inbox ordering and metric totals are
        // independent of the partition.
        let filters = if filters.is_empty() {
            Arc::clone(&self.no_filters)
        } else {
            Arc::new(filters)
        };
        self.run_phase(move |core| core.deliver(&filters));
        for ci in 0..self.cores.len() {
            let (msgs, bits, byz, mut delivered) = {
                let core = self.cores[ci].as_mut().expect("core home");
                (
                    core.msgs,
                    core.bits,
                    core.byz_msgs,
                    std::mem::take(&mut core.delivered),
                )
            };
            self.core
                .metrics
                .record_messages(round.as_u64(), msgs, bits);
            self.core.metrics.byzantine_messages += byz;
            for (dest, msg) in delivered.drain(..) {
                if dest < n && self.core.status[dest].is_running() {
                    let dest_core = self.cores[plan.chunk_of(dest)].as_mut().expect("core home");
                    dest_core.inboxes[dest - dest_core.base].push(msg);
                }
            }
            // Hand the (now empty) scratch back so its capacity persists.
            self.cores[ci].as_mut().expect("core home").delivered = delivered;
        }

        // Phase 4: cores drive `receive`; the replay below walks cores in
        // ascending order, so decisions and halts land in node-index order
        // and the trace is independent of the partition.
        self.run_phase(move |core| {
            core.finalize(round);
        });
        for ci in 0..self.cores.len() {
            let events = {
                let core = self.cores[ci].as_mut().expect("core home");
                std::mem::take(&mut core.events)
            };
            for event in &events {
                if event.decided {
                    let core = self.cores[ci].as_ref().expect("core home");
                    let output = core.outputs[event.node - core.base]
                        .as_ref()
                        .expect("decision recorded");
                    self.core.record_decision(event.node, output);
                }
                if event.halted {
                    self.core.mark_halted(event.node);
                    let core = self.cores[ci].as_mut().expect("core home");
                    core.status[event.node - core.base] = NodeStatus::Halted;
                }
            }
            self.cores[ci].as_mut().expect("core home").events = events;
        }
        self.core.finish_round();
    }

    /// Runs the crash phase and keeps the Byzantine-survivor count in sync
    /// (every crash must route through here).
    fn apply_crash_phase(&mut self) {
        self.core
            .apply_crash_phase(&mut *self.adversary, &self.send_intents, &self.poll_intents);
        for &idx in self.core.crashed_this_round() {
            if self.byzantine_mask[idx] {
                // Byzantine nodes never halt, so a struck one was running.
                self.byz_running -= 1;
            }
        }
    }

    /// Runs one phase body over every core: inline on this thread while the
    /// partition has a single core, on the persistent pool otherwise.
    /// Core `i` always runs on worker `i`; see [`WorkerPool::run_phase`]
    /// for the ownership-shuttle protocol and the panic behaviour.
    fn run_phase(&mut self, phase: impl Fn(&mut RoundCore<P>) + Clone + Send + 'static) {
        if self.cores.len() > 1 {
            let pool = self.pool.as_ref().expect("pool engaged");
            pool.run_phase(&mut self.cores, phase);
        } else {
            let core = self.cores[0].as_mut().expect("core home");
            phase(core);
        }
    }

    /// Re-partitions the cores (and spawns or resizes the pool) according
    /// to `plan`.  No-op when the current cores already follow `plan`.
    fn ensure_plan(&mut self, plan: ChunkPlan) {
        if self.plan == plan {
            return;
        }
        let n = self.n();
        if plan.chunks > 1 && self.pool.as_ref().map(WorkerPool::workers) != Some(plan.chunks) {
            self.pool = Some(WorkerPool::new(plan.chunks));
        }
        // Drain the old partition into flat per-node state, then deal it
        // back out chunk by chunk (statuses re-mirrored from the engine
        // core, scratch rebuilt empty — it is between-rounds state).
        let mut participants = Vec::with_capacity(n);
        let mut outgoing = Vec::with_capacity(n);
        let mut inboxes = Vec::with_capacity(n);
        let mut byz_inboxes = Vec::with_capacity(n);
        let mut outputs = Vec::with_capacity(n);
        for slot in self.cores.drain(..) {
            let core = slot.expect("core home");
            participants.extend(core.participants);
            outgoing.extend(core.outgoing);
            inboxes.extend(core.inboxes);
            byz_inboxes.extend(core.byz_inboxes);
            outputs.extend(core.outputs);
        }
        let mut participants = participants.drain(..);
        let mut outgoing = outgoing.drain(..);
        let mut inboxes = inboxes.drain(..);
        let mut byz_inboxes = byz_inboxes.drain(..);
        let mut outputs = outputs.drain(..);
        self.cores = (0..plan.chunks)
            .map(|ci| {
                let range = plan.range(ci, n);
                let len = range.len();
                Some(RoundCore {
                    base: range.start,
                    participants: participants.by_ref().take(len).collect(),
                    status: self.core.status[range.clone()].to_vec(),
                    byz: self.byzantine_mask[range].to_vec(),
                    outgoing: outgoing.by_ref().take(len).collect(),
                    send_intents: (0..len).map(|_| Vec::new()).collect(),
                    inboxes: inboxes.by_ref().take(len).collect(),
                    byz_inboxes: byz_inboxes.by_ref().take(len).collect(),
                    outputs: outputs.by_ref().take(len).collect(),
                    delivered: Vec::new(),
                    events: Vec::new(),
                    msgs: 0,
                    bits: 0,
                    byz_msgs: 0,
                })
            })
            .collect();
        self.plan = plan;
    }

    /// Builds the final report: outputs are gathered from the cores in
    /// ascending base order.
    fn report(&self, termination: Termination) -> ExecutionReport<P::Output> {
        let n = self.n();
        let byzantine = NodeSet::from_iter(
            n,
            self.byzantine_mask
                .iter()
                .enumerate()
                .filter(|(_, &byz)| byz)
                .map(|(i, _)| NodeId::new(i)),
        );
        let outputs = self
            .cores
            .iter()
            .flat_map(|slot| slot.as_ref().expect("core home").outputs.iter().cloned())
            .collect();
        ExecutionReport {
            outputs,
            crashed_at: self.core.crashed_at.clone(),
            halted_at: self.core.halted_at.clone(),
            byzantine,
            metrics: self.core.metrics.clone(),
            termination,
        }
    }
}

impl<P: SyncProtocol> std::fmt::Debug for Runner<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runner")
            .field("n", &self.n())
            .field("round", &self.core.round)
            .field("crashes", &self.core.crashes)
            .finish_non_exhaustive()
    }
}

/// Convenience: runs `protocols` under `adversary` with budget `t` for at
/// most `max_rounds` rounds and returns the report.
///
/// # Errors
///
/// Propagates construction errors from [`Runner::with_adversary`].
pub fn run_with_crashes<P: SyncProtocol>(
    protocols: Vec<P>,
    adversary: Box<dyn CrashAdversary>,
    fault_budget: usize,
    max_rounds: u64,
) -> SimResult<ExecutionReport<P::Output>> {
    let mut runner = Runner::with_adversary(protocols, adversary, fault_budget)?;
    Ok(runner.run(max_rounds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{AdversaryView, CrashDirective, FixedCrashSchedule};
    use crate::message::{Delivered, Outgoing};

    /// Every node floods its input to all nodes each round; decides on the OR
    /// of everything seen after 3 rounds.
    struct FloodOr {
        n: usize,
        value: bool,
        decided: Option<bool>,
        rounds_seen: u64,
    }

    impl FloodOr {
        fn new(n: usize, value: bool) -> Self {
            FloodOr {
                n,
                value,
                decided: None,
                rounds_seen: 0,
            }
        }
    }

    impl SyncProtocol for FloodOr {
        type Msg = bool;
        type Output = bool;

        fn send(&mut self, _round: Round, out: &mut Vec<Outgoing<bool>>) {
            out.extend((0..self.n).map(|i| Outgoing::new(NodeId::new(i), self.value)));
        }

        fn receive(&mut self, _round: Round, inbox: &[Delivered<bool>]) {
            for msg in inbox {
                self.value |= msg.msg;
            }
            self.rounds_seen += 1;
            if self.rounds_seen >= 3 {
                self.decided = Some(self.value);
            }
        }

        fn output(&self) -> Option<bool> {
            self.decided
        }

        fn has_halted(&self) -> bool {
            self.decided.is_some()
        }
    }

    #[test]
    fn rejects_empty_system() {
        let protocols: Vec<FloodOr> = Vec::new();
        assert_eq!(Runner::new(protocols).err(), Some(SimError::EmptySystem));
    }

    #[test]
    fn rejects_budget_not_below_n() {
        let protocols = vec![FloodOr::new(2, false), FloodOr::new(2, true)];
        let err = Runner::with_adversary(protocols, Box::new(NoFaults), 2).err();
        assert!(matches!(err, Some(SimError::InvalidConfig(_))));
    }

    #[test]
    fn flood_or_reaches_agreement_without_faults() {
        let n = 8;
        let protocols: Vec<FloodOr> = (0..n).map(|i| FloodOr::new(n, i == 3)).collect();
        let mut runner = Runner::new(protocols).unwrap();
        runner.enable_trace();
        let report = runner.run(10);
        assert_eq!(report.termination, Termination::AllHalted);
        assert!(report.all_non_faulty_decided());
        assert!(report.non_faulty_deciders_agree());
        assert_eq!(report.agreed_value(), Some(&true));
        assert_eq!(report.metrics.rounds, 3);
        // Every node sends n messages in each of 3 rounds.
        assert_eq!(report.metrics.messages, (n * n * 3) as u64);
        assert_eq!(report.metrics.bits, (n * n * 3) as u64);
        assert!(!runner.trace().is_empty());
    }

    #[test]
    fn silent_crash_suppresses_messages() {
        let n = 4;
        // Only node 0 holds `true`; it crashes silently in round 0, so nobody
        // ever learns the value and all decide `false`.
        let protocols: Vec<FloodOr> = (0..n).map(|i| FloodOr::new(n, i == 0)).collect();
        let adversary =
            FixedCrashSchedule::new().crash_at(0, CrashDirective::silent(NodeId::new(0)));
        let report = run_with_crashes(protocols, Box::new(adversary), 1, 10).unwrap();
        assert_eq!(report.metrics.crashes, 1);
        assert!(report.non_faulty_deciders_agree());
        assert_eq!(report.agreed_value(), Some(&false));
        assert_eq!(report.non_faulty().len(), n - 1);
    }

    #[test]
    fn after_send_crash_still_delivers() {
        let n = 4;
        let protocols: Vec<FloodOr> = (0..n).map(|i| FloodOr::new(n, i == 0)).collect();
        let adversary =
            FixedCrashSchedule::new().crash_at(0, CrashDirective::after_send(NodeId::new(0)));
        let report = run_with_crashes(protocols, Box::new(adversary), 1, 10).unwrap();
        assert_eq!(report.agreed_value(), Some(&true));
    }

    #[test]
    fn prefix_crash_delivers_partial_output() {
        use crate::adversary::DeliveryFilter;
        let n = 6;
        let protocols: Vec<FloodOr> = (0..n).map(|i| FloodOr::new(n, i == 0)).collect();
        // Node 0 reaches only its first two destinations (nodes 0 and 1) before crashing.
        let adversary = FixedCrashSchedule::new().crash_at(
            0,
            CrashDirective {
                node: NodeId::new(0),
                deliver: DeliveryFilter::Prefix(2),
            },
        );
        let report = run_with_crashes(protocols, Box::new(adversary), 1, 10).unwrap();
        // Node 1 got the value and re-floods it, so everyone still decides true.
        assert_eq!(report.agreed_value(), Some(&true));
        assert!(report.non_faulty_deciders_agree());
    }

    #[test]
    fn fault_budget_is_enforced() {
        let n = 5;
        let protocols: Vec<FloodOr> = (0..n).map(|_| FloodOr::new(n, false)).collect();
        let adversary = FixedCrashSchedule::new().crash_all_at(0, (0..4).map(NodeId::new));
        let report = run_with_crashes(protocols, Box::new(adversary), 2, 10).unwrap();
        assert_eq!(
            report.metrics.crashes, 2,
            "only budget-many crashes applied"
        );
    }

    #[test]
    fn byzantine_messages_not_counted() {
        use crate::adversary::byzantine::FloodByzantine;
        let n = 4;
        let mut participants: Vec<Participant<FloodOr>> = (1..n)
            .map(|i| Participant::Honest(FloodOr::new(n, i == 1)))
            .collect();
        participants.insert(
            0,
            Participant::Byzantine(Box::new(FloodByzantine::<bool>::new(n))),
        );
        let mut runner = Runner::with_participants(participants, Box::new(NoFaults), 0).unwrap();
        let report = runner.run(10);
        assert!(report.byzantine.contains(NodeId::new(0)));
        assert_eq!(report.non_faulty().len(), n - 1);
        // Honest nodes: 3 nodes * n messages * 3 rounds.
        assert_eq!(report.metrics.messages, (3 * n * 3) as u64);
        assert!(report.metrics.byzantine_messages > 0);
        assert!(report.non_faulty_deciders_agree());
    }

    #[test]
    fn round_limit_reported() {
        // A protocol that never halts.
        struct Never;
        impl SyncProtocol for Never {
            type Msg = bool;
            type Output = bool;
            fn send(&mut self, _: Round, _: &mut Vec<Outgoing<bool>>) {}
            fn receive(&mut self, _: Round, _: &[Delivered<bool>]) {}
            fn output(&self) -> Option<bool> {
                None
            }
            fn has_halted(&self) -> bool {
                false
            }
        }
        let mut runner = Runner::new(vec![Never, Never]).unwrap();
        let report = runner.run(5);
        assert_eq!(report.termination, Termination::RoundLimit);
        assert_eq!(report.metrics.rounds, 5);
    }

    /// Sends one message per round to a fixed target and counts how many
    /// messages it has ever received; never halts on its own.
    struct CountingSender {
        target: usize,
        received: u64,
        halt_after: Option<u64>,
        rounds: u64,
    }

    impl SyncProtocol for CountingSender {
        type Msg = bool;
        type Output = u64;

        fn send(&mut self, _round: Round, out: &mut Vec<Outgoing<bool>>) {
            out.push(Outgoing::new(NodeId::new(self.target), true));
        }

        fn receive(&mut self, _round: Round, inbox: &[Delivered<bool>]) {
            self.received += inbox.len() as u64;
            self.rounds += 1;
        }

        fn output(&self) -> Option<u64> {
            Some(self.received)
        }

        fn has_halted(&self) -> bool {
            self.halt_after.is_some_and(|h| self.rounds >= h)
        }
    }

    /// Parallel phase loops must be observationally identical to the serial
    /// ones: same report (outputs, crash/halt rounds, metrics including the
    /// per-round profile) and same trace, event for event.  `n` sits above
    /// the fork threshold so the worker-pool path actually runs.
    #[test]
    fn parallel_execution_is_byte_identical_to_serial() {
        use crate::parallel::MIN_NODES_PER_FORK;
        let n = MIN_NODES_PER_FORK + 9;
        let run = |jobs: usize| {
            let protocols: Vec<FloodOr> = (0..n).map(|i| FloodOr::new(n, i == 3)).collect();
            let adversary = FixedCrashSchedule::new()
                .crash_at(0, CrashDirective::silent(NodeId::new(1)))
                .crash_at(
                    1,
                    CrashDirective {
                        node: NodeId::new(4),
                        deliver: crate::adversary::DeliveryFilter::Prefix(3),
                    },
                )
                .crash_at(2, CrashDirective::after_send(NodeId::new(n - 1)));
            let mut runner = Runner::with_adversary(protocols, Box::new(adversary), 3)
                .unwrap()
                .with_jobs(jobs);
            runner.enable_trace();
            let report = runner.run(10);
            (report, runner.trace().events().to_vec())
        };
        let (serial_report, serial_trace) = run(1);
        for jobs in [2, 4, 7] {
            let (parallel_report, parallel_trace) = run(jobs);
            assert_eq!(serial_report, parallel_report, "report with jobs={jobs}");
            assert_eq!(serial_trace, parallel_trace, "trace with jobs={jobs}");
        }
        assert_eq!(serial_report.metrics.crashes, 3);
        assert!(serial_report.all_non_faulty_decided());
    }

    /// A pool reused across two consecutive `run()`s on the same runner
    /// produces transcripts identical to two fresh serial runs: the workers
    /// and their core scratch persist between `run()` calls, and nothing
    /// about that persistence may leak into results.
    #[test]
    fn pool_reused_across_two_runs_matches_two_serial_runs() {
        use crate::parallel::MIN_NODES_PER_FORK;
        let n = MIN_NODES_PER_FORK + 3;
        let run_twice = |jobs: usize| {
            let protocols: Vec<CountingSender> = (0..n)
                .map(|i| CountingSender {
                    target: (i + 1) % n,
                    received: 0,
                    halt_after: Some(7),
                    rounds: 0,
                })
                .collect();
            let adversary = FixedCrashSchedule::new()
                .crash_at(1, CrashDirective::silent(NodeId::new(0)))
                .crash_at(5, CrashDirective::after_send(NodeId::new(2)));
            let mut runner = Runner::with_adversary(protocols, Box::new(adversary), 2)
                .unwrap()
                .with_jobs(jobs);
            runner.enable_trace();
            // Two back-to-back run() calls: the second resumes the same
            // execution (and, with jobs > 1, the same pool and cores).
            let first = runner.run(4);
            let second = runner.run(10);
            (first, second, runner.trace().events().to_vec())
        };
        let serial = run_twice(1);
        let pooled = run_twice(4);
        assert_eq!(serial.0, pooled.0, "first run() report");
        assert_eq!(serial.1, pooled.1, "second run() report");
        assert_eq!(serial.2, pooled.2, "combined trace");
        assert_eq!(pooled.1.metrics.crashes, 2);
    }

    /// The parallel path preserves Byzantine accounting: uncounted Byzantine
    /// messages, per-node inbox retention, identical honest-side metrics.
    #[test]
    fn parallel_execution_matches_serial_with_byzantine_nodes() {
        use crate::adversary::byzantine::FloodByzantine;
        use crate::parallel::MIN_NODES_PER_FORK;
        let n = MIN_NODES_PER_FORK + 2;
        let run = |jobs: usize| {
            let mut participants: Vec<Participant<FloodOr>> = (1..n)
                .map(|i| Participant::Honest(FloodOr::new(n, i == 1)))
                .collect();
            participants.insert(
                0,
                Participant::Byzantine(Box::new(FloodByzantine::<bool>::new(n))),
            );
            let mut runner = Runner::with_participants(participants, Box::new(NoFaults), 0)
                .unwrap()
                .with_jobs(jobs);
            runner.run(10)
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial, parallel);
        assert!(parallel.metrics.byzantine_messages > 0);
    }

    /// Regression test for the halted-destination rule: once a node halts,
    /// messages addressed to it are dropped (but still counted against the
    /// sender), exactly like messages to a crashed node.
    #[test]
    fn messages_to_halted_nodes_are_counted_but_dropped() {
        // Node 1 halts after its first round; node 0 keeps sending to it.
        let nodes = vec![
            CountingSender {
                target: 1,
                received: 0,
                halt_after: None,
                rounds: 0,
            },
            CountingSender {
                target: 0,
                received: 0,
                halt_after: Some(1),
                rounds: 0,
            },
        ];
        let mut runner = Runner::new(nodes).unwrap();
        let report = runner.run(5);
        assert_eq!(report.halted_at[1], Some(Round::new(0)));
        // All 5 of node 0's sends are counted, plus node 1's single send.
        assert_eq!(report.metrics.messages, 6);
        // Node 1 received exactly one message (round 0) before halting.
        assert_eq!(report.output_of(NodeId::new(1)), Some(&1));
    }

    /// Regression test: the multi-port runner hands the adversary one poll
    /// slot per node (all `None`), so adversaries written for the
    /// single-port model may index `poll_intents[node]` without panicking.
    #[test]
    fn adversary_view_has_one_poll_slot_per_node() {
        struct IndexesPolls;
        impl CrashAdversary for IndexesPolls {
            fn plan_round(&mut self, view: &AdversaryView<'_>) -> Vec<CrashDirective> {
                // Direct indexing, as `AdaptiveSplitAdversary` effectively
                // does; this panicked when the view carried an empty slice.
                for node in 0..view.n() {
                    assert_eq!(view.poll_intents[node], None);
                }
                assert_eq!(view.poll_intents.len(), view.n());
                // Crash node 0 so the report proves plan_round actually ran
                // (and its assertions executed).
                vec![CrashDirective::silent(NodeId::new(0))]
            }
        }
        let n = 4;
        let protocols: Vec<FloodOr> = (0..n).map(|i| FloodOr::new(n, i == 0)).collect();
        let mut runner = Runner::with_adversary(protocols, Box::new(IndexesPolls), 1).unwrap();
        let report = runner.run(5);
        assert_eq!(report.metrics.crashes, 1, "the adversary was consulted");
        assert_eq!(report.termination, Termination::AllHalted);
    }
}
