//! The multi-port synchronous runner.
//!
//! Drives a set of protocol state machines through lock-step rounds under a
//! crash adversary and/or Byzantine participants, collecting the metrics the
//! paper reports: rounds until all non-faulty nodes halt, messages and bits
//! sent by non-faulty nodes.
//!
//! The round loop is built on the batched-delivery core in
//! [`delivery`](crate::delivery): alive/crashed sets are maintained
//! incrementally, and the per-round working storage (outgoing queues, send
//! intents, inboxes) lives in flat buffers reused across rounds instead of
//! being reallocated every round.
//!
//! With [`Runner::set_jobs`] the per-node phase loops (send collection,
//! delivery, receive) run on a [`std::thread::scope`] worker pool; the
//! crash-adversary phase always stays serial.  Parallel execution is
//! deterministic: per-worker scratch buffers are merged in fixed node-index
//! order, so reports, metrics and traces are byte-identical to a serial run
//! (see [`crate::parallel`] and the threading-model notes in `DESIGN.md`).

use crate::adversary::byzantine::ByzantineStrategy;
use crate::adversary::{CrashAdversary, NoFaults};
use crate::delivery::EngineCore;
use crate::error::{SimError, SimResult};
use crate::message::{Delivered, Outgoing, Payload};
use crate::node::{NodeId, NodeSet};
use crate::parallel::{self, NodeEvent};
use crate::protocol::{NodeStatus, SyncProtocol};
use crate::report::{ExecutionReport, Termination};
use crate::round::Round;
use crate::trace::Trace;

/// A participant in an execution: either an honest node running the protocol
/// under test or a Byzantine node running an arbitrary strategy.
///
/// Byzantine strategies are boxed with a `Send` bound so the runner may call
/// them from phase workers; every strategy in this repository is plain data.
pub enum Participant<P: SyncProtocol> {
    /// An honest node executing the protocol.
    Honest(P),
    /// A Byzantine node executing an adversarial strategy over the same
    /// message type.
    Byzantine(Box<dyn ByzantineStrategy<P::Msg> + Send>),
}

impl<P: SyncProtocol> Participant<P> {
    fn is_byzantine(&self) -> bool {
        matches!(self, Participant::Byzantine(_))
    }
}

impl<P: SyncProtocol> std::fmt::Debug for Participant<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Participant::Honest(_) => write!(f, "Honest"),
            Participant::Byzantine(_) => write!(f, "Byzantine"),
        }
    }
}

/// Multi-port synchronous runner.
///
/// Messages addressed to nodes that have crashed **or halted** are dropped
/// at delivery time (they are still counted against the sender): a halted
/// node no longer participates in the protocol.  Both runners share this
/// rule — see `SinglePortRunner` for the buffered-port variant.
///
/// # Examples
///
/// Running a toy protocol in which every node halts immediately:
///
/// ```
/// use dft_sim::{Delivered, Outgoing, Round, Runner, SyncProtocol};
///
/// struct Halt;
/// impl SyncProtocol for Halt {
///     type Msg = bool;
///     type Output = bool;
///     fn send(&mut self, _: Round) -> Vec<Outgoing<bool>> { Vec::new() }
///     fn receive(&mut self, _: Round, _: &[Delivered<bool>]) {}
///     fn output(&self) -> Option<bool> { Some(true) }
///     fn has_halted(&self) -> bool { true }
/// }
///
/// let mut runner = Runner::new((0..4).map(|_| Halt).collect()).unwrap();
/// let report = runner.run(10);
/// assert!(report.all_non_faulty_decided());
/// assert_eq!(report.metrics.rounds, 1);
/// ```
pub struct Runner<P: SyncProtocol> {
    participants: Vec<Participant<P>>,
    /// `byzantine_mask[i]` iff participant `i` is Byzantine.  Membership is
    /// fixed at construction; the mask lets delivery workers read it without
    /// requiring `Sync` on participants.
    byzantine_mask: Vec<bool>,
    outputs: Vec<Option<P::Output>>,
    adversary: Box<dyn CrashAdversary>,
    core: EngineCore,
    /// Worker threads used for the per-node phase loops (1 = serial).
    jobs: usize,
    /// Node count above which `jobs > 1` engages the worker pool (see
    /// [`parallel::MIN_NODES_PER_FORK`]).
    fork_threshold: usize,
    /// Per-node outgoing queues for the current round (reused).
    outgoing: Vec<Vec<Outgoing<P::Msg>>>,
    /// Per-node intended destinations handed to the adversary (reused).
    send_intents: Vec<Vec<NodeId>>,
    /// The multi-port model has no polling; the adversary still sees one
    /// (always-`None`) slot per node.  See [`crate::AdversaryView`].
    poll_intents: Vec<Option<NodeId>>,
    /// Per-node inboxes for the current round (reused).
    inboxes: Vec<Vec<Delivered<P::Msg>>>,
    /// Byzantine nodes' retained previous-round inboxes.
    byz_inboxes: Vec<Vec<Delivered<P::Msg>>>,
}

impl<P: SyncProtocol> Runner<P> {
    /// Creates a runner over honest nodes only, with no faults.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptySystem`] if `protocols` is empty.
    pub fn new(protocols: Vec<P>) -> SimResult<Self> {
        Self::with_adversary(protocols, Box::new(NoFaults), 0)
    }

    /// Creates a runner over honest nodes with a crash adversary limited to
    /// `fault_budget` crashes.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptySystem`] if `protocols` is empty, or
    /// [`SimError::InvalidConfig`] if the budget is not smaller than the
    /// number of nodes.
    pub fn with_adversary(
        protocols: Vec<P>,
        adversary: Box<dyn CrashAdversary>,
        fault_budget: usize,
    ) -> SimResult<Self> {
        let participants = protocols.into_iter().map(Participant::Honest).collect();
        Self::with_participants(participants, adversary, fault_budget)
    }

    /// Creates a runner over a mix of honest and Byzantine participants.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptySystem`] if `participants` is empty, or
    /// [`SimError::InvalidConfig`] if the crash budget is not smaller than
    /// the number of nodes.
    pub fn with_participants(
        participants: Vec<Participant<P>>,
        adversary: Box<dyn CrashAdversary>,
        fault_budget: usize,
    ) -> SimResult<Self> {
        if participants.is_empty() {
            return Err(SimError::EmptySystem);
        }
        if fault_budget >= participants.len() {
            return Err(SimError::InvalidConfig(format!(
                "fault budget {fault_budget} must be smaller than the number of nodes {}",
                participants.len()
            )));
        }
        let n = participants.len();
        let byzantine_mask = participants.iter().map(Participant::is_byzantine).collect();
        Ok(Runner {
            participants,
            byzantine_mask,
            outputs: (0..n).map(|_| None).collect(),
            adversary,
            core: EngineCore::new(n, fault_budget),
            jobs: 1,
            fork_threshold: parallel::MIN_NODES_PER_FORK,
            outgoing: (0..n).map(|_| Vec::new()).collect(),
            send_intents: (0..n).map(|_| Vec::new()).collect(),
            poll_intents: vec![None; n],
            inboxes: (0..n).map(|_| Vec::new()).collect(),
            byz_inboxes: (0..n).map(|_| Vec::new()).collect(),
        })
    }

    /// Enables coarse-grained event tracing.
    pub fn enable_trace(&mut self) -> &mut Self {
        self.core.trace = Trace::enabled();
        self
    }

    /// Sets the number of worker threads for the per-node phase loops.
    ///
    /// `1` (the default) keeps the serial loops; `0` means "pick for me"
    /// ([`parallel::available_jobs`]).  Parallel execution is deterministic —
    /// reports, metrics and traces are byte-identical to a serial run — so
    /// this is purely a performance knob.  Systems below the fork threshold
    /// stay on the serial path regardless.
    pub fn set_jobs(&mut self, jobs: usize) -> &mut Self {
        self.jobs = parallel::effective_jobs(jobs);
        self
    }

    /// Builder-style variant of [`Runner::set_jobs`].
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.set_jobs(jobs);
        self
    }

    /// The configured worker-thread count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Overrides the node-count threshold above which `jobs > 1` engages
    /// the worker pool (default: [`parallel::MIN_NODES_PER_FORK`]).  Both
    /// paths are byte-identical; this only trades fork/join overhead
    /// against parallel speedup, e.g. for rounds that do unusually heavy
    /// per-node work.
    pub fn set_fork_threshold(&mut self, nodes: usize) -> &mut Self {
        self.fork_threshold = nodes.max(1);
        self
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.participants.len()
    }

    /// The current round (the next one to be executed).
    pub fn round(&self) -> Round {
        self.core.round
    }

    /// The recorded trace (empty unless [`Runner::enable_trace`] was called).
    pub fn trace(&self) -> &Trace {
        &self.core.trace
    }

    /// Runs rounds until every non-faulty node has halted or `max_rounds`
    /// rounds have been executed, and returns the execution report.
    pub fn run(&mut self, max_rounds: u64) -> ExecutionReport<P::Output> {
        let mut termination = Termination::RoundLimit;
        for _ in 0..max_rounds {
            self.step();
            if self.all_non_faulty_halted() {
                termination = Termination::AllHalted;
                break;
            }
        }
        self.report(termination)
    }

    /// Whether every node that has not crashed has halted voluntarily.
    pub fn all_non_faulty_halted(&self) -> bool {
        self.core.status.iter().enumerate().all(|(i, s)| match s {
            NodeStatus::Running => self.participants[i].is_byzantine(),
            NodeStatus::Halted | NodeStatus::Crashed(_) => true,
        })
    }

    /// Executes one synchronous round: collect sends, apply the crash
    /// adversary, deliver, receive, update statuses.
    ///
    /// With more than one configured job (see [`Runner::set_jobs`]) the three
    /// per-node phase loops run on a scoped worker pool; the crash-adversary
    /// phase always runs serially on this thread.  Both paths produce
    /// byte-identical state, so the fork decision is invisible to callers.
    pub fn step(&mut self) {
        let fork = parallel::should_fork(self.n(), self.jobs, self.fork_threshold);
        // Phase 1: collect outgoing messages and adversary-visible intents
        // from every operational participant into the reused per-node queues.
        if fork {
            self.collect_sends_parallel();
        } else {
            self.collect_sends_serial();
        }
        // Phase 2 (always serial): the crash adversary picks this round's
        // victims from one coherent view of the whole round.
        self.core
            .apply_crash_phase(&mut *self.adversary, &self.send_intents, &self.poll_intents);
        // Phases 3 and 4: deliver surviving messages, then receive and
        // update statuses.
        if fork {
            self.deliver_parallel();
            self.receive_parallel();
        } else {
            self.deliver_serial();
            self.receive_serial();
        }
        self.core.finish_round();
    }

    /// Phase 1, serial path.
    fn collect_sends_serial(&mut self) {
        let round = self.core.round;
        for (i, participant) in self.participants.iter_mut().enumerate() {
            self.outgoing[i] = match (&self.core.status[i], participant) {
                (NodeStatus::Running, Participant::Honest(p)) => p.send(round),
                (NodeStatus::Running, Participant::Byzantine(b)) => {
                    // Byzantine nodes act on last round's inbox when sending.
                    b.act(round, &self.byz_inboxes[i])
                }
                _ => Vec::new(),
            };
            self.send_intents[i].clear();
            let intents = self.outgoing[i].iter().map(|m| m.to);
            self.send_intents[i].extend(intents);
        }
    }

    /// Phase 1, parallel path: each worker collects sends and intents for a
    /// contiguous chunk of nodes.  Protocol state machines are independent,
    /// so chunked `send` calls observe exactly what they would serially.
    fn collect_sends_parallel(&mut self) {
        let round = self.core.round;
        let chunk = parallel::chunk_len(self.n(), self.jobs);
        let status = &self.core.status;
        std::thread::scope(|s| {
            let chunks = self
                .participants
                .chunks_mut(chunk)
                .zip(self.outgoing.chunks_mut(chunk))
                .zip(self.send_intents.chunks_mut(chunk))
                .zip(self.byz_inboxes.chunks(chunk))
                .enumerate();
            for (ci, (((parts, outs), intents), byz)) in chunks {
                let base = ci * chunk;
                s.spawn(move || {
                    for (i, participant) in parts.iter_mut().enumerate() {
                        outs[i] = match (&status[base + i], participant) {
                            (NodeStatus::Running, Participant::Honest(p)) => p.send(round),
                            (NodeStatus::Running, Participant::Byzantine(b)) => {
                                b.act(round, &byz[i])
                            }
                            _ => Vec::new(),
                        };
                        intents[i].clear();
                        intents[i].extend(outs[i].iter().map(|m| m.to));
                    }
                });
            }
        });
    }

    /// Phase 3, serial path: deliver messages, counting only those actually
    /// dispatched by non-Byzantine senders.
    fn deliver_serial(&mut self) {
        let n = self.n();
        let round = self.core.round;
        for inbox in &mut self.inboxes {
            inbox.clear();
        }
        for sender_idx in 0..n {
            let sender = NodeId::new(sender_idx);
            let is_byzantine = self.participants[sender_idx].is_byzantine();
            for (msg_idx, out) in self.outgoing[sender_idx].drain(..).enumerate() {
                if let Some(filter) = self.core.filter(sender_idx) {
                    if !filter.allows(msg_idx, out.to) {
                        continue;
                    }
                }
                if is_byzantine {
                    self.core.metrics.record_byzantine_message();
                } else {
                    self.core
                        .metrics
                        .record_message(round.as_u64(), out.msg.bit_len());
                }
                let dest = out.to.index();
                if dest < n && self.core.status[dest].is_running() {
                    self.inboxes[dest].push(Delivered::new(sender, out.msg));
                }
            }
        }
    }

    /// Phase 3, parallel path: workers scan contiguous sender chunks into
    /// per-worker scratch (surviving messages in sender order plus message /
    /// bit / Byzantine counters); the main thread merges the scratch in
    /// worker order, which *is* sender-index order, so inbox ordering and
    /// metric totals match the serial loop byte for byte.
    fn deliver_parallel(&mut self) {
        let n = self.n();
        let round = self.core.round;
        let chunk = parallel::chunk_len(n, self.jobs);
        for inbox in &mut self.inboxes {
            inbox.clear();
        }
        let core = &self.core;
        let byzantine_mask = &self.byzantine_mask;
        type Scratch<M> = (Vec<(usize, Delivered<M>)>, u64, u64, u64);
        let worker_results: Vec<Scratch<P::Msg>> = std::thread::scope(|s| {
            let handles: Vec<_> = self
                .outgoing
                .chunks_mut(chunk)
                .enumerate()
                .map(|(ci, outs)| {
                    let base = ci * chunk;
                    s.spawn(move || {
                        let mut delivered = Vec::new();
                        let (mut msgs, mut bits, mut byz) = (0u64, 0u64, 0u64);
                        for (i, queue) in outs.iter_mut().enumerate() {
                            let sender_idx = base + i;
                            let sender = NodeId::new(sender_idx);
                            let is_byzantine = byzantine_mask[sender_idx];
                            for (msg_idx, out) in queue.drain(..).enumerate() {
                                if let Some(filter) = core.filter(sender_idx) {
                                    if !filter.allows(msg_idx, out.to) {
                                        continue;
                                    }
                                }
                                if is_byzantine {
                                    byz += 1;
                                } else {
                                    msgs += 1;
                                    bits += out.msg.bit_len();
                                }
                                let dest = out.to.index();
                                if dest < n && core.status[dest].is_running() {
                                    delivered.push((dest, Delivered::new(sender, out.msg)));
                                }
                            }
                        }
                        (delivered, msgs, bits, byz)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("delivery worker panicked"))
                .collect()
        });
        for (delivered, msgs, bits, byz) in worker_results {
            self.core
                .metrics
                .record_messages(round.as_u64(), msgs, bits);
            self.core.metrics.byzantine_messages += byz;
            for (dest, msg) in delivered {
                self.inboxes[dest].push(msg);
            }
        }
    }

    /// Phase 4, serial path: receive and update statuses.
    fn receive_serial(&mut self) {
        let round = self.core.round;
        for (i, participant) in self.participants.iter_mut().enumerate() {
            if !self.core.status[i].is_running() {
                continue;
            }
            match participant {
                Participant::Honest(p) => {
                    p.receive(round, &self.inboxes[i]);
                    if let Some(output) = p.output() {
                        if self.outputs[i].is_none() {
                            self.core.record_decision(i, &output);
                            self.outputs[i] = Some(output);
                        }
                    }
                    if p.has_halted() {
                        self.core.mark_halted(i);
                    }
                }
                Participant::Byzantine(_) => {
                    // Byzantine nodes just remember their inbox for next round.
                    std::mem::swap(&mut self.byz_inboxes[i], &mut self.inboxes[i]);
                }
            }
        }
    }

    /// Phase 4, parallel path: workers drive `receive` for contiguous node
    /// chunks, writing outputs in place and recording decision/halt events in
    /// per-worker scratch; the main thread replays the events in node-index
    /// order so status transitions and trace entries match the serial loop.
    fn receive_parallel(&mut self) {
        let round = self.core.round;
        let chunk = parallel::chunk_len(self.n(), self.jobs);
        let status = &self.core.status;
        let events: Vec<Vec<NodeEvent>> = std::thread::scope(|s| {
            let chunks = self
                .participants
                .chunks_mut(chunk)
                .zip(self.inboxes.chunks_mut(chunk))
                .zip(self.byz_inboxes.chunks_mut(chunk))
                .zip(self.outputs.chunks_mut(chunk))
                .enumerate();
            let handles: Vec<_> = chunks
                .map(|(ci, (((parts, inboxes), byz), outputs))| {
                    let base = ci * chunk;
                    s.spawn(move || {
                        let mut events = Vec::new();
                        for (i, participant) in parts.iter_mut().enumerate() {
                            if !status[base + i].is_running() {
                                continue;
                            }
                            match participant {
                                Participant::Honest(p) => {
                                    p.receive(round, &inboxes[i]);
                                    let mut decided = false;
                                    if let Some(output) = p.output() {
                                        if outputs[i].is_none() {
                                            outputs[i] = Some(output);
                                            decided = true;
                                        }
                                    }
                                    let halted = p.has_halted();
                                    if decided || halted {
                                        events.push(NodeEvent {
                                            node: base + i,
                                            decided,
                                            halted,
                                        });
                                    }
                                }
                                Participant::Byzantine(_) => {
                                    std::mem::swap(&mut byz[i], &mut inboxes[i]);
                                }
                            }
                        }
                        events
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("receive worker panicked"))
                .collect()
        });
        // Workers scan contiguous ascending chunks, so flattening in worker
        // order replays decisions and halts in node-index order — the same
        // order (and trace) the serial loop produces.
        for event in events.into_iter().flatten() {
            if event.decided {
                let output = self.outputs[event.node]
                    .as_ref()
                    .expect("decision recorded");
                self.core.record_decision(event.node, output);
            }
            if event.halted {
                self.core.mark_halted(event.node);
            }
        }
    }

    /// Builds the final report.
    fn report(&self, termination: Termination) -> ExecutionReport<P::Output> {
        let n = self.n();
        let byzantine = NodeSet::from_iter(
            n,
            self.participants
                .iter()
                .enumerate()
                .filter(|(_, p)| p.is_byzantine())
                .map(|(i, _)| NodeId::new(i)),
        );
        ExecutionReport {
            outputs: self.outputs.clone(),
            crashed_at: self.core.crashed_at.clone(),
            halted_at: self.core.halted_at.clone(),
            byzantine,
            metrics: self.core.metrics.clone(),
            termination,
        }
    }
}

impl<P: SyncProtocol> std::fmt::Debug for Runner<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runner")
            .field("n", &self.n())
            .field("round", &self.core.round)
            .field("crashes", &self.core.crashes)
            .finish_non_exhaustive()
    }
}

/// Convenience: runs `protocols` under `adversary` with budget `t` for at
/// most `max_rounds` rounds and returns the report.
///
/// # Errors
///
/// Propagates construction errors from [`Runner::with_adversary`].
pub fn run_with_crashes<P: SyncProtocol>(
    protocols: Vec<P>,
    adversary: Box<dyn CrashAdversary>,
    fault_budget: usize,
    max_rounds: u64,
) -> SimResult<ExecutionReport<P::Output>> {
    let mut runner = Runner::with_adversary(protocols, adversary, fault_budget)?;
    Ok(runner.run(max_rounds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{AdversaryView, CrashDirective, FixedCrashSchedule};

    /// Every node floods its input to all nodes each round; decides on the OR
    /// of everything seen after 3 rounds.
    struct FloodOr {
        n: usize,
        value: bool,
        decided: Option<bool>,
        rounds_seen: u64,
    }

    impl FloodOr {
        fn new(n: usize, value: bool) -> Self {
            FloodOr {
                n,
                value,
                decided: None,
                rounds_seen: 0,
            }
        }
    }

    impl SyncProtocol for FloodOr {
        type Msg = bool;
        type Output = bool;

        fn send(&mut self, _round: Round) -> Vec<Outgoing<bool>> {
            (0..self.n)
                .map(|i| Outgoing::new(NodeId::new(i), self.value))
                .collect()
        }

        fn receive(&mut self, _round: Round, inbox: &[Delivered<bool>]) {
            for msg in inbox {
                self.value |= msg.msg;
            }
            self.rounds_seen += 1;
            if self.rounds_seen >= 3 {
                self.decided = Some(self.value);
            }
        }

        fn output(&self) -> Option<bool> {
            self.decided
        }

        fn has_halted(&self) -> bool {
            self.decided.is_some()
        }
    }

    #[test]
    fn rejects_empty_system() {
        let protocols: Vec<FloodOr> = Vec::new();
        assert_eq!(Runner::new(protocols).err(), Some(SimError::EmptySystem));
    }

    #[test]
    fn rejects_budget_not_below_n() {
        let protocols = vec![FloodOr::new(2, false), FloodOr::new(2, true)];
        let err = Runner::with_adversary(protocols, Box::new(NoFaults), 2).err();
        assert!(matches!(err, Some(SimError::InvalidConfig(_))));
    }

    #[test]
    fn flood_or_reaches_agreement_without_faults() {
        let n = 8;
        let protocols: Vec<FloodOr> = (0..n).map(|i| FloodOr::new(n, i == 3)).collect();
        let mut runner = Runner::new(protocols).unwrap();
        runner.enable_trace();
        let report = runner.run(10);
        assert_eq!(report.termination, Termination::AllHalted);
        assert!(report.all_non_faulty_decided());
        assert!(report.non_faulty_deciders_agree());
        assert_eq!(report.agreed_value(), Some(&true));
        assert_eq!(report.metrics.rounds, 3);
        // Every node sends n messages in each of 3 rounds.
        assert_eq!(report.metrics.messages, (n * n * 3) as u64);
        assert_eq!(report.metrics.bits, (n * n * 3) as u64);
        assert!(!runner.trace().is_empty());
    }

    #[test]
    fn silent_crash_suppresses_messages() {
        let n = 4;
        // Only node 0 holds `true`; it crashes silently in round 0, so nobody
        // ever learns the value and all decide `false`.
        let protocols: Vec<FloodOr> = (0..n).map(|i| FloodOr::new(n, i == 0)).collect();
        let adversary =
            FixedCrashSchedule::new().crash_at(0, CrashDirective::silent(NodeId::new(0)));
        let report = run_with_crashes(protocols, Box::new(adversary), 1, 10).unwrap();
        assert_eq!(report.metrics.crashes, 1);
        assert!(report.non_faulty_deciders_agree());
        assert_eq!(report.agreed_value(), Some(&false));
        assert_eq!(report.non_faulty().len(), n - 1);
    }

    #[test]
    fn after_send_crash_still_delivers() {
        let n = 4;
        let protocols: Vec<FloodOr> = (0..n).map(|i| FloodOr::new(n, i == 0)).collect();
        let adversary =
            FixedCrashSchedule::new().crash_at(0, CrashDirective::after_send(NodeId::new(0)));
        let report = run_with_crashes(protocols, Box::new(adversary), 1, 10).unwrap();
        assert_eq!(report.agreed_value(), Some(&true));
    }

    #[test]
    fn prefix_crash_delivers_partial_output() {
        use crate::adversary::DeliveryFilter;
        let n = 6;
        let protocols: Vec<FloodOr> = (0..n).map(|i| FloodOr::new(n, i == 0)).collect();
        // Node 0 reaches only its first two destinations (nodes 0 and 1) before crashing.
        let adversary = FixedCrashSchedule::new().crash_at(
            0,
            CrashDirective {
                node: NodeId::new(0),
                deliver: DeliveryFilter::Prefix(2),
            },
        );
        let report = run_with_crashes(protocols, Box::new(adversary), 1, 10).unwrap();
        // Node 1 got the value and re-floods it, so everyone still decides true.
        assert_eq!(report.agreed_value(), Some(&true));
        assert!(report.non_faulty_deciders_agree());
    }

    #[test]
    fn fault_budget_is_enforced() {
        let n = 5;
        let protocols: Vec<FloodOr> = (0..n).map(|_| FloodOr::new(n, false)).collect();
        let adversary = FixedCrashSchedule::new().crash_all_at(0, (0..4).map(NodeId::new));
        let report = run_with_crashes(protocols, Box::new(adversary), 2, 10).unwrap();
        assert_eq!(
            report.metrics.crashes, 2,
            "only budget-many crashes applied"
        );
    }

    #[test]
    fn byzantine_messages_not_counted() {
        use crate::adversary::byzantine::FloodByzantine;
        let n = 4;
        let mut participants: Vec<Participant<FloodOr>> = (1..n)
            .map(|i| Participant::Honest(FloodOr::new(n, i == 1)))
            .collect();
        participants.insert(
            0,
            Participant::Byzantine(Box::new(FloodByzantine::<bool>::new(n))),
        );
        let mut runner = Runner::with_participants(participants, Box::new(NoFaults), 0).unwrap();
        let report = runner.run(10);
        assert!(report.byzantine.contains(NodeId::new(0)));
        assert_eq!(report.non_faulty().len(), n - 1);
        // Honest nodes: 3 nodes * n messages * 3 rounds.
        assert_eq!(report.metrics.messages, (3 * n * 3) as u64);
        assert!(report.metrics.byzantine_messages > 0);
        assert!(report.non_faulty_deciders_agree());
    }

    #[test]
    fn round_limit_reported() {
        // A protocol that never halts.
        struct Never;
        impl SyncProtocol for Never {
            type Msg = bool;
            type Output = bool;
            fn send(&mut self, _: Round) -> Vec<Outgoing<bool>> {
                Vec::new()
            }
            fn receive(&mut self, _: Round, _: &[Delivered<bool>]) {}
            fn output(&self) -> Option<bool> {
                None
            }
            fn has_halted(&self) -> bool {
                false
            }
        }
        let mut runner = Runner::new(vec![Never, Never]).unwrap();
        let report = runner.run(5);
        assert_eq!(report.termination, Termination::RoundLimit);
        assert_eq!(report.metrics.rounds, 5);
    }

    /// Sends one message per round to a fixed target and counts how many
    /// messages it has ever received; never halts on its own.
    struct CountingSender {
        target: usize,
        received: u64,
        halt_after: Option<u64>,
        rounds: u64,
    }

    impl SyncProtocol for CountingSender {
        type Msg = bool;
        type Output = u64;

        fn send(&mut self, _round: Round) -> Vec<Outgoing<bool>> {
            vec![Outgoing::new(NodeId::new(self.target), true)]
        }

        fn receive(&mut self, _round: Round, inbox: &[Delivered<bool>]) {
            self.received += inbox.len() as u64;
            self.rounds += 1;
        }

        fn output(&self) -> Option<u64> {
            Some(self.received)
        }

        fn has_halted(&self) -> bool {
            self.halt_after.is_some_and(|h| self.rounds >= h)
        }
    }

    /// Parallel phase loops must be observationally identical to the serial
    /// ones: same report (outputs, crash/halt rounds, metrics including the
    /// per-round profile) and same trace, event for event.  `n` sits above
    /// the fork threshold so the worker-pool path actually runs.
    #[test]
    fn parallel_execution_is_byte_identical_to_serial() {
        use crate::parallel::MIN_NODES_PER_FORK;
        let n = MIN_NODES_PER_FORK + 9;
        let run = |jobs: usize| {
            let protocols: Vec<FloodOr> = (0..n).map(|i| FloodOr::new(n, i == 3)).collect();
            let adversary = FixedCrashSchedule::new()
                .crash_at(0, CrashDirective::silent(NodeId::new(1)))
                .crash_at(
                    1,
                    CrashDirective {
                        node: NodeId::new(4),
                        deliver: crate::adversary::DeliveryFilter::Prefix(3),
                    },
                )
                .crash_at(2, CrashDirective::after_send(NodeId::new(n - 1)));
            let mut runner = Runner::with_adversary(protocols, Box::new(adversary), 3)
                .unwrap()
                .with_jobs(jobs);
            runner.enable_trace();
            let report = runner.run(10);
            (report, runner.trace().events().to_vec())
        };
        let (serial_report, serial_trace) = run(1);
        for jobs in [2, 4, 7] {
            let (parallel_report, parallel_trace) = run(jobs);
            assert_eq!(serial_report, parallel_report, "report with jobs={jobs}");
            assert_eq!(serial_trace, parallel_trace, "trace with jobs={jobs}");
        }
        assert_eq!(serial_report.metrics.crashes, 3);
        assert!(serial_report.all_non_faulty_decided());
    }

    /// The parallel path preserves Byzantine accounting: uncounted Byzantine
    /// messages, per-node inbox retention, identical honest-side metrics.
    #[test]
    fn parallel_execution_matches_serial_with_byzantine_nodes() {
        use crate::adversary::byzantine::FloodByzantine;
        use crate::parallel::MIN_NODES_PER_FORK;
        let n = MIN_NODES_PER_FORK + 2;
        let run = |jobs: usize| {
            let mut participants: Vec<Participant<FloodOr>> = (1..n)
                .map(|i| Participant::Honest(FloodOr::new(n, i == 1)))
                .collect();
            participants.insert(
                0,
                Participant::Byzantine(Box::new(FloodByzantine::<bool>::new(n))),
            );
            let mut runner = Runner::with_participants(participants, Box::new(NoFaults), 0)
                .unwrap()
                .with_jobs(jobs);
            runner.run(10)
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial, parallel);
        assert!(parallel.metrics.byzantine_messages > 0);
    }

    /// Regression test for the halted-destination rule: once a node halts,
    /// messages addressed to it are dropped (but still counted against the
    /// sender), exactly like messages to a crashed node.
    #[test]
    fn messages_to_halted_nodes_are_counted_but_dropped() {
        // Node 1 halts after its first round; node 0 keeps sending to it.
        let nodes = vec![
            CountingSender {
                target: 1,
                received: 0,
                halt_after: None,
                rounds: 0,
            },
            CountingSender {
                target: 0,
                received: 0,
                halt_after: Some(1),
                rounds: 0,
            },
        ];
        let mut runner = Runner::new(nodes).unwrap();
        let report = runner.run(5);
        assert_eq!(report.halted_at[1], Some(Round::new(0)));
        // All 5 of node 0's sends are counted, plus node 1's single send.
        assert_eq!(report.metrics.messages, 6);
        // Node 1 received exactly one message (round 0) before halting.
        assert_eq!(report.output_of(NodeId::new(1)), Some(&1));
    }

    /// Regression test: the multi-port runner hands the adversary one poll
    /// slot per node (all `None`), so adversaries written for the
    /// single-port model may index `poll_intents[node]` without panicking.
    #[test]
    fn adversary_view_has_one_poll_slot_per_node() {
        struct IndexesPolls;
        impl CrashAdversary for IndexesPolls {
            fn plan_round(&mut self, view: &AdversaryView<'_>) -> Vec<CrashDirective> {
                // Direct indexing, as `AdaptiveSplitAdversary` effectively
                // does; this panicked when the view carried an empty slice.
                for node in 0..view.n() {
                    assert_eq!(view.poll_intents[node], None);
                }
                assert_eq!(view.poll_intents.len(), view.n());
                // Crash node 0 so the report proves plan_round actually ran
                // (and its assertions executed).
                vec![CrashDirective::silent(NodeId::new(0))]
            }
        }
        let n = 4;
        let protocols: Vec<FloodOr> = (0..n).map(|i| FloodOr::new(n, i == 0)).collect();
        let mut runner = Runner::with_adversary(protocols, Box::new(IndexesPolls), 1).unwrap();
        let report = runner.run(5);
        assert_eq!(report.metrics.crashes, 1, "the adversary was consulted");
        assert_eq!(report.termination, Termination::AllHalted);
    }
}
