//! The multi-port synchronous runner.
//!
//! Drives a set of protocol state machines through lock-step rounds under a
//! crash adversary and/or Byzantine participants, collecting the metrics the
//! paper reports: rounds until all non-faulty nodes halt, messages and bits
//! sent by non-faulty nodes.
//!
//! The round loop is built on the batched-delivery core in
//! [`delivery`](crate::delivery): alive/crashed sets are maintained
//! incrementally, and the per-round working storage (outgoing queues, send
//! intents, inboxes) lives in flat buffers reused across rounds instead of
//! being reallocated every round.

use crate::adversary::byzantine::ByzantineStrategy;
use crate::adversary::{CrashAdversary, NoFaults};
use crate::delivery::EngineCore;
use crate::error::{SimError, SimResult};
use crate::message::{Delivered, Outgoing, Payload};
use crate::node::{NodeId, NodeSet};
use crate::protocol::{NodeStatus, SyncProtocol};
use crate::report::{ExecutionReport, Termination};
use crate::round::Round;
use crate::trace::Trace;

/// A participant in an execution: either an honest node running the protocol
/// under test or a Byzantine node running an arbitrary strategy.
pub enum Participant<P: SyncProtocol> {
    /// An honest node executing the protocol.
    Honest(P),
    /// A Byzantine node executing an adversarial strategy over the same
    /// message type.
    Byzantine(Box<dyn ByzantineStrategy<P::Msg>>),
}

impl<P: SyncProtocol> Participant<P> {
    fn is_byzantine(&self) -> bool {
        matches!(self, Participant::Byzantine(_))
    }
}

impl<P: SyncProtocol> std::fmt::Debug for Participant<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Participant::Honest(_) => write!(f, "Honest"),
            Participant::Byzantine(_) => write!(f, "Byzantine"),
        }
    }
}

/// Multi-port synchronous runner.
///
/// Messages addressed to nodes that have crashed **or halted** are dropped
/// at delivery time (they are still counted against the sender): a halted
/// node no longer participates in the protocol.  Both runners share this
/// rule — see `SinglePortRunner` for the buffered-port variant.
///
/// # Examples
///
/// Running a toy protocol in which every node halts immediately:
///
/// ```
/// use dft_sim::{Delivered, Outgoing, Round, Runner, SyncProtocol};
///
/// struct Halt;
/// impl SyncProtocol for Halt {
///     type Msg = bool;
///     type Output = bool;
///     fn send(&mut self, _: Round) -> Vec<Outgoing<bool>> { Vec::new() }
///     fn receive(&mut self, _: Round, _: &[Delivered<bool>]) {}
///     fn output(&self) -> Option<bool> { Some(true) }
///     fn has_halted(&self) -> bool { true }
/// }
///
/// let mut runner = Runner::new((0..4).map(|_| Halt).collect()).unwrap();
/// let report = runner.run(10);
/// assert!(report.all_non_faulty_decided());
/// assert_eq!(report.metrics.rounds, 1);
/// ```
pub struct Runner<P: SyncProtocol> {
    participants: Vec<Participant<P>>,
    outputs: Vec<Option<P::Output>>,
    adversary: Box<dyn CrashAdversary>,
    core: EngineCore,
    /// Per-node outgoing queues for the current round (reused).
    outgoing: Vec<Vec<Outgoing<P::Msg>>>,
    /// Per-node intended destinations handed to the adversary (reused).
    send_intents: Vec<Vec<NodeId>>,
    /// The multi-port model has no polling; the adversary still sees one
    /// (always-`None`) slot per node.  See [`crate::AdversaryView`].
    poll_intents: Vec<Option<NodeId>>,
    /// Per-node inboxes for the current round (reused).
    inboxes: Vec<Vec<Delivered<P::Msg>>>,
    /// Byzantine nodes' retained previous-round inboxes.
    byz_inboxes: Vec<Vec<Delivered<P::Msg>>>,
}

impl<P: SyncProtocol> Runner<P> {
    /// Creates a runner over honest nodes only, with no faults.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptySystem`] if `protocols` is empty.
    pub fn new(protocols: Vec<P>) -> SimResult<Self> {
        Self::with_adversary(protocols, Box::new(NoFaults), 0)
    }

    /// Creates a runner over honest nodes with a crash adversary limited to
    /// `fault_budget` crashes.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptySystem`] if `protocols` is empty, or
    /// [`SimError::InvalidConfig`] if the budget is not smaller than the
    /// number of nodes.
    pub fn with_adversary(
        protocols: Vec<P>,
        adversary: Box<dyn CrashAdversary>,
        fault_budget: usize,
    ) -> SimResult<Self> {
        let participants = protocols.into_iter().map(Participant::Honest).collect();
        Self::with_participants(participants, adversary, fault_budget)
    }

    /// Creates a runner over a mix of honest and Byzantine participants.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptySystem`] if `participants` is empty, or
    /// [`SimError::InvalidConfig`] if the crash budget is not smaller than
    /// the number of nodes.
    pub fn with_participants(
        participants: Vec<Participant<P>>,
        adversary: Box<dyn CrashAdversary>,
        fault_budget: usize,
    ) -> SimResult<Self> {
        if participants.is_empty() {
            return Err(SimError::EmptySystem);
        }
        if fault_budget >= participants.len() {
            return Err(SimError::InvalidConfig(format!(
                "fault budget {fault_budget} must be smaller than the number of nodes {}",
                participants.len()
            )));
        }
        let n = participants.len();
        Ok(Runner {
            participants,
            outputs: (0..n).map(|_| None).collect(),
            adversary,
            core: EngineCore::new(n, fault_budget),
            outgoing: (0..n).map(|_| Vec::new()).collect(),
            send_intents: (0..n).map(|_| Vec::new()).collect(),
            poll_intents: vec![None; n],
            inboxes: (0..n).map(|_| Vec::new()).collect(),
            byz_inboxes: (0..n).map(|_| Vec::new()).collect(),
        })
    }

    /// Enables coarse-grained event tracing.
    pub fn enable_trace(&mut self) -> &mut Self {
        self.core.trace = Trace::enabled();
        self
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.participants.len()
    }

    /// The current round (the next one to be executed).
    pub fn round(&self) -> Round {
        self.core.round
    }

    /// The recorded trace (empty unless [`Runner::enable_trace`] was called).
    pub fn trace(&self) -> &Trace {
        &self.core.trace
    }

    /// Runs rounds until every non-faulty node has halted or `max_rounds`
    /// rounds have been executed, and returns the execution report.
    pub fn run(&mut self, max_rounds: u64) -> ExecutionReport<P::Output> {
        let mut termination = Termination::RoundLimit;
        for _ in 0..max_rounds {
            self.step();
            if self.all_non_faulty_halted() {
                termination = Termination::AllHalted;
                break;
            }
        }
        self.report(termination)
    }

    /// Whether every node that has not crashed has halted voluntarily.
    pub fn all_non_faulty_halted(&self) -> bool {
        self.core.status.iter().enumerate().all(|(i, s)| match s {
            NodeStatus::Running => self.participants[i].is_byzantine(),
            NodeStatus::Halted | NodeStatus::Crashed(_) => true,
        })
    }

    /// Executes one synchronous round: collect sends, apply the crash
    /// adversary, deliver, receive, update statuses.
    pub fn step(&mut self) {
        let n = self.n();
        let round = self.core.round;

        // Phase 1: collect outgoing messages from every operational
        // participant into the reused per-node queues.
        for (i, participant) in self.participants.iter_mut().enumerate() {
            self.outgoing[i] = match (&self.core.status[i], participant) {
                (NodeStatus::Running, Participant::Honest(p)) => p.send(round),
                (NodeStatus::Running, Participant::Byzantine(b)) => {
                    // Byzantine nodes act on last round's inbox when sending.
                    b.act(round, &self.byz_inboxes[i])
                }
                _ => Vec::new(),
            };
        }

        // Phase 2: let the crash adversary pick this round's victims.
        for (intents, msgs) in self.send_intents.iter_mut().zip(&self.outgoing) {
            intents.clear();
            intents.extend(msgs.iter().map(|m| m.to));
        }
        self.core
            .apply_crash_phase(&mut *self.adversary, &self.send_intents, &self.poll_intents);

        // Phase 3: deliver messages, counting only those actually dispatched
        // by non-Byzantine senders.
        for inbox in &mut self.inboxes {
            inbox.clear();
        }
        for sender_idx in 0..n {
            let sender = NodeId::new(sender_idx);
            let is_byzantine = self.participants[sender_idx].is_byzantine();
            for (msg_idx, out) in self.outgoing[sender_idx].drain(..).enumerate() {
                if let Some(filter) = self.core.filter(sender_idx) {
                    if !filter.allows(msg_idx, out.to) {
                        continue;
                    }
                }
                if is_byzantine {
                    self.core.metrics.record_byzantine_message();
                } else {
                    self.core
                        .metrics
                        .record_message(round.as_u64(), out.msg.bit_len());
                }
                let dest = out.to.index();
                if dest < n && self.core.status[dest].is_running() {
                    self.inboxes[dest].push(Delivered::new(sender, out.msg));
                }
            }
        }

        // Phase 4: receive and update statuses.
        for (i, participant) in self.participants.iter_mut().enumerate() {
            if !self.core.status[i].is_running() {
                continue;
            }
            match participant {
                Participant::Honest(p) => {
                    p.receive(round, &self.inboxes[i]);
                    if let Some(output) = p.output() {
                        if self.outputs[i].is_none() {
                            self.core.record_decision(i, &output);
                            self.outputs[i] = Some(output);
                        }
                    }
                    if p.has_halted() {
                        self.core.mark_halted(i);
                    }
                }
                Participant::Byzantine(_) => {
                    // Byzantine nodes just remember their inbox for next round.
                    std::mem::swap(&mut self.byz_inboxes[i], &mut self.inboxes[i]);
                }
            }
        }

        self.core.finish_round();
    }

    /// Builds the final report.
    fn report(&self, termination: Termination) -> ExecutionReport<P::Output> {
        let n = self.n();
        let byzantine = NodeSet::from_iter(
            n,
            self.participants
                .iter()
                .enumerate()
                .filter(|(_, p)| p.is_byzantine())
                .map(|(i, _)| NodeId::new(i)),
        );
        ExecutionReport {
            outputs: self.outputs.clone(),
            crashed_at: self.core.crashed_at.clone(),
            halted_at: self.core.halted_at.clone(),
            byzantine,
            metrics: self.core.metrics.clone(),
            termination,
        }
    }
}

impl<P: SyncProtocol> std::fmt::Debug for Runner<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runner")
            .field("n", &self.n())
            .field("round", &self.core.round)
            .field("crashes", &self.core.crashes)
            .finish_non_exhaustive()
    }
}

/// Convenience: runs `protocols` under `adversary` with budget `t` for at
/// most `max_rounds` rounds and returns the report.
///
/// # Errors
///
/// Propagates construction errors from [`Runner::with_adversary`].
pub fn run_with_crashes<P: SyncProtocol>(
    protocols: Vec<P>,
    adversary: Box<dyn CrashAdversary>,
    fault_budget: usize,
    max_rounds: u64,
) -> SimResult<ExecutionReport<P::Output>> {
    let mut runner = Runner::with_adversary(protocols, adversary, fault_budget)?;
    Ok(runner.run(max_rounds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{AdversaryView, CrashDirective, FixedCrashSchedule};

    /// Every node floods its input to all nodes each round; decides on the OR
    /// of everything seen after 3 rounds.
    struct FloodOr {
        n: usize,
        value: bool,
        decided: Option<bool>,
        rounds_seen: u64,
    }

    impl FloodOr {
        fn new(n: usize, value: bool) -> Self {
            FloodOr {
                n,
                value,
                decided: None,
                rounds_seen: 0,
            }
        }
    }

    impl SyncProtocol for FloodOr {
        type Msg = bool;
        type Output = bool;

        fn send(&mut self, _round: Round) -> Vec<Outgoing<bool>> {
            (0..self.n)
                .map(|i| Outgoing::new(NodeId::new(i), self.value))
                .collect()
        }

        fn receive(&mut self, _round: Round, inbox: &[Delivered<bool>]) {
            for msg in inbox {
                self.value |= msg.msg;
            }
            self.rounds_seen += 1;
            if self.rounds_seen >= 3 {
                self.decided = Some(self.value);
            }
        }

        fn output(&self) -> Option<bool> {
            self.decided
        }

        fn has_halted(&self) -> bool {
            self.decided.is_some()
        }
    }

    #[test]
    fn rejects_empty_system() {
        let protocols: Vec<FloodOr> = Vec::new();
        assert_eq!(Runner::new(protocols).err(), Some(SimError::EmptySystem));
    }

    #[test]
    fn rejects_budget_not_below_n() {
        let protocols = vec![FloodOr::new(2, false), FloodOr::new(2, true)];
        let err = Runner::with_adversary(protocols, Box::new(NoFaults), 2).err();
        assert!(matches!(err, Some(SimError::InvalidConfig(_))));
    }

    #[test]
    fn flood_or_reaches_agreement_without_faults() {
        let n = 8;
        let protocols: Vec<FloodOr> = (0..n).map(|i| FloodOr::new(n, i == 3)).collect();
        let mut runner = Runner::new(protocols).unwrap();
        runner.enable_trace();
        let report = runner.run(10);
        assert_eq!(report.termination, Termination::AllHalted);
        assert!(report.all_non_faulty_decided());
        assert!(report.non_faulty_deciders_agree());
        assert_eq!(report.agreed_value(), Some(&true));
        assert_eq!(report.metrics.rounds, 3);
        // Every node sends n messages in each of 3 rounds.
        assert_eq!(report.metrics.messages, (n * n * 3) as u64);
        assert_eq!(report.metrics.bits, (n * n * 3) as u64);
        assert!(!runner.trace().is_empty());
    }

    #[test]
    fn silent_crash_suppresses_messages() {
        let n = 4;
        // Only node 0 holds `true`; it crashes silently in round 0, so nobody
        // ever learns the value and all decide `false`.
        let protocols: Vec<FloodOr> = (0..n).map(|i| FloodOr::new(n, i == 0)).collect();
        let adversary =
            FixedCrashSchedule::new().crash_at(0, CrashDirective::silent(NodeId::new(0)));
        let report = run_with_crashes(protocols, Box::new(adversary), 1, 10).unwrap();
        assert_eq!(report.metrics.crashes, 1);
        assert!(report.non_faulty_deciders_agree());
        assert_eq!(report.agreed_value(), Some(&false));
        assert_eq!(report.non_faulty().len(), n - 1);
    }

    #[test]
    fn after_send_crash_still_delivers() {
        let n = 4;
        let protocols: Vec<FloodOr> = (0..n).map(|i| FloodOr::new(n, i == 0)).collect();
        let adversary =
            FixedCrashSchedule::new().crash_at(0, CrashDirective::after_send(NodeId::new(0)));
        let report = run_with_crashes(protocols, Box::new(adversary), 1, 10).unwrap();
        assert_eq!(report.agreed_value(), Some(&true));
    }

    #[test]
    fn prefix_crash_delivers_partial_output() {
        use crate::adversary::DeliveryFilter;
        let n = 6;
        let protocols: Vec<FloodOr> = (0..n).map(|i| FloodOr::new(n, i == 0)).collect();
        // Node 0 reaches only its first two destinations (nodes 0 and 1) before crashing.
        let adversary = FixedCrashSchedule::new().crash_at(
            0,
            CrashDirective {
                node: NodeId::new(0),
                deliver: DeliveryFilter::Prefix(2),
            },
        );
        let report = run_with_crashes(protocols, Box::new(adversary), 1, 10).unwrap();
        // Node 1 got the value and re-floods it, so everyone still decides true.
        assert_eq!(report.agreed_value(), Some(&true));
        assert!(report.non_faulty_deciders_agree());
    }

    #[test]
    fn fault_budget_is_enforced() {
        let n = 5;
        let protocols: Vec<FloodOr> = (0..n).map(|_| FloodOr::new(n, false)).collect();
        let adversary = FixedCrashSchedule::new().crash_all_at(0, (0..4).map(NodeId::new));
        let report = run_with_crashes(protocols, Box::new(adversary), 2, 10).unwrap();
        assert_eq!(
            report.metrics.crashes, 2,
            "only budget-many crashes applied"
        );
    }

    #[test]
    fn byzantine_messages_not_counted() {
        use crate::adversary::byzantine::FloodByzantine;
        let n = 4;
        let mut participants: Vec<Participant<FloodOr>> = (1..n)
            .map(|i| Participant::Honest(FloodOr::new(n, i == 1)))
            .collect();
        participants.insert(
            0,
            Participant::Byzantine(Box::new(FloodByzantine::<bool>::new(n))),
        );
        let mut runner = Runner::with_participants(participants, Box::new(NoFaults), 0).unwrap();
        let report = runner.run(10);
        assert!(report.byzantine.contains(NodeId::new(0)));
        assert_eq!(report.non_faulty().len(), n - 1);
        // Honest nodes: 3 nodes * n messages * 3 rounds.
        assert_eq!(report.metrics.messages, (3 * n * 3) as u64);
        assert!(report.metrics.byzantine_messages > 0);
        assert!(report.non_faulty_deciders_agree());
    }

    #[test]
    fn round_limit_reported() {
        // A protocol that never halts.
        struct Never;
        impl SyncProtocol for Never {
            type Msg = bool;
            type Output = bool;
            fn send(&mut self, _: Round) -> Vec<Outgoing<bool>> {
                Vec::new()
            }
            fn receive(&mut self, _: Round, _: &[Delivered<bool>]) {}
            fn output(&self) -> Option<bool> {
                None
            }
            fn has_halted(&self) -> bool {
                false
            }
        }
        let mut runner = Runner::new(vec![Never, Never]).unwrap();
        let report = runner.run(5);
        assert_eq!(report.termination, Termination::RoundLimit);
        assert_eq!(report.metrics.rounds, 5);
    }

    /// Sends one message per round to a fixed target and counts how many
    /// messages it has ever received; never halts on its own.
    struct CountingSender {
        target: usize,
        received: u64,
        halt_after: Option<u64>,
        rounds: u64,
    }

    impl SyncProtocol for CountingSender {
        type Msg = bool;
        type Output = u64;

        fn send(&mut self, _round: Round) -> Vec<Outgoing<bool>> {
            vec![Outgoing::new(NodeId::new(self.target), true)]
        }

        fn receive(&mut self, _round: Round, inbox: &[Delivered<bool>]) {
            self.received += inbox.len() as u64;
            self.rounds += 1;
        }

        fn output(&self) -> Option<u64> {
            Some(self.received)
        }

        fn has_halted(&self) -> bool {
            self.halt_after.is_some_and(|h| self.rounds >= h)
        }
    }

    /// Regression test for the halted-destination rule: once a node halts,
    /// messages addressed to it are dropped (but still counted against the
    /// sender), exactly like messages to a crashed node.
    #[test]
    fn messages_to_halted_nodes_are_counted_but_dropped() {
        // Node 1 halts after its first round; node 0 keeps sending to it.
        let nodes = vec![
            CountingSender {
                target: 1,
                received: 0,
                halt_after: None,
                rounds: 0,
            },
            CountingSender {
                target: 0,
                received: 0,
                halt_after: Some(1),
                rounds: 0,
            },
        ];
        let mut runner = Runner::new(nodes).unwrap();
        let report = runner.run(5);
        assert_eq!(report.halted_at[1], Some(Round::new(0)));
        // All 5 of node 0's sends are counted, plus node 1's single send.
        assert_eq!(report.metrics.messages, 6);
        // Node 1 received exactly one message (round 0) before halting.
        assert_eq!(report.output_of(NodeId::new(1)), Some(&1));
    }

    /// Regression test: the multi-port runner hands the adversary one poll
    /// slot per node (all `None`), so adversaries written for the
    /// single-port model may index `poll_intents[node]` without panicking.
    #[test]
    fn adversary_view_has_one_poll_slot_per_node() {
        struct IndexesPolls;
        impl CrashAdversary for IndexesPolls {
            fn plan_round(&mut self, view: &AdversaryView<'_>) -> Vec<CrashDirective> {
                // Direct indexing, as `AdaptiveSplitAdversary` effectively
                // does; this panicked when the view carried an empty slice.
                for node in 0..view.n() {
                    assert_eq!(view.poll_intents[node], None);
                }
                assert_eq!(view.poll_intents.len(), view.n());
                // Crash node 0 so the report proves plan_round actually ran
                // (and its assertions executed).
                vec![CrashDirective::silent(NodeId::new(0))]
            }
        }
        let n = 4;
        let protocols: Vec<FloodOr> = (0..n).map(|i| FloodOr::new(n, i == 0)).collect();
        let mut runner = Runner::with_adversary(protocols, Box::new(IndexesPolls), 1).unwrap();
        let report = runner.run(5);
        assert_eq!(report.metrics.crashes, 1, "the adversary was consulted");
        assert_eq!(report.termination, Termination::AllHalted);
    }
}
