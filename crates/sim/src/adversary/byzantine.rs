//! Byzantine node strategies for the authenticated-Byzantine model.
//!
//! A node that is faulty in the authenticated Byzantine sense "may undergo
//! arbitrary state transitions but cannot forge messages claiming that they
//! are forwarded from other nodes" (Section 2).  The simulator models this by
//! letting a Byzantine node run an arbitrary [`ByzantineStrategy`] instead of
//! the honest protocol; unforgeability is provided by the `dft-auth`
//! substrate, whose signatures a strategy cannot fabricate for keys it does
//! not hold.
//!
//! The strategies in this module are *generic*: they work for any payload
//! type by staying silent, replaying, or flooding previously observed
//! messages.  Protocol-specific attacks (e.g. equivocation inside
//! Dolev–Strong) live next to the protocols they attack, implemented against
//! the concrete message type.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::message::{Delivered, Outgoing, Payload};
use crate::node::NodeId;
use crate::round::Round;

/// Behaviour of a Byzantine node in the synchronous model.
///
/// A strategy sees exactly what an honest node would see — its inbox each
/// round — and may send arbitrary (well-typed) messages to arbitrary nodes.
/// Messages sent by Byzantine nodes are *not* counted towards communication
/// complexity, matching the paper's accounting.
pub trait ByzantineStrategy<M: Payload> {
    /// Messages the Byzantine node emits this round, given what it received
    /// last round.
    fn act(&mut self, round: Round, inbox: &[Delivered<M>]) -> Vec<Outgoing<M>>;
}

/// A Byzantine node that never sends anything — indistinguishable from a node
/// that crashed before the execution started.
#[derive(Clone, Copy, Debug, Default)]
pub struct SilentByzantine;

impl<M: Payload> ByzantineStrategy<M> for SilentByzantine {
    fn act(&mut self, _round: Round, _inbox: &[Delivered<M>]) -> Vec<Outgoing<M>> {
        Vec::new()
    }
}

/// A Byzantine node that echoes every message it receives back to a rotating
/// set of destinations, creating noise without being able to forge origin
/// authentication.
#[derive(Clone, Debug)]
pub struct ReplayByzantine {
    n: usize,
    fanout: usize,
    rng: ChaCha8Rng,
}

impl ReplayByzantine {
    /// Creates a replayer in a system of `n` nodes that echoes each received
    /// message to `fanout` random destinations.
    pub fn new(n: usize, fanout: usize, seed: u64) -> Self {
        ReplayByzantine {
            n,
            fanout,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }
}

impl<M: Payload> ByzantineStrategy<M> for ReplayByzantine {
    fn act(&mut self, _round: Round, inbox: &[Delivered<M>]) -> Vec<Outgoing<M>> {
        let mut out = Vec::new();
        let all: Vec<usize> = (0..self.n).collect();
        for delivered in inbox {
            let dests: Vec<usize> = all
                .choose_multiple(&mut self.rng, self.fanout.min(self.n))
                .copied()
                .collect();
            for d in dests {
                out.push(Outgoing::new(NodeId::new(d), delivered.msg.clone()));
            }
        }
        out
    }
}

/// A Byzantine node that replays its most recently received message to every
/// node every round — a flooding attack whose messages are, per the paper's
/// accounting, not charged to the algorithm.
#[derive(Clone, Debug)]
pub struct FloodByzantine<M> {
    n: usize,
    last: Option<M>,
}

impl<M> FloodByzantine<M> {
    /// Creates a flooder in a system of `n` nodes.
    pub fn new(n: usize) -> Self {
        FloodByzantine { n, last: None }
    }
}

impl<M: Payload> ByzantineStrategy<M> for FloodByzantine<M> {
    fn act(&mut self, _round: Round, inbox: &[Delivered<M>]) -> Vec<Outgoing<M>> {
        if let Some(first) = inbox.first() {
            self.last = Some(first.msg.clone());
        }
        match &self.last {
            Some(msg) => (0..self.n)
                .map(|i| Outgoing::new(NodeId::new(i), msg.clone()))
                .collect(),
            None => Vec::new(),
        }
    }
}

/// Wraps a closure as a strategy, for protocol-specific attacks defined in
/// tests and benchmarks.
pub struct ScriptedByzantine<M, F>
where
    F: FnMut(Round, &[Delivered<M>]) -> Vec<Outgoing<M>>,
{
    script: F,
    _marker: std::marker::PhantomData<M>,
}

impl<M, F> ScriptedByzantine<M, F>
where
    F: FnMut(Round, &[Delivered<M>]) -> Vec<Outgoing<M>>,
{
    /// Wraps `script` as a Byzantine strategy.
    pub fn new(script: F) -> Self {
        ScriptedByzantine {
            script,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<M, F> std::fmt::Debug for ScriptedByzantine<M, F>
where
    F: FnMut(Round, &[Delivered<M>]) -> Vec<Outgoing<M>>,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScriptedByzantine").finish_non_exhaustive()
    }
}

impl<M: Payload, F> ByzantineStrategy<M> for ScriptedByzantine<M, F>
where
    F: FnMut(Round, &[Delivered<M>]) -> Vec<Outgoing<M>>,
{
    fn act(&mut self, round: Round, inbox: &[Delivered<M>]) -> Vec<Outgoing<M>> {
        (self.script)(round, inbox)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silent_sends_nothing() {
        let mut s = SilentByzantine;
        let inbox = vec![Delivered::new(NodeId::new(1), true)];
        let out: Vec<Outgoing<bool>> = s.act(Round::ZERO, &inbox);
        assert!(out.is_empty());
    }

    #[test]
    fn replay_echoes_received_messages() {
        let mut s = ReplayByzantine::new(10, 3, 7);
        let inbox = vec![Delivered::new(NodeId::new(1), true)];
        let out: Vec<Outgoing<bool>> = s.act(Round::ZERO, &inbox);
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|o| o.msg));
    }

    #[test]
    fn flood_broadcasts_last_seen() {
        let mut s = FloodByzantine::new(4);
        let out: Vec<Outgoing<bool>> = s.act(Round::ZERO, &[]);
        assert!(out.is_empty(), "nothing to flood yet");
        let inbox = vec![Delivered::new(NodeId::new(2), true)];
        let out = s.act(Round::new(1), &inbox);
        assert_eq!(out.len(), 4);
        let out = s.act(Round::new(2), &[]);
        assert_eq!(out.len(), 4, "keeps flooding the remembered value");
    }

    #[test]
    fn scripted_runs_closure() {
        let mut s = ScriptedByzantine::new(|round: Round, _inbox: &[Delivered<bool>]| {
            if round.as_u64() == 1 {
                vec![Outgoing::new(NodeId::new(0), false)]
            } else {
                Vec::new()
            }
        });
        assert!(s.act(Round::ZERO, &[]).is_empty());
        assert_eq!(s.act(Round::new(1), &[]).len(), 1);
    }
}
