//! Crash adversaries and concrete crash schedules.

use std::collections::BTreeMap;

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use super::AdversaryView;
use crate::node::NodeId;

/// Which of a crashing node's outgoing messages are still delivered in the
/// round it crashes.
///
/// The paper allows a node to crash "at a round", stopping activity in the
/// following rounds; a node crashing while sending may reach an arbitrary
/// subset of its recipients, and the adversary chooses that subset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeliveryFilter {
    /// Every message the node attempted this round is delivered (the node
    /// crashes "after sending").
    All,
    /// No message is delivered (the node crashes "before sending").
    None,
    /// Only the first `k` messages, in the order the protocol emitted them,
    /// are delivered.
    Prefix(usize),
    /// Only messages to the listed destinations are delivered.
    Only(Vec<NodeId>),
}

impl DeliveryFilter {
    /// Whether the `index`-th outgoing message, addressed to `to`, survives.
    pub fn allows(&self, index: usize, to: NodeId) -> bool {
        match self {
            DeliveryFilter::All => true,
            DeliveryFilter::None => false,
            DeliveryFilter::Prefix(k) => index < *k,
            DeliveryFilter::Only(dests) => dests.contains(&to),
        }
    }
}

/// A single crash decision: which node crashes this round and which of its
/// in-flight messages still get through.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrashDirective {
    /// The node to crash.
    pub node: NodeId,
    /// Which of its outgoing messages (this round) are still delivered.
    pub deliver: DeliveryFilter,
}

impl CrashDirective {
    /// Crash `node` before it manages to send anything this round.
    pub fn silent(node: NodeId) -> Self {
        CrashDirective {
            node,
            deliver: DeliveryFilter::None,
        }
    }

    /// Crash `node` after all of its round messages have been sent.
    pub fn after_send(node: NodeId) -> Self {
        CrashDirective {
            node,
            deliver: DeliveryFilter::All,
        }
    }
}

/// An adversary controlling crash failures.
///
/// The runner calls [`CrashAdversary::plan_round`] once per round, before
/// messages are delivered, and enforces the global fault budget `t`:
/// directives beyond the budget are ignored in the order returned.
pub trait CrashAdversary {
    /// Decide which nodes crash in the round described by `view`.
    fn plan_round(&mut self, view: &AdversaryView<'_>) -> Vec<CrashDirective>;
}

/// The fault-free adversary: nobody ever crashes.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoFaults;

impl CrashAdversary for NoFaults {
    fn plan_round(&mut self, _view: &AdversaryView<'_>) -> Vec<CrashDirective> {
        Vec::new()
    }
}

/// A fixed crash schedule: a map from round number to the directives applied
/// in that round.
///
/// # Examples
///
/// ```
/// use dft_sim::{CrashDirective, FixedCrashSchedule, NodeId};
///
/// let schedule = FixedCrashSchedule::new()
///     .crash_at(2, CrashDirective::silent(NodeId::new(0)))
///     .crash_at(2, CrashDirective::after_send(NodeId::new(1)))
///     .crash_at(5, CrashDirective::silent(NodeId::new(2)));
/// assert_eq!(schedule.planned_crashes(), 3);
/// ```
#[derive(Clone, Debug, Default)]
pub struct FixedCrashSchedule {
    by_round: BTreeMap<u64, Vec<CrashDirective>>,
}

impl FixedCrashSchedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a directive for the given round, returning the schedule for
    /// chaining.
    pub fn crash_at(mut self, round: u64, directive: CrashDirective) -> Self {
        self.by_round.entry(round).or_default().push(directive);
        self
    }

    /// Crashes all listed nodes silently at the given round.
    pub fn crash_all_at<I: IntoIterator<Item = NodeId>>(mut self, round: u64, nodes: I) -> Self {
        let entry = self.by_round.entry(round).or_default();
        entry.extend(nodes.into_iter().map(CrashDirective::silent));
        self
    }

    /// Total number of crashes in the schedule.
    pub fn planned_crashes(&self) -> usize {
        self.by_round.values().map(Vec::len).sum()
    }
}

impl CrashAdversary for FixedCrashSchedule {
    fn plan_round(&mut self, view: &AdversaryView<'_>) -> Vec<CrashDirective> {
        self.by_round
            .remove(&view.round.as_u64())
            .unwrap_or_default()
    }
}

/// Crashes up to `budget` random nodes, each in a uniformly random round of
/// `[0, horizon)`, with a random delivery filter.  Deterministic for a fixed
/// seed.
#[derive(Clone, Debug)]
pub struct RandomCrashes {
    schedule: FixedCrashSchedule,
}

impl RandomCrashes {
    /// Plans `budget` crashes among `n` nodes across the first `horizon`
    /// rounds using the given seed.
    pub fn new(n: usize, budget: usize, horizon: u64, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut victims: Vec<usize> = (0..n).collect();
        victims.shuffle(&mut rng);
        victims.truncate(budget.min(n));
        let mut schedule = FixedCrashSchedule::new();
        for victim in victims {
            let round = rng.gen_range(0..horizon.max(1));
            let deliver = match rng.gen_range(0..3u8) {
                0 => DeliveryFilter::All,
                1 => DeliveryFilter::None,
                _ => DeliveryFilter::Prefix(rng.gen_range(0..8)),
            };
            schedule = schedule.crash_at(
                round,
                CrashDirective {
                    node: NodeId::new(victim),
                    deliver,
                },
            );
        }
        RandomCrashes { schedule }
    }
}

impl CrashAdversary for RandomCrashes {
    fn plan_round(&mut self, view: &AdversaryView<'_>) -> Vec<CrashDirective> {
        self.schedule.plan_round(view)
    }
}

/// Crashes a specific set of victims spread evenly over a window of rounds —
/// used to attack the algorithms where it hurts most (e.g. crash little
/// nodes during Part 1 of `Almost-Everywhere-Agreement`, or crash one node
/// per round to stretch an early-stopping execution).
#[derive(Clone, Debug)]
pub struct TargetedCrashes {
    victims: Vec<NodeId>,
    start_round: u64,
    per_round: usize,
    next: usize,
}

impl TargetedCrashes {
    /// Crashes the `victims` starting at `start_round`, `per_round` of them
    /// in each consecutive round.
    ///
    /// # Panics
    ///
    /// Panics if `per_round` is zero.
    pub fn new(victims: Vec<NodeId>, start_round: u64, per_round: usize) -> Self {
        assert!(per_round > 0, "per_round must be positive");
        TargetedCrashes {
            victims,
            start_round,
            per_round,
            next: 0,
        }
    }

    /// One victim per round starting at round 0 — the classic schedule that
    /// forces `f + 1`-style round lower bounds.
    pub fn one_per_round(victims: Vec<NodeId>) -> Self {
        Self::new(victims, 0, 1)
    }
}

impl CrashAdversary for TargetedCrashes {
    fn plan_round(&mut self, view: &AdversaryView<'_>) -> Vec<CrashDirective> {
        if view.round.as_u64() < self.start_round || self.next >= self.victims.len() {
            return Vec::new();
        }
        let end = (self.next + self.per_round).min(self.victims.len());
        let batch = self.victims[self.next..end]
            .iter()
            .map(|&v| CrashDirective::silent(v))
            .collect();
        self.next = end;
        batch
    }
}

/// The adaptive adversary used in the proof of Theorem 13 (single-port lower
/// bound): it watches a distinguished node `v` and, every round, crashes the
/// node `v` sends to and the node `v` polls, so that no information ever
/// crosses between `v` and the rest of the system, for as long as the fault
/// budget lasts.
#[derive(Clone, Debug)]
pub struct AdaptiveSplitAdversary {
    victim_watch: NodeId,
}

impl AdaptiveSplitAdversary {
    /// Creates the adversary isolating node `victim_watch`.
    pub fn new(victim_watch: NodeId) -> Self {
        AdaptiveSplitAdversary { victim_watch }
    }

    /// The node whose communication is being cut.
    pub fn watched(&self) -> NodeId {
        self.victim_watch
    }
}

impl CrashAdversary for AdaptiveSplitAdversary {
    fn plan_round(&mut self, view: &AdversaryView<'_>) -> Vec<CrashDirective> {
        let mut directives = Vec::new();
        let v = self.victim_watch;
        // Crash whoever v would talk to this round, before any message flows.
        if let Some(dests) = view.send_intents.get(v.index()) {
            for &dest in dests {
                if view.can_crash(dest) && directives.len() < view.remaining_budget {
                    directives.push(CrashDirective::silent(dest));
                }
            }
        }
        if let Some(Some(port)) = view.poll_intents.get(v.index()) {
            if view.can_crash(*port)
                && directives.len() < view.remaining_budget
                && !directives.iter().any(|d| d.node == *port)
            {
                directives.push(CrashDirective::silent(*port));
            }
        }
        // Also suppress anyone trying to send *to* v this round.
        for (sender, dests) in view.send_intents.iter().enumerate() {
            let sender = NodeId::new(sender);
            if sender == v {
                continue;
            }
            if dests.contains(&v)
                && view.can_crash(sender)
                && directives.len() < view.remaining_budget
                && !directives.iter().any(|d| d.node == sender)
            {
                directives.push(CrashDirective::silent(sender));
            }
        }
        directives
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeSet;
    use crate::round::Round;

    fn view<'a>(
        round: u64,
        alive: &'a NodeSet,
        crashed: &'a NodeSet,
        intents: &'a [Vec<NodeId>],
        polls: &'a [Option<NodeId>],
        budget: usize,
    ) -> AdversaryView<'a> {
        AdversaryView {
            round: Round::new(round),
            alive,
            crashed,
            send_intents: intents,
            poll_intents: polls,
            remaining_budget: budget,
        }
    }

    #[test]
    fn delivery_filter_semantics() {
        assert!(DeliveryFilter::All.allows(10, NodeId::new(0)));
        assert!(!DeliveryFilter::None.allows(0, NodeId::new(0)));
        assert!(DeliveryFilter::Prefix(2).allows(1, NodeId::new(9)));
        assert!(!DeliveryFilter::Prefix(2).allows(2, NodeId::new(9)));
        let only = DeliveryFilter::Only(vec![NodeId::new(3)]);
        assert!(only.allows(7, NodeId::new(3)));
        assert!(!only.allows(0, NodeId::new(4)));
    }

    #[test]
    fn fixed_schedule_fires_once() {
        let mut sched = FixedCrashSchedule::new()
            .crash_at(1, CrashDirective::silent(NodeId::new(0)))
            .crash_at(1, CrashDirective::after_send(NodeId::new(1)));
        let alive = NodeSet::full(4);
        let crashed = NodeSet::empty(4);
        let intents = vec![Vec::new(); 4];
        let polls: Vec<Option<NodeId>> = Vec::new();
        let v0 = view(0, &alive, &crashed, &intents, &polls, 4);
        assert!(sched.plan_round(&v0).is_empty());
        let v1 = view(1, &alive, &crashed, &intents, &polls, 4);
        assert_eq!(sched.plan_round(&v1).len(), 2);
        let v1b = view(1, &alive, &crashed, &intents, &polls, 4);
        assert!(sched.plan_round(&v1b).is_empty(), "schedule consumed");
    }

    #[test]
    fn random_crashes_respect_budget_and_are_deterministic() {
        let a = RandomCrashes::new(50, 10, 20, 42);
        let b = RandomCrashes::new(50, 10, 20, 42);
        assert_eq!(a.schedule.planned_crashes(), 10);
        assert_eq!(
            format!("{:?}", a.schedule.by_round),
            format!("{:?}", b.schedule.by_round),
            "same seed gives same schedule"
        );
        let c = RandomCrashes::new(50, 10, 20, 43);
        assert_ne!(
            format!("{:?}", a.schedule.by_round),
            format!("{:?}", c.schedule.by_round),
            "different seed gives different schedule"
        );
    }

    #[test]
    fn targeted_crashes_batch_per_round() {
        let victims: Vec<NodeId> = (0..5).map(NodeId::new).collect();
        let mut adv = TargetedCrashes::new(victims, 2, 2);
        let alive = NodeSet::full(8);
        let crashed = NodeSet::empty(8);
        let intents = vec![Vec::new(); 8];
        let polls: Vec<Option<NodeId>> = Vec::new();
        assert!(adv
            .plan_round(&view(0, &alive, &crashed, &intents, &polls, 8))
            .is_empty());
        assert_eq!(
            adv.plan_round(&view(2, &alive, &crashed, &intents, &polls, 8))
                .len(),
            2
        );
        assert_eq!(
            adv.plan_round(&view(3, &alive, &crashed, &intents, &polls, 8))
                .len(),
            2
        );
        assert_eq!(
            adv.plan_round(&view(4, &alive, &crashed, &intents, &polls, 8))
                .len(),
            1
        );
        assert!(adv
            .plan_round(&view(5, &alive, &crashed, &intents, &polls, 8))
            .is_empty());
    }

    #[test]
    fn adaptive_split_cuts_both_directions() {
        let mut adv = AdaptiveSplitAdversary::new(NodeId::new(0));
        let alive = NodeSet::full(4);
        let crashed = NodeSet::empty(4);
        // Node 0 sends to node 1; node 3 sends to node 0; node 0 polls node 2.
        let intents = vec![
            vec![NodeId::new(1)],
            Vec::new(),
            Vec::new(),
            vec![NodeId::new(0)],
        ];
        let polls = vec![Some(NodeId::new(2)), None, None, None];
        let directives = adv.plan_round(&view(0, &alive, &crashed, &intents, &polls, 10));
        let crashed_nodes: Vec<NodeId> = directives.iter().map(|d| d.node).collect();
        assert!(crashed_nodes.contains(&NodeId::new(1)));
        assert!(crashed_nodes.contains(&NodeId::new(2)));
        assert!(crashed_nodes.contains(&NodeId::new(3)));
        assert_eq!(crashed_nodes.len(), 3);
    }

    #[test]
    fn adaptive_split_respects_budget() {
        let mut adv = AdaptiveSplitAdversary::new(NodeId::new(0));
        let alive = NodeSet::full(4);
        let crashed = NodeSet::empty(4);
        let intents = vec![
            vec![NodeId::new(1), NodeId::new(2), NodeId::new(3)],
            Vec::new(),
            Vec::new(),
            Vec::new(),
        ];
        let polls: Vec<Option<NodeId>> = vec![None; 4];
        let directives = adv.plan_round(&view(0, &alive, &crashed, &intents, &polls, 2));
        assert_eq!(directives.len(), 2, "budget of 2 caps the directives");
    }
}
