//! Fault adversaries.
//!
//! The paper's adversary controls *when* nodes fail (Section 2).  For crash
//! failures the adversary picks, per round, which nodes crash and — for a
//! node crashing mid-round — which subset of its outgoing messages still gets
//! delivered.  For authenticated Byzantine faults the adversary replaces a
//! node's state machine entirely (see [`byzantine`]), subject to the
//! constraint, enforced by the `dft-auth` substrate, that it cannot forge
//! other nodes' signatures.

mod crash;

pub mod byzantine;

pub use crash::{
    AdaptiveSplitAdversary, CrashAdversary, CrashDirective, DeliveryFilter, FixedCrashSchedule,
    NoFaults, RandomCrashes, TargetedCrashes,
};

use crate::node::{NodeId, NodeSet};
use crate::round::Round;

/// What an adversary is allowed to observe before deciding this round's
/// crashes.
///
/// The paper's adversary is adaptive and omniscient: it sees the full state
/// of the system.  We expose the alive set and every node's intended message
/// destinations (and, in the single-port model, poll choices), which is what
/// the adaptive strategies in this repository need — notably the
/// information-splitting adversary from the Theorem 13 lower bound.
#[derive(Debug)]
pub struct AdversaryView<'a> {
    /// The round being planned.
    pub round: Round,
    /// Nodes that are operational at the start of this round.
    pub alive: &'a NodeSet,
    /// Nodes that have already crashed in earlier rounds.
    pub crashed: &'a NodeSet,
    /// For every node (indexed by node id), the destinations it intends to
    /// send to this round.  Crashed and halted nodes have empty intent lists.
    pub send_intents: &'a [Vec<NodeId>],
    /// The port each node (indexed by node id) intends to poll this round.
    ///
    /// Per-model meaning: in the **single-port** model this is each node's
    /// poll choice (`None` when idle; crashed and halted nodes are `None`).
    /// In the **multi-port** model there is no polling, but the runner still
    /// supplies one `None` slot per node so adversaries may index
    /// `poll_intents[node]` without checking which model they run under.
    pub poll_intents: &'a [Option<NodeId>],
    /// How many more crashes the fault budget allows.
    pub remaining_budget: usize,
}

impl<'a> AdversaryView<'a> {
    /// Number of nodes in the system.
    pub fn n(&self) -> usize {
        self.alive.universe()
    }

    /// Whether a node can still be crashed this round (alive and budget
    /// remaining).
    pub fn can_crash(&self, node: NodeId) -> bool {
        self.remaining_budget > 0 && self.alive.contains(node)
    }
}
