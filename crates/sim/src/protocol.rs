//! Protocol state-machine traits for the multi-port and single-port models.

use crate::message::{Delivered, Outgoing, Payload};
use crate::node::NodeId;
use crate::round::Round;

/// A deterministic protocol state machine for the **multi-port** synchronous
/// model (Section 2 of the paper): in every round a node may send a message
/// to any set of nodes and receives all messages addressed to it in that
/// round.
///
/// The runner drives each node through rounds:
///
/// 1. [`SyncProtocol::send`] is called once to collect the node's outgoing
///    messages for the round;
/// 2. the adversary may crash nodes, possibly suppressing part of a crashing
///    node's output;
/// 3. [`SyncProtocol::receive`] is called once with every message delivered
///    to the node in this round;
/// 4. the node may record a decision ([`SyncProtocol::output`]) and/or halt
///    ([`SyncProtocol::has_halted`]).
///
/// Implementations must be deterministic: the paper's algorithms are
/// deterministic and the test-suite relies on reproducible executions.
///
/// Protocols are `Send + 'static` (and outputs `Send + 'static`) so a
/// runner may hand disjoint groups of nodes to the persistent worker pool
/// (`dft_sim::pool`), whose threads outlive any single borrow; state
/// machines are plain owned data, so both bounds are auto-derived.
/// Determinism is unaffected: the runners merge per-worker results in fixed
/// node-index order (see `DESIGN.md`).
///
/// # Examples
///
/// A trivial protocol in which every node decides on its input in round 0 and
/// halts:
///
/// ```
/// use dft_sim::{Delivered, NodeId, Outgoing, Round, SyncProtocol};
///
/// struct Trivial {
///     input: bool,
///     decided: Option<bool>,
/// }
///
/// impl SyncProtocol for Trivial {
///     type Msg = bool;
///     type Output = bool;
///
///     fn send(&mut self, _round: Round, _out: &mut Vec<Outgoing<bool>>) {}
///
///     fn receive(&mut self, _round: Round, _inbox: &[Delivered<bool>]) {
///         self.decided = Some(self.input);
///     }
///
///     fn output(&self) -> Option<bool> {
///         self.decided
///     }
///
///     fn has_halted(&self) -> bool {
///         self.decided.is_some()
///     }
/// }
/// ```
pub trait SyncProtocol: Send + 'static {
    /// Payload type of messages exchanged by this protocol.
    type Msg: Payload;
    /// Decision value or other terminal output of a node.
    type Output: Clone + std::fmt::Debug + Send + 'static;

    /// Collects the messages this node sends at the beginning of `round`
    /// into `out`.
    ///
    /// `out` arrives empty and is the node's per-round scratch: the runner
    /// keeps one buffer per node alive across rounds (clear-don't-drop), so
    /// pushing into it directly — rather than returning a freshly collected
    /// `Vec` — is what keeps the send phase allocation-free at steady
    /// state.  Implementations that wrap an inner protocol should keep
    /// their own scratch buffer for the inner call, for the same reason.
    fn send(&mut self, round: Round, out: &mut Vec<Outgoing<Self::Msg>>);

    /// Processes all messages delivered to this node during `round`.
    fn receive(&mut self, round: Round, inbox: &[Delivered<Self::Msg>]);

    /// The node's decision, if it has made one.
    ///
    /// Once `Some`, the value must never change (decisions are irrevocable,
    /// Section 2).  The runners assert this in debug builds.
    fn output(&self) -> Option<Self::Output>;

    /// Whether the node has voluntarily halted.
    ///
    /// A halted node no longer sends or receives messages and is considered
    /// non-faulty for the rest of the execution.
    fn has_halted(&self) -> bool;
}

/// A deterministic protocol state machine for the **single-port** model
/// (Section 8): in every round a node may send at most one message and may
/// poll at most one of its in-ports, retrieving the messages buffered there.
///
/// Ports are buffered and give no delivery signal: a node must decide which
/// port to poll without knowing whether anything is waiting there.
///
/// Like [`SyncProtocol`], implementations are `Send + 'static` so the
/// runner may hand disjoint node groups to the persistent worker pool.
pub trait SinglePortProtocol: Send + 'static {
    /// Payload type of messages exchanged by this protocol.
    type Msg: Payload;
    /// Decision value or other terminal output of a node.
    type Output: Clone + std::fmt::Debug + Send + 'static;

    /// The at-most-one message this node sends at the beginning of `round`.
    fn send(&mut self, round: Round) -> Option<Outgoing<Self::Msg>>;

    /// The in-port (identified by the sending node) this node polls in
    /// `round`, or `None` to stay idle.
    fn poll(&mut self, round: Round) -> Option<NodeId>;

    /// Processes the messages drained from the polled port.
    ///
    /// Called only when [`SinglePortProtocol::poll`] returned `Some`; `msgs`
    /// may be empty if nothing was buffered on that port.
    ///
    /// The buffer is lent, not given: take what you need (iterate, `drain`,
    /// or `mem::take` the whole `Vec`), and the runner clears and recycles
    /// whatever capacity is left behind.  This is what keeps single-port
    /// delivery allocation-free at steady state — a per-round `Vec` handed
    /// to each poller by value would be constructed and dropped `n` times a
    /// round.
    fn receive(&mut self, round: Round, from: NodeId, msgs: &mut Vec<Self::Msg>);

    /// The node's decision, if it has made one.
    fn output(&self) -> Option<Self::Output>;

    /// Whether the node has voluntarily halted.
    fn has_halted(&self) -> bool;
}

/// Blanket helper: the status of a node as seen by a runner.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeStatus {
    /// The node is operational and still participating.
    Running,
    /// The node halted voluntarily (non-faulty).
    Halted,
    /// The node crashed (faulty) at the recorded round.
    Crashed(Round),
}

impl NodeStatus {
    /// Whether the node is still operational (running, not crashed and not
    /// halted).
    pub fn is_running(self) -> bool {
        matches!(self, NodeStatus::Running)
    }

    /// Whether the node crashed.
    pub fn is_crashed(self) -> bool {
        matches!(self, NodeStatus::Crashed(_))
    }

    /// Whether the node halted voluntarily.
    pub fn is_halted(self) -> bool {
        matches!(self, NodeStatus::Halted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_status_predicates() {
        assert!(NodeStatus::Running.is_running());
        assert!(!NodeStatus::Running.is_crashed());
        assert!(NodeStatus::Halted.is_halted());
        assert!(NodeStatus::Crashed(Round::new(3)).is_crashed());
        assert!(!NodeStatus::Crashed(Round::new(3)).is_running());
    }
}
