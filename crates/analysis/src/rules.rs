//! The rule engine: token-level determinism and panic-hygiene checks.
//!
//! Every rule exists because its hazard class can silently break the
//! repo's headline invariant — parallel (`--jobs N`) and sharded
//! (`--shards N`) runs byte-identical to serial — or turn a malformed
//! frame into a process abort.  The dynamic E1–E11 diff suite catches a
//! hazard only when a quick-scale run happens to trip it; these checks
//! catch the whole class at review time.  See `DESIGN.md` §"Determinism
//! invariants" for the rule-by-rule rationale and the split between this
//! static pass and the dynamic diffs.
//!
//! Rules are heuristic by design (a hand-rolled lexer has no type
//! information): they over-approximate, and intentional sites live in
//! `ANALYSIS_baseline.json` with a one-line justification each.

use std::collections::BTreeSet;
use std::path::Path;

use crate::findings::{normalize_snippet, Finding};
use crate::layering;
use crate::lexer::{lex, Token, TokenKind};
use crate::regions::{test_regions, TestRegions};
use crate::schema;
use crate::walk::{self, FileKind, SourceFile};

/// Iteration over `HashMap`/`HashSet` whose order is not locally fixed.
pub const RULE_HASH_ITER: &str = "nondet-hash-iter";
/// Wall-clock sources (`Instant`, `SystemTime`, `UNIX_EPOCH`).
pub const RULE_TIME: &str = "nondet-time";
/// Thread identity (`thread::current()`, `ThreadId`).
pub const RULE_THREAD_ID: &str = "nondet-thread-id";
/// Ambient randomness (`thread_rng`, `OsRng`, `from_entropy`).
pub const RULE_RAND: &str = "nondet-rand";
/// Float arithmetic in protocol logic (`crates/core`).
pub const RULE_FLOAT: &str = "float-protocol";
/// `.unwrap()` in library code.
pub const RULE_UNWRAP: &str = "panic-unwrap";
/// `.expect(…)` in library code.
pub const RULE_EXPECT: &str = "panic-expect";
/// `panic!` / `unreachable!` / `todo!` / `unimplemented!` in library code.
pub const RULE_PANIC_MACRO: &str = "panic-macro";
/// Slice/array indexing in library code (per-file bucket in the baseline).
pub const RULE_INDEX: &str = "index-slicing";
/// Frame decoding that bypasses `open_frame`'s `WIRE_VERSION` check.
pub const RULE_WIRE_VERSION: &str = "wire-version";
/// An `impl Wire for T` no test names — unpinned wire format.
pub const RULE_WIRE_UNTESTED: &str = "wire-untested";
/// `#[allow(…)]` without an adjacent justification comment.
pub const RULE_ALLOW: &str = "allow-unjustified";
/// `std::net` / `std::io` / `std::thread` inside a layer the
/// [`crate::layering`] map declares sans-I/O: round semantics must stay
/// pure state transitions, with all I/O and threading owned by the
/// backends.
pub const RULE_SANS_IO: &str = "sans-io-boundary";
/// A first-party crate root without `#![forbid(unsafe_code)]`.
pub const RULE_UNSAFE: &str = "unsafe-forbid";

pub use crate::layering::RULE_LAYER;
pub use crate::schema::RULE_WIRE_ASYM;

/// Every rule, for documentation and validation.
pub const RULES: &[&str] = &[
    RULE_HASH_ITER,
    RULE_TIME,
    RULE_THREAD_ID,
    RULE_RAND,
    RULE_FLOAT,
    RULE_UNWRAP,
    RULE_EXPECT,
    RULE_PANIC_MACRO,
    RULE_INDEX,
    RULE_WIRE_VERSION,
    RULE_WIRE_UNTESTED,
    RULE_ALLOW,
    RULE_SANS_IO,
    RULE_LAYER,
    RULE_UNSAFE,
    RULE_WIRE_ASYM,
];

/// Methods that iterate a hash collection in allocation order.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Analyzes every scannable file under `root` and returns the findings,
/// sorted by `(file, line, rule)`.
///
/// # Errors
///
/// Returns a message for filesystem failures (unreadable tree or file).
pub fn analyze(root: &Path) -> Result<Vec<Finding>, String> {
    let files = walk::discover(root).map_err(|e| format!("cannot walk {}: {e}", root.display()))?;
    let mut prepared = Vec::with_capacity(files.len());
    for file in files {
        let bytes = std::fs::read(&file.path)
            .map_err(|e| format!("cannot read {}: {e}", file.path.display()))?;
        let source = String::from_utf8_lossy(&bytes).into_owned();
        prepared.push(Prepared::new(file, source));
    }

    // Pass 1: the wire-coverage corpus — every identifier that appears in
    // test code anywhere in the workspace.
    let mut corpus: BTreeSet<String> = BTreeSet::new();
    for p in &prepared {
        for token in &p.lexed.tokens {
            if token.kind == TokenKind::Ident && p.is_test(token.line) {
                corpus.insert(token.text.clone());
            }
        }
    }

    // Pass 2: per-file rules plus wire-impl collection.
    let mut findings = Vec::new();
    for p in &prepared {
        if p.file.kind != FileKind::Test {
            check_file(p, &corpus, &mut findings);
        }
    }

    // Pass 3: the structural wire-schema pass — encode/decode symmetry,
    // lengths-before-payloads, and nested-type resolution per impl.
    let extraction = schema::extract_schema(root)
        .map_err(|e| format!("cannot extract wire schema under {}: {e}", root.display()))?;
    findings.extend(extraction.problems);

    crate::findings::sort_findings(&mut findings);
    Ok(findings)
}

/// A lexed file with its line table and test regions.
struct Prepared {
    file: SourceFile,
    lines: Vec<String>,
    lexed: crate::lexer::Lexed,
    regions: TestRegions,
}

impl Prepared {
    fn new(file: SourceFile, source: String) -> Self {
        let lexed = lex(&source);
        let regions = test_regions(&lexed.tokens);
        Prepared {
            file,
            lines: source.lines().map(str::to_string).collect(),
            lexed,
            regions,
        }
    }

    fn is_test(&self, line: usize) -> bool {
        self.file.kind == FileKind::Test || self.regions.contains(line)
    }

    fn snippet(&self, line: usize) -> String {
        normalize_snippet(self.lines.get(line.saturating_sub(1)).map_or("", |l| l))
    }

    fn finding(&self, line: usize, rule: &'static str, message: String) -> Finding {
        Finding {
            file: self.file.rel.clone(),
            line,
            rule,
            message,
            snippet: self.snippet(line),
        }
    }
}

fn check_file(p: &Prepared, corpus: &BTreeSet<String>, out: &mut Vec<Finding>) {
    let tokens = &p.lexed.tokens;
    let hash_names = hash_collection_names(tokens);
    let in_core = p.file.rel.starts_with("crates/core/src");
    let lib_code = p.file.kind == FileKind::Lib;
    let is_codec_module = p.file.rel.ends_with("shard/wire.rs");

    // The declared layer map: first-party imports per layer, plus the
    // sans-I/O `std::{net, io, thread}` check in layers marked pure.
    for site in layering::check(&p.file.rel, tokens) {
        if !p.is_test(site.line) {
            out.push(p.finding(site.line, site.rule, site.message));
        }
    }

    // Every first-party crate root forbids `unsafe` outright; the rest of
    // the hazard rules assume it (no raw-pointer escape hatches).
    if is_crate_root(&p.file.rel) && !forbids_unsafe(tokens) {
        out.push(
            p.finding(
                1,
                RULE_UNSAFE,
                "crate root lacks `#![forbid(unsafe_code)]`; first-party code stays safe Rust"
                    .to_string(),
            ),
        );
    }

    for (i, token) in tokens.iter().enumerate() {
        if p.is_test(token.line) {
            continue;
        }
        let line = token.line;
        match token.kind {
            TokenKind::Ident => {
                let name = token.text.as_str();
                // Wall clocks.
                if matches!(name, "Instant" | "SystemTime" | "UNIX_EPOCH") {
                    out.push(p.finding(
                        line,
                        RULE_TIME,
                        format!("`{name}` reads the wall clock; replay is not byte-identical"),
                    ));
                }
                // Thread identity.
                if name == "ThreadId"
                    || (name == "thread" && next_path_segment(tokens, i) == Some("current"))
                {
                    out.push(p.finding(
                        line,
                        RULE_THREAD_ID,
                        "thread identity varies across runs and schedulers".to_string(),
                    ));
                }
                // Ambient randomness.
                if matches!(name, "thread_rng" | "OsRng" | "from_entropy")
                    || (name == "rand" && next_path_segment(tokens, i) == Some("random"))
                {
                    out.push(p.finding(
                        line,
                        RULE_RAND,
                        "unseeded randomness; use the run's seeded ChaCha streams".to_string(),
                    ));
                }
                // Floats in protocol logic.
                if in_core && matches!(name, "f32" | "f64") {
                    out.push(
                        p.finding(
                            line,
                            RULE_FLOAT,
                            "float type in protocol logic; rounding must not steer protocol state"
                                .to_string(),
                        ),
                    );
                }
                // Panic macros.
                if lib_code
                    && matches!(name, "panic" | "unreachable" | "todo" | "unimplemented")
                    && matches!(tokens.get(i + 1), Some(t) if t.is_punct('!'))
                {
                    out.push(p.finding(
                        line,
                        RULE_PANIC_MACRO,
                        format!("`{name}!` aborts the process in library code"),
                    ));
                }
                // Frame decodes outside the codec module.  `from_bytes(…)`
                // and the turbofish `from_bytes::<T>(…)` both count.
                let from_bytes_call = name == "from_bytes"
                    && (matches!(tokens.get(i + 1), Some(t) if t.is_punct('('))
                        || (tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
                            && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
                            && tokens.get(i + 3).is_some_and(|t| t.is_punct('<'))));
                if !is_codec_module
                    && (from_bytes_call
                        || name == "WireReader" && next_path_segment(tokens, i) == Some("new"))
                {
                    out.push(
                        p.finding(
                            line,
                            RULE_WIRE_VERSION,
                            "frame decode outside `open_frame` skips the WIRE_VERSION check"
                                .to_string(),
                        ),
                    );
                }
                // `for … in <hash collection>`.
                if name == "for" {
                    if let Some(hash_name) = for_loop_over_hash(tokens, i, &hash_names) {
                        out.push(p.finding(
                            line,
                            RULE_HASH_ITER,
                            format!("`for … in {hash_name}` iterates in allocation order"),
                        ));
                    }
                }
                // Wire impl coverage.
                if name == "Wire" && matches!(tokens.get(i + 1), Some(t) if t.is_ident("for")) {
                    if let Some(type_name) = wire_impl_type(tokens, i + 2) {
                        if !corpus.contains(&type_name) {
                            out.push(p.finding(
                                line,
                                RULE_WIRE_UNTESTED,
                                format!(
                                    "`impl Wire for {type_name}` has no test naming \
                                     `{type_name}` (roundtrip / version-compat)"
                                ),
                            ));
                        }
                    }
                }
            }
            TokenKind::Float if in_core => {
                out.push(
                    p.finding(
                        line,
                        RULE_FLOAT,
                        "float literal in protocol logic; rounding must not steer protocol state"
                            .to_string(),
                    ),
                );
            }
            TokenKind::Punct('.') => {
                // `<hash collection>.iter()` and friends; `.unwrap()`;
                // `.expect(…)`.
                let Some(method) = tokens.get(i + 1).filter(|t| t.kind == TokenKind::Ident) else {
                    continue;
                };
                let called = matches!(tokens.get(i + 2), Some(t) if t.is_punct('('));
                if !called {
                    continue;
                }
                if HASH_ITER_METHODS.contains(&method.text.as_str())
                    && !iteration_is_locally_sorted(tokens, i)
                {
                    if let Some(recv) = tokens.get(i.wrapping_sub(1)) {
                        if recv.kind == TokenKind::Ident && hash_names.contains(&recv.text) {
                            out.push(p.finding(
                                line,
                                RULE_HASH_ITER,
                                format!(
                                    "`{}.{}()` iterates a hash collection in allocation order",
                                    recv.text, method.text
                                ),
                            ));
                        }
                    }
                }
                if lib_code && matches!(method.text.as_str(), "unwrap" | "unwrap_err") {
                    out.push(p.finding(
                        line,
                        RULE_UNWRAP,
                        format!(
                            "`.{}()` in library code; return an error or `.expect(…)` a named \
                             invariant",
                            method.text
                        ),
                    ));
                }
                if lib_code && matches!(method.text.as_str(), "expect" | "expect_err") {
                    out.push(p.finding(
                        line,
                        RULE_EXPECT,
                        format!(
                            "`.{}(…)` in library code; panics must be baselined invariants",
                            method.text
                        ),
                    ));
                }
            }
            // Indexing: `expr[…]` — `[` directly after an identifier, `)`
            // or `]`.  Attributes (`#[…]`), macro brackets (`vec![…]`),
            // types and array literals are preceded by other punctuation
            // and never match.
            TokenKind::Punct('[')
                if lib_code
                    && matches!(
                        tokens.get(i.wrapping_sub(1)),
                        Some(prev) if i > 0
                            && (prev.kind == TokenKind::Ident && !is_keyword(&prev.text)
                                || prev.is_punct(')')
                                || prev.is_punct(']'))
                    ) =>
            {
                out.push(p.finding(
                    line,
                    RULE_INDEX,
                    "slice indexing panics when out of bounds".to_string(),
                ));
            }
            TokenKind::Punct('#') => {
                // `#[allow(…)]` / `#![allow(…)]` justification audit.
                if let Some(attr_line) = unjustified_allow(p, tokens, i) {
                    out.push(p.finding(
                        attr_line,
                        RULE_ALLOW,
                        "`#[allow(…)]` without an adjacent justification comment".to_string(),
                    ));
                }
            }
            _ => {}
        }
    }
}

/// Keywords that can directly precede `[` without forming an index
/// expression (`let [a, b] = …`, `return [x]`, `in [..]`, …).
fn is_keyword(text: &str) -> bool {
    matches!(
        text,
        "let" | "return" | "in" | "else" | "match" | "if" | "while" | "break" | "mut" | "ref"
    )
}

/// If `tokens[i]` starts a `name::segment` path, returns the segment.
fn next_path_segment(tokens: &[Token], i: usize) -> Option<&str> {
    if tokens.get(i + 1)?.is_punct(':') && tokens.get(i + 2)?.is_punct(':') {
        let seg = tokens.get(i + 3)?;
        if seg.kind == TokenKind::Ident {
            return Some(&seg.text);
        }
    }
    None
}

/// Identifiers declared as `HashMap`/`HashSet` in this file: annotated
/// bindings/fields/params (`name: [path::]HashMap<…>`) and constructor
/// assignments (`name = HashMap::new()`).
fn hash_collection_names(tokens: &[Token]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for (i, token) in tokens.iter().enumerate() {
        if !(token.is_ident("HashMap") || token.is_ident("HashSet")) {
            continue;
        }
        // Walk back over a `std :: collections ::` path prefix.
        let mut k = i;
        while k >= 3
            && tokens[k - 1].is_punct(':')
            && tokens[k - 2].is_punct(':')
            && tokens[k - 3].kind == TokenKind::Ident
        {
            k -= 3;
        }
        if k == 0 {
            continue;
        }
        let before = &tokens[k - 1];
        // `name : HashMap` (field, binding or parameter annotation) — a
        // single colon, not a path separator.
        if before.is_punct(':')
            && k >= 2
            && !tokens[k - 2].is_punct(':')
            && tokens[k - 2].kind == TokenKind::Ident
        {
            names.insert(tokens[k - 2].text.clone());
        }
        // `name = HashMap::…(…)` (constructor assignment).
        if before.is_punct('=') && k >= 2 && tokens[k - 2].kind == TokenKind::Ident {
            names.insert(tokens[k - 2].text.clone());
        }
    }
    names
}

/// For a `for` token at `i`, returns the hash-collection name iterated
/// over, if the `in` expression mentions one.
fn for_loop_over_hash(tokens: &[Token], i: usize, names: &BTreeSet<String>) -> Option<String> {
    // `for<'a>` in higher-ranked bounds is not a loop.
    if matches!(tokens.get(i + 1), Some(t) if t.is_punct('<')) {
        return None;
    }
    // Find the pattern's `in`, then scan the iterable expression up to the
    // loop body's `{` (paren/bracket depth tracked so closures and index
    // expressions do not end the scan early).
    let mut j = i + 1;
    while j < tokens.len() && !tokens[j].is_ident("in") {
        if tokens[j].is_punct('{') || tokens[j].is_punct(';') || j > i + 40 {
            return None; // malformed or not actually a loop header
        }
        j += 1;
    }
    let mut depth = 0i32;
    let mut k = j + 1;
    while let Some(t) = tokens.get(k) {
        match t.kind {
            TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') => depth -= 1,
            TokenKind::Punct('{') if depth == 0 => return None,
            // `for i in 0..queues.len()` is not map iteration: a method
            // call on the collection is judged by the method rule instead,
            // so only a *bare* mention (`for x in &queues {`) counts here.
            TokenKind::Ident
                if names.contains(&t.text)
                    && !matches!(tokens.get(k + 1), Some(next) if next.is_punct('.')) =>
            {
                return Some(t.text.clone());
            }
            _ => {}
        }
        k += 1;
    }
    None
}

/// Chain consumers whose result cannot depend on iteration order.
const ORDER_INSENSITIVE_SINKS: &[&str] = &["sum", "count", "min", "max", "all", "any"];

/// Whether the hash-collection iteration whose `.` token is at `dot` is a
/// locally-sorted (or order-insensitive) context:
///
/// * the statement's chain ends in an order-insensitive reduction
///   (`.sum()`, `.count()`, …);
/// * the chain collects into an ordered collection (`BTreeMap`/`BTreeSet`,
///   in a turbofish or in the binding's type annotation);
/// * the statement binds a name (`let mut v = map.keys()….collect();`) that
///   is sorted shortly after (`v.sort…()`).
fn iteration_is_locally_sorted(tokens: &[Token], dot: usize) -> bool {
    // Statement start: walk back to the nearest `;`, `{` or `}`.  A `let
    // [mut] name` right after it is the binding; `BTree` anywhere in the
    // lookback span is an ordered type annotation.
    let mut start = dot;
    while start > 0 {
        let t = &tokens[start - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        start -= 1;
    }
    let mut binding: Option<&str> = None;
    if tokens.get(start).is_some_and(|t| t.is_ident("let")) {
        let name = match tokens.get(start + 1) {
            Some(t) if t.is_ident("mut") => tokens.get(start + 2),
            other => other,
        };
        if let Some(t) = name.filter(|t| t.kind == TokenKind::Ident) {
            binding = Some(&t.text);
        }
    }
    let annotated_ordered = tokens[start..dot]
        .iter()
        .any(|t| t.text.starts_with("BTree"));

    // Forward over the rest of the chain, to the statement's `;` (or an
    // opening `{` at depth 0 — e.g. the chain is a `for` iterable).
    let mut depth = 0i32;
    let mut k = dot;
    let mut end = tokens.len();
    while let Some(t) = tokens.get(k) {
        match t.kind {
            TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') => depth -= 1,
            TokenKind::Punct(';') if depth <= 0 => {
                end = k;
                break;
            }
            TokenKind::Punct('{') if depth <= 0 => {
                end = k;
                break;
            }
            TokenKind::Punct('.') if depth == 0 => {
                if let Some(m) = tokens.get(k + 1).filter(|t| t.kind == TokenKind::Ident) {
                    if ORDER_INSENSITIVE_SINKS.contains(&m.text.as_str()) {
                        return true;
                    }
                    if m.text == "collect" {
                        // `collect::<BTreeSet<_>>()` or an annotated `let`.
                        let turbofish_ordered = tokens[k..tokens.len().min(k + 8)]
                            .iter()
                            .any(|t| t.text.starts_with("BTree"));
                        if turbofish_ordered || annotated_ordered {
                            return true;
                        }
                    }
                }
            }
            _ => {}
        }
        k += 1;
    }

    // `let mut v = …collect();` followed closely by `v.sort…()`.
    if let Some(name) = binding {
        let horizon = tokens.len().min(end + 120);
        for k in end..horizon {
            if tokens[k].is_ident(name)
                && tokens.get(k + 1).is_some_and(|t| t.is_punct('.'))
                && tokens
                    .get(k + 2)
                    .is_some_and(|t| t.text.starts_with("sort"))
            {
                return true;
            }
        }
    }
    false
}

/// Whether `rel` is a crate root: the workspace's own `src/lib.rs`, a
/// member crate's `src/lib.rs` / `src/main.rs`, or a `src/bin/` target.
fn is_crate_root(rel: &str) -> bool {
    rel == "src/lib.rs"
        || rel == "src/main.rs"
        || rel.ends_with("/src/lib.rs")
        || rel.ends_with("/src/main.rs")
        || rel.contains("/src/bin/")
}

/// Whether the tokens contain a `forbid(unsafe_code)` attribute (the
/// crate-root `#![forbid(unsafe_code)]` form).
fn forbids_unsafe(tokens: &[Token]) -> bool {
    tokens.iter().enumerate().any(|(i, t)| {
        t.is_ident("forbid")
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
            && tokens.get(i + 2).is_some_and(|t| t.is_ident("unsafe_code"))
    })
}

/// Extracts the implemented type's name from the tokens after `Wire for`.
/// Tuple impls get the canonical names the schema pass uses (`Unit`,
/// `Tuple2`, …), so tests must name those too.
fn wire_impl_type(tokens: &[Token], mut k: usize) -> Option<String> {
    if matches!(tokens.get(k), Some(t) if t.is_punct('(')) {
        let mut paren_depth = 0usize;
        let mut angle_depth = 0usize;
        let mut arity = 0usize;
        let mut in_element = false;
        while let Some(t) = tokens.get(k) {
            match t.kind {
                TokenKind::Punct('(') => {
                    if paren_depth > 0 && !in_element {
                        arity += 1;
                        in_element = true;
                    }
                    paren_depth += 1;
                }
                TokenKind::Punct(')') => {
                    paren_depth -= 1;
                    if paren_depth == 0 {
                        break;
                    }
                }
                TokenKind::Punct('<') => angle_depth += 1,
                TokenKind::Punct('>') => angle_depth = angle_depth.saturating_sub(1),
                TokenKind::Punct(',') if paren_depth == 1 && angle_depth == 0 => {
                    in_element = false;
                }
                _ if paren_depth == 1 && !in_element => {
                    arity += 1;
                    in_element = true;
                }
                _ => {}
            }
            k += 1;
        }
        return Some(crate::parser::tuple_type_name(arity));
    }
    let mut last = None;
    while let Some(t) = tokens.get(k) {
        match t.kind {
            TokenKind::Ident if t.text == "where" => break,
            TokenKind::Ident => last = Some(t.text.clone()),
            TokenKind::Punct(':') | TokenKind::Punct('&') => {}
            TokenKind::Punct('<') | TokenKind::Punct('{') => break,
            _ => break,
        }
        k += 1;
    }
    last
}

/// For a `#` token at `i` opening an `allow` attribute, returns the
/// attribute's line when no comment sits on it or the line above.
fn unjustified_allow(p: &Prepared, tokens: &[Token], i: usize) -> Option<usize> {
    let mut k = i + 1;
    if matches!(tokens.get(k), Some(t) if t.is_punct('!')) {
        k += 1;
    }
    if !matches!(tokens.get(k), Some(t) if t.is_punct('[')) {
        return None;
    }
    if !matches!(tokens.get(k + 1), Some(t) if t.is_ident("allow")) {
        return None;
    }
    let line = tokens[i].line;
    let justified = [line, line.saturating_sub(1)]
        .iter()
        .any(|l| has_prose_comment(p, *l));
    if justified {
        None
    } else {
        Some(line)
    }
}

/// Whether the comment on `line` contains actual prose (at least one word
/// of three or more letters — `// x` does not count as a justification).
fn has_prose_comment(p: &Prepared, line: usize) -> bool {
    p.lexed.comments.get(&line).is_some_and(|text| {
        text.split(|c: char| !c.is_alphabetic())
            .any(|word| word.len() >= 3)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn names(src: &str) -> BTreeSet<String> {
        hash_collection_names(&lex(src).tokens)
    }

    #[test]
    fn hash_names_from_annotations_and_constructors() {
        let found = names(
            "struct S { queues: HashMap<usize, Vec<M>> }\n\
             fn f(seen: std::collections::HashSet<u64>) {\n\
                 let mut cache = HashMap::new();\n\
                 let sorted: BTreeMap<u32, u32> = BTreeMap::new();\n\
             }",
        );
        assert!(found.contains("queues"));
        assert!(found.contains("seen"));
        assert!(found.contains("cache"));
        assert!(!found.contains("sorted"), "BTreeMap is deterministic");
    }

    #[test]
    fn path_separator_is_not_an_annotation() {
        // `collections::HashMap` must not record `collections`.
        let found = names("use std::collections::HashMap;");
        assert!(found.is_empty());
    }

    fn sorted_at(src: &str) -> bool {
        let toks = lex(src).tokens;
        let dot = toks
            .iter()
            .enumerate()
            .position(|(k, t)| {
                t.is_punct('.')
                    && toks
                        .get(k + 1)
                        .is_some_and(|m| HASH_ITER_METHODS.contains(&m.text.as_str()))
            })
            .expect("an iteration method in the source");
        iteration_is_locally_sorted(&toks, dot)
    }

    #[test]
    fn order_insensitive_sinks_are_locally_sorted() {
        assert!(sorted_at(
            "let n = self.queues.values().map(HashMap::len).sum();"
        ));
        assert!(sorted_at("if seen.iter().any(|v| *v > 3) { x(); }"));
        assert!(!sorted_at("let v: Vec<_> = map.keys().collect();"));
        assert!(!sorted_at("for v in map.values() { emit(v); }"));
    }

    #[test]
    fn ordered_collects_are_locally_sorted() {
        assert!(sorted_at(
            "let ks = map.keys().copied().collect::<BTreeSet<u64>>();"
        ));
        assert!(sorted_at(
            "let ks: BTreeSet<u64> = map.keys().copied().collect();"
        ));
        assert!(!sorted_at(
            "let ks: HashSet<u64> = map.keys().copied().collect();"
        ));
    }

    #[test]
    fn collect_then_sort_is_locally_sorted() {
        assert!(sorted_at(
            "let mut ks: Vec<u64> = map.keys().copied().collect();\nks.sort_unstable();"
        ));
        assert!(!sorted_at(
            "let mut ks: Vec<u64> = map.keys().copied().collect();\nks.reverse();"
        ));
    }

    #[test]
    fn wire_impl_type_names() {
        let toks = lex("impl Wire for NodeId {").tokens;
        assert_eq!(wire_impl_type(&toks, 3), Some("NodeId".to_string()));
        let toks = lex("impl<M: Wire> Wire for Outgoing<M> {").tokens;
        // Find the `Wire for` pair and parse after it.
        let pos = toks
            .windows(2)
            .position(|w| w[0].is_ident("Wire") && w[1].is_ident("for"))
            .expect("impl header");
        assert_eq!(wire_impl_type(&toks, pos + 2), Some("Outgoing".to_string()));
        let tuple_name = |src: &str| {
            let toks = lex(src).tokens;
            let pos = toks
                .windows(2)
                .position(|w| w[0].is_ident("Wire") && w[1].is_ident("for"))
                .expect("impl header");
            wire_impl_type(&toks, pos + 2)
        };
        assert_eq!(
            tuple_name("impl<A: Wire, B: Wire> Wire for (A, B) {"),
            Some("Tuple2".to_string())
        );
        assert_eq!(
            tuple_name("impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {"),
            Some("Tuple3".to_string())
        );
        assert_eq!(tuple_name("impl Wire for () {"), Some("Unit".to_string()));
    }
}
