//! Wire-schema extraction and encode/decode symmetry checking.
//!
//! The shard wire format is the one contract tying serial runs, `--shards`
//! workers and the `dft-node` TCP cluster to byte-identical decision
//! tables, and its `Wire` impls are hand-written on both sides.  This pass
//! parses every `impl Wire for T` (via [`crate::parser`]), extracts the
//! ordered sequence of primitive write/read operations from `encode` and
//! `decode`, and checks the two sides against each other:
//!
//! * same op count, same order, with enum tag bytes, fixed-width
//!   primitives, nested `Wire` fields, repeats (`for` loops) and
//!   tag-dispatched variants (`match`) compared structurally;
//! * field labels compared when both sides name them (`self.to.encode`
//!   vs `to: NodeId::decode(r)?` — a reorder is a finding);
//! * every repeat preceded by a scalar in the same op list
//!   (lengths-before-payloads);
//! * every nested type reference resolvable to a builtin, a generic
//!   parameter, another extracted impl, or a plain type alias.
//!
//! The decode-side op sequences form the canonical schema, committed as
//! `WIRE_SCHEMA.json` and ratcheted like `ANALYSIS_baseline.json`: a
//! schema change without a `WIRE_VERSION` bump fails `dft-analyze schema
//! --ci`, turning wire-format breaks from silent cross-process corruption
//! into an explicit reviewed event.  See DESIGN.md §"Wire schema ratchet".

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::io;
use std::path::Path;

use crate::findings::{normalize_snippet, Finding};
use crate::json::{self, Json};
use crate::lexer::lex;
use crate::parser::{self, top_level_elements, Tree, WireImpl};
use crate::regions::test_regions;
use crate::walk::{self, FileKind};

/// Rule identifier for encode/decode symmetry and resolution findings.
pub const RULE_WIRE_ASYM: &str = "wire-asymmetry";

/// Builtin leaf types a nested reference may resolve to.
const BUILTINS: [&str; 7] = ["bool", "u8", "u16", "u32", "u64", "u128", "usize"];

/// One primitive operation of an encode or decode body, in source order.
#[derive(Clone, Debug, PartialEq)]
enum Op {
    /// A literal tag byte (`out.push(3)`).
    Tag(u64),
    /// A fixed-width primitive read/write (`u8`, `u16`, `u32`, `u64`,
    /// `len`).
    Prim(&'static str),
    /// A nested `Wire` field.  `ty` is known on the decode side
    /// (`NodeId::decode(r)`), `label` when either side names the field
    /// (`self.to` / `to:`).  A field with neither is *weak*: it matches
    /// any single op.
    Field {
        ty: Option<String>,
        label: Option<String>,
    },
    /// A `for` loop body (sequence payload).
    Repeat(Vec<Op>),
    /// A tag-dispatched `match` (the tag byte is absorbed into the arms).
    Switch(Vec<Arm>),
}

/// One arm of a [`Op::Switch`].
#[derive(Clone, Debug, PartialEq)]
struct Arm {
    tag: Option<u64>,
    label: Option<String>,
    ops: Vec<Op>,
}

fn width(prim: &str) -> usize {
    match prim {
        "u8" => 1,
        "u16" => 2,
        "u32" => 4,
        "len" | "u64" => 8,
        _ => 0,
    }
}

fn is_uppercase_ident(name: &str) -> bool {
    name.chars().next().is_some_and(char::is_uppercase)
}

// ---------------------------------------------------------------------------
// Encode-side extraction
// ---------------------------------------------------------------------------

/// Extracts the ordered write ops of an `encode` body.  `writer` is the
/// output-parameter binding, `strong` the struct-destructured bindings in
/// scope (which carry field labels), `self_ty` the implemented type (for
/// `self.to_le_bytes()` widths).
fn encode_ops(trees: &[Tree], writer: &str, strong: &BTreeSet<String>, self_ty: &str) -> Vec<Op> {
    let mut ops = Vec::new();
    let mut i = 0;
    while i < trees.len() {
        // `writer.push(..)` / `writer.extend_from_slice(..)`.
        if trees.get(i).is_some_and(|t| t.is_ident(writer))
            && trees.get(i + 1).is_some_and(|t| t.is_punct('.'))
        {
            if let (Some(method), Some(args)) = (
                trees.get(i + 2).and_then(Tree::ident),
                trees.get(i + 3).and_then(|t| t.group('(')),
            ) {
                match method {
                    "push" => {
                        ops.push(match args {
                            [one] if one.int().is_some() => Op::Tag(one.int().unwrap_or_default()),
                            _ => Op::Prim("u8"),
                        });
                        i += 4;
                        continue;
                    }
                    "extend_from_slice" => {
                        ops.push(le_bytes_op(args, self_ty));
                        i += 4;
                        continue;
                    }
                    _ => {}
                }
            }
        }
        // `RECV.encode(writer)`.
        if trees.get(i).is_some_and(|t| t.is_ident("encode"))
            && i >= 2
            && trees.get(i - 1).is_some_and(|t| t.is_punct('.'))
            && trees
                .get(i + 1)
                .and_then(|t| t.group('('))
                .is_some_and(|args| args.iter().any(|a| a.is_ident(writer)))
        {
            ops.push(encode_receiver(trees, i, strong));
            i += 2;
            continue;
        }
        // `match` with `self` in the scrutinee → tag dispatch.
        if trees.get(i).is_some_and(|t| t.is_ident("match")) {
            let mut k = i + 1;
            let mut has_self = false;
            while let Some(tree) = trees.get(k) {
                if let Some(body) = tree.group('{') {
                    if has_self {
                        ops.push(Op::Switch(encode_arms(body, writer, strong, self_ty)));
                        i = k + 1;
                    } else {
                        i += 1;
                    }
                    break;
                }
                if tree.is_ident("self") {
                    has_self = true;
                }
                k += 1;
            }
            if trees.get(k).is_none() {
                i = k;
            }
            continue;
        }
        // `for PAT in ITER { body }` → repeat.
        if trees.get(i).is_some_and(|t| t.is_ident("for")) {
            let mut k = i + 1;
            while let Some(tree) = trees.get(k) {
                if let Some(body) = tree.group('{') {
                    let inner = encode_ops(body, writer, strong, self_ty);
                    if !inner.is_empty() {
                        ops.push(Op::Repeat(inner));
                    }
                    break;
                }
                k += 1;
            }
            i = k + 1;
            continue;
        }
        // Any other group (if/else blocks, parens): recurse.
        if let Some(Tree::Group { trees: inner, .. }) = trees.get(i) {
            ops.extend(encode_ops(inner, writer, strong, self_ty));
        }
        i += 1;
    }
    ops
}

/// The op for `writer.extend_from_slice(&X.to_le_bytes())`.
fn le_bytes_op(args: &[Tree], self_ty: &str) -> Op {
    let weak = Op::Field {
        ty: None,
        label: None,
    };
    let Some(j) = args.iter().position(|t| t.is_ident("to_le_bytes")) else {
        return weak;
    };
    if j < 2 || !args.get(j - 1).is_some_and(|t| t.is_punct('.')) {
        return weak;
    }
    // `&self.to_le_bytes()` — the implemented type's own width.
    if args.get(j - 2).is_some_and(|t| t.is_ident("self")) {
        return match self_ty {
            "u16" | "u32" | "u64" => Op::Prim(match self_ty {
                "u16" => "u16",
                "u32" => "u32",
                _ => "u64",
            }),
            _ => weak,
        };
    }
    // `&self.FIELD.to_le_bytes()` — a labelled field of unknown width.
    if args.get(j - 3).is_some_and(|t| t.is_punct('.'))
        && args.get(j - 4).is_some_and(|t| t.is_ident("self"))
    {
        if let Some(label) = leaf_text(args.get(j - 2)) {
            return Op::Field {
                ty: None,
                label: Some(label),
            };
        }
    }
    weak
}

/// The text of an identifier or integer leaf (`self.id` / `self.0`).
fn leaf_text(tree: Option<&Tree>) -> Option<String> {
    match tree {
        Some(t) => match (t.ident(), t.int()) {
            (Some(name), _) => Some(name.to_string()),
            (None, Some(v)) => Some(v.to_string()),
            _ => None,
        },
        None => None,
    }
}

/// The field op for the receiver of `.encode(writer)` at index `i` of the
/// `encode` identifier.
fn encode_receiver(trees: &[Tree], i: usize, strong: &BTreeSet<String>) -> Op {
    // `self.FIELD.encode(..)` — strong label.
    if trees
        .get(i.wrapping_sub(3))
        .is_some_and(|t| t.is_punct('.'))
        && trees
            .get(i.wrapping_sub(4))
            .is_some_and(|t| t.is_ident("self"))
    {
        if let Some(label) = leaf_text(trees.get(i - 2)) {
            return Op::Field {
                ty: None,
                label: Some(label),
            };
        }
    }
    // A struct-destructured binding — carries its field label.
    if let Some(name) = trees.get(i.wrapping_sub(2)).and_then(Tree::ident) {
        if strong.contains(name) {
            return Op::Field {
                ty: None,
                label: Some(name.to_string()),
            };
        }
    }
    // Anything else (call chains, casts, loop bindings): weak.
    Op::Field {
        ty: None,
        label: None,
    }
}

/// Parses the arms of an encode-side `match self { … }`.
fn encode_arms(trees: &[Tree], writer: &str, strong: &BTreeSet<String>, self_ty: &str) -> Vec<Arm> {
    let mut arms = Vec::new();
    for (pattern, body) in split_arms(trees) {
        let label = pattern
            .iter()
            .filter_map(Tree::ident)
            .rfind(|n| is_uppercase_ident(n))
            .map(str::to_string);
        // Struct-destructure bindings (`Pair { node, rumor }`) are strong.
        let mut bindings = strong.clone();
        for tree in pattern {
            if let Some(inner) = tree.group('{') {
                bindings.extend(inner.iter().filter_map(Tree::ident).map(str::to_string));
            }
        }
        let mut ops = encode_ops(body, writer, &bindings, self_ty);
        let tag = match ops.first() {
            Some(Op::Tag(v)) => {
                let v = *v;
                ops.remove(0);
                Some(v)
            }
            _ => None,
        };
        arms.push(Arm { tag, label, ops });
    }
    arms
}

/// Splits a `match` body into `(pattern, body)` tree slices: pattern up to
/// `=>`, body either the following brace group or everything to the next
/// top-level comma.
fn split_arms(trees: &[Tree]) -> Vec<(&[Tree], &[Tree])> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < trees.len() {
        let start = i;
        // Pattern: up to `=` `>`.
        while i < trees.len()
            && !(trees.get(i).is_some_and(|t| t.is_punct('='))
                && trees.get(i + 1).is_some_and(|t| t.is_punct('>')))
        {
            i += 1;
        }
        if i >= trees.len() {
            break;
        }
        let pattern = trees.get(start..i).unwrap_or_default();
        i += 2; // past `=>`
        let body = match trees.get(i).and_then(|t| t.group('{')) {
            Some(inner) => {
                i += 1;
                inner
            }
            None => {
                let body_start = i;
                while i < trees.len() && !trees.get(i).is_some_and(|t| t.is_punct(',')) {
                    i += 1;
                }
                trees.get(body_start..i).unwrap_or_default()
            }
        };
        if trees.get(i).is_some_and(|t| t.is_punct(',')) {
            i += 1;
        }
        out.push((pattern, body));
    }
    out
}

// ---------------------------------------------------------------------------
// Decode-side extraction
// ---------------------------------------------------------------------------

/// Extracts the ordered read ops of a `decode` body.  `reader` is the
/// `WireReader` binding.
fn decode_ops(trees: &[Tree], reader: &str) -> Vec<Op> {
    let mut ops = Vec::new();
    let mut i = 0;
    while i < trees.len() {
        // `reader.u8()` / `.u16()` / `.u64()` / `.len()` / `.take(n, _)`.
        if trees.get(i).is_some_and(|t| t.is_ident(reader))
            && trees.get(i + 1).is_some_and(|t| t.is_punct('.'))
        {
            if let (Some(method), Some(args)) = (
                trees.get(i + 2).and_then(Tree::ident),
                trees.get(i + 3).and_then(|t| t.group('(')),
            ) {
                let op = match method {
                    "u8" | "u16" | "u32" | "u64" | "len" => Some(Op::Prim(match method {
                        "u8" => "u8",
                        "u16" => "u16",
                        "u32" => "u32",
                        "u64" => "u64",
                        _ => "len",
                    })),
                    "take" => Some(match args.first().and_then(Tree::int) {
                        Some(1) => Op::Prim("u8"),
                        Some(2) => Op::Prim("u16"),
                        Some(4) => Op::Prim("u32"),
                        Some(8) => Op::Prim("u64"),
                        _ => Op::Field {
                            ty: None,
                            label: None,
                        },
                    }),
                    _ => None,
                };
                if let Some(op) = op {
                    ops.push(op);
                    i += 4;
                    continue;
                }
            }
        }
        // `PATH::decode(reader)` → nested field of that type.
        if trees.get(i).is_some_and(|t| t.is_ident("decode"))
            && i >= 3
            && trees.get(i - 1).is_some_and(|t| t.is_punct(':'))
            && trees.get(i - 2).is_some_and(|t| t.is_punct(':'))
            && trees
                .get(i + 1)
                .and_then(|t| t.group('('))
                .is_some_and(|args| args.iter().any(|a| a.is_ident(reader)))
        {
            ops.push(Op::Field {
                ty: decode_path_type(trees, i),
                label: None,
            });
            i += 2;
            continue;
        }
        // `match SCRUTINEE { … }` — a `u8` scrutinee is a tag dispatch.
        if trees.get(i).is_some_and(|t| t.is_ident("match")) {
            let mut k = i + 1;
            while k < trees.len() && trees.get(k).and_then(|t| t.group('{')).is_none() {
                k += 1;
            }
            let scrutinee = trees.get(i + 1..k).unwrap_or_default();
            let s_ops = decode_ops(scrutinee, reader);
            if let Some(body) = trees.get(k).and_then(|t| t.group('{')) {
                if s_ops == [Op::Prim("u8")] {
                    ops.push(Op::Switch(decode_arms(body, reader)));
                } else {
                    ops.extend(s_ops);
                    ops.extend(decode_ops(body, reader));
                }
                i = k + 1;
            } else {
                ops.extend(s_ops);
                i = k;
            }
            continue;
        }
        // `for PAT in ITER { body }` → repeat (iterator trees skipped).
        if trees.get(i).is_some_and(|t| t.is_ident("for")) {
            let mut k = i + 1;
            while k < trees.len() && trees.get(k).and_then(|t| t.group('{')).is_none() {
                k += 1;
            }
            if let Some(body) = trees.get(k).and_then(|t| t.group('{')) {
                let inner = decode_ops(body, reader);
                if !inner.is_empty() {
                    ops.push(Op::Repeat(inner));
                }
            }
            i = k + 1;
            continue;
        }
        // Constructors assign labels to the ops of their arguments.
        if let Some(name) = trees.get(i).and_then(Tree::ident) {
            if is_uppercase_ident(name) {
                // `Name { field: expr, … }` — struct literal.
                if let Some(inner) = trees.get(i + 1).and_then(|t| t.group('{')) {
                    if struct_literal_shape(inner) {
                        ops.extend(struct_literal_ops(inner, reader));
                        i += 2;
                        continue;
                    }
                }
                // `Name(e0, e1, …)` — tuple constructor (positional labels;
                // `Ok`/`Err` are transparent wrappers).
                if let Some(inner) = trees.get(i + 1).and_then(|t| t.group('(')) {
                    if name == "Ok" || name == "Err" {
                        ops.extend(decode_ops(inner, reader));
                    } else {
                        ops.extend(positional_ops(inner, reader));
                    }
                    i += 2;
                    continue;
                }
            }
        }
        // A bare tuple literal `(a, b)` labels positionally too.
        if let Some(inner) = trees.get(i).and_then(|t| t.group('(')) {
            let preceded_by_ident = i > 0 && trees.get(i - 1).and_then(Tree::ident).is_some();
            if !preceded_by_ident && top_level_elements(inner).len() >= 2 {
                ops.extend(positional_ops(inner, reader));
                i += 1;
                continue;
            }
        }
        if let Some(Tree::Group { trees: inner, .. }) = trees.get(i) {
            ops.extend(decode_ops(inner, reader));
        }
        i += 1;
    }
    ops
}

/// The last path segment before `::decode` at index `i`, skipping a
/// turbofish (`Vec::<u64>::decode` → `Vec`).
fn decode_path_type(trees: &[Tree], i: usize) -> Option<String> {
    let mut j = i.checked_sub(3)?;
    if trees.get(j).is_some_and(|t| t.is_punct('>')) {
        let mut depth = 1usize;
        while depth > 0 {
            j = j.checked_sub(1)?;
            if trees.get(j).is_some_and(|t| t.is_punct('>')) {
                depth += 1;
            } else if trees.get(j).is_some_and(|t| t.is_punct('<')) {
                depth -= 1;
            }
        }
        // Before the turbofish: `::` then the segment.
        if !(trees
            .get(j.checked_sub(1)?)
            .is_some_and(|t| t.is_punct(':'))
            && trees
                .get(j.checked_sub(2)?)
                .is_some_and(|t| t.is_punct(':')))
        {
            return None;
        }
        j = j.checked_sub(3)?;
    }
    trees.get(j).and_then(Tree::ident).map(str::to_string)
}

/// Whether a brace group has `ident : …` struct-literal shape.
fn struct_literal_shape(inner: &[Tree]) -> bool {
    inner.first().and_then(Tree::ident).is_some() && inner.get(1).is_some_and(|t| t.is_punct(':'))
}

/// Ops of a struct literal's fields, labelled by field name, in source
/// order.
fn struct_literal_ops(inner: &[Tree], reader: &str) -> Vec<Op> {
    let mut out = Vec::new();
    for element in top_level_elements(inner) {
        let label = element.first().and_then(Tree::ident).map(str::to_string);
        let expr = match element.get(1) {
            Some(t) if t.is_punct(':') => element.get(2..).unwrap_or_default(),
            _ => element,
        };
        out.extend(labelled(decode_ops(expr, reader), label));
    }
    out
}

/// Ops of a tuple constructor's elements, labelled `0`, `1`, … in order.
fn positional_ops(inner: &[Tree], reader: &str) -> Vec<Op> {
    let mut out = Vec::new();
    for (k, element) in top_level_elements(inner).into_iter().enumerate() {
        out.extend(labelled(decode_ops(element, reader), Some(k.to_string())));
    }
    out
}

/// Applies a field label when the expression produced exactly one
/// unlabelled field op.
fn labelled(mut ops: Vec<Op>, label: Option<String>) -> Vec<Op> {
    if ops.len() == 1 {
        if let Some(Op::Field {
            label: slot @ None, ..
        }) = ops.first_mut()
        {
            *slot = label;
        }
    }
    ops
}

/// Parses the arms of a decode-side `match r.u8()? { … }`.  Integer
/// patterns carry the tag; identifier catch-alls (the error arm) are
/// skipped.
fn decode_arms(trees: &[Tree], reader: &str) -> Vec<Arm> {
    let mut arms = Vec::new();
    for (pattern, body) in split_arms(trees) {
        let tag = pattern.iter().find_map(Tree::int);
        if tag.is_none() {
            continue; // `other => Err(..)` / `_ => ..`
        }
        arms.push(Arm {
            tag,
            label: arm_label(body),
            ops: decode_ops(body, reader),
        });
    }
    arms
}

/// The variant label of a decode arm: the last segment of the first
/// uppercase-starting path in the body, with `Ok` unwrapped.
fn arm_label(body: &[Tree]) -> Option<String> {
    let inner = match (body.first(), body.get(1)) {
        (Some(first), Some(second)) if first.is_ident("Ok") => second.group('(').unwrap_or(body),
        _ => body,
    };
    let mut i = 0;
    while i < inner.len() {
        if let Some(name) = inner.get(i).and_then(Tree::ident) {
            if is_uppercase_ident(name) {
                // Follow `::Segment` as long as segments continue.
                let mut last = name.to_string();
                let mut j = i;
                while inner.get(j + 1).is_some_and(|t| t.is_punct(':'))
                    && inner.get(j + 2).is_some_and(|t| t.is_punct(':'))
                {
                    match inner.get(j + 3).and_then(Tree::ident) {
                        Some(seg) => {
                            last = seg.to_string();
                            j += 3;
                        }
                        None => break,
                    }
                }
                return Some(last);
            }
        }
        i += 1;
    }
    None
}

// ---------------------------------------------------------------------------
// Symmetry comparison
// ---------------------------------------------------------------------------

fn describe(op: &Op) -> String {
    match op {
        Op::Tag(v) => format!("tag({v})"),
        Op::Prim(p) => (*p).to_string(),
        Op::Field { ty, label } => match (label, ty) {
            (Some(l), Some(t)) => format!("{l}:{t}"),
            (Some(l), None) => format!("{l}:?"),
            (None, Some(t)) => t.clone(),
            (None, None) => "?".to_string(),
        },
        Op::Repeat(_) => "seq(..)".to_string(),
        Op::Switch(_) => "match{..}".to_string(),
    }
}

/// Compares an encode op sequence against a decode op sequence; `Err`
/// explains the first divergence.
fn compat_seq(enc: &[Op], dec: &[Op]) -> Result<(), String> {
    if enc.len() != dec.len() {
        return Err(format!(
            "encode writes {} op(s) but decode reads {} ({} vs {})",
            enc.len(),
            dec.len(),
            enc.iter().map(describe).collect::<Vec<_>>().join(" "),
            dec.iter().map(describe).collect::<Vec<_>>().join(" "),
        ));
    }
    for (e, d) in enc.iter().zip(dec.iter()) {
        compat(e, d)?;
    }
    Ok(())
}

fn numeric_label(label: &Option<String>) -> bool {
    label
        .as_deref()
        .is_some_and(|l| l.chars().all(|c| c.is_ascii_digit()))
}

fn compat(e: &Op, d: &Op) -> Result<(), String> {
    match (e, d) {
        (Op::Tag(a), Op::Tag(b)) if a == b => Ok(()),
        (Op::Tag(_), Op::Prim("u8")) | (Op::Prim("u8"), Op::Tag(_)) => Ok(()),
        (Op::Prim(a), Op::Prim(b)) if width(a) == width(b) => Ok(()),
        (Op::Prim(a), Op::Prim(b)) => Err(format!("encode writes `{a}` where decode reads `{b}`")),
        (
            Op::Field {
                ty: et, label: el, ..
            },
            Op::Field {
                ty: dt, label: dl, ..
            },
        ) => {
            if let (Some(a), Some(b)) = (el, dl) {
                // Positional labels only conflict with positional labels.
                if a != b && numeric_label(el) == numeric_label(dl) {
                    return Err(format!(
                        "field order skew: encode writes `{a}` where decode reads `{b}`"
                    ));
                }
            }
            if let (Some(a), Some(b)) = (et, dt) {
                if a != b {
                    return Err(format!("encode writes a `{a}` where decode reads a `{b}`"));
                }
            }
            Ok(())
        }
        // A weak/labelled field matches any single leaf op (the encode side
        // rarely knows its type).
        (Op::Field { ty, .. }, Op::Prim(p)) | (Op::Prim(p), Op::Field { ty, .. }) => {
            match ty.as_deref() {
                Some(t) if BUILTINS.contains(&t) && width(t) != width(p) => {
                    Err(format!("`{t}` does not match the {p} on the other side"))
                }
                _ => Ok(()),
            }
        }
        (Op::Field { .. }, Op::Tag(_)) | (Op::Tag(_), Op::Field { .. }) => Ok(()),
        (Op::Prim("u8"), Op::Switch(arms)) | (Op::Switch(arms), Op::Prim("u8"))
            if arms.iter().all(|a| a.ops.is_empty()) =>
        {
            Ok(())
        }
        (Op::Repeat(a), Op::Repeat(b)) => {
            compat_seq(a, b).map_err(|e| format!("inside a repeated block: {e}"))
        }
        (Op::Switch(a), Op::Switch(b)) => compat_switch(a, b),
        (e, d) => Err(format!(
            "encode `{}` does not match decode `{}`",
            describe(e),
            describe(d)
        )),
    }
}

fn compat_switch(enc: &[Arm], dec: &[Arm]) -> Result<(), String> {
    let enc_tags: BTreeSet<_> = enc.iter().filter_map(|a| a.tag).collect();
    let dec_tags: BTreeSet<_> = dec.iter().filter_map(|a| a.tag).collect();
    if enc_tags != dec_tags {
        return Err(format!(
            "encode arms carry tags {enc_tags:?} but decode arms carry {dec_tags:?}"
        ));
    }
    for e in enc {
        let Some(tag) = e.tag else { continue };
        let Some(d) = dec.iter().find(|a| a.tag == Some(tag)) else {
            continue;
        };
        if let (Some(a), Some(b)) = (&e.label, &d.label) {
            if a != b {
                return Err(format!("tag {tag} is `{a}` on encode but `{b}` on decode"));
            }
        }
        compat_seq(&e.ops, &d.ops).map_err(|err| format!("inside tag {tag}: {err}"))?;
    }
    Ok(())
}

/// Checks lengths-before-payloads: every repeat must be preceded by a
/// scalar op in its own list (the length prefix it is driven by).
fn repeats_have_lengths(ops: &[Op]) -> Result<(), String> {
    let mut seen_scalar = false;
    for op in ops {
        match op {
            Op::Tag(_) | Op::Prim(_) | Op::Field { .. } => seen_scalar = true,
            Op::Repeat(inner) => {
                if !seen_scalar {
                    return Err("a repeated block has no preceding length/scalar op".to_string());
                }
                repeats_have_lengths(inner)?;
            }
            Op::Switch(arms) => {
                for arm in arms {
                    // The absorbed tag byte counts as the arm's scalar.
                    let mut probe = vec![Op::Prim("u8")];
                    probe.extend(arm.ops.iter().cloned());
                    repeats_have_lengths(&probe)?;
                }
                seen_scalar = true;
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Canonical rendering
// ---------------------------------------------------------------------------

fn render_ops(ops: &[Op]) -> String {
    ops.iter().map(render_op).collect::<Vec<_>>().join(" ")
}

fn render_op(op: &Op) -> String {
    match op {
        Op::Tag(v) => format!("tag({v})"),
        Op::Prim(p) => (*p).to_string(),
        Op::Field { ty, label } => {
            let label = label.as_deref().filter(|l| {
                !l.chars().all(|c| c.is_ascii_digit()) // positional: omit
            });
            match (label, ty) {
                (Some(l), Some(t)) => format!("{l}:{t}"),
                (Some(l), None) => format!("{l}:?"),
                (None, Some(t)) => t.clone(),
                (None, None) => "?".to_string(),
            }
        }
        Op::Repeat(inner) => format!("seq({})", render_ops(inner)),
        Op::Switch(arms) => {
            let mut sorted: Vec<&Arm> = arms.iter().collect();
            sorted.sort_by_key(|a| a.tag);
            let rendered: Vec<String> = sorted
                .iter()
                .map(|arm| {
                    let mut s = match arm.tag {
                        Some(t) => t.to_string(),
                        None => "_".to_string(),
                    };
                    if let Some(label) = &arm.label {
                        let _ = write!(s, "={label}");
                    }
                    if !arm.ops.is_empty() {
                        let _ = write!(s, "({})", render_ops(&arm.ops));
                    }
                    s
                })
                .collect();
            format!("match{{{}}}", rendered.join("; "))
        }
    }
}

// ---------------------------------------------------------------------------
// Schema model, extraction, persistence
// ---------------------------------------------------------------------------

/// One extracted `impl Wire for T` in the canonical schema.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchemaType {
    /// Canonical type name (`NodeId`, `Tuple2`, …).
    pub name: String,
    /// Root-relative file the impl lives in.
    pub file: String,
    /// Generic parameters of the impl.
    pub generics: Vec<String>,
    /// Canonical decode-side op sequence.
    pub ops: String,
}

/// The full wire schema: every impl plus the wire version it describes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schema {
    /// The workspace `WIRE_VERSION` the schema was extracted under.
    pub wire_version: Option<u64>,
    /// Type aliases the extraction resolved through (`SignerId` → `usize`).
    pub aliases: Vec<(String, String)>,
    /// All impls, sorted by name.
    pub types: Vec<SchemaType>,
}

/// Extraction result: the schema plus any symmetry/resolution findings.
#[derive(Clone, Debug)]
pub struct Extraction {
    /// The canonical schema.
    pub schema: Schema,
    /// Symmetry, lengths-before-payloads, and resolution findings.
    pub problems: Vec<Finding>,
}

/// How an extracted schema relates to the committed one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SchemaStatus {
    /// Byte-for-byte the same contract.
    Match,
    /// Versions differ — the committed file needs regenerating.
    Stale {
        /// `wire_version` in the committed file.
        committed: Option<u64>,
        /// `WIRE_VERSION` in the tree.
        extracted: Option<u64>,
    },
    /// Same version but different content: a wire change shipped without
    /// a `WIRE_VERSION` bump.
    Drift {
        /// Human-readable per-type differences.
        details: Vec<String>,
    },
}

/// Extracts the wire schema of every `impl Wire for T` under `root`,
/// checking encode/decode symmetry along the way.
pub fn extract_schema(root: &Path) -> io::Result<Extraction> {
    let files = walk::discover(root)?;
    let mut impls: Vec<(WireImpl, String, Vec<String>)> = Vec::new(); // impl, rel, lines
    let mut aliases: BTreeMap<String, String> = BTreeMap::new();
    let mut wire_version = None;
    for file in &files {
        if file.kind == FileKind::Test {
            continue;
        }
        let content = std::fs::read_to_string(&file.path)?;
        let lexed = lex(&content);
        let regions = test_regions(&lexed.tokens);
        if wire_version.is_none() {
            wire_version = parser::wire_version_const(&lexed.tokens);
        }
        for (name, target) in parser::type_aliases(&lexed.tokens, &|l| regions.contains(l)) {
            aliases.entry(name).or_insert(target);
        }
        let trees = parser::parse(&lexed.tokens);
        let lines: Vec<String> = content.lines().map(str::to_string).collect();
        for imp in parser::wire_impls(&trees, &|l| regions.contains(l)) {
            impls.push((imp, file.rel.clone(), lines.clone()));
        }
    }

    let impl_names: BTreeSet<String> = impls
        .iter()
        .map(|(imp, _, _)| imp.type_name.clone())
        .collect();
    let mut problems = Vec::new();
    let mut used_aliases: BTreeMap<String, String> = BTreeMap::new();
    let mut types = Vec::new();
    let mut seen = BTreeSet::new();

    for (imp, rel, lines) in &impls {
        let problem = |line: usize, message: String| Finding {
            file: rel.clone(),
            line,
            rule: RULE_WIRE_ASYM,
            message,
            snippet: lines
                .get(line.saturating_sub(1))
                .map(|l| normalize_snippet(l))
                .unwrap_or_default(),
        };
        if !seen.insert(imp.type_name.clone()) {
            problems.push(problem(
                imp.line,
                format!("duplicate `Wire` impl for `{}`", imp.type_name),
            ));
            continue;
        }
        let (Some(enc), Some(dec)) = (imp.fn_def("encode"), imp.fn_def("decode")) else {
            problems.push(problem(
                imp.line,
                format!(
                    "`impl Wire for {}` is missing an encode or decode fn",
                    imp.type_name
                ),
            ));
            continue;
        };
        let writer = enc.params.first().map(String::as_str).unwrap_or("out");
        let reader = dec.params.first().map(String::as_str).unwrap_or("r");
        let strong = BTreeSet::new();
        let enc_ops = encode_ops(&enc.body, writer, &strong, &imp.type_name);
        let dec_ops = decode_ops(&dec.body, reader);
        if let Err(msg) = compat_seq(&enc_ops, &dec_ops) {
            problems.push(problem(
                imp.line,
                format!("encode/decode asymmetry in `{}`: {msg}", imp.type_name),
            ));
        }
        for (side, ops) in [("encode", &enc_ops), ("decode", &dec_ops)] {
            if let Err(msg) = repeats_have_lengths(ops) {
                problems.push(problem(
                    imp.line,
                    format!("`{}` {side}: {msg}", imp.type_name),
                ));
            }
        }
        for ty in field_types(&dec_ops) {
            if !resolve(&ty, &imp.generics, &impl_names, &aliases, &mut used_aliases) {
                problems.push(problem(
                    imp.line,
                    format!(
                        "`{}` decodes a `{ty}` that is neither a builtin, a generic \
                         parameter, an extracted `Wire` impl, nor a known alias",
                        imp.type_name
                    ),
                ));
            }
        }
        types.push(SchemaType {
            name: imp.type_name.clone(),
            file: rel.clone(),
            generics: imp.generics.clone(),
            ops: render_ops(&dec_ops),
        });
    }
    types.sort_by(|a, b| a.name.cmp(&b.name));
    problems.sort_by(|a, b| (&a.file, a.line, &a.message).cmp(&(&b.file, b.line, &b.message)));
    Ok(Extraction {
        schema: Schema {
            wire_version,
            aliases: used_aliases.into_iter().collect(),
            types,
        },
        problems,
    })
}

/// All `Field` type names in an op tree.
fn field_types(ops: &[Op]) -> Vec<String> {
    let mut out = Vec::new();
    for op in ops {
        match op {
            Op::Field { ty: Some(t), .. } => out.push(t.clone()),
            Op::Repeat(inner) => out.extend(field_types(inner)),
            Op::Switch(arms) => {
                for arm in arms {
                    out.extend(field_types(&arm.ops));
                }
            }
            _ => {}
        }
    }
    out
}

/// Whether `ty` resolves to a builtin, a generic parameter, or another
/// extracted impl — possibly through a chain of plain type aliases.
fn resolve(
    ty: &str,
    generics: &[String],
    impl_names: &BTreeSet<String>,
    aliases: &BTreeMap<String, String>,
    used: &mut BTreeMap<String, String>,
) -> bool {
    let mut current = ty.to_string();
    for _ in 0..8 {
        if BUILTINS.contains(&current.as_str())
            || generics.iter().any(|g| g == &current)
            || impl_names.contains(&current)
        {
            return true;
        }
        match aliases.get(&current) {
            Some(target) => {
                used.insert(current.clone(), target.clone());
                current = target.clone();
            }
            None => return false,
        }
    }
    false
}

impl Schema {
    /// The canonical committed representation (`WIRE_SCHEMA.json`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": 1,\n");
        match self.wire_version {
            Some(v) => {
                let _ = writeln!(out, "  \"wire_version\": {v},");
            }
            None => out.push_str("  \"wire_version\": null,\n"),
        }
        out.push_str("  \"aliases\": {");
        for (i, (name, target)) in self.aliases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    \"{}\": \"{}\"",
                json::escape(name),
                json::escape(target)
            );
        }
        if !self.aliases.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"types\": [");
        for (i, ty) in self.types.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let generics: Vec<String> = ty
                .generics
                .iter()
                .map(|g| format!("\"{}\"", json::escape(g)))
                .collect();
            let _ = write!(
                out,
                "\n    {{\"name\": \"{}\", \"file\": \"{}\", \"generics\": [{}], \
                 \"ops\": \"{}\"}}",
                json::escape(&ty.name),
                json::escape(&ty.file),
                generics.join(", "),
                json::escape(&ty.ops)
            );
        }
        if !self.types.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Parses a committed `WIRE_SCHEMA.json`.
    pub fn parse(text: &str) -> Result<Schema, String> {
        let root =
            json::parse(text).map_err(|e| format!("WIRE_SCHEMA.json is not valid JSON: {e}"))?;
        let wire_version = root
            .get("wire_version")
            .and_then(Json::as_usize)
            .map(|v| v as u64);
        let mut aliases = Vec::new();
        if let Some(Json::Obj(map)) = root.get("aliases") {
            for (name, value) in map {
                let target = value.as_str().ok_or("alias target must be a string")?;
                aliases.push((name.clone(), target.to_string()));
            }
        }
        let mut types = Vec::new();
        for entry in root.get("types").and_then(Json::as_arr).unwrap_or(&[]) {
            let field = |key: &str| -> Result<String, String> {
                entry
                    .get(key)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or(format!("type entry is missing `{key}`"))
            };
            let mut generics = Vec::new();
            for g in entry.get("generics").and_then(Json::as_arr).unwrap_or(&[]) {
                generics.push(
                    g.as_str()
                        .ok_or("generic parameter must be a string")?
                        .to_string(),
                );
            }
            types.push(SchemaType {
                name: field("name")?,
                file: field("file")?,
                generics,
                ops: field("ops")?,
            });
        }
        types.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(Schema {
            wire_version,
            aliases,
            types,
        })
    }
}

/// Compares an extracted schema against the committed one.
pub fn compare(extracted: &Schema, committed: &Schema) -> SchemaStatus {
    if extracted.wire_version != committed.wire_version {
        return SchemaStatus::Stale {
            committed: committed.wire_version,
            extracted: extracted.wire_version,
        };
    }
    if extracted == committed {
        return SchemaStatus::Match;
    }
    let mut details = Vec::new();
    let committed_by_name: BTreeMap<&str, &SchemaType> = committed
        .types
        .iter()
        .map(|t| (t.name.as_str(), t))
        .collect();
    let extracted_by_name: BTreeMap<&str, &SchemaType> = extracted
        .types
        .iter()
        .map(|t| (t.name.as_str(), t))
        .collect();
    for (name, ty) in &extracted_by_name {
        match committed_by_name.get(name) {
            None => details.push(format!("`{name}` is new (not in the committed schema)")),
            Some(old) if old.ops != ty.ops => details.push(format!(
                "`{name}` changed: committed `{}` vs extracted `{}`",
                old.ops, ty.ops
            )),
            Some(old) if **old != **ty => {
                details.push(format!("`{name}` moved or changed its generics"));
            }
            Some(_) => {}
        }
    }
    for name in committed_by_name.keys() {
        if !extracted_by_name.contains_key(name) {
            details.push(format!("`{name}` was removed"));
        }
    }
    if details.is_empty() {
        details.push("alias table changed".to_string());
    }
    SchemaStatus::Drift { details }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn ops_of(src: &str) -> (Vec<Op>, Vec<Op>) {
        let lexed = lex(src);
        let trees = parse(&lexed.tokens);
        let impls = parser::wire_impls(&trees, &|_| false);
        let imp = impls.first().expect("one impl");
        let enc = imp.fn_def("encode").expect("encode");
        let dec = imp.fn_def("decode").expect("decode");
        let writer = enc.params.first().map(String::as_str).unwrap_or("out");
        let reader = dec.params.first().map(String::as_str).unwrap_or("r");
        (
            encode_ops(&enc.body, writer, &BTreeSet::new(), &imp.type_name),
            decode_ops(&dec.body, reader),
        )
    }

    #[test]
    fn symmetric_struct_is_clean() {
        let (enc, dec) = ops_of(
            "impl Wire for Pair {
                fn encode(&self, out: &mut Vec<u8>) {
                    self.a.encode(out);
                    self.b.encode(out);
                }
                fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
                    Ok(Pair { a: u16::decode(r)?, b: u64::decode(r)? })
                }
            }",
        );
        assert!(compat_seq(&enc, &dec).is_ok());
        assert_eq!(render_ops(&dec), "a:u16 b:u64");
    }

    #[test]
    fn field_order_skew_is_reported() {
        let (enc, dec) = ops_of(
            "impl Wire for Skewed {
                fn encode(&self, out: &mut Vec<u8>) {
                    self.a.encode(out);
                    self.b.encode(out);
                }
                fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
                    Ok(Skewed { b: u64::decode(r)?, a: u16::decode(r)? })
                }
            }",
        );
        let err = compat_seq(&enc, &dec).expect_err("skew must be caught");
        assert!(err.contains("field order skew"), "{err}");
    }

    #[test]
    fn vec_shape_has_length_then_repeat() {
        let (enc, dec) = ops_of(
            "impl<T: Wire> Wire for Vec<T> {
                fn encode(&self, out: &mut Vec<u8>) {
                    self.len().encode(out);
                    for item in self { item.encode(out); }
                }
                fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
                    let len = r.len()?;
                    let mut items = Vec::new();
                    for _ in 0..len { items.push(T::decode(r)?); }
                    Ok(items)
                }
            }",
        );
        assert!(compat_seq(&enc, &dec).is_ok());
        assert!(repeats_have_lengths(&dec).is_ok());
        assert_eq!(render_ops(&dec), "len seq(T)");
    }

    #[test]
    fn repeat_without_length_is_reported() {
        let ops = vec![Op::Repeat(vec![Op::Prim("u8")])];
        assert!(repeats_have_lengths(&ops).is_err());
    }

    #[test]
    fn tagged_enum_arms_match_by_tag_and_label() {
        let (enc, dec) = ops_of(
            "impl<V: Wire> Wire for AeaMsg<V> {
                fn encode(&self, out: &mut Vec<u8>) {
                    match self {
                        AeaMsg::Rumor(v) => { out.push(0); v.encode(out) }
                        AeaMsg::Decision(v) => { out.push(1); v.encode(out) }
                    }
                }
                fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
                    match r.u8()? {
                        0 => Ok(AeaMsg::Rumor(V::decode(r)?)),
                        1 => Ok(AeaMsg::Decision(V::decode(r)?)),
                        other => Err(bad_tag(\"AeaMsg\", other)),
                    }
                }
            }",
        );
        assert!(compat_seq(&enc, &dec).is_ok());
        assert_eq!(render_ops(&dec), "match{0=Rumor(V); 1=Decision(V)}");
    }

    #[test]
    fn tag_set_mismatch_is_reported() {
        let (enc, dec) = ops_of(
            "impl Wire for Lopsided {
                fn encode(&self, out: &mut Vec<u8>) {
                    match self {
                        Lopsided::A => out.push(0),
                        Lopsided::B => out.push(2),
                    }
                }
                fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
                    match r.u8()? {
                        0 => Ok(Lopsided::A),
                        1 => Ok(Lopsided::B),
                        other => Err(bad_tag(\"Lopsided\", other)),
                    }
                }
            }",
        );
        let err = compat_seq(&enc, &dec).expect_err("tag sets differ");
        assert!(err.contains("tags"), "{err}");
    }

    #[test]
    fn bool_prim_matches_empty_arm_switch() {
        let (enc, dec) = ops_of(
            "impl Wire for bool {
                fn encode(&self, out: &mut Vec<u8>) { out.push(u8::from(*self)); }
                fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
                    match r.u8()? {
                        0 => Ok(false),
                        1 => Ok(true),
                        other => Err(bad_tag(\"bool\", other)),
                    }
                }
            }",
        );
        assert!(compat_seq(&enc, &dec).is_ok());
        assert_eq!(render_ops(&dec), "match{0; 1}");
    }

    #[test]
    fn tuple_positions_line_up() {
        let (enc, dec) = ops_of(
            "impl<A: Wire, B: Wire> Wire for (A, B) {
                fn encode(&self, out: &mut Vec<u8>) {
                    self.0.encode(out);
                    self.1.encode(out);
                }
                fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
                    Ok((A::decode(r)?, B::decode(r)?))
                }
            }",
        );
        assert!(compat_seq(&enc, &dec).is_ok());
        assert_eq!(render_ops(&dec), "A B");
    }

    #[test]
    fn schema_json_round_trips() {
        let schema = Schema {
            wire_version: Some(3),
            aliases: vec![("SignerId".to_string(), "usize".to_string())],
            types: vec![SchemaType {
                name: "NodeId".to_string(),
                file: "crates/sim/src/shard/wire.rs".to_string(),
                generics: Vec::new(),
                ops: "len".to_string(),
            }],
        };
        let parsed = Schema::parse(&schema.to_json()).expect("round trip");
        assert_eq!(parsed, schema);
        assert_eq!(compare(&schema, &parsed), SchemaStatus::Match);
    }

    #[test]
    fn compare_detects_stale_and_drift() {
        let base = Schema {
            wire_version: Some(1),
            aliases: Vec::new(),
            types: vec![SchemaType {
                name: "Round".to_string(),
                file: "w.rs".to_string(),
                generics: Vec::new(),
                ops: "u64".to_string(),
            }],
        };
        let mut bumped = base.clone();
        bumped.wire_version = Some(2);
        assert!(matches!(
            compare(&bumped, &base),
            SchemaStatus::Stale { .. }
        ));
        let mut drifted = base.clone();
        if let Some(ty) = drifted.types.first_mut() {
            ty.ops = "len".to_string();
        }
        match compare(&drifted, &base) {
            SchemaStatus::Drift { details } => {
                assert!(details.iter().any(|d| d.contains("Round")), "{details:?}");
            }
            other => panic!("expected drift, got {other:?}"),
        }
    }
}
