//! A minimal JSON reader/writer.
//!
//! The vendored `serde` is a no-op stand-in (see `vendor/serde`), so the
//! baseline file is read with this hand-rolled parser and written by
//! [`escape`]-based emitters.  Unlike `dft_bench::baseline`'s line-oriented
//! reader, baseline entries embed arbitrary source snippets — quotes,
//! backslashes, anything — so strings need real escape handling, which is
//! most of what this module is.

use std::collections::BTreeMap;

/// A parsed JSON value.  Objects use a [`BTreeMap`], which is fine for the
/// baseline format (no duplicate keys, order re-imposed on write).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (the baseline only uses non-negative integers).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field access.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as usize),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Escapes `s` for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a description of the first malformed construct.
pub fn parse(text: &str) -> Result<Json, String> {
    let chars: Vec<char> = text.chars().collect();
    let mut p = Parser { chars, pos: 0 };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(format!("trailing input at offset {}", p.pos));
    }
    Ok(value)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn expect_char(&mut self, c: char) -> Result<(), String> {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {c:?} at offset {}, found {:?}",
                self.pos,
                self.peek()
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        for expected in word.chars() {
            if self.peek() != Some(expected) {
                return Err(format!("malformed literal at offset {}", self.pos));
            }
            self.pos += 1;
        }
        Ok(value)
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Json::Str(self.string()?)),
            Some('t') => self.literal("true", Json::Bool(true)),
            Some('f') => self.literal("false", Json::Bool(false)),
            Some('n') => self.literal("null", Json::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect_char('{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect_char(':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(',') => self.pos += 1,
                Some('}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect_char('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(',') => self.pos += 1,
                Some(']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        if self.peek() != Some('"') {
            return Err(format!("expected string at offset {}", self.pos));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err("unterminated string".to_string());
            };
            self.pos += 1;
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".to_string());
                    };
                    self.pos += 1;
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'b' => out.push('\u{8}'),
                        'f' => out.push('\u{c}'),
                        'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let Some(h) = self.peek().and_then(|c| c.to_digit(16)) else {
                                    return Err("malformed \\u escape".to_string());
                                };
                                self.pos += 1;
                                code = code * 16 + h;
                            }
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(format!("unknown escape \\{other}")),
                    }
                }
                c => out.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-')
        {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("malformed number {text:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_escaped_snippets() {
        let snippet = r#"let x = map.get("k\n").expect("present \\ here");"#;
        let doc = format!("{{\"snippet\": \"{}\"}}", escape(snippet));
        let parsed = parse(&doc).expect("parses");
        assert_eq!(parsed.get("snippet").and_then(Json::as_str), Some(snippet));
    }

    #[test]
    fn parses_nested_structure() {
        let doc = r#"{ "a": [1, 2, {"b": null, "c": true}], "d": "x" }"#;
        let parsed = parse(doc).expect("parses");
        let arr = parsed.get("a").and_then(Json::as_arr).expect("array");
        assert_eq!(arr[0].as_usize(), Some(1));
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
        assert_eq!(parsed.get("d").and_then(Json::as_str), Some("x"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("[1, ]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"\\q\"").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let parsed = parse("\"\\u0041\\u00e9\"").expect("parses");
        assert_eq!(parsed.as_str(), Some("Aé"));
    }

    #[test]
    fn control_chars_escape_on_write() {
        assert_eq!(escape("a\u{1}b"), "a\\u0001b");
        assert_eq!(escape("tab\there"), "tab\\there");
    }
}
