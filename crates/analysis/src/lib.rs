//! `dft-analysis`: determinism & panic-hygiene static analysis.
//!
//! The workspace's headline guarantee — parallel (`--jobs N`) and sharded
//! (`--shards N`) runs byte-identical to serial — is enforced dynamically
//! by the E1–E11 diff suite, which only catches a hazard a quick-scale run
//! happens to exercise.  This crate is the *static* half of the contract:
//! `dft-analyze` walks every non-vendored source file with a hand-rolled
//! Rust lexer (the build has no registry access, so no `syn`) and reports
//! `file:line` diagnostics for whole hazard classes:
//!
//! * **nondeterminism** — unordered `HashMap`/`HashSet` iteration, wall
//!   clocks, thread identity, ambient randomness, float arithmetic in
//!   protocol logic;
//! * **panic hygiene** — `unwrap`/`expect`/`panic!`/indexing in library
//!   code;
//! * **wire-format completeness** — every `impl Wire for T` (tuples
//!   included) named by a test, every frame decode routed through the
//!   `WIRE_VERSION` check, and — via the structural [`schema`] pass —
//!   encode/decode op-sequence symmetry for every impl, ratcheted by the
//!   committed `WIRE_SCHEMA.json`;
//! * **layering** — a declared layer map ([`layering`]) of which
//!   first-party crates each layer may import, generalizing the old
//!   one-off sans-I/O boundary check;
//! * **hot-path allocation hygiene** — the `hot` subcommand ([`hotpath`])
//!   builds a name-resolved workspace call graph ([`callgraph`]), marks
//!   everything reachable from the round cores' per-round phase bodies as
//!   hot, and flags owned-container allocation and cloning there, ratcheted
//!   by the committed `ALLOC_baseline.json`;
//! * **unsafe hygiene** — every first-party crate root carries
//!   `#![forbid(unsafe_code)]`;
//! * **lint-suppression audit** — every `#[allow(…)]` justified by an
//!   adjacent comment.
//!
//! Findings diff against the committed [`ANALYSIS_baseline.json`]
//! (`baseline`), so CI (`dft-analyze --ci`) fails only on *new* findings;
//! intentional exceptions carry one-line justifications.  The wire schema
//! has its own ratchet: `dft-analyze schema --ci` fails when the extracted
//! schema drifts from `WIRE_SCHEMA.json` without a `WIRE_VERSION` bump.
//! See `DESIGN.md` §"Determinism invariants" and §"Wire schema ratchet"
//! for how these passes and the dynamic diffs split the enforcement, and
//! `CONTRIBUTING.md` for both regeneration workflows.
//!
//! [`ANALYSIS_baseline.json`]: baseline::Baseline

#![forbid(unsafe_code)]

pub mod baseline;
pub mod callgraph;
pub mod findings;
pub mod hotpath;
pub mod json;
pub mod layering;
pub mod lexer;
pub mod parser;
pub mod regions;
pub mod rules;
pub mod schema;
pub mod walk;

pub use baseline::Baseline;
pub use findings::Finding;
pub use hotpath::analyze_hot;
pub use rules::analyze;
pub use schema::{extract_schema, SchemaStatus};
