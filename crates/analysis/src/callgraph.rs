//! A name-resolved intra-workspace call graph over the function inventory
//! ([`crate::parser::fn_items`]).
//!
//! Resolution is deliberately heuristic — the analyzer has no type
//! information, so calls resolve by name shape:
//!
//! * `foo(…)` resolves to free functions named `foo`;
//! * `Type::method(…)` resolves to methods of impls whose canonical self
//!   type is `Type` (with `Self::method(…)` resolving within the caller's
//!   own impl, and lowercase path segments — module paths like
//!   `delivery::helper(…)` — falling back to free functions);
//! * `.method(…)` resolves to *every* first-party method named `method`
//!   that takes `self`.
//!
//! The method rule over-approximates: `.merge(…)` on some std type also
//! marks a first-party `merge` as called.  For hot-path propagation that is
//! the safe direction — a function wrongly marked hot produces a finding a
//! human triages once into the baseline, while a hot function wrongly
//! marked cold would hide real regressions forever.

use crate::parser::{FnItem, Tree};

/// One function node: the parsed item plus its location.
#[derive(Clone, Debug)]
pub struct FnNode {
    /// Workspace-relative path of the defining file.
    pub file: String,
    /// The parsed function item.
    pub item: FnItem,
}

impl FnNode {
    /// `Type::name` for methods, bare `name` for free functions.
    pub fn label(&self) -> String {
        match &self.item.self_type {
            Some(t) => format!("{t}::{}", self.item.name),
            None => self.item.name.clone(),
        }
    }
}

/// One syntactic call site extracted from a function body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Call {
    /// `name(…)` — a bare call.
    Direct(String),
    /// `seg::name(…)` — the last two segments of a path call.
    Qualified(String, String),
    /// `.name(…)` — a method call on some receiver.
    Method(String),
}

/// The resolved graph: nodes plus a callee adjacency list per node.
pub struct CallGraph {
    /// Every first-party function, in file-then-line order.
    pub nodes: Vec<FnNode>,
    /// `edges[i]` holds the node indices `nodes[i]` calls.
    pub edges: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Builds and resolves the graph from the collected nodes.
    pub fn build(nodes: Vec<FnNode>) -> CallGraph {
        let mut edges = Vec::with_capacity(nodes.len());
        for node in &nodes {
            let mut calls = Vec::new();
            extract_calls(&node.item.body, &mut calls);
            let mut callees: Vec<usize> = calls
                .iter()
                .flat_map(|call| resolve(&nodes, node, call))
                .collect();
            callees.sort_unstable();
            callees.dedup();
            edges.push(callees);
        }
        CallGraph { nodes, edges }
    }

    /// Marks every node reachable from the entry set, walking call edges
    /// transitively.  Entries are `(self_type, name)` pairs (`self_type`
    /// `None` matches free functions); unmatched entries are tolerated so
    /// fixture trees need only declare the shapes they exercise.  Returns,
    /// per node, the label of the entry it was reached from (`None` =
    /// cold); a node reachable from several entries keeps the first in
    /// entry-declaration order.
    pub fn mark_hot(&self, entries: &[(Option<&str>, &str)]) -> Vec<Option<String>> {
        let mut hot_from: Vec<Option<String>> = vec![None; self.nodes.len()];
        let mut queue = Vec::new();
        for (self_type, name) in entries {
            for (i, node) in self.nodes.iter().enumerate() {
                let matches = node.item.name == *name
                    && node.item.self_type.as_deref() == *self_type
                    && hot_from[i].is_none();
                if matches {
                    hot_from[i] = Some(node.label());
                    queue.push(i);
                }
            }
        }
        while let Some(i) = queue.pop() {
            let from = hot_from[i].clone().unwrap_or_default();
            for &callee in &self.edges[i] {
                if hot_from[callee].is_none() {
                    hot_from[callee] = Some(from.clone());
                    queue.push(callee);
                }
            }
        }
        hot_from
    }
}

/// Extracts every syntactic call site in the trees, recursing into groups
/// (arguments, blocks, match arms).
pub fn extract_calls(trees: &[Tree], out: &mut Vec<Call>) {
    for (i, tree) in trees.iter().enumerate() {
        if let Tree::Group { trees: inner, .. } = tree {
            extract_calls(inner, out);
            continue;
        }
        let Some(name) = tree.ident() else { continue };
        if !matches!(trees.get(i + 1), Some(t) if t.group('(').is_some()) {
            continue;
        }
        // `fn name(` is a nested definition, `name!(…)` a macro invocation —
        // neither is a call edge.
        if i > 0 && trees[i - 1].is_ident("fn") {
            continue;
        }
        // Look one token back to classify the call shape.
        let call = if i > 0 && trees[i - 1].is_punct('.') {
            Call::Method(name.to_string())
        } else if i >= 2 && trees[i - 1].is_punct(':') && trees[i - 2].is_punct(':') {
            match trees.get(i.wrapping_sub(3)).and_then(Tree::ident) {
                Some(seg) => Call::Qualified(seg.to_string(), name.to_string()),
                None => Call::Direct(name.to_string()),
            }
        } else {
            Call::Direct(name.to_string())
        };
        out.push(call);
    }
}

/// Resolves one call site against the inventory, yielding callee indices.
fn resolve(nodes: &[FnNode], caller: &FnNode, call: &Call) -> Vec<usize> {
    match call {
        Call::Direct(name) => indices(nodes, |n| {
            n.item.self_type.is_none() && n.item.name == *name
        }),
        Call::Qualified(seg, name) if seg == "Self" => indices(nodes, |n| {
            n.item.name == *name && n.item.self_type == caller.item.self_type
        }),
        Call::Qualified(seg, name) => {
            let typed = indices(nodes, |n| {
                n.item.name == *name && n.item.self_type.as_deref() == Some(seg)
            });
            if typed.is_empty() && seg.chars().next().is_some_and(char::is_lowercase) {
                // A module path (`delivery::helper`): the segment names a
                // module, not a type, so fall back to free functions.
                indices(nodes, |n| {
                    n.item.self_type.is_none() && n.item.name == *name
                })
            } else {
                typed
            }
        }
        Call::Method(name) => indices(nodes, |n| n.item.has_self && n.item.name == *name),
    }
}

fn indices(nodes: &[FnNode], pred: impl Fn(&FnNode) -> bool) -> Vec<usize> {
    nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| pred(n))
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::{fn_items, parse};

    fn graph_of(files: &[(&str, &str)]) -> CallGraph {
        let mut nodes = Vec::new();
        for (file, src) in files {
            let lexed = lex(src);
            for item in fn_items(&parse(&lexed.tokens), &|_| false) {
                nodes.push(FnNode {
                    file: file.to_string(),
                    item,
                });
            }
        }
        CallGraph::build(nodes)
    }

    fn index(g: &CallGraph, label: &str) -> usize {
        g.nodes
            .iter()
            .position(|n| n.label() == label)
            .unwrap_or_else(|| panic!("no node {label}"))
    }

    #[test]
    fn method_calls_resolve_to_self_taking_methods() {
        let g = graph_of(&[(
            "a.rs",
            "struct Core;\n\
             impl Core { pub fn step(&mut self) { self.merge(1); } \n\
                         fn merge(&mut self, x: u32) {} }\n\
             fn merge() {} // free fn: not a `.merge(…)` target",
        )]);
        let step = index(&g, "Core::step");
        assert_eq!(g.edges[step], vec![index(&g, "Core::merge")]);
    }

    #[test]
    fn qualified_and_self_calls_resolve_within_the_impl() {
        let g = graph_of(&[(
            "a.rs",
            "impl Engine { fn run(&self) { Self::helper(); Other::helper(); }\n\
                           fn helper() {} }\n\
             impl Other { fn helper() {} }",
        )]);
        let run = index(&g, "Engine::run");
        let mut expect = vec![index(&g, "Engine::helper"), index(&g, "Other::helper")];
        expect.sort_unstable();
        assert_eq!(g.edges[run], expect);
    }

    #[test]
    fn module_paths_fall_back_to_free_functions() {
        let g = graph_of(&[(
            "a.rs",
            "fn caller() { helpers::assist(); }\n\
             mod helpers { pub fn assist() {} }",
        )]);
        let caller = index(&g, "caller");
        assert_eq!(g.edges[caller], vec![index(&g, "assist")]);
    }

    #[test]
    fn recursion_terminates_and_stays_hot() {
        let g = graph_of(&[(
            "a.rs",
            "impl Core { pub fn begin_round(&mut self) { self.descend(3); }\n\
                         fn descend(&mut self, d: u32) { if d > 0 { self.descend(d - 1); } } }",
        )]);
        let hot = g.mark_hot(&[(Some("Core"), "begin_round")]);
        assert!(hot.iter().all(Option::is_some), "{hot:?}");
        assert_eq!(
            hot[index(&g, "Core::descend")].as_deref(),
            Some("Core::begin_round")
        );
    }

    #[test]
    fn cross_crate_edges_resolve_by_name() {
        let g = graph_of(&[
            (
                "crates/sim/src/driver.rs",
                "impl RoundCore { pub fn deliver(&mut self, set: &mut ExtantSet) { set.merge(0); } }",
            ),
            (
                "crates/core/src/values.rs",
                "impl ExtantSet { pub fn merge(&mut self, other: u64) {} }",
            ),
        ]);
        let hot = g.mark_hot(&[(Some("RoundCore"), "deliver")]);
        assert_eq!(
            hot[index(&g, "ExtantSet::merge")].as_deref(),
            Some("RoundCore::deliver")
        );
    }

    #[test]
    fn cold_functions_stay_cold_and_unmatched_entries_are_tolerated() {
        let g = graph_of(&[(
            "a.rs",
            "fn hot_entry() { helper(); }\n\
             fn helper() {}\n\
             fn report() { helper_cold(); }\n\
             fn helper_cold() {}",
        )]);
        let hot = g.mark_hot(&[(None, "hot_entry"), (Some("NoSuchType"), "missing")]);
        assert!(hot[index(&g, "helper")].is_some());
        assert!(hot[index(&g, "report")].is_none());
        assert!(hot[index(&g, "helper_cold")].is_none());
    }

    #[test]
    fn macro_invocations_and_nested_fn_definitions_are_not_calls() {
        let g = graph_of(&[(
            "a.rs",
            "fn outer() { vec![1]; fn inner() {} }\n\
             fn vec_like() {}",
        )]);
        let outer = index(&g, "outer");
        assert!(g.edges[outer].is_empty(), "{:?}", g.edges[outer]);
    }
}
