//! Workspace discovery: which `.rs` files to scan, and as what.
//!
//! The walk is recursive with sorted directory entries, so the file order —
//! and therefore finding order and baseline layout — is deterministic (the
//! analyzer holds itself to the invariant it enforces).  `vendor/` and
//! `target/` are third-party/generated and skipped outright; `fixtures/`
//! trees are the analyzer's own seeded-violation corpora and must never
//! leak into a real scan.
//!
//! Classification is path-based:
//! * files under a `tests/` directory, or named `tests.rs` (the
//!   `#[cfg(test)] mod tests;` out-of-line idiom), are **test** files —
//!   exempt from the rules, but their identifiers feed the wire-coverage
//!   corpus;
//! * files under `benches/` or `examples/` are neither library code nor
//!   test evidence and are skipped;
//! * files under `src/bin/` or named `main.rs` are **bin** files: scanned,
//!   but exempt from the panic-hygiene rules (a harness aborting with a
//!   usage message is correct behaviour, and its timing code is its
//!   product).

use std::io;
use std::path::{Path, PathBuf};

/// How a discovered file participates in the scan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileKind {
    /// Library code: every rule applies.
    Lib,
    /// Binary code: nondeterminism rules apply, panic hygiene does not.
    Bin,
    /// Test code: no rules; contributes to the wire-coverage corpus.
    Test,
}

/// One file to scan.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Absolute (or root-joined) path for reading.
    pub path: PathBuf,
    /// Root-relative path with forward slashes, for reporting.
    pub rel: String,
    /// Participation.
    pub kind: FileKind,
}

const SKIP_DIRS: &[&str] = &[
    "vendor", "target", ".git", "fixtures", "benches", "examples",
];

/// Discovers every scannable `.rs` file under `root`, deterministically
/// ordered.
///
/// # Errors
///
/// Propagates filesystem errors (an unreadable tree must fail the run, not
/// silently shrink it).
pub fn discover(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    walk_dir(root, root, &mut files)?;
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(files)
}

fn walk_dir(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .map(|entry| entry.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            walk_dir(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(SourceFile {
                kind: classify(&rel),
                path,
                rel,
            });
        }
    }
    Ok(())
}

fn classify(rel: &str) -> FileKind {
    let parts: Vec<&str> = rel.split('/').collect();
    let name = parts.last().copied().unwrap_or_default();
    if parts.contains(&"tests") || name == "tests.rs" {
        FileKind::Test
    } else if parts.contains(&"bin") || name == "main.rs" {
        FileKind::Bin
    } else {
        FileKind::Lib
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert_eq!(classify("crates/sim/src/runner.rs"), FileKind::Lib);
        assert_eq!(classify("crates/sim/src/shard/tests.rs"), FileKind::Test);
        assert_eq!(classify("crates/bench/tests/cli_usage.rs"), FileKind::Test);
        assert_eq!(classify("tests/facade_smoke.rs"), FileKind::Test);
        assert_eq!(
            classify("crates/bench/src/bin/run_experiments.rs"),
            FileKind::Bin
        );
        assert_eq!(classify("src/main.rs"), FileKind::Bin);
        assert_eq!(classify("src/lib.rs"), FileKind::Lib);
    }
}
