//! A minimal hand-rolled Rust lexer.
//!
//! The build environment has no registry access, so `dft-analyze` cannot
//! lean on `syn` or `proc-macro2`; instead this module tokenises Rust
//! source just accurately enough for the rule engine: identifiers,
//! punctuation, numeric literals (with float detection), every string
//! shape (plain, raw `r#"…"#`, byte, char — including the char-vs-lifetime
//! ambiguity), and line/nested-block comments.  Tokens carry 1-based line
//! numbers; comments are kept on the side so the `#[allow]` audit can ask
//! "is there a justification next to this attribute?" without the rules
//! ever seeing comment text as code.
//!
//! The lexer is deliberately lossless about *placement* (lines) and lossy
//! about *content* it does not need: string and char literals become a
//! single [`TokenKind::Str`] token with no text, which is exactly what
//! stops `".unwrap()"` inside a diagnostic message from tripping the
//! panic-hygiene rule.

use std::collections::BTreeMap;

/// What a token is, as far as the rules need to know.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`self`, `for`, `HashMap`, …).
    Ident,
    /// A lifetime (`'a`) — kept distinct so `'a` never looks like a char.
    Lifetime,
    /// Integer literal (`42`, `0xFF`, `1_000u64`).
    Int,
    /// Float literal (`1.0`, `2e-3`, `1f64`) — the float-arithmetic rule
    /// keys off this.
    Float,
    /// Any string-shaped literal: `"…"`, `r#"…"#`, `b"…"`, `'c'`.
    Str,
    /// One punctuation character (`.`, `:`, `[`, `!`, …).
    Punct(char),
}

/// One token with its 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Identifier or numeric-literal text (empty for every other kind —
    /// the rules match identifier spellings and the wire-schema parser
    /// reads tag/version literal values).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
}

impl Token {
    /// Whether this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// A lexed file: its token stream plus the comment text found on each line
/// (doc and plain comments alike, block comments attributed to every line
/// they cover).
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Token>,
    /// Line → concatenated comment text on that line.
    pub comments: BTreeMap<usize, String>,
}

/// Tokenises `source`.  Unterminated literals and comments are tolerated
/// (the remainder of the file becomes one literal/comment): the analyzer
/// must degrade gracefully on code it cannot parse, never panic.
pub fn lex(source: &str) -> Lexed {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, text: String, line: usize) {
        self.out.tokens.push(Token { kind, text, line });
    }

    fn add_comment(&mut self, line: usize, text: &str) {
        let entry = self.out.comments.entry(line).or_default();
        if !entry.is_empty() {
            entry.push(' ');
        }
        entry.push_str(text.trim());
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => {
                    self.bump();
                    self.string_body('"');
                    self.push(TokenKind::Str, String::new(), line);
                }
                'r' | 'b' if self.raw_or_byte_literal() => {}
                '\'' => self.char_or_lifetime(),
                _ if c == '_' || c.is_alphabetic() => self.ident(),
                _ if c.is_ascii_digit() => self.number(),
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct(c), String::new(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let start = self.pos;
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
        }
        let text: String = self.chars[start..self.pos]
            .iter()
            .collect::<String>()
            .trim_start_matches('/')
            .trim_start_matches('!')
            .to_string();
        self.add_comment(line, &text);
    }

    fn block_comment(&mut self) {
        // Nested /* */ per the Rust grammar; the text lands on every line
        // the comment covers so a justification above an attribute is found
        // whichever comment style it uses.
        let mut depth = 0usize;
        let mut line_start = self.line;
        let mut buf = String::new();
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.bump();
                self.bump();
                continue;
            }
            if c == '*' && self.peek(1) == Some('/') {
                self.bump();
                self.bump();
                depth -= 1;
                if depth == 0 {
                    break;
                }
                continue;
            }
            if c == '\n' {
                let text = std::mem::take(&mut buf);
                self.add_comment(line_start, &text);
                line_start = self.line + 1;
            } else {
                buf.push(c);
            }
            self.bump();
        }
        self.add_comment(line_start, &buf);
    }

    /// Consumes a string/char body after the opening delimiter, honouring
    /// backslash escapes, up to `close`.
    fn string_body(&mut self, close: char) {
        while let Some(c) = self.bump() {
            if c == '\\' {
                self.bump();
            } else if c == close {
                break;
            }
        }
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br##"…"##`, `b'…'`.  Returns
    /// false when the leading `r`/`b` is just an identifier start.
    fn raw_or_byte_literal(&mut self) -> bool {
        let line = self.line;
        let mut ahead = 1; // past the r/b
        if self.peek(0) == Some('b') && self.peek(1) == Some('r') {
            ahead = 2;
        }
        // b'x'
        if self.peek(0) == Some('b') && self.peek(1) == Some('\'') {
            self.bump();
            self.bump();
            self.string_body('\'');
            self.push(TokenKind::Str, String::new(), line);
            return true;
        }
        let mut hashes = 0;
        while self.peek(ahead + hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek(ahead + hashes) != Some('"') {
            return false;
        }
        let raw = ahead + hashes > 1 || (ahead == 1 && self.peek(0) == Some('r'));
        for _ in 0..=(ahead + hashes) {
            self.bump(); // prefix, hashes and opening quote
        }
        if raw && self.peek(0).is_some() {
            // Raw string: scan for `"` followed by `hashes` hashes, no
            // escapes.
            'outer: while let Some(c) = self.bump() {
                if c == '"' {
                    for i in 0..hashes {
                        if self.peek(i) != Some('#') {
                            continue 'outer;
                        }
                    }
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
            }
        } else {
            self.string_body('"');
        }
        self.push(TokenKind::Str, String::new(), line);
        true
    }

    fn char_or_lifetime(&mut self) {
        let line = self.line;
        self.bump(); // the opening quote
        let first = self.peek(0);
        let second = self.peek(1);
        // `'a` / `'static` are lifetimes; `'x'` (ident-ish char followed by
        // a closing quote) and `'\n'` are char literals.
        let is_lifetime =
            matches!(first, Some(f) if f == '_' || f.is_alphabetic()) && second != Some('\'');
        if is_lifetime {
            let start = self.pos;
            while let Some(c) = self.peek(0) {
                if c == '_' || c.is_alphanumeric() {
                    self.bump();
                } else {
                    break;
                }
            }
            let text: String = self.chars[start..self.pos].iter().collect();
            self.push(TokenKind::Lifetime, text, line);
        } else {
            self.string_body('\'');
            self.push(TokenKind::Str, String::new(), line);
        }
    }

    fn ident(&mut self) {
        let line = self.line;
        // `r"` / `b"` literals are routed here only when raw_or_byte_literal
        // declined, so this really is an identifier.
        let start = self.pos;
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                self.bump();
            } else {
                break;
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.push(TokenKind::Ident, text, line);
    }

    fn number(&mut self) {
        let line = self.line;
        let start = self.pos;
        let radix_prefixed =
            self.peek(0) == Some('0') && matches!(self.peek(1), Some('x') | Some('b') | Some('o'));
        let mut saw_dot = false;
        let mut saw_exp = false;
        while let Some(c) = self.peek(0) {
            match c {
                '0'..='9' | '_' => {
                    self.bump();
                }
                'a'..='f' | 'A'..='F' | 'x' | 'o' if radix_prefixed => {
                    self.bump();
                }
                // `1.0` consumes the dot; `1..n` and `1.max(2)` do not.
                '.' if !saw_dot
                    && !radix_prefixed
                    && self.peek(1).is_some_and(|d| d.is_ascii_digit()) =>
                {
                    saw_dot = true;
                    self.bump();
                }
                'e' | 'E' if !radix_prefixed && !saw_exp => {
                    // Exponent only when followed by digits (else `1e` is a
                    // malformed literal we leave to rustc).
                    let sign = matches!(self.peek(1), Some('+') | Some('-'));
                    let digit_at = if sign { 2 } else { 1 };
                    if self.peek(digit_at).is_some_and(|d| d.is_ascii_digit()) {
                        saw_exp = true;
                        self.bump();
                        if sign {
                            self.bump();
                        }
                    } else {
                        break;
                    }
                }
                // Type suffixes: `1u64`, `1f32` — consume the whole suffix.
                _ if c == '_' || c.is_alphanumeric() => {
                    self.bump();
                }
                _ => break,
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        let float = !radix_prefixed
            && (saw_dot || saw_exp || text.ends_with("f32") || text.ends_with("f64"));
        // Numeric literals keep their text: the wire-schema parser reads
        // enum tag values (`out.push(3)`, `match r.u8()? { 3 => … }`) and
        // the `WIRE_VERSION` constant out of the token stream.
        self.push(
            if float {
                TokenKind::Float
            } else {
                TokenKind::Int
            },
            text,
            line,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).tokens.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_and_punct() {
        let lexed = lex("let x = a.unwrap();");
        let texts: Vec<&str> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["let", "x", "", "a", "", "unwrap", "", "", ""]);
        assert!(lexed.tokens[4].is_punct('.'));
        assert!(lexed.tokens[5].is_ident("unwrap"));
    }

    #[test]
    fn string_contents_are_not_code() {
        // `.unwrap()` inside the string must not produce an `unwrap` ident.
        assert_eq!(idents(r#"warn(".unwrap() is bad")"#), vec!["warn"]);
    }

    #[test]
    fn raw_strings_with_hashes() {
        assert_eq!(
            idents(r##"let s = r#"quote " inside, even .unwrap()"#; done"##),
            vec!["let", "s", "done"]
        );
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        assert_eq!(idents(r#"f(b"panic!()", b'x')"#), vec!["f"]);
        assert_eq!(idents(r###"g(br##"raw "# bytes"##)"###), vec!["g"]);
    }

    #[test]
    fn comments_are_collected_not_tokenised() {
        let lexed = lex("// has unwrap in text\nlet x = 1; /* block\nspanning */ y");
        assert_eq!(
            idents("// has unwrap in text\nlet x = 1;"),
            vec!["let", "x"]
        );
        assert!(lexed.comments[&1].contains("has unwrap in text"));
        assert!(lexed.comments[&2].contains("block"));
        assert!(lexed.comments[&3].contains("spanning"));
    }

    #[test]
    fn nested_block_comments() {
        assert_eq!(
            idents("/* outer /* inner */ still comment */ code"),
            vec!["code"]
        );
    }

    #[test]
    fn doc_comments_hide_examples() {
        // Doctest code must never look like library code to the rules.
        assert_eq!(
            idents("/// let y = x.unwrap();\nfn real() {}"),
            vec!["fn", "real"]
        );
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }").tokens;
        let lifetimes: Vec<&Token> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lifetimes.iter().all(|t| t.text == "a"));
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Str).count(), 1);
    }

    #[test]
    fn escaped_chars_and_quotes() {
        assert_eq!(
            idents(r"let c = '\''; let d = '\\'; after"),
            vec!["let", "c", "let", "d", "after"]
        );
    }

    #[test]
    fn nested_generics_lex_cleanly() {
        // The `>>` at the end must come out as two Punct('>') tokens, and
        // every type name must survive as an ident.
        let names = idents("queues: HashMap<usize, HashMap<usize, Vec<M>>>");
        assert_eq!(
            names,
            vec!["queues", "HashMap", "usize", "HashMap", "usize", "Vec", "M"]
        );
        let ks = kinds(">>");
        assert_eq!(ks, vec![TokenKind::Punct('>'), TokenKind::Punct('>')]);
    }

    #[test]
    fn float_vs_int_vs_range_vs_method() {
        assert_eq!(kinds("1.0"), vec![TokenKind::Float]);
        assert_eq!(kinds("2e-3"), vec![TokenKind::Float]);
        assert_eq!(kinds("1f64"), vec![TokenKind::Float]);
        assert_eq!(kinds("0x1E"), vec![TokenKind::Int]);
        // `0..n` is int, range punct, ident — not a float.
        assert_eq!(
            kinds("0..n"),
            vec![
                TokenKind::Int,
                TokenKind::Punct('.'),
                TokenKind::Punct('.'),
                TokenKind::Ident
            ]
        );
        // `1.max(2)` is a method call on an integer literal.
        assert_eq!(
            kinds("1.max"),
            vec![TokenKind::Int, TokenKind::Punct('.'), TokenKind::Ident]
        );
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        lex("\"unterminated");
        lex("/* unterminated");
        lex("r#\"unterminated");
        lex("'");
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let lexed = lex("a\n\"two\nline string\"\nb");
        let a = &lexed.tokens[0];
        let s = &lexed.tokens[1];
        let b = &lexed.tokens[2];
        assert_eq!((a.line, s.line, b.line), (1, 2, 4));
    }
}
