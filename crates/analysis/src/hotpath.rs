//! The `hot` pass: allocation sites reachable from the declared hot-entry
//! set (`dft-analyze hot`).
//!
//! The round cores run every simulated round, so a stray per-round
//! allocation there is pure steady-state churn — the kind of perf drift
//! `--bench-compare` only catches once it exceeds the 2× wall-clock gate.
//! This pass catches the class statically: it builds the workspace call
//! graph ([`crate::callgraph`]), marks everything reachable from
//! [`HOT_ENTRIES`] as hot, and flags the allocating constructs the ROADMAP
//! names (owned-container construction and cloning) inside hot functions.
//! Findings ratchet against `ALLOC_baseline.json` exactly like the main
//! scan's `ANALYSIS_baseline.json`.
//!
//! Two escape hatches, in preference order:
//!
//! 1. a `// hot-ok: <why>` comment on the site's line (or the line above)
//!    suppresses the finding at the source, keeping the justification next
//!    to the code;
//! 2. a baseline entry (via `dft-analyze hot --update-baseline`) records
//!    the justification centrally, for sites where a comment would repeat
//!    itself (e.g. a rule-wide `Arc` refcount-bump clone).
//!
//! Like every pass in this crate, the analysis is heuristic: no type
//! information means `.clone()` cannot distinguish an `Arc` bump from a
//! deep copy, and method-call resolution over-approximates (see
//! `callgraph`).  Over-approximation is the safe direction — a wrongly-hot
//! finding is triaged once, a wrongly-cold function hides regressions
//! forever.

use std::collections::BTreeMap;
use std::path::Path;

use crate::callgraph::{CallGraph, FnNode};
use crate::findings::{normalize_snippet, sort_findings, Finding};
use crate::lexer::{lex, Lexed};
use crate::parser::{fn_items, parse, Tree};
use crate::regions::test_regions;
use crate::walk::{self, FileKind};

/// Owned-container construction in a hot function (`Vec::new`, `vec![…]`,
/// `with_capacity`, `Box::new`, `String::from`, `format!`, `.to_vec()`,
/// `.collect()`).
pub const RULE_HOT_ALLOC: &str = "hot-alloc";
/// `.clone()` in a hot function (no type info: `Arc` refcount bumps must be
/// suppressed or baselined with that justification).
pub const RULE_HOT_CLONE: &str = "hot-clone";

/// The declared hot-entry set: the phase bodies both round engines drive
/// every round, delivery batching, rumor-set merging and the signature
/// chain-verify loop (the ROADMAP's "hot trio" wall).  Matched against the
/// inventory by `(self type, method)` name, so the fixture trees can
/// exercise the pass by declaring the same shapes.
pub const HOT_ENTRIES: &[(Option<&str>, &str)] = &[
    // dft_sim::driver::RoundCore — the multi-port phase bodies.
    (Some("RoundCore"), "begin_round"),
    (Some("RoundCore"), "deliver"),
    (Some("RoundCore"), "finalize"),
    // dft_sim::driver::SinglePortCore — the single-port intent/poll paths.
    (Some("SinglePortCore"), "begin_round"),
    (Some("SinglePortCore"), "take_send"),
    (Some("SinglePortCore"), "set_drained"),
    (Some("SinglePortCore"), "finalize"),
    // dft_sim::delivery — crash-phase filtering and port-queue batching.
    (Some("EngineCore"), "apply_crash_phase"),
    (Some("EngineCore"), "finish_round"),
    (Some("PortMap"), "push"),
    (Some("PortMap"), "drain"),
    // dft_core::values::ExtantSet — rumor-set merging (E6/E7 wall).
    (Some("ExtantSet"), "merge"),
    (Some("ExtantSet"), "update"),
    // dft_auth — the Dolev–Strong chain-verify loop (E8 wall).
    (Some("SignedValue"), "verify_chain"),
    (Some("SignedValue"), "verify_chain_with_length"),
];

/// A lexed file retained for snippet and suppression lookup.
struct HotFile {
    rel: String,
    lines: Vec<String>,
    lexed: Lexed,
}

/// Analyzes every scannable file under `root` and returns the hot-path
/// allocation findings, sorted by `(file, line, rule)`.
///
/// # Errors
///
/// Returns a message for filesystem failures (unreadable tree or file).
pub fn analyze_hot(root: &Path) -> Result<Vec<Finding>, String> {
    let files = walk::discover(root).map_err(|e| format!("cannot walk {}: {e}", root.display()))?;
    let mut prepared = Vec::new();
    let mut nodes = Vec::new();
    for file in files {
        if file.kind == FileKind::Test {
            continue;
        }
        let bytes = std::fs::read(&file.path)
            .map_err(|e| format!("cannot read {}: {e}", file.path.display()))?;
        let source = String::from_utf8_lossy(&bytes).into_owned();
        let lexed = lex(&source);
        let regions = test_regions(&lexed.tokens);
        let trees = parse(&lexed.tokens);
        for item in fn_items(&trees, &|line| regions.contains(line)) {
            nodes.push(FnNode {
                file: file.rel.clone(),
                item,
            });
        }
        prepared.push(HotFile {
            rel: file.rel.clone(),
            lines: source.lines().map(str::to_string).collect(),
            lexed,
        });
    }
    let by_rel: BTreeMap<&str, &HotFile> = prepared.iter().map(|p| (p.rel.as_str(), p)).collect();

    let graph = CallGraph::build(nodes);
    let hot_from = graph.mark_hot(HOT_ENTRIES);

    let mut findings = Vec::new();
    for (i, node) in graph.nodes.iter().enumerate() {
        let Some(entry) = &hot_from[i] else { continue };
        let Some(file) = by_rel.get(node.file.as_str()) else {
            continue;
        };
        let mut sites = Vec::new();
        alloc_sites(&node.item.body, &mut sites);
        for site in sites {
            if hot_ok(file, site.line) {
                continue;
            }
            findings.push(Finding {
                file: file.rel.clone(),
                line: site.line,
                rule: site.rule,
                message: format!(
                    "{} in hot fn `{}` (reachable from {entry})",
                    site.what,
                    node.label(),
                ),
                snippet: normalize_snippet(
                    file.lines
                        .get(site.line.saturating_sub(1))
                        .map_or("", |l| l),
                ),
            });
        }
    }
    sort_findings(&mut findings);
    Ok(findings)
}

/// One allocation site inside a function body.
struct Site {
    line: usize,
    rule: &'static str,
    what: String,
}

/// Qualified constructors that always allocate an owned container.
const ALLOC_PATHS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Box", "new"),
    ("String", "from"),
    ("String", "new"),
];

/// Collects the allocating constructs in the trees, recursing into groups.
fn alloc_sites(trees: &[Tree], out: &mut Vec<Site>) {
    for (i, tree) in trees.iter().enumerate() {
        if let Tree::Group { trees: inner, .. } = tree {
            alloc_sites(inner, out);
            continue;
        }
        let Some(name) = tree.ident() else { continue };
        let line = tree.line();
        // Allocating macros: `vec![…]`, `format!(…)`.
        if matches!(name, "vec" | "format")
            && matches!(trees.get(i + 1), Some(t) if t.is_punct('!'))
            && matches!(trees.get(i + 2), Some(Tree::Group { .. }))
        {
            out.push(Site {
                line,
                rule: RULE_HOT_ALLOC,
                what: format!("{name}!"),
            });
            continue;
        }
        if !matches!(trees.get(i + 1), Some(t) if t.group('(').is_some()) {
            continue;
        }
        // Method-call allocators: `.to_vec()`, `.collect()`, `.clone()`.
        if i > 0 && trees[i - 1].is_punct('.') {
            match name {
                "to_vec" | "collect" => out.push(Site {
                    line,
                    rule: RULE_HOT_ALLOC,
                    what: format!(".{name}()"),
                }),
                "clone" => out.push(Site {
                    line,
                    rule: RULE_HOT_CLONE,
                    what: ".clone()".to_string(),
                }),
                _ => {}
            }
            continue;
        }
        // Qualified constructors: `Vec::new(…)`, `X::with_capacity(…)`.
        if i >= 2 && trees[i - 1].is_punct(':') && trees[i - 2].is_punct(':') {
            let seg = trees.get(i.wrapping_sub(3)).and_then(Tree::ident);
            if name == "with_capacity" {
                let seg = seg.unwrap_or("?");
                out.push(Site {
                    line,
                    rule: RULE_HOT_ALLOC,
                    what: format!("{seg}::with_capacity"),
                });
            } else if let Some(seg) = seg {
                if ALLOC_PATHS.contains(&(seg, name)) {
                    out.push(Site {
                        line,
                        rule: RULE_HOT_ALLOC,
                        what: format!("{seg}::{name}"),
                    });
                }
            }
        }
    }
}

/// Whether the site's line (or the one above) carries a `// hot-ok: <why>`
/// suppression with actual prose after the tag — a bare `// hot-ok:` is not
/// a justification, mirroring the `#[allow]` audit.
fn hot_ok(file: &HotFile, line: usize) -> bool {
    [line, line.saturating_sub(1)].iter().any(|l| {
        file.lexed.comments.get(l).is_some_and(|text| {
            text.split("hot-ok:").nth(1).is_some_and(|why| {
                why.split(|c: char| !c.is_alphabetic())
                    .any(|word| word.len() >= 3)
            })
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sites_of(src: &str) -> Vec<(usize, &'static str, String)> {
        let lexed = lex(src);
        let trees = parse(&lexed.tokens);
        let mut out = Vec::new();
        alloc_sites(&trees, &mut out);
        out.into_iter().map(|s| (s.line, s.rule, s.what)).collect()
    }

    #[test]
    fn alloc_sites_cover_the_declared_constructs() {
        let found = sites_of(
            "let a = Vec::new();\n\
             let b = vec![1, 2];\n\
             let c = HashMap::with_capacity(8);\n\
             let d = Box::new(a);\n\
             let e = String::from(\"x\");\n\
             let f = format!(\"{e}\");\n\
             let g = xs.to_vec();\n\
             let h: Vec<u8> = ys.iter().collect();\n\
             let i = arc.clone();",
        );
        let whats: Vec<&str> = found.iter().map(|(_, _, w)| w.as_str()).collect();
        assert_eq!(
            whats,
            vec![
                "Vec::new",
                "vec!",
                "HashMap::with_capacity",
                "Box::new",
                "String::from",
                "format!",
                ".to_vec()",
                ".collect()",
                ".clone()",
            ]
        );
        assert!(found[..8].iter().all(|(_, r, _)| *r == RULE_HOT_ALLOC));
        assert_eq!(found[8].1, RULE_HOT_CLONE);
    }

    #[test]
    fn non_allocating_shapes_stay_quiet() {
        let found = sites_of(
            "let a = xs.iter().sum();\n\
             let b = NodeId::new(3); // constructor of a Copy wrapper\n\
             xs.clear();\n\
             let v = Vec::len(&xs);",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn hot_ok_requires_prose_after_the_tag() {
        let with_prose = HotFile {
            rel: "x.rs".into(),
            lines: Vec::new(),
            lexed: lex("let a = Vec::new(); // hot-ok: filled once at startup"),
        };
        assert!(hot_ok(&with_prose, 1));
        assert!(hot_ok(&with_prose, 2), "line above also counts");
        let bare = HotFile {
            rel: "x.rs".into(),
            lines: Vec::new(),
            lexed: lex("let a = Vec::new(); // hot-ok:"),
        };
        assert!(!hot_ok(&bare, 1));
        let unrelated = HotFile {
            rel: "x.rs".into(),
            lines: Vec::new(),
            lexed: lex("let a = Vec::new(); // some other comment"),
        };
        assert!(!hot_ok(&unrelated, 1));
    }
}
