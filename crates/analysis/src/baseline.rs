//! The committed findings baseline (`ANALYSIS_baseline.json`).
//!
//! `dft-analyze` fails CI only on *new* findings: every intentional
//! exception (an `expect` whose invariant is real, float threshold math,
//! bounds-proved indexing) lives in the baseline with a one-line
//! justification.  Entries are keyed by `(file, rule, snippet)` — the
//! whitespace-normalised source line, not a line *number* — so unrelated
//! edits above a finding do not invalidate it.  Noisy per-expression rules
//! (`index-slicing`, `float-protocol`) use one *bucket* entry per file
//! (`"snippet": "*"`) holding a count: the ratchet direction still holds
//! (new sites push the count over the allowance and fail CI) without a
//! thousand-line baseline.
//!
//! `dft-analyze --update-baseline` regenerates the file, carrying existing
//! justifications over and stamping `TODO: justify` on new entries so
//! review can find them.

use std::collections::BTreeMap;

use crate::findings::Finding;
use crate::json::{self, escape, Json};

/// The bucket wildcard snippet.
pub const BUCKET: &str = "*";

/// Rules whose baseline entries are per-file count buckets rather than
/// per-snippet lines (too many individually-harmless sites to enumerate).
pub const BUCKET_RULES: &[&str] = &["index-slicing", "float-protocol"];

/// One allowance: up to `count` findings of `rule` in `file` matching
/// `snippet` (or any snippet, for [`BUCKET`] entries) are intentional.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Entry {
    /// Root-relative file the allowance applies to.
    pub file: String,
    /// Rule identifier.
    pub rule: String,
    /// Normalised source line, or [`BUCKET`] for a per-file count bucket.
    pub snippet: String,
    /// How many matching findings are allowed.
    pub count: usize,
    /// One-line justification (reviewed; `TODO: justify` marks fresh ones).
    pub why: String,
}

/// The parsed baseline.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    /// All allowances, in file order.
    pub entries: Vec<Entry>,
}

/// The result of matching current findings against a baseline.
#[derive(Debug, Default)]
pub struct Diff<'a> {
    /// Findings with no remaining allowance — these fail `--ci`.
    pub new: Vec<&'a Finding>,
    /// Entries whose allowance exceeds the current findings (code was
    /// fixed or deleted): `(entry, matched_count)`.  Reported as warnings
    /// so the baseline gets re-tightened, but never a CI failure.
    pub stale: Vec<(&'a Entry, usize)>,
}

impl Baseline {
    /// Parses the JSON baseline format.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed construct or missing
    /// field.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let doc = json::parse(text)?;
        let entries_json = doc
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or("baseline has no \"entries\" array")?;
        let mut entries = Vec::with_capacity(entries_json.len());
        for (i, entry) in entries_json.iter().enumerate() {
            let field = |key: &str| -> Result<String, String> {
                entry
                    .get(key)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or(format!("entry {i}: missing string field {key:?}"))
            };
            entries.push(Entry {
                file: field("file")?,
                rule: field("rule")?,
                snippet: field("snippet")?,
                count: entry
                    .get("count")
                    .and_then(Json::as_usize)
                    .ok_or(format!("entry {i}: missing integer field \"count\""))?,
                why: field("why")?,
            });
        }
        Ok(Baseline { entries })
    }

    /// Renders the baseline, sorted by `(file, rule, snippet)` so updates
    /// diff cleanly.
    pub fn to_json(&self) -> String {
        let mut sorted: Vec<&Entry> = self.entries.iter().collect();
        sorted.sort_by(|a, b| (&a.file, &a.rule, &a.snippet).cmp(&(&b.file, &b.rule, &b.snippet)));
        let mut out = String::from("{\n  \"schema\": 1,\n  \"entries\": [\n");
        for (i, e) in sorted.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"file\": \"{}\", \"rule\": \"{}\", \"count\": {}, \"snippet\": \"{}\",\n      \"why\": \"{}\" }}{}\n",
                escape(&e.file),
                escape(&e.rule),
                e.count,
                escape(&e.snippet),
                escape(&e.why),
                if i + 1 < sorted.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Matches `findings` against the allowances.  Exact snippet entries
    /// are consumed first; leftovers then draw from the file's bucket entry
    /// (if any).  Unmatched findings are new; unconsumed allowances are
    /// stale.
    pub fn diff<'a>(&'a self, findings: &'a [Finding]) -> Diff<'a> {
        // Remaining allowance per exact key and per bucket.
        let mut exact: BTreeMap<(&str, &str, &str), usize> = BTreeMap::new();
        let mut bucket: BTreeMap<(&str, &str), usize> = BTreeMap::new();
        for e in &self.entries {
            if e.snippet == BUCKET {
                *bucket
                    .entry((e.file.as_str(), e.rule.as_str()))
                    .or_default() += e.count;
            } else {
                *exact
                    .entry((e.file.as_str(), e.rule.as_str(), e.snippet.as_str()))
                    .or_default() += e.count;
            }
        }
        let mut diff = Diff::default();
        for finding in findings {
            let ekey = (
                finding.file.as_str(),
                finding.rule,
                finding.snippet.as_str(),
            );
            if let Some(left) = exact.get_mut(&ekey).filter(|left| **left > 0) {
                *left -= 1;
                continue;
            }
            let bkey = (finding.file.as_str(), finding.rule);
            if let Some(left) = bucket.get_mut(&bkey).filter(|left| **left > 0) {
                *left -= 1;
                continue;
            }
            diff.new.push(finding);
        }
        for e in &self.entries {
            let left = if e.snippet == BUCKET {
                bucket.get(&(e.file.as_str(), e.rule.as_str())).copied()
            } else {
                exact
                    .get(&(e.file.as_str(), e.rule.as_str(), e.snippet.as_str()))
                    .copied()
            };
            // `left` is the *pooled* remainder; attribute it to the first
            // entry of the pool only (duplicate keys in a hand-edited file
            // are pooled, which is the forgiving behaviour).
            if let Some(left) = left.filter(|l| *l > 0) {
                diff.stale
                    .push((e, e.count.saturating_sub(left.min(e.count))));
                if e.snippet == BUCKET {
                    bucket.insert((e.file.as_str(), e.rule.as_str()), 0);
                } else {
                    exact.insert((e.file.as_str(), e.rule.as_str(), e.snippet.as_str()), 0);
                }
            }
        }
        diff
    }

    /// Builds a fresh baseline covering exactly `findings`, per-snippet for
    /// precise rules and per-file buckets for [`BUCKET_RULES`], carrying
    /// over justifications from `self` where a key survives.
    pub fn updated(&self, findings: &[Finding]) -> Baseline {
        let mut counts: BTreeMap<(String, &'static str, String), usize> = BTreeMap::new();
        for f in findings {
            let snippet = if BUCKET_RULES.contains(&f.rule) {
                BUCKET.to_string()
            } else {
                f.snippet.clone()
            };
            *counts.entry((f.file.clone(), f.rule, snippet)).or_default() += 1;
        }
        let why_of = |file: &str, rule: &str, snippet: &str| -> Option<String> {
            self.entries
                .iter()
                .find(|e| e.file == file && e.rule == rule && e.snippet == snippet)
                .or_else(|| {
                    self.entries
                        .iter()
                        .find(|e| e.file == file && e.rule == rule && e.snippet == BUCKET)
                })
                .map(|e| e.why.clone())
        };
        let entries = counts
            .into_iter()
            .map(|((file, rule, snippet), count)| Entry {
                why: why_of(&file, rule, &snippet).unwrap_or_else(|| "TODO: justify".to_string()),
                file,
                rule: rule.to_string(),
                snippet,
                count,
            })
            .collect();
        Baseline { entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, rule: &'static str, snippet: &str) -> Finding {
        Finding {
            file: file.to_string(),
            line: 1,
            rule,
            message: String::new(),
            snippet: snippet.to_string(),
        }
    }

    fn entry(file: &str, rule: &str, snippet: &str, count: usize) -> Entry {
        Entry {
            file: file.to_string(),
            rule: rule.to_string(),
            snippet: snippet.to_string(),
            count,
            why: "because".to_string(),
        }
    }

    #[test]
    fn json_round_trips() {
        let baseline = Baseline {
            entries: vec![
                entry("a.rs", "panic-expect", "x.expect(\"y\")", 2),
                entry("b.rs", "index-slicing", BUCKET, 7),
            ],
        };
        let parsed = Baseline::parse(&baseline.to_json()).expect("parses");
        assert_eq!(parsed, baseline);
    }

    #[test]
    fn exact_allowance_consumed_then_new() {
        let baseline = Baseline {
            entries: vec![entry("a.rs", "panic-expect", "snip", 1)],
        };
        let findings = vec![
            finding("a.rs", "panic-expect", "snip"),
            finding("a.rs", "panic-expect", "snip"),
        ];
        let diff = baseline.diff(&findings);
        assert_eq!(diff.new.len(), 1, "second identical finding is new");
        assert!(diff.stale.is_empty());
    }

    #[test]
    fn bucket_covers_any_snippet_in_file() {
        let baseline = Baseline {
            entries: vec![entry("a.rs", "index-slicing", BUCKET, 2)],
        };
        let findings = vec![
            finding("a.rs", "index-slicing", "x[0]"),
            finding("a.rs", "index-slicing", "y[i + 1]"),
        ];
        let diff = baseline.diff(&findings);
        assert!(diff.new.is_empty());
        // A third site overflows the bucket.
        let findings3 = [
            findings.clone(),
            vec![finding("a.rs", "index-slicing", "z[j]")],
        ]
        .concat();
        assert_eq!(baseline.diff(&findings3).new.len(), 1);
    }

    #[test]
    fn bucket_does_not_leak_across_files_or_rules() {
        let baseline = Baseline {
            entries: vec![entry("a.rs", "index-slicing", BUCKET, 5)],
        };
        let findings = vec![
            finding("b.rs", "index-slicing", "x[0]"),
            finding("a.rs", "panic-unwrap", "x.unwrap()"),
        ];
        assert_eq!(baseline.diff(&findings).new.len(), 2);
    }

    #[test]
    fn unused_allowances_are_stale() {
        let baseline = Baseline {
            entries: vec![entry("a.rs", "panic-expect", "snip", 3)],
        };
        let findings = vec![finding("a.rs", "panic-expect", "snip")];
        let diff = baseline.diff(&findings);
        assert!(diff.new.is_empty());
        assert_eq!(diff.stale.len(), 1);
        assert_eq!(diff.stale[0].1, 1, "only one of three matched");
    }

    #[test]
    fn update_preserves_justifications_and_buckets() {
        let old = Baseline {
            entries: vec![
                entry("a.rs", "panic-expect", "snip", 1),
                entry("b.rs", "index-slicing", BUCKET, 9),
            ],
        };
        let findings = vec![
            finding("a.rs", "panic-expect", "snip"),
            finding("a.rs", "panic-expect", "other"),
            finding("b.rs", "index-slicing", "v[0]"),
            finding("b.rs", "index-slicing", "v[1]"),
        ];
        let updated = old.updated(&findings);
        let get = |file: &str, snippet: &str| {
            updated
                .entries
                .iter()
                .find(|e| e.file == file && e.snippet == snippet)
                .expect("entry present")
        };
        assert_eq!(get("a.rs", "snip").why, "because");
        assert_eq!(get("a.rs", "other").why, "TODO: justify");
        let bucket = get("b.rs", BUCKET);
        assert_eq!(bucket.count, 2, "bucket re-counted from findings");
        assert_eq!(bucket.why, "because");
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(Baseline::parse("{}").is_err());
        assert!(Baseline::parse("{\"entries\": [{}]}").is_err());
        assert!(Baseline::parse("not json").is_err());
    }
}
