//! Findings: what a rule reports, and how findings render.

use crate::json::escape;

/// One diagnostic from the rule engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Root-relative path with forward slashes (stable across platforms —
    /// the baseline file embeds these).
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Rule identifier (one of [`crate::rules::RULES`]).
    pub rule: &'static str,
    /// Human-readable explanation of the hazard at this site.
    pub message: String,
    /// The source line, whitespace-normalised — the baseline key, so
    /// findings survive unrelated line-number churn.
    pub snippet: String,
}

impl Finding {
    /// `file:line: [rule] message` — the human diagnostic line.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}\n    {}",
            self.file, self.line, self.rule, self.message, self.snippet
        )
    }

    /// The finding as one machine-readable JSON object, following the same
    /// diagnostics idiom as `run_experiments --diag-json`: every line is an
    /// object with at least `tool`, `level` and `message` keys.
    pub fn to_json(&self, baselined: bool) -> String {
        format!(
            "{{\"tool\": \"dft-analyze\", \"level\": \"{}\", \"rule\": \"{}\", \
             \"file\": \"{}\", \"line\": {}, \"message\": \"{}\", \"snippet\": \"{}\"}}",
            if baselined { "baselined" } else { "error" },
            self.rule,
            escape(&self.file),
            self.line,
            escape(&self.message),
            escape(&self.snippet),
        )
    }
}

/// The one deterministic finding order every pass and every `--json`
/// emitter shares: `(file, line, rule)`.  Both `analyze` and `analyze_hot`
/// sort through this, so output order can never depend on rule
/// registration or graph traversal order.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
}

/// Collapses runs of whitespace to single spaces and trims — the snippet
/// normalisation used for baseline matching.
pub fn normalize_snippet(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut last_space = true;
    for c in line.chars() {
        if c.is_whitespace() {
            if !last_space {
                out.push(' ');
            }
            last_space = true;
        } else {
            out.push(c);
            last_space = false;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snippet_normalisation() {
        assert_eq!(normalize_snippet("   a \t b  \n"), "a b");
        assert_eq!(normalize_snippet("x"), "x");
        assert_eq!(normalize_snippet("  "), "");
    }

    #[test]
    fn shared_sort_orders_by_file_line_rule() {
        let f = |file: &str, line: usize, rule: &'static str| Finding {
            file: file.to_string(),
            line,
            rule,
            message: String::new(),
            snippet: String::new(),
        };
        // Deliberately out of order on every key.
        let mut findings = vec![
            f("b.rs", 1, "hot-alloc"),
            f("a.rs", 9, "panic-unwrap"),
            f("a.rs", 9, "hot-clone"),
            f("a.rs", 2, "panic-unwrap"),
        ];
        sort_findings(&mut findings);
        let keys: Vec<(&str, usize, &str)> = findings
            .iter()
            .map(|f| (f.file.as_str(), f.line, f.rule))
            .collect();
        assert_eq!(
            keys,
            vec![
                ("a.rs", 2, "panic-unwrap"),
                ("a.rs", 9, "hot-clone"),
                ("a.rs", 9, "panic-unwrap"),
                ("b.rs", 1, "hot-alloc"),
            ]
        );
    }

    #[test]
    fn json_line_escapes_content() {
        let finding = Finding {
            file: "crates/x/src/lib.rs".to_string(),
            line: 7,
            rule: "panic-expect",
            message: "msg with \"quotes\"".to_string(),
            snippet: "let x = m.expect(\"why\");".to_string(),
        };
        let json = finding.to_json(false);
        assert!(json.contains("\\\"quotes\\\""));
        assert!(json.contains("\"level\": \"error\""));
        let parsed = crate::json::parse(&json).expect("valid JSON");
        assert_eq!(
            parsed.get("snippet").and_then(crate::json::Json::as_str),
            Some("let x = m.expect(\"why\");")
        );
    }
}
