//! Test-region detection: which lines of a file are test code.
//!
//! Panic-hygiene and nondeterminism rules only apply to production code, so
//! the engine must know where `#[cfg(test)]` modules and `#[test]`
//! functions live.  Detection is token-based (comments and strings can
//! never open a region) and brace-matched: an attribute marking a test item
//! covers everything from the attribute's line to the item's closing brace.
//!
//! Whole files can also be test code: integration-test trees (`tests/`
//! directories) and `tests.rs` modules included via `#[cfg(test)] mod
//! tests;` are classified by path in [`crate::walk`], not here.

use crate::lexer::{Token, TokenKind};

/// Inclusive line ranges that are test code.
#[derive(Debug, Default)]
pub struct TestRegions {
    ranges: Vec<(usize, usize)>,
}

impl TestRegions {
    /// Whether `line` (1-based) falls inside any test region.
    pub fn contains(&self, line: usize) -> bool {
        self.ranges
            .iter()
            .any(|&(start, end)| (start..=end).contains(&line))
    }
}

/// Finds the test regions of a token stream.
pub fn test_regions(tokens: &[Token]) -> TestRegions {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_punct('#') {
            i += 1;
            continue;
        }
        let attr_line = tokens[i].line;
        let mut j = i + 1;
        let inner = j < tokens.len() && tokens[j].is_punct('!');
        if inner {
            j += 1;
        }
        if j >= tokens.len() || !tokens[j].is_punct('[') {
            i += 1;
            continue;
        }
        let Some((names, end)) = attribute_idents(tokens, j) else {
            i += 1;
            continue;
        };
        i = end + 1;
        if !is_test_attribute(&names) {
            continue;
        }
        if inner {
            // `#![cfg(test)]`: the whole file is test code.
            ranges.push((1, usize::MAX));
            continue;
        }
        if let Some(close_line) = item_end_line(tokens, i) {
            ranges.push((attr_line, close_line));
        }
    }
    TestRegions { ranges }
}

/// Collects the identifiers inside the attribute whose `[` is at `open`,
/// returning them plus the index of the matching `]`.
fn attribute_idents(tokens: &[Token], open: usize) -> Option<(Vec<&str>, usize)> {
    let mut depth = 0usize;
    let mut names = Vec::new();
    for (k, token) in tokens.iter().enumerate().skip(open) {
        match token.kind {
            TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return Some((names, k));
                }
            }
            TokenKind::Ident => names.push(token.text.as_str()),
            _ => {}
        }
    }
    None
}

/// Whether an attribute's identifier list marks a test item: `#[test]`
/// (with or without qualifiers like `tokio::test`) or `#[cfg(test)]` — but
/// not `#[cfg(not(test))]`, which marks *production-only* code.
fn is_test_attribute(names: &[&str]) -> bool {
    match names.first() {
        Some(&"test") => true,
        Some(&"cfg") => names.contains(&"test") && !names.contains(&"not"),
        _ => names.last() == Some(&"test"),
    }
}

/// Finds the line of the `}` closing the item that starts after an
/// attribute at token index `from`.  Returns `None` for brace-less items
/// (`#[cfg(test)] mod tests;` — the out-of-line file is handled by path).
fn item_end_line(tokens: &[Token], from: usize) -> Option<usize> {
    let mut k = from;
    // Skip any further attributes between the test attribute and the item.
    while k < tokens.len() && tokens[k].is_punct('#') {
        if k + 1 < tokens.len() && tokens[k + 1].is_punct('[') {
            let (_, end) = attribute_idents(tokens, k + 1)?;
            k = end + 1;
        } else {
            break;
        }
    }
    // Find the item's opening brace; a `;` first means there is no body.
    while k < tokens.len() {
        match tokens[k].kind {
            TokenKind::Punct(';') => return None,
            TokenKind::Punct('{') => break,
            _ => k += 1,
        }
    }
    let mut depth = 0usize;
    while k < tokens.len() {
        match tokens[k].kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return Some(tokens[k].line);
                }
            }
            _ => {}
        }
        k += 1;
    }
    // Unbalanced braces: treat the region as running to end of file rather
    // than silently scanning test code with production rules.
    Some(usize::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn regions(src: &str) -> TestRegions {
        test_regions(&lex(src).tokens)
    }

    #[test]
    fn cfg_test_module_is_a_region() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n  fn helper() {}\n}\nfn lib2() {}\n";
        let r = regions(src);
        assert!(!r.contains(1));
        assert!(r.contains(2));
        assert!(r.contains(4));
        assert!(r.contains(5));
        assert!(!r.contains(6));
    }

    #[test]
    fn test_fn_is_a_region() {
        let src = "#[test]\nfn t() {\n  body();\n}\nfn prod() {}\n";
        let r = regions(src);
        assert!(r.contains(3));
        assert!(!r.contains(5));
    }

    #[test]
    fn cfg_not_test_is_not_a_region() {
        let r = regions("#[cfg(not(test))]\nfn prod() {\n  body();\n}\n");
        assert!(!r.contains(2));
    }

    #[test]
    fn modless_cfg_test_declaration_has_no_region() {
        let r = regions("#[cfg(test)]\nmod tests;\nfn prod() {}\n");
        assert!(!r.contains(3));
    }

    #[test]
    fn inner_cfg_test_marks_whole_file() {
        let r = regions("#![cfg(test)]\nfn anything() {}\n");
        assert!(r.contains(1));
        assert!(r.contains(999));
    }

    #[test]
    fn stacked_attributes_before_the_item() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests {\n  fn x() {}\n}\n";
        assert!(regions(src).contains(4));
    }

    #[test]
    fn braces_in_strings_do_not_end_regions() {
        let src =
            "#[cfg(test)]\nmod tests {\n  const S: &str = \"}\";\n  fn x() {}\n}\nfn prod() {}\n";
        let r = regions(src);
        assert!(r.contains(4));
        assert!(!r.contains(6));
    }
}
