//! `dft-analyze`: the CLI over [`dft_analysis`].
//!
//! ```text
//! dft-analyze [--root DIR] [--baseline PATH] [--ci] [--all]
//!             [--json PATH] [--update-baseline]
//! dft-analyze hot [--root DIR] [--baseline PATH] [--ci] [--all]
//!                 [--json PATH] [--update-baseline]
//! dft-analyze schema [--root DIR] [--schema PATH] [--ci] [--update]
//! ```
//!
//! * `--root DIR` — workspace to scan (default: current directory; CI runs
//!   from the checkout root);
//! * `--baseline PATH` — baseline file (default: `ANALYSIS_baseline.json`
//!   under the root; a missing file means an empty baseline);
//! * `--ci` — quiet on success, exit 1 on any unbaselined finding (the CI
//!   gate);
//! * `--all` — also list baselined findings (marked as such);
//! * `--json PATH` — additionally write every finding as one JSON object
//!   per line (the shared diagnostics idiom: `tool` / `level` / `message`
//!   keys, same shape as `run_experiments --diag-json`);
//! * `--update-baseline` — rewrite the baseline to cover exactly the
//!   current findings, preserving existing justifications and stamping
//!   `TODO: justify` on new entries for review.
//!
//! The `hot` subcommand runs the hot-path allocation pass (see
//! `dft_analysis::hotpath`): allocation and clone sites reachable from the
//! round cores' per-round phase bodies, ratcheted against
//! `ALLOC_baseline.json` with the same flags and exit codes as the main
//! scan (`--baseline` defaults to `ALLOC_baseline.json` under the root).
//!
//! The `schema` subcommand runs the wire-schema ratchet: it extracts the
//! canonical encode/decode schema of every `impl Wire for T` and compares
//! it against the committed `WIRE_SCHEMA.json` (`--schema PATH` to
//! override the location).  Symmetry problems always fail; a content
//! change at the same `WIRE_VERSION` fails until the version is bumped;
//! `--update` regenerates the file after a bump (and refuses to paper
//! over an unbumped change).
//!
//! Exit codes: 0 clean, 1 unbaselined findings / schema drift, 2 usage or
//! I/O error.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use dft_analysis::schema::{compare, Schema, SchemaStatus};
use dft_analysis::{analyze, analyze_hot, extract_schema, Baseline, Finding};

const USAGE: &str = "usage: dft-analyze [--root DIR] [--baseline PATH] [--ci] [--all] \
                     [--json PATH] [--update-baseline]\n       \
                     dft-analyze hot [--root DIR] [--baseline PATH] [--ci] [--all] \
                     [--json PATH] [--update-baseline]\n       \
                     dft-analyze schema [--root DIR] [--schema PATH] [--ci] [--update]";

fn fail(message: &str) -> ExitCode {
    eprintln!("dft-analyze: {message}\n{USAGE}");
    ExitCode::from(2)
}

fn schema_main(args: impl Iterator<Item = String>) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut schema_path: Option<PathBuf> = None;
    let mut ci = false;
    let mut update = false;
    let mut args = args;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return fail("--root needs a directory"),
            },
            "--schema" => match args.next() {
                Some(path) => schema_path = Some(PathBuf::from(path)),
                None => return fail("--schema needs a path"),
            },
            "--ci" => ci = true,
            "--update" => update = true,
            other => return fail(&format!("unknown argument {other:?}")),
        }
    }
    let schema_path = schema_path.unwrap_or_else(|| root.join("WIRE_SCHEMA.json"));

    let extraction = match extract_schema(&root) {
        Ok(extraction) => extraction,
        Err(error) => return fail(&format!("cannot extract wire schema: {error}")),
    };
    // Symmetry/resolution problems fail regardless of the committed file:
    // an asymmetric impl is wrong even at the right version.
    if !extraction.problems.is_empty() {
        for finding in &extraction.problems {
            println!("NEW {}", finding.render());
        }
        eprintln!(
            "dft-analyze: {} wire-schema problem(s); fix the impls before ratcheting",
            extraction.problems.len()
        );
        return ExitCode::FAILURE;
    }

    if !schema_path.exists() {
        if update {
            return write_schema(&schema_path, &extraction.schema);
        }
        eprintln!(
            "dft-analyze: no committed schema at {}; run `dft-analyze schema --update`",
            schema_path.display()
        );
        return ExitCode::FAILURE;
    }
    let committed = match std::fs::read_to_string(&schema_path) {
        Ok(text) => match Schema::parse(&text) {
            Ok(schema) => schema,
            Err(error) => return fail(&format!("malformed {}: {error}", schema_path.display())),
        },
        Err(error) => return fail(&format!("cannot read {}: {error}", schema_path.display())),
    };

    match compare(&extraction.schema, &committed) {
        SchemaStatus::Match => {
            if update {
                // Re-render anyway: normalizes hand-edited formatting.
                return write_schema(&schema_path, &extraction.schema);
            }
            if !ci {
                println!(
                    "dft-analyze: wire schema clean — {} type(s) at wire version {}",
                    extraction.schema.types.len(),
                    version_label(extraction.schema.wire_version),
                );
            }
            ExitCode::SUCCESS
        }
        SchemaStatus::Stale {
            committed,
            extracted,
        } => {
            if update {
                return write_schema(&schema_path, &extraction.schema);
            }
            eprintln!(
                "dft-analyze: {} records wire version {} but the tree is at {}; run \
                 `dft-analyze schema --update` to regenerate it",
                schema_path.display(),
                version_label(committed),
                version_label(extracted),
            );
            ExitCode::FAILURE
        }
        SchemaStatus::Drift { details } => {
            for detail in &details {
                eprintln!("dft-analyze: schema drift: {detail}");
            }
            eprintln!(
                "dft-analyze: the wire schema changed without a WIRE_VERSION bump ({} \
                 difference(s) at version {}); bump WIRE_VERSION in \
                 crates/sim/src/shard/mod.rs, then run `dft-analyze schema --update`",
                details.len(),
                version_label(extraction.schema.wire_version),
            );
            // --update deliberately refuses here: regenerating the file
            // would hide an unversioned wire break.
            ExitCode::FAILURE
        }
    }
}

fn version_label(version: Option<u64>) -> String {
    match version {
        Some(v) => v.to_string(),
        None => "<none>".to_string(),
    }
}

fn write_schema(path: &PathBuf, schema: &Schema) -> ExitCode {
    if let Err(error) = std::fs::write(path, schema.to_json()) {
        return fail(&format!("cannot write {}: {error}", path.display()));
    }
    println!(
        "dft-analyze: wrote {} ({} type(s) at wire version {})",
        path.display(),
        schema.types.len(),
        version_label(schema.wire_version),
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1).peekable();
    if args.peek().is_some_and(|a| a == "schema") {
        return schema_main(args.skip(1));
    }
    if args.peek().is_some_and(|a| a == "hot") {
        return ratchet_main(args.skip(1), "ALLOC_baseline.json", analyze_hot);
    }
    ratchet_main(args, "ANALYSIS_baseline.json", analyze)
}

/// The shared baseline-ratchet CLI: run an analysis, diff it against (or
/// rewrite) a committed baseline, report, and exit 1 on new findings.  Both
/// the main scan and the `hot` pass flow through here, so their flags,
/// output shapes and `--json` ordering can never drift apart.
fn ratchet_main(
    args: impl Iterator<Item = String>,
    default_baseline: &str,
    run: fn(&Path) -> Result<Vec<Finding>, String>,
) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut baseline_path: Option<PathBuf> = None;
    let mut ci = false;
    let mut all = false;
    let mut json_out: Option<PathBuf> = None;
    let mut update = false;
    let mut args = args;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return fail("--root needs a directory"),
            },
            "--baseline" => match args.next() {
                Some(path) => baseline_path = Some(PathBuf::from(path)),
                None => return fail("--baseline needs a path"),
            },
            "--ci" => ci = true,
            "--all" => all = true,
            "--json" => match args.next() {
                Some(path) => json_out = Some(PathBuf::from(path)),
                None => return fail("--json needs a path"),
            },
            "--update-baseline" => update = true,
            other => return fail(&format!("unknown argument {other:?}")),
        }
    }
    let baseline_path = baseline_path.unwrap_or_else(|| root.join(default_baseline));

    let findings = match run(&root) {
        Ok(findings) => findings,
        Err(error) => return fail(&error),
    };
    let baseline = if baseline_path.exists() {
        let text = match std::fs::read_to_string(&baseline_path) {
            Ok(text) => text,
            Err(error) => {
                return fail(&format!("cannot read {}: {error}", baseline_path.display()))
            }
        };
        match Baseline::parse(&text) {
            Ok(baseline) => baseline,
            Err(error) => {
                return fail(&format!(
                    "malformed baseline {}: {error}",
                    baseline_path.display()
                ))
            }
        }
    } else {
        if !ci && !update {
            eprintln!(
                "dft-analyze: no baseline at {} (treating as empty)",
                baseline_path.display()
            );
        }
        Baseline::default()
    };

    if update {
        let updated = baseline.updated(&findings);
        if let Err(error) = std::fs::write(&baseline_path, updated.to_json()) {
            return fail(&format!(
                "cannot write {}: {error}",
                baseline_path.display()
            ));
        }
        let todo = updated
            .entries
            .iter()
            .filter(|e| e.why.starts_with("TODO"))
            .count();
        println!(
            "dft-analyze: baseline {} updated: {} entries covering {} findings ({todo} TODO \
             justification{})",
            baseline_path.display(),
            updated.entries.len(),
            findings.len(),
            if todo == 1 { "" } else { "s" },
        );
        return ExitCode::SUCCESS;
    }

    let diff = baseline.diff(&findings);
    if let Some(path) = json_out {
        let mut out = String::new();
        for finding in &findings {
            let is_new = diff.new.iter().any(|f| std::ptr::eq(*f, finding));
            out.push_str(&finding.to_json(!is_new));
            out.push('\n');
        }
        if let Err(error) = std::fs::write(&path, out) {
            return fail(&format!("cannot write {}: {error}", path.display()));
        }
    }

    if all {
        for finding in &findings {
            let is_new = diff.new.iter().any(|f| std::ptr::eq(*f, finding));
            let marker = if is_new { "NEW " } else { "baselined " };
            println!("{marker}{}", finding.render());
        }
    } else {
        for finding in &diff.new {
            println!("NEW {}", finding.render());
        }
    }
    for (entry, matched) in &diff.stale {
        eprintln!(
            "dft-analyze: stale baseline entry: {} [{}] {:?} allows {} but only {matched} \
             found — run --update-baseline to tighten",
            entry.file, entry.rule, entry.snippet, entry.count,
        );
    }
    if diff.new.is_empty() {
        if !ci {
            println!(
                "dft-analyze: clean — {} finding(s), all baselined ({} stale allowance(s))",
                findings.len(),
                diff.stale.len(),
            );
        }
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "dft-analyze: {} unbaselined finding(s); fix them or justify in {}",
            diff.new.len(),
            baseline_path.display(),
        );
        ExitCode::FAILURE
    }
}
