//! `dft-analyze`: the CLI over [`dft_analysis`].
//!
//! ```text
//! dft-analyze [--root DIR] [--baseline PATH] [--ci] [--all]
//!             [--json PATH] [--update-baseline]
//! ```
//!
//! * `--root DIR` — workspace to scan (default: current directory; CI runs
//!   from the checkout root);
//! * `--baseline PATH` — baseline file (default: `ANALYSIS_baseline.json`
//!   under the root; a missing file means an empty baseline);
//! * `--ci` — quiet on success, exit 1 on any unbaselined finding (the CI
//!   gate);
//! * `--all` — also list baselined findings (marked as such);
//! * `--json PATH` — additionally write every finding as one JSON object
//!   per line (the shared diagnostics idiom: `tool` / `level` / `message`
//!   keys, same shape as `run_experiments --diag-json`);
//! * `--update-baseline` — rewrite the baseline to cover exactly the
//!   current findings, preserving existing justifications and stamping
//!   `TODO: justify` on new entries for review.
//!
//! Exit codes: 0 clean, 1 unbaselined findings, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use dft_analysis::{analyze, Baseline};

const USAGE: &str = "usage: dft-analyze [--root DIR] [--baseline PATH] [--ci] [--all] \
                     [--json PATH] [--update-baseline]";

fn fail(message: &str) -> ExitCode {
    eprintln!("dft-analyze: {message}\n{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut baseline_path: Option<PathBuf> = None;
    let mut ci = false;
    let mut all = false;
    let mut json_out: Option<PathBuf> = None;
    let mut update = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return fail("--root needs a directory"),
            },
            "--baseline" => match args.next() {
                Some(path) => baseline_path = Some(PathBuf::from(path)),
                None => return fail("--baseline needs a path"),
            },
            "--ci" => ci = true,
            "--all" => all = true,
            "--json" => match args.next() {
                Some(path) => json_out = Some(PathBuf::from(path)),
                None => return fail("--json needs a path"),
            },
            "--update-baseline" => update = true,
            other => return fail(&format!("unknown argument {other:?}")),
        }
    }
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("ANALYSIS_baseline.json"));

    let findings = match analyze(&root) {
        Ok(findings) => findings,
        Err(error) => return fail(&error),
    };
    let baseline = if baseline_path.exists() {
        let text = match std::fs::read_to_string(&baseline_path) {
            Ok(text) => text,
            Err(error) => {
                return fail(&format!("cannot read {}: {error}", baseline_path.display()))
            }
        };
        match Baseline::parse(&text) {
            Ok(baseline) => baseline,
            Err(error) => {
                return fail(&format!(
                    "malformed baseline {}: {error}",
                    baseline_path.display()
                ))
            }
        }
    } else {
        if !ci && !update {
            eprintln!(
                "dft-analyze: no baseline at {} (treating as empty)",
                baseline_path.display()
            );
        }
        Baseline::default()
    };

    if update {
        let updated = baseline.updated(&findings);
        if let Err(error) = std::fs::write(&baseline_path, updated.to_json()) {
            return fail(&format!(
                "cannot write {}: {error}",
                baseline_path.display()
            ));
        }
        let todo = updated
            .entries
            .iter()
            .filter(|e| e.why.starts_with("TODO"))
            .count();
        println!(
            "dft-analyze: baseline {} updated: {} entries covering {} findings ({todo} TODO \
             justification{})",
            baseline_path.display(),
            updated.entries.len(),
            findings.len(),
            if todo == 1 { "" } else { "s" },
        );
        return ExitCode::SUCCESS;
    }

    let diff = baseline.diff(&findings);
    if let Some(path) = json_out {
        let mut out = String::new();
        for finding in &findings {
            let is_new = diff.new.iter().any(|f| std::ptr::eq(*f, finding));
            out.push_str(&finding.to_json(!is_new));
            out.push('\n');
        }
        if let Err(error) = std::fs::write(&path, out) {
            return fail(&format!("cannot write {}: {error}", path.display()));
        }
    }

    if all {
        for finding in &findings {
            let is_new = diff.new.iter().any(|f| std::ptr::eq(*f, finding));
            let marker = if is_new { "NEW " } else { "baselined " };
            println!("{marker}{}", finding.render());
        }
    } else {
        for finding in &diff.new {
            println!("NEW {}", finding.render());
        }
    }
    for (entry, matched) in &diff.stale {
        eprintln!(
            "dft-analyze: stale baseline entry: {} [{}] {:?} allows {} but only {matched} \
             found — run --update-baseline to tighten",
            entry.file, entry.rule, entry.snippet, entry.count,
        );
    }
    if diff.new.is_empty() {
        if !ci {
            println!(
                "dft-analyze: clean — {} finding(s), all baselined ({} stale allowance(s))",
                findings.len(),
                diff.stale.len(),
            );
        }
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "dft-analyze: {} unbaselined finding(s); fix them or justify in {}",
            diff.new.len(),
            baseline_path.display(),
        );
        ExitCode::FAILURE
    }
}
