//! A recursive-descent layer over the token stream: bracket-matched token
//! trees, `impl Wire for T` discovery, and the literal/constant readers the
//! structural analyses need.
//!
//! The lexer ([`crate::lexer`]) stays deliberately flat; this module adds
//! just enough structure on top for the wire-schema and layering analyses:
//! a [`Tree`] is either a single token or a `(…)` / `[…]` / `{…}` group of
//! trees, so "the body of this `fn`" or "the arms of this `match`" become
//! slice walks instead of index arithmetic.  Like the lexer, everything
//! here degrades gracefully on malformed input — a stray closing bracket
//! ends the innermost open group, and an unclosed group runs to end of
//! file — because the analyzer must never panic on code it cannot parse.

use crate::lexer::{Token, TokenKind};

/// One node of the bracket-matched parse: a token, or a delimited group.
#[derive(Clone, Debug)]
pub enum Tree {
    /// A single non-bracket token.
    Leaf(Token),
    /// A `(…)`, `[…]` or `{…}` group.
    Group {
        /// The opening delimiter: `(`, `[` or `{`.
        open: char,
        /// 1-based line of the opening delimiter.
        line: usize,
        /// The trees between the delimiters.
        trees: Vec<Tree>,
    },
}

impl Tree {
    /// The 1-based source line this tree starts on.
    pub fn line(&self) -> usize {
        match self {
            Tree::Leaf(t) => t.line,
            Tree::Group { line, .. } => *line,
        }
    }

    /// Whether this tree is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        matches!(self, Tree::Leaf(t) if t.is_ident(name))
    }

    /// Whether this tree is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self, Tree::Leaf(t) if t.is_punct(c))
    }

    /// The identifier text, if this is an identifier leaf.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tree::Leaf(t) if t.kind == TokenKind::Ident => Some(&t.text),
            _ => None,
        }
    }

    /// The literal value, if this is an integer leaf.
    pub fn int(&self) -> Option<u64> {
        match self {
            Tree::Leaf(t) if t.kind == TokenKind::Int => int_value(&t.text),
            _ => None,
        }
    }

    /// The contained trees, if this is a group opened by `open`.
    pub fn group(&self, want: char) -> Option<&[Tree]> {
        match self {
            Tree::Group { open, trees, .. } if *open == want => Some(trees),
            _ => None,
        }
    }
}

/// Parses a token stream into bracket-matched trees.
pub fn parse(tokens: &[Token]) -> Vec<Tree> {
    let mut pos = 0;
    let mut top = Vec::new();
    while pos < tokens.len() {
        match parse_one(tokens, &mut pos, None) {
            Some(tree) => top.push(tree),
            // A stray closer at top level: consume and drop it.
            None => pos += 1,
        }
    }
    top
}

fn closer_of(open: char) -> char {
    match open {
        '(' => ')',
        '[' => ']',
        _ => '}',
    }
}

/// Parses one tree at `pos`, or returns `None` (without consuming) when the
/// next token closes the enclosing group — including a *mismatched* closer,
/// which ends every group up to the one it actually matches.
fn parse_one(tokens: &[Token], pos: &mut usize, close: Option<char>) -> Option<Tree> {
    let token = tokens.get(*pos)?;
    match token.kind {
        TokenKind::Punct(open @ ('(' | '[' | '{')) => {
            let line = token.line;
            *pos += 1;
            let want = closer_of(open);
            let mut trees = Vec::new();
            while let Some(next) = tokens.get(*pos) {
                if let TokenKind::Punct(c @ (')' | ']' | '}')) = next.kind {
                    if c == want {
                        *pos += 1; // the matching closer
                    }
                    // A mismatched closer stays put for an outer group.
                    break;
                }
                match parse_one(tokens, pos, Some(want)) {
                    Some(tree) => trees.push(tree),
                    None => break,
                }
            }
            Some(Tree::Group { open, line, trees })
        }
        TokenKind::Punct(')' | ']' | '}') if close.is_some() => None,
        _ => {
            *pos += 1;
            Some(Tree::Leaf(token.clone()))
        }
    }
}

/// Evaluates a Rust integer-literal's text (`42`, `0xFF`, `1_000u64`).
pub fn int_value(text: &str) -> Option<u64> {
    let mut clean: String = text.chars().filter(|c| *c != '_').collect();
    // Type suffixes start with `u`/`i`, which are never digits in any radix
    // the lexer accepts, so suffix stripping cannot eat literal digits.
    for suffix in [
        "usize", "isize", "u128", "i128", "u64", "i64", "u32", "i32", "u16", "i16", "u8", "i8",
    ] {
        if clean.len() > suffix.len() && clean.ends_with(suffix) {
            clean.truncate(clean.len() - suffix.len());
            break;
        }
    }
    let (radix, digits) = match clean.split_at_checked(2) {
        Some(("0x" | "0X", rest)) => (16, rest),
        Some(("0b" | "0B", rest)) => (2, rest),
        Some(("0o" | "0O", rest)) => (8, rest),
        _ => (10, clean.as_str()),
    };
    u64::from_str_radix(digits, radix).ok()
}

/// The canonical type name for a tuple impl of the given arity: `Unit` for
/// `()`, `Tuple2` for `(A, B)`, and so on.  Shared by the wire-untested
/// rule and the schema extractor so the two can never disagree on what a
/// test must name.
pub fn tuple_type_name(arity: usize) -> String {
    if arity == 0 {
        "Unit".to_string()
    } else {
        format!("Tuple{arity}")
    }
}

/// One `fn` inside an impl body.
#[derive(Clone, Debug)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Binding names of the non-`self` parameters, in order (`encode`'s
    /// writer, `decode`'s reader).
    pub params: Vec<String>,
    /// The body's trees.
    pub body: Vec<Tree>,
}

/// One `impl Wire for T` block (including qualified trait paths like
/// `impl dft_sim::shard::Wire for T` and tuple impls).
#[derive(Clone, Debug)]
pub struct WireImpl {
    /// Canonical implemented-type name (`NodeId`, `Vec`, `Tuple2`, …).
    pub type_name: String,
    /// The impl's generic type parameters (`["M"]`, `["A", "B"]`, …).
    pub generics: Vec<String>,
    /// 1-based line of the `impl` keyword.
    pub line: usize,
    /// The `fn`s of the impl body.
    pub fns: Vec<FnDef>,
}

impl WireImpl {
    /// The impl's `fn` of the given name, if present.
    pub fn fn_def(&self, name: &str) -> Option<&FnDef> {
        self.fns.iter().find(|f| f.name == name)
    }
}

/// Collects every `impl … Wire for T` in the trees, recursing into module
/// bodies.  `is_test` filters out impls inside test regions by line.
pub fn wire_impls(trees: &[Tree], is_test: &dyn Fn(usize) -> bool) -> Vec<WireImpl> {
    let mut out = Vec::new();
    collect_impls(trees, is_test, &mut out);
    out
}

fn collect_impls(trees: &[Tree], is_test: &dyn Fn(usize) -> bool, out: &mut Vec<WireImpl>) {
    let mut i = 0;
    while let Some(tree) = trees.get(i) {
        if tree.is_ident("impl") && !is_test(tree.line()) {
            if let Some((imp, next)) = parse_wire_impl(trees, i) {
                out.push(imp);
                i = next;
                continue;
            }
        }
        if let Tree::Group { trees: inner, .. } = tree {
            collect_impls(inner, is_test, out);
        }
        i += 1;
    }
}

/// Parses an impl header starting at the `impl` keyword at `i`.  Returns
/// the impl and the index just past its body when it is a `Wire` impl.
fn parse_wire_impl(trees: &[Tree], i: usize) -> Option<(WireImpl, usize)> {
    let line = trees.get(i)?.line();
    let mut k = i + 1;
    let generics = parse_generics(trees, &mut k);
    // The trait path: identifiers and `::`, ending at `for`.  The impl is
    // interesting only when the path's last segment is `Wire`.
    let mut last_segment: Option<&str> = None;
    loop {
        let tree = trees.get(k)?;
        if tree.is_ident("for") {
            break;
        }
        match tree {
            Tree::Leaf(t) if t.kind == TokenKind::Ident => last_segment = Some(&t.text),
            Tree::Leaf(t) if t.is_punct(':') => {}
            // Anything else (an inherent impl's `{`, generics on the trait,
            // lifetimes) — not the shape we are after.
            _ => return None,
        }
        k += 1;
    }
    if last_segment != Some("Wire") {
        return None;
    }
    k += 1; // past `for`
    let type_name = parse_self_type(trees, &mut k)?;
    // The body is the next `{` group.
    loop {
        let tree = trees.get(k)?;
        if let Some(body) = tree.group('{') {
            let fns = parse_fns(body);
            return Some((
                WireImpl {
                    type_name,
                    generics,
                    line,
                    fns,
                },
                k + 1,
            ));
        }
        k += 1;
    }
}

/// Parses `<…>` impl generics at `k` (if present), collecting the type
/// parameter names and leaving `k` just past the closing `>`.
fn parse_generics(trees: &[Tree], k: &mut usize) -> Vec<String> {
    let mut params = Vec::new();
    if !trees.get(*k).is_some_and(|t| t.is_punct('<')) {
        return params;
    }
    *k += 1;
    let mut depth = 1usize;
    let mut expect_param = true;
    while depth > 0 {
        let Some(tree) = trees.get(*k) else { break };
        if tree.is_punct('<') {
            depth += 1;
        } else if tree.is_punct('>') {
            depth -= 1;
        } else if tree.is_punct(',') && depth == 1 {
            expect_param = true;
        } else if tree.is_punct(':') && depth == 1 {
            expect_param = false;
        } else if expect_param && depth == 1 {
            if let Some(name) = tree.ident() {
                params.push(name.to_string());
                expect_param = false;
            }
        }
        *k += 1;
    }
    params
}

/// Parses the implemented type after `for`, producing its canonical name:
/// tuples become [`tuple_type_name`]s, paths keep their last segment, and
/// generic arguments are dropped (`Outgoing<M>` → `Outgoing`).
fn parse_self_type(trees: &[Tree], k: &mut usize) -> Option<String> {
    if let Some(elems) = trees.get(*k).and_then(|t| t.group('(')) {
        *k += 1;
        return Some(tuple_type_name(tuple_arity(elems)));
    }
    let mut last: Option<String> = None;
    let mut depth = 0usize;
    while let Some(tree) = trees.get(*k) {
        match tree {
            Tree::Leaf(t) if t.is_punct('<') => depth += 1,
            Tree::Leaf(t) if t.is_punct('>') => depth = depth.saturating_sub(1),
            Tree::Leaf(t) if t.kind == TokenKind::Ident && depth == 0 => {
                if t.text == "where" {
                    break;
                }
                last = Some(t.text.clone());
            }
            Tree::Group { open: '{', .. } => break,
            _ => {}
        }
        *k += 1;
    }
    last
}

/// Number of elements in a tuple type's tree list (`()` → 0, `(A, B)` → 2),
/// tolerating trailing commas.
pub fn tuple_arity(elems: &[Tree]) -> usize {
    let mut arity = 0;
    let mut in_element = false;
    for tree in elems {
        if tree.is_punct(',') {
            in_element = false;
        } else if !in_element {
            arity += 1;
            in_element = true;
        }
    }
    arity
}

/// Extracts the `fn`s of an impl body.
fn parse_fns(body: &[Tree]) -> Vec<FnDef> {
    let mut fns = Vec::new();
    let mut i = 0;
    while let Some(tree) = body.get(i) {
        if !tree.is_ident("fn") {
            i += 1;
            continue;
        }
        let line = tree.line();
        let Some(name) = body.get(i + 1).and_then(Tree::ident) else {
            i += 1;
            continue;
        };
        let Some(params) = body.get(i + 2).and_then(|t| t.group('(')) else {
            i += 2;
            continue;
        };
        // Skip the return type (if any) up to the body group.
        let mut k = i + 3;
        while k < body.len() && body.get(k).and_then(|t| t.group('{')).is_none() {
            k += 1;
        }
        let fn_body = body.get(k).and_then(|t| t.group('{')).unwrap_or(&[]);
        fns.push(FnDef {
            name: name.to_string(),
            line,
            params: param_bindings(params),
            body: fn_body.to_vec(),
        });
        i = k + 1;
    }
    fns
}

/// The binding names of the non-`self` parameters, in order.
fn param_bindings(params: &[Tree]) -> Vec<String> {
    let mut bindings = Vec::new();
    let mut start_of_param = true;
    for tree in params {
        if tree.is_punct(',') {
            start_of_param = true;
            continue;
        }
        if !start_of_param {
            continue;
        }
        match tree.ident() {
            Some("mut") | None => {} // `&`, `mut` — keep looking
            Some("self") => start_of_param = false,
            Some(name) => {
                bindings.push(name.to_string());
                start_of_param = false;
            }
        }
    }
    bindings
}

/// One first-party function item: a free `fn`, an inherent or trait-impl
/// method, or a trait definition's default method — with its body kept as
/// token trees.  This is the raw inventory the call-graph layer
/// ([`crate::callgraph`]) resolves names against.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Canonical self type of the enclosing `impl`/`trait`, if any
    /// (`RoundCore` for `impl<P> RoundCore<P>`, the trait name for a
    /// default method, `None` for a free function).
    pub self_type: Option<String>,
    /// Whether the parameter list starts with a `self` receiver.
    pub has_self: bool,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// The body's trees (empty for signature-only trait methods).
    pub body: Vec<Tree>,
}

/// Collects every function item in the trees — free `fn`s, methods of
/// inherent and trait impls, and trait default methods — recursing into
/// module bodies.  `is_test` filters out items inside test regions by line.
pub fn fn_items(trees: &[Tree], is_test: &dyn Fn(usize) -> bool) -> Vec<FnItem> {
    let mut out = Vec::new();
    collect_fn_items(trees, None, is_test, &mut out);
    out
}

fn collect_fn_items(
    trees: &[Tree],
    self_type: Option<&str>,
    is_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<FnItem>,
) {
    let mut i = 0;
    while let Some(tree) = trees.get(i) {
        if tree.is_ident("impl") && !is_test(tree.line()) {
            if let Some(next) = collect_impl_items(trees, i, is_test, out) {
                i = next;
                continue;
            }
        }
        if tree.is_ident("trait") && !is_test(tree.line()) {
            if let Some(next) = collect_trait_items(trees, i, is_test, out) {
                i = next;
                continue;
            }
        }
        if tree.is_ident("fn") && !is_test(tree.line()) {
            if let Some((item, next)) = parse_fn_item(trees, i, self_type) {
                out.push(item);
                i = next;
                continue;
            }
        }
        if let Tree::Group { trees: inner, .. } = tree {
            // Module bodies, blocks.  Impl/trait bodies never reach here:
            // the branches above consume them together with their header.
            collect_fn_items(inner, None, is_test, out);
        }
        i += 1;
    }
}

/// Parses the impl header at `i` (inherent or trait impl alike), collects
/// its body's methods under the impl's canonical self type, and returns the
/// index just past the body.
fn collect_impl_items(
    trees: &[Tree],
    i: usize,
    is_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<FnItem>,
) -> Option<usize> {
    let mut k = i + 1;
    parse_generics(trees, &mut k);
    // For `impl Type { … }` and `impl Trait for Type { … }` alike, the
    // canonical self type is the last depth-0 path segment before the body.
    let self_type = parse_self_type(trees, &mut k)?;
    loop {
        let tree = trees.get(k)?;
        if let Some(body) = tree.group('{') {
            collect_fn_items(body, Some(&self_type), is_test, out);
            return Some(k + 1);
        }
        k += 1;
    }
}

/// Parses the trait definition at `i`, collecting its default methods under
/// the trait's name, and returns the index just past the body.
fn collect_trait_items(
    trees: &[Tree],
    i: usize,
    is_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<FnItem>,
) -> Option<usize> {
    let name = trees.get(i + 1).and_then(Tree::ident)?.to_string();
    let mut k = i + 2;
    loop {
        let tree = trees.get(k)?;
        if let Some(body) = tree.group('{') {
            collect_fn_items(body, Some(&name), is_test, out);
            return Some(k + 1);
        }
        k += 1;
    }
}

/// Parses one `fn` item starting at the `fn` keyword at `i`.  Returns the
/// item and the index just past its body (or past the `;` of a
/// signature-only trait method).
fn parse_fn_item(trees: &[Tree], i: usize, self_type: Option<&str>) -> Option<(FnItem, usize)> {
    let line = trees.get(i)?.line();
    let name = trees.get(i + 1).and_then(Tree::ident)?.to_string();
    let mut k = i + 2;
    parse_generics(trees, &mut k);
    let params = trees.get(k).and_then(|t| t.group('('))?;
    let has_self = params
        .iter()
        .take_while(|t| !t.is_punct(','))
        .any(|t| t.is_ident("self"));
    // Skip the return type / where clause up to the body group, stopping at
    // a `;` — a signature-only trait method has no body.
    k += 1;
    loop {
        let Some(tree) = trees.get(k) else {
            return Some((
                FnItem {
                    name,
                    self_type: self_type.map(str::to_string),
                    has_self,
                    line,
                    body: Vec::new(),
                },
                k,
            ));
        };
        if tree.is_punct(';') {
            return Some((
                FnItem {
                    name,
                    self_type: self_type.map(str::to_string),
                    has_self,
                    line,
                    body: Vec::new(),
                },
                k + 1,
            ));
        }
        if let Some(body) = tree.group('{') {
            return Some((
                FnItem {
                    name,
                    self_type: self_type.map(str::to_string),
                    has_self,
                    line,
                    body: body.to_vec(),
                },
                k + 1,
            ));
        }
        k += 1;
    }
}

/// Splits a group's trees at top-level commas into non-empty elements
/// (tuple elements, struct-literal fields, use-group members).
pub fn top_level_elements(trees: &[Tree]) -> Vec<&[Tree]> {
    let mut out = Vec::new();
    let mut start = 0;
    for (i, tree) in trees.iter().enumerate() {
        if tree.is_punct(',') {
            if let Some(element) = trees.get(start..i) {
                if !element.is_empty() {
                    out.push(element);
                }
            }
            start = i + 1;
        }
    }
    if let Some(element) = trees.get(start..) {
        if !element.is_empty() {
            out.push(element);
        }
    }
    out
}

/// The workspace's `WIRE_VERSION` constant (`pub const WIRE_VERSION: u16 =
/// N;`), if this token stream declares it.
pub fn wire_version_const(tokens: &[Token]) -> Option<u64> {
    for (i, token) in tokens.iter().enumerate() {
        if !token.is_ident("WIRE_VERSION") {
            continue;
        }
        if i == 0 || !tokens.get(i - 1).is_some_and(|t| t.is_ident("const")) {
            continue;
        }
        for k in i + 1..tokens.len().min(i + 8) {
            if !tokens.get(k).is_some_and(|t| t.is_punct('=')) {
                continue;
            }
            if let Some(value) = tokens.get(k + 1) {
                if value.kind == TokenKind::Int {
                    return int_value(&value.text);
                }
            }
            break;
        }
    }
    None
}

/// Type aliases (`type Name = Target;`) whose target is a plain path —
/// the alias table the schema extractor resolves nested names through
/// (`SignerId` → `usize`).  Generic aliases and non-path targets are
/// skipped.
pub fn type_aliases(tokens: &[Token], is_test: &dyn Fn(usize) -> bool) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for (i, token) in tokens.iter().enumerate() {
        if !token.is_ident("type") || is_test(token.line) {
            continue;
        }
        let Some(name) = tokens.get(i + 1).filter(|t| t.kind == TokenKind::Ident) else {
            continue;
        };
        if !tokens.get(i + 2).is_some_and(|t| t.is_punct('=')) {
            continue;
        }
        let mut target: Option<&str> = None;
        let mut ok = true;
        for t in tokens.iter().skip(i + 3) {
            if t.is_punct(';') {
                break;
            }
            match t.kind {
                TokenKind::Ident => target = Some(&t.text),
                TokenKind::Punct(':') => {}
                _ => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            if let Some(target) = target {
                out.push((name.text.clone(), target.to_string()));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn trees(src: &str) -> Vec<Tree> {
        parse(&lex(src).tokens)
    }

    fn impls(src: &str) -> Vec<WireImpl> {
        wire_impls(&trees(src), &|_| false)
    }

    #[test]
    fn groups_nest_and_tolerate_mismatches() {
        let t = trees("fn f(a: &[u8]) { g(x); }");
        assert_eq!(t.len(), 4, "fn, f, params, body");
        assert!(t[3].group('{').is_some());
        // Malformed input must not panic and must keep later trees.
        let t = trees(") } after");
        assert!(t.iter().any(|t| t.is_ident("after")));
        let t = trees("( [ ) after");
        assert!(!t.is_empty());
    }

    #[test]
    fn int_values() {
        assert_eq!(int_value("42"), Some(42));
        assert_eq!(int_value("0xFF"), Some(255));
        assert_eq!(int_value("0b101"), Some(5));
        assert_eq!(int_value("1_000u64"), Some(1000));
        assert_eq!(int_value("7usize"), Some(7));
        assert_eq!(int_value("0xAu8"), Some(10));
        assert_eq!(int_value("banana"), None);
    }

    #[test]
    fn finds_plain_and_generic_impls() {
        let found = impls(
            "impl Wire for NodeId { fn encode(&self, out: &mut Vec<u8>) {} }\n\
             impl<M: Wire> Wire for Outgoing<M> { fn decode(r: &mut WireReader<'_>) -> X { todo() } }",
        );
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].type_name, "NodeId");
        assert_eq!(
            found[0].fn_def("encode").map(|f| f.params.clone()),
            Some(vec!["out".to_string()])
        );
        assert_eq!(found[1].type_name, "Outgoing");
        assert_eq!(found[1].generics, vec!["M".to_string()]);
        assert_eq!(
            found[1].fn_def("decode").map(|f| f.params.clone()),
            Some(vec!["r".to_string()])
        );
    }

    #[test]
    fn finds_qualified_tuple_and_nested_impls() {
        let found = impls(
            "impl dft_sim::shard::Wire for SignedValue { }\n\
             impl Wire for () { }\n\
             impl<A: Wire, B: Wire> Wire for (A, B) { }\n\
             mod wire_impls { impl Wire for RumorMap { } }\n\
             impl Display for NotWire { }",
        );
        let names: Vec<&str> = found.iter().map(|i| i.type_name.as_str()).collect();
        assert_eq!(names, vec!["SignedValue", "Unit", "Tuple2", "RumorMap"]);
        assert_eq!(found[2].generics, vec!["A".to_string(), "B".to_string()]);
    }

    #[test]
    fn bounded_generics_collect_only_params() {
        let found = impls("impl<V: JoinValue + Wire> Wire for AeaMsg<V> { }");
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].generics, vec!["V".to_string()]);
        assert_eq!(found[0].type_name, "AeaMsg");
    }

    #[test]
    fn test_regions_are_excluded() {
        let lexed = lex("impl Wire for Real { }\nimpl Wire for TestOnly { }");
        let found = wire_impls(&parse(&lexed.tokens), &|line| line == 2);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].type_name, "Real");
    }

    #[test]
    fn wire_version_is_read_from_the_const() {
        let lexed = lex("pub const WIRE_VERSION: u16 = 7;\n\
             fn check(v: u16) -> bool { v != WIRE_VERSION }");
        assert_eq!(wire_version_const(&lexed.tokens), Some(7));
        assert_eq!(
            wire_version_const(&lex("let x = WIRE_VERSION;").tokens),
            None
        );
    }

    #[test]
    fn alias_table_keeps_plain_paths_only() {
        let lexed = lex("pub type SignerId = usize;\n\
             pub type WireResult<T> = Result<T, WireError>;\n\
             type Unit = ();\n\
             type Qualified = crate::keys::SignerId;");
        let aliases = type_aliases(&lexed.tokens, &|_| false);
        assert_eq!(
            aliases,
            vec![
                ("SignerId".to_string(), "usize".to_string()),
                ("Qualified".to_string(), "SignerId".to_string()),
            ]
        );
    }
}
