//! Declarative crate-layering analysis.
//!
//! The workspace's architecture is a strict layering: pure sans-I/O
//! protocol layers (`core`, `overlay`, `auth`, the `sim` driver module)
//! sit below the I/O-owning backends (`sim`'s pool and shard transports),
//! which sit below the executables (`bench`, `node`).  The old
//! `sans-io-boundary` rule pinned one corner of this (no `std::{net, io,
//! thread}` in the driver and `core`); this module generalizes it into a
//! declared `LAYERS` map checked from `use`/path tokens:
//!
//! * every first-party path a file mentions must be its own crate or a
//!   declared import of the file's layer ([`RULE_LAYER`] otherwise), so
//!   `core` cannot quietly reach into `sim`'s pool or sockets;
//! * layers marked `io: false` keep the original sans-I/O check: no
//!   `std::net`, `std::io` or `std::thread` anywhere in them.
//!
//! Allow-list entries: a bare crate name (`"dft_sim"`) permits only the
//! crate root (re-exports); `"dft_sim::shard"` permits that module and
//! everything under it; `"dft_sim::*"` permits the whole crate.  A
//! layer's own crate is implicitly allowed unless the layer declares
//! entries for it (the driver module does, to pin which `sim` internals
//! the sans-I/O round logic may touch).

use crate::lexer::Token;
use crate::parser::{self, top_level_elements, Tree};
use crate::rules::RULE_SANS_IO;

/// A first-party import outside the file's declared layer.
pub const RULE_LAYER: &str = "layer-boundary";

/// First-party crate roots recognized in paths.
const FIRST_PARTY: [&str; 8] = [
    "dft_analysis",
    "dft_auth",
    "dft_baselines",
    "dft_bench",
    "dft_core",
    "dft_overlay",
    "dft_sim",
    "linear_dft",
];

/// One layer of the declared map.
struct Layer {
    /// Display name used in findings.
    name: &'static str,
    /// Root-relative path prefixes the layer owns (first match wins, so
    /// file-specific entries come before their crate's).
    prefixes: &'static [&'static str],
    /// First-party paths the layer may import (see module docs for the
    /// entry grammar).
    allow: &'static [&'static str],
    /// Whether the layer may touch `std::{net, io, thread}`.
    io: bool,
}

/// The declared layer map, most-specific prefixes first.
const LAYERS: &[Layer] = &[
    // The driver module is sans-I/O *inside* an I/O-owning crate, and the
    // only layer that restricts its own crate: round semantics may touch
    // the simulation vocabulary but not the pool/shard/transport backends.
    Layer {
        name: "sim-driver",
        prefixes: &["crates/sim/src/driver.rs"],
        allow: &[
            "dft_sim",
            "dft_sim::adversary",
            "dft_sim::message",
            "dft_sim::node",
            "dft_sim::protocol",
            "dft_sim::round",
            "dft_sim::runner",
        ],
        io: false,
    },
    Layer {
        name: "core",
        prefixes: &["crates/core/"],
        allow: &[
            "dft_auth",
            "dft_auth::*",
            "dft_overlay",
            "dft_overlay::*",
            "dft_sim",
            "dft_sim::adversary",
            "dft_sim::shard",
        ],
        io: false,
    },
    Layer {
        name: "overlay",
        prefixes: &["crates/overlay/"],
        allow: &[],
        io: false,
    },
    Layer {
        name: "auth",
        prefixes: &["crates/auth/"],
        allow: &["dft_sim", "dft_sim::shard"],
        io: false,
    },
    Layer {
        name: "baselines",
        prefixes: &["crates/baselines/"],
        allow: &["dft_auth", "dft_auth::*", "dft_sim", "dft_sim::shard"],
        io: false,
    },
    Layer {
        name: "sim",
        prefixes: &["crates/sim/"],
        allow: &[],
        io: true,
    },
    Layer {
        name: "bench",
        prefixes: &["crates/bench/"],
        allow: &[
            "dft_auth",
            "dft_auth::*",
            "dft_baselines",
            "dft_baselines::*",
            "dft_core",
            "dft_core::*",
            "dft_overlay",
            "dft_overlay::*",
            "dft_sim",
            "dft_sim::*",
        ],
        io: true,
    },
    Layer {
        name: "node",
        prefixes: &["crates/node/"],
        allow: &[
            "dft_baselines",
            "dft_baselines::*",
            "dft_bench",
            "dft_bench::*",
            "dft_core",
            "dft_core::*",
            "dft_sim",
            "dft_sim::*",
        ],
        io: true,
    },
    Layer {
        name: "analysis",
        prefixes: &["crates/analysis/"],
        allow: &[],
        io: true,
    },
    // The facade crate re-exports the first-party roots, nothing deeper.
    Layer {
        name: "facade",
        prefixes: &["src/"],
        allow: &[
            "dft_auth",
            "dft_baselines",
            "dft_core",
            "dft_overlay",
            "dft_sim",
        ],
        io: false,
    },
];

/// One layering diagnostic (line + rule + message); the caller turns
/// these into [`crate::findings::Finding`]s with test-region filtering.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Site {
    /// 1-based line of the offending path.
    pub line: usize,
    /// [`RULE_LAYER`] or [`crate::rules::RULE_SANS_IO`].
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

/// Checks one file's tokens against the layer map.
pub fn check(rel: &str, tokens: &[Token]) -> Vec<Site> {
    let trees = parser::parse(tokens);
    let Some(layer) = LAYERS
        .iter()
        .find(|l| l.prefixes.iter().any(|p| rel == *p || rel.starts_with(p)))
    else {
        return vec![Site {
            line: 1,
            rule: RULE_LAYER,
            message: "file is not covered by the declared layer map; add it to a layer \
                      in crates/analysis/src/layering.rs"
                .to_string(),
        }];
    };
    let own = own_root(rel);
    let own_restricted = layer
        .allow
        .iter()
        .any(|entry| *entry == own || entry.starts_with(&format!("{own}::")));
    let mut refs = Vec::new();
    collect_refs(&trees, &own, &mut refs);
    let mut sites = Vec::new();
    for (path, line) in refs {
        if allowed(&path, layer, &own, own_restricted) {
            continue;
        }
        sites.push(Site {
            line,
            rule: RULE_LAYER,
            message: format!(
                "`{path}` is not a declared dependency of the `{}` layer (layer map: \
                 crates/analysis/src/layering.rs)",
                layer.name
            ),
        });
    }
    if !layer.io {
        collect_std_io(&trees, &mut sites);
    }
    sites.sort_by(|a, b| (a.line, &a.message).cmp(&(b.line, &b.message)));
    sites.dedup();
    sites
}

/// The first-party root a file's `crate::` paths normalize to.
fn own_root(rel: &str) -> String {
    match rel
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
    {
        Some(name) => format!("dft_{}", name.replace('-', "_")),
        None => "linear_dft".to_string(),
    }
}

fn allowed(path: &str, layer: &Layer, own: &str, own_restricted: bool) -> bool {
    if !own_restricted && (path == own || path.starts_with(&format!("{own}::"))) {
        return true;
    }
    layer.allow.iter().any(|entry| {
        if let Some(base) = entry.strip_suffix("::*") {
            path == base || path.starts_with(&format!("{base}::"))
        } else if entry.contains("::") {
            path == *entry || path.starts_with(&format!("{entry}::"))
        } else {
            path == *entry
        }
    })
}

/// Collects every first-party path prefix the trees mention, as
/// `(normalized path, line)` — `use` declarations, qualified expression
/// paths, and use-groups alike.
fn collect_refs(trees: &[Tree], own: &str, out: &mut Vec<(String, usize)>) {
    let mut i = 0;
    while i < trees.len() {
        let after_path_sep = i > 0 && trees.get(i - 1).is_some_and(|t| t.is_punct(':'));
        if let Some(name) = trees.get(i).and_then(Tree::ident) {
            if !after_path_sep {
                let base = if name == "crate" {
                    Some(own.to_string())
                } else if FIRST_PARTY.contains(&name) {
                    Some(name.to_string())
                } else {
                    None
                };
                if let Some(base) = base {
                    i = follow(trees, i, &base, out);
                    continue;
                }
            }
        }
        if let Some(Tree::Group { trees: inner, .. }) = trees.get(i) {
            collect_refs(inner, own, out);
        }
        i += 1;
    }
}

/// Follows a path starting at the root identifier at `i`, recording the
/// deepest module prefix reached (type names end a path; use-groups fan
/// out per element).  Returns the index just past the consumed path.
fn follow(trees: &[Tree], i: usize, base: &str, out: &mut Vec<(String, usize)>) -> usize {
    let line = trees.get(i).map(Tree::line).unwrap_or(1);
    let mut prefix = base.to_string();
    let mut j = i;
    loop {
        if !(trees.get(j + 1).is_some_and(|t| t.is_punct(':'))
            && trees.get(j + 2).is_some_and(|t| t.is_punct(':')))
        {
            break;
        }
        let Some(next) = trees.get(j + 3) else { break };
        if next.is_punct('*') {
            out.push((prefix, line));
            return j + 4;
        }
        if let Some(seg) = next.ident() {
            if seg.chars().next().is_some_and(char::is_uppercase) {
                break;
            }
            prefix = format!("{prefix}::{seg}");
            j += 3;
            continue;
        }
        if let Some(inner) = next.group('{') {
            for element in top_level_elements(inner) {
                match element.first() {
                    Some(e) if e.is_ident("self") || e.is_punct('*') => {
                        out.push((prefix.clone(), e.line()));
                    }
                    Some(e) => match e.ident() {
                        Some(seg) if !seg.chars().next().is_some_and(char::is_uppercase) => {
                            follow(element, 0, &format!("{prefix}::{seg}"), out);
                        }
                        _ => out.push((prefix.clone(), e.line())),
                    },
                    None => {}
                }
            }
            return j + 4;
        }
        break;
    }
    out.push((prefix, line));
    j + 1
}

/// The original sans-I/O check: no `std::{net, io, thread}` in layers
/// declared `io: false`.
fn collect_std_io(trees: &[Tree], out: &mut Vec<Site>) {
    let mut i = 0;
    while i < trees.len() {
        if trees.get(i).is_some_and(|t| t.is_ident("std"))
            && trees.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && trees.get(i + 2).is_some_and(|t| t.is_punct(':'))
        {
            if let Some(next) = trees.get(i + 3) {
                if let Some(seg) = next.ident() {
                    push_io_site(next.line(), seg, out);
                } else if let Some(inner) = next.group('{') {
                    for element in top_level_elements(inner) {
                        if let Some(e) = element.first() {
                            if let Some(seg) = e.ident() {
                                push_io_site(e.line(), seg, out);
                            }
                        }
                    }
                }
            }
        }
        if let Some(Tree::Group { trees: inner, .. }) = trees.get(i) {
            collect_std_io(inner, out);
        }
        i += 1;
    }
}

fn push_io_site(line: usize, seg: &str, out: &mut Vec<Site>) {
    if matches!(seg, "net" | "io" | "thread") {
        out.push(Site {
            line,
            rule: RULE_SANS_IO,
            message: format!(
                "`std::{seg}` in the sans-I/O layer; I/O and threading belong to the backends"
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn sites(rel: &str, src: &str) -> Vec<Site> {
        check(rel, &lex(src).tokens)
    }

    #[test]
    fn own_crate_is_implicitly_allowed() {
        let found = sites(
            "crates/overlay/src/build.rs",
            "use crate::params::degree;\nuse dft_overlay::graph::Graph;",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn core_may_not_import_sim_internals() {
        let found = sites(
            "crates/core/src/protocol.rs",
            "use dft_sim::shard::Wire;\nuse dft_sim::pool::WorkerPool;",
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found.first().map(|s| s.line), Some(2));
        assert!(found
            .first()
            .is_some_and(|s| s.message.contains("dft_sim::pool")));
    }

    #[test]
    fn use_groups_fan_out_per_element() {
        let found = sites(
            "crates/core/src/protocol.rs",
            "use dft_sim::{shard::frame, pool::scope, NodeId};",
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found
            .first()
            .is_some_and(|s| s.message.contains("dft_sim::pool::scope")));
    }

    #[test]
    fn driver_layer_restricts_its_own_crate() {
        let found = sites(
            "crates/sim/src/driver.rs",
            "use crate::round::Round;\nuse crate::pool::WorkerPool;",
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found
            .first()
            .is_some_and(|s| s.message.contains("dft_sim::pool")));
    }

    #[test]
    fn sans_io_check_survives_in_io_false_layers() {
        let found = sites(
            "crates/core/src/protocol.rs",
            "use std::io::Write;\nuse std::mem;\nuse std::{thread, fmt};",
        );
        let rules: Vec<&str> = found.iter().map(|s| s.rule).collect();
        assert_eq!(rules, vec![RULE_SANS_IO, RULE_SANS_IO], "{found:?}");
        let io_layer = sites("crates/sim/src/pool.rs", "use std::thread;");
        assert!(io_layer.is_empty(), "{io_layer:?}");
    }

    #[test]
    fn uncovered_files_are_flagged() {
        let found = sites("weird/place.rs", "fn main() {}");
        assert_eq!(found.len(), 1);
        assert_eq!(found.first().map(|s| s.rule), Some(RULE_LAYER));
    }

    #[test]
    fn glob_imports_record_the_prefix() {
        let found = sites("crates/core/src/protocol.rs", "use dft_sim::pool::*;");
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found
            .first()
            .is_some_and(|s| s.message.contains("dft_sim::pool")));
    }
}
