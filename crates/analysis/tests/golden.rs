//! Golden tests over the seeded fixture trees.
//!
//! `fixtures/dirty` mirrors real workspace paths (`crates/core/src/…`,
//! `crates/sim/src/…`) and seeds at least one violation of every rule; the
//! test pins the exact `(file, rule)` multiset so a rule that silently
//! stops firing — or starts over-firing — is a test failure, not a quiet
//! coverage regression.  `fixtures/clean` writes the same shapes the
//! approved way and must produce zero findings.

use std::collections::BTreeMap;
use std::path::PathBuf;

use dft_analysis::analyze;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn clean_tree_has_zero_findings() {
    let findings = analyze(&fixture("clean")).expect("scan clean tree");
    let rendered: Vec<String> = findings.iter().map(|f| f.render()).collect();
    assert!(
        findings.is_empty(),
        "clean fixture tree must be clean, got:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn dirty_tree_trips_every_rule() {
    let findings = analyze(&fixture("dirty")).expect("scan dirty tree");

    // Count findings per (file, rule).
    let mut got: BTreeMap<(String, &str), usize> = BTreeMap::new();
    for f in &findings {
        *got.entry((f.file.clone(), f.rule)).or_insert(0) += 1;
    }

    let core = "crates/core/src/protocol.rs";
    let sim = "crates/sim/src/shard_client.rs";
    let sim_root = "crates/sim/src/lib.rs";
    let driver = "crates/sim/src/driver.rs";
    let expected: &[(&str, &str, usize)] = &[
        // Two hash iterations: the `for` loop and `.iter().next()`.
        (core, "nondet-hash-iter", 2),
        (core, "nondet-time", 1),
        (core, "nondet-thread-id", 1),
        // `n as f64 * 0.66`: the type *and* the literal each count.
        (core, "float-protocol", 2),
        // `std::thread::current()` in worker_tag: `crates/core` is part of
        // the sans-I/O layer, so the boundary rule fires alongside the
        // thread-id rule.
        (core, "sans-io-boundary", 1),
        // `use dft_sim::pool::WorkerPool`: the layer map lets core name the
        // sim root, adversary and shard surfaces — not the pool internals.
        (core, "layer-boundary", 1),
        // `std::io` twice (use + return type), `std::net`, `std::thread`.
        (driver, "sans-io-boundary", 4),
        (sim, "nondet-rand", 1),
        (sim, "panic-unwrap", 1),
        (sim, "panic-expect", 1),
        (sim, "panic-macro", 1),
        (sim, "index-slicing", 1),
        (sim, "wire-version", 1),
        // `Unpinned`, `Skewed` and `Orphan`: no test names any of them.
        (sim, "wire-untested", 3),
        (sim, "allow-unjustified", 1),
        // `Skewed` reads its fields in the wrong order; `Orphan` decodes a
        // type the schema cannot resolve.
        (sim, "wire-asymmetry", 2),
        // The dirty crate root misses `#![forbid(unsafe_code)]`.
        (sim_root, "unsafe-forbid", 1),
    ];

    let mut want: BTreeMap<(String, &str), usize> = BTreeMap::new();
    for &(file, rule, count) in expected {
        want.insert((file.to_string(), rule), count);
    }

    let rendered: Vec<String> = findings.iter().map(|f| f.render()).collect();
    assert_eq!(
        got,
        want,
        "dirty fixture findings drifted; full report:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn dirty_findings_carry_lines_and_snippets() {
    let findings = analyze(&fixture("dirty")).expect("scan dirty tree");
    for f in &findings {
        assert!(f.line > 0, "finding without a line: {}", f.render());
        assert!(
            !f.snippet.trim().is_empty(),
            "finding without a snippet: {}",
            f.render()
        );
        // Findings must render as clickable file:line diagnostics.
        assert!(
            f.render().starts_with(&format!("{}:{}:", f.file, f.line)),
            "render shape drifted: {}",
            f.render()
        );
    }
}
