//! Golden tests over the hot-pass fixture trees.
//!
//! `fixtures/hot/dirty` mirrors real workspace paths and seeds the three
//! finding shapes the pass exists to catch: a direct allocation in a hot
//! entry, an allocation reached transitively through one first-party call,
//! and an unjustified clone.  The test pins the exact `(file, rule, count)`
//! multiset.  `fixtures/hot/clean` writes the same round-core shapes the
//! approved way — clear-don't-drop, a justified `hot-ok:` suppression, and
//! a cold constructor that allocates freely — and must stay at zero.

use std::collections::BTreeMap;
use std::path::PathBuf;

use dft_analysis::hotpath::{RULE_HOT_ALLOC, RULE_HOT_CLONE};
use dft_analysis::{analyze_hot, Finding};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/hot")
        .join(name)
}

#[test]
fn clean_tree_has_zero_hot_findings() {
    let findings = analyze_hot(&fixture("clean")).expect("scan clean tree");
    let rendered: Vec<String> = findings.iter().map(|f| f.render()).collect();
    assert!(
        findings.is_empty(),
        "clean hot fixture tree must be clean, got:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn dirty_tree_trips_direct_transitive_and_clone() {
    let findings = analyze_hot(&fixture("dirty")).expect("scan dirty tree");

    let mut got: BTreeMap<(String, &str), usize> = BTreeMap::new();
    for f in &findings {
        *got.entry((f.file.clone(), f.rule)).or_insert(0) += 1;
    }

    let driver = "crates/sim/src/driver.rs";
    let values = "crates/core/src/values.rs";
    let expected: &[(&str, &str, usize)] = &[
        // `Vec::new` directly in `begin_round` + `vec![…]` in the helper
        // reached through `deliver`.
        (driver, RULE_HOT_ALLOC, 2),
        (driver, RULE_HOT_CLONE, 1),
        // `.to_vec()` in `ExtantSet::merge`, the cross-crate entry.
        (values, RULE_HOT_ALLOC, 1),
    ];

    let mut want: BTreeMap<(String, &str), usize> = BTreeMap::new();
    for &(file, rule, count) in expected {
        want.insert((file.to_string(), rule), count);
    }

    let rendered: Vec<String> = findings.iter().map(|f| f.render()).collect();
    assert_eq!(
        got,
        want,
        "hot dirty fixture findings drifted; full report:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn transitive_finding_names_both_the_hot_fn_and_its_entry() {
    let findings = analyze_hot(&fixture("dirty")).expect("scan dirty tree");
    let batch = findings
        .iter()
        .find(|f| f.message.contains("`RoundCore::batch`"))
        .expect("the transitive vec![] finding");
    assert!(
        batch.message.contains("reachable from RoundCore::deliver"),
        "transitive finding must say which entry reached it: {}",
        batch.message
    );
}

/// Both passes hand their findings to the shared `(file, line, rule)` sort
/// before the CLI prints or serializes them, so `--json` order is pinned
/// here once for the hot pass (and in `golden.rs`'s multiset for the main
/// scan, whose analyze() ends with the same sort).
#[test]
fn hot_findings_come_out_in_shared_json_order() {
    let findings = analyze_hot(&fixture("dirty")).expect("scan dirty tree");
    let keys: Vec<(&String, usize, &str)> =
        findings.iter().map(|f| (&f.file, f.line, f.rule)).collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(
        keys, sorted,
        "hot findings must already be in (file, line, rule) order"
    );

    // The JSON lines inherit that order verbatim.
    let lines: Vec<String> = findings
        .iter()
        .map(|f: &Finding| f.to_json(false))
        .collect();
    assert!(lines.windows(2).all(|w| w[0] != w[1]), "distinct findings");
}
