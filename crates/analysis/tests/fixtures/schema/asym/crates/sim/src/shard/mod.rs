//! Asymmetry fixture: symmetry problems fail the `schema` subcommand
//! before any comparison against a committed file.

pub mod wire;

pub const WIRE_VERSION: u16 = 3;
