//! Schema-ratchet fixture: the version constant the extractor reads.

pub mod wire;

pub const WIRE_VERSION: u16 = 3;
