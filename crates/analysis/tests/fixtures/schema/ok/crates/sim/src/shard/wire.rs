//! A minimal symmetric codec: the committed `WIRE_SCHEMA.json` next to
//! this tree matches what the extractor derives from it.

use crate::shard::{Wire, WireReader, WireResult};

pub struct Frame {
    pub seq: u64,
    pub ack: u16,
}

impl Wire for Frame {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.ack.to_le_bytes());
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        Ok(Frame {
            seq: u64::decode(r)?,
            ack: u16::decode(r)?,
        })
    }
}
