//! The committed schema records `seq:u64 ack:u16`; this codec swapped the
//! fields (symmetrically, so no asymmetry fires) without bumping
//! `WIRE_VERSION` — an unversioned wire break.

use crate::shard::{Wire, WireReader, WireResult};

pub struct Frame {
    pub seq: u64,
    pub ack: u16,
}

impl Wire for Frame {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.ack.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        Ok(Frame {
            ack: u16::decode(r)?,
            seq: u64::decode(r)?,
        })
    }
}
