//! Drift fixture: same `WIRE_VERSION` as the committed schema, but the
//! codec below reordered its fields — the ratchet must fail.

pub mod wire;

pub const WIRE_VERSION: u16 = 3;
