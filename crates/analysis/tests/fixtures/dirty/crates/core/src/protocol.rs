//! Seeded violations for the golden test: nondeterminism hazards and float
//! arithmetic inside a `crates/core/src` path.  Every marked line must be
//! reported by `dft-analyze`; the golden test pins the (line, rule) pairs.

use std::collections::{HashMap, HashSet};

// layer-boundary: `dft_sim::pool` is the simulator's thread-pool internals;
// the core layer may only name the sim root, adversary and shard surfaces.
use dft_sim::pool::WorkerPool;

pub struct State {
    pub votes: HashMap<usize, u64>,
    pub seen: HashSet<usize>,
}

impl State {
    pub fn tally(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for (_, v) in &self.votes {
            // nondet-hash-iter: order-sensitive body.
            out.push(*v);
        }
        out
    }

    pub fn first_seen(&self) -> Option<usize> {
        // nondet-hash-iter: `.iter().next()` depends on allocation order.
        self.seen.iter().next().copied()
    }

    pub fn threshold(&self, n: usize) -> usize {
        // float-protocol: rounding steers a protocol quantity.
        (n as f64 * 0.66) as usize
    }

    pub fn deadline_passed(&self) -> bool {
        // nondet-time: wall clock in protocol logic.
        std::time::Instant::now().elapsed().as_millis() > 10
    }

    pub fn worker_tag(&self) -> String {
        // nondet-thread-id: thread identity leaks into state.
        format!("{:?}", std::thread::current().id())
    }
}
