//! Seeded violations of the `sans-io-boundary` rule: a driver-layer module
//! that reaches for sockets, streams, and threads.  The round cores must
//! stay pure state transitions; every `std::net` / `std::io` /
//! `std::thread` mention below must be reported.

// sans-io-boundary: stream types leak into the driver layer.
use std::io::Write;
// sans-io-boundary: socket types leak into the driver layer.
use std::net::TcpStream;

pub fn leak_io(stream: &mut TcpStream, bytes: &[u8]) -> std::io::Result<()> {
    // sans-io-boundary: the driver paces itself with a thread sleep.
    std::thread::sleep(std::time::Duration::from_millis(1));
    // (the `std::io::Result` in the signature above is the fourth hit)
    stream.write_all(bytes)
}
