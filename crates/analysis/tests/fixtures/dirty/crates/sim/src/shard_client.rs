//! Seeded violations: panic hygiene, unchecked frame decodes, an untested
//! wire impl, randomness, and an unjustified lint suppression.

use crate::wire::{Wire, WireReader, WireResult};

pub struct Unpinned {
    pub id: u64,
}

impl Wire for Unpinned {
    // wire-untested: no test anywhere names `Unpinned`.
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.id.to_le_bytes());
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        Ok(Unpinned { id: r.u64()? })
    }
}

#[allow(dead_code)]
pub fn decode_raw(buf: &[u8]) -> u64 {
    // wire-version: a reader built outside `open_frame` skips the check.
    let mut r = WireReader::new(buf);
    // panic-unwrap: library code must return the error.
    r.u64().unwrap()
}

pub fn head(frames: &[Vec<u8>]) -> &Vec<u8> {
    // index-slicing + panic-expect.
    let first = &frames[0];
    frames.first().expect("at least one frame");
    first
}

pub fn pick(n: usize) -> usize {
    // nondet-rand: ambient randomness instead of the seeded streams.
    let roll = rand::thread_rng();
    let _ = roll;
    // panic-macro.
    panic!("unreachable pick of {n}")
}

pub struct Skewed {
    pub a: u16,
    pub b: u64,
}

impl Wire for Skewed {
    // wire-asymmetry: encode writes `a` then `b`; decode reads them in the
    // opposite order, so a round trip mixes the fields up.
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.a.to_le_bytes());
        out.extend_from_slice(&self.b.to_le_bytes());
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        Ok(Skewed {
            b: u64::decode(r)?,
            a: u16::decode(r)?,
        })
    }
}

pub struct Orphan {
    pub inner: Mystery,
}

impl Wire for Orphan {
    // wire-asymmetry: `Mystery` resolves to no extracted impl, builtin,
    // generic or alias, so the schema cannot close over it.
    fn encode(&self, out: &mut Vec<u8>) {
        self.inner.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        Ok(Orphan {
            inner: Mystery::decode(r)?,
        })
    }
}
