//! Dirty fixture crate root.
//!
//! unsafe-forbid: a first-party crate root without `#![forbid(unsafe_code)]`.

pub mod driver;
pub mod shard_client;
