//! The clean twin: the same shapes as the dirty tree, written the way the
//! rules expect — sorted iteration contexts, integer arithmetic, errors
//! instead of panics, justified suppressions.  The golden test asserts this
//! tree produces zero findings.

use std::collections::{BTreeSet, HashMap, HashSet};

pub struct State {
    pub votes: HashMap<usize, u64>,
    pub seen: HashSet<usize>,
}

impl State {
    pub fn tally(&self) -> Vec<u64> {
        // Locally sorted: collect then sort before anything order-sensitive.
        let mut out: Vec<u64> = self.votes.values().copied().collect();
        out.sort_unstable();
        out
    }

    pub fn first_seen(&self) -> Option<usize> {
        // Locally sorted: an ordered collect, then the minimum is stable.
        let ordered: BTreeSet<usize> = self.seen.iter().copied().collect();
        ordered.first().copied()
    }

    pub fn total_votes(&self) -> u64 {
        // A commutative reduction never depends on iteration order.
        self.votes.values().sum()
    }

    pub fn threshold(&self, n: usize) -> usize {
        // Integer arithmetic: 2n/3 without rounding hazards.
        n.saturating_mul(2) / 3
    }

    pub fn quorum_reached(&self, n: usize) -> Result<bool, String> {
        if self.seen.len() > n {
            return Err(format!("{} voters for {n} nodes", self.seen.len()));
        }
        Ok(self.seen.len() >= self.threshold(n))
    }
}

// A string literal mentioning .unwrap() or Instant::now() is documentation,
// not code; the lexer drops string contents so this must stay quiet.
pub const HELP: &str = "never call .unwrap() or Instant::now() in protocol code";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_may_panic_freely() {
        let state = State {
            votes: HashMap::new(),
            seen: HashSet::new(),
        };
        // unwrap/expect/indexing in test code are exempt.
        assert!(state.quorum_reached(4).unwrap() == false || true);
        let v = vec![1u64];
        assert_eq!(v[0], *v.first().expect("non-empty"));
    }
}
