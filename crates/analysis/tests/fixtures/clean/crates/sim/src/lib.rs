//! Clean fixture crate root: carries the unsafe ban the analyzer requires
//! of every first-party crate root.

#![forbid(unsafe_code)]

pub mod driver;
pub mod shard;
