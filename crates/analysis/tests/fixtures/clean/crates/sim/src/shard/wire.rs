//! Clean twin of the codec module: `WireReader::new` is allowed *here* —
//! `shard/wire.rs` is the one module that implements the version check, so
//! the wire-version rule exempts it.

pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    pub fn u16(&mut self) -> Result<u16, String> {
        match self.buf.get(self.pos..self.pos + 2).map(TryInto::try_into) {
            Some(Ok(bytes)) => {
                self.pos += 2;
                Ok(u16::from_le_bytes(bytes))
            }
            _ => Err("truncated".to_string()),
        }
    }
}

pub trait Wire: Sized {
    fn encode(&self, out: &mut Vec<u8>);
    fn decode(r: &mut WireReader<'_>) -> Result<Self, String>;
}

pub struct Pinned {
    pub id: u16,
}

impl Wire for Pinned {
    // Covered: `tests/roundtrip.rs` names `Pinned`.
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.id.to_le_bytes());
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, String> {
        Ok(Pinned { id: r.u16()? })
    }
}

// The dead-code allowance is justified by an adjacent prose comment, which
// is exactly what the allow-unjustified rule checks for.
#[allow(dead_code)]
fn future_frame_tag() -> u8 {
    7
}
