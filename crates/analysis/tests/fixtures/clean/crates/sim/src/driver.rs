//! The clean twin: a driver-layer module that stays sans-I/O — pure state
//! transitions over owned buffers, `std::mem` and ordered collections only.
//! The backend moves bytes; this module never sees a socket, stream, or
//! thread, so it produces zero findings.

use std::collections::BTreeMap;

pub struct Core {
    inboxes: BTreeMap<usize, Vec<u64>>,
}

impl Core {
    pub fn accept(&mut self, node: usize, msg: u64) {
        self.inboxes.entry(node).or_default().push(msg);
    }

    pub fn drain(&mut self, node: usize) -> Vec<u64> {
        let mut staged = Vec::new();
        if let Some(inbox) = self.inboxes.get_mut(&node) {
            std::mem::swap(&mut staged, inbox);
        }
        staged
    }
}
