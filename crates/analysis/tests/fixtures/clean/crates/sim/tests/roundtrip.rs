//! Test files feed the wire-coverage corpus: naming `Pinned` here is what
//! keeps the clean tree's `impl Wire for Pinned` off the report.

#[test]
fn pinned_round_trips() {
    let value = Pinned { id: 7 };
    let mut out = Vec::new();
    value.encode(&mut out);
    let mut r = WireReader::new(&out);
    assert_eq!(Pinned::decode(&mut r).unwrap().id, 7);
}
