//! The clean twin: the same round-core shapes written the way the hot pass
//! expects — scratch buffers cleared in place, a justified `hot-ok`
//! suppression, and a cold constructor that allocates freely.  The golden
//! test asserts this tree produces zero findings.

pub struct RoundCore {
    outgoing: Vec<Vec<u8>>,
    scratch: Vec<u8>,
    lookup: Vec<usize>,
}

impl RoundCore {
    /// Cold: nothing reaches `new` from the entry set, so start-up
    /// allocation is free to size the buffers however it likes.
    pub fn new(n: usize) -> Self {
        RoundCore {
            outgoing: Vec::with_capacity(n),
            scratch: Vec::new(),
            lookup: (0..n).collect(),
        }
    }

    /// Hot, but clear-don't-drop: capacity survives the round boundary.
    pub fn begin_round(&mut self) {
        self.scratch.clear();
    }

    /// Hot and calls a helper, which justifies its one allocation.
    pub fn deliver(&mut self) {
        self.stage();
    }

    fn stage(&mut self) {
        // hot-ok: grows once to the high-water mark, then amortizes to zero.
        let staged = Vec::with_capacity(8);
        self.outgoing.push(staged);
    }

    /// Hot: drains in place without handing buffers away.
    pub fn finalize(&mut self) {
        for buf in &mut self.outgoing {
            buf.clear();
        }
        self.lookup.clear();
    }
}
