//! The clean twin of the dirty tree's `values.rs`: `ExtantSet::merge`
//! merges in place instead of snapshotting the other side.

pub struct ExtantSet {
    entries: Vec<u64>,
}

impl ExtantSet {
    /// The declared hot entry, allocation-free at steady state.
    pub fn merge(&mut self, other: &ExtantSet) {
        for entry in &other.entries {
            if !self.entries.contains(entry) {
                self.entries.push(*entry);
            }
        }
    }
}
