//! Seeded violations of the `hot` pass: a round core whose phase bodies
//! allocate every round.  The golden test pins the exact finding multiset —
//! a direct allocation, one reached transitively through a first-party
//! call, and an unjustified clone.

pub struct RoundCore {
    outgoing: Vec<Vec<u8>>,
    scratch: Vec<u8>,
}

impl RoundCore {
    /// Direct allocation in a declared hot entry.
    pub fn begin_round(&mut self) {
        let fresh: Vec<u8> = Vec::new();
        self.outgoing.push(fresh);
    }

    /// Clean itself — the allocation hides one first-party call away.
    pub fn deliver(&mut self) {
        self.batch();
    }

    /// Transitively hot: reached from `deliver`.
    fn batch(&mut self) {
        let staged = vec![0u8; 4];
        self.scratch.extend(staged);
    }

    /// An unjustified clone of a non-`Copy` buffer.
    pub fn finalize(&mut self) {
        let copy = self.scratch.clone();
        self.outgoing.push(copy);
    }
}
