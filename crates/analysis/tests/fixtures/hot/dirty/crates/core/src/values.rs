//! A second crate in the dirty tree: the entry set is matched by
//! `(self type, method)` name, so `ExtantSet::merge` is hot here exactly as
//! in the real workspace — and its `.to_vec()` must be reported.

pub struct ExtantSet {
    entries: Vec<u64>,
}

impl ExtantSet {
    /// A declared hot entry that snapshots instead of merging in place.
    pub fn merge(&mut self, other: &ExtantSet) {
        let snapshot = other.entries.to_vec();
        for entry in snapshot {
            if !self.entries.contains(&entry) {
                self.entries.push(entry);
            }
        }
    }
}
