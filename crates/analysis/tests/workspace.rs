//! The analyzer against the real workspace it lives in.
//!
//! These tests are the in-repo twin of the CI gates: the committed
//! `WIRE_SCHEMA.json` must match what the extractor derives from the
//! tree (so `dft-analyze schema --ci` passes), and the walker must keep
//! covering every first-party crate — a crate silently dropping out of
//! the walk would disable every rule for it.

use std::path::PathBuf;

use dft_analysis::extract_schema;
use dft_analysis::schema::{compare, Schema, SchemaStatus};
use dft_analysis::walk;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

#[test]
fn committed_wire_schema_matches_the_tree() {
    let root = workspace_root();
    let extraction = extract_schema(&root).expect("extract workspace schema");
    assert!(
        extraction.problems.is_empty(),
        "workspace wire impls must be symmetric and resolved:\n{}",
        extraction
            .problems
            .iter()
            .map(|f| f.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
    let committed_path = root.join("WIRE_SCHEMA.json");
    let text = std::fs::read_to_string(&committed_path).expect("read WIRE_SCHEMA.json");
    let committed = Schema::parse(&text).expect("parse WIRE_SCHEMA.json");
    assert_eq!(
        compare(&extraction.schema, &committed),
        SchemaStatus::Match,
        "WIRE_SCHEMA.json is out of date; bump WIRE_VERSION if the wire \
         changed, then run `dft-analyze schema --update`"
    );
}

#[test]
fn walk_covers_every_first_party_crate() {
    let files = walk::discover(&workspace_root()).expect("walk workspace");
    let rels: Vec<&str> = files.iter().map(|f| f.rel.as_str()).collect();
    for expected in [
        "src/lib.rs",
        "crates/analysis/src/lib.rs",
        "crates/auth/src/lib.rs",
        "crates/baselines/src/lib.rs",
        "crates/bench/src/lib.rs",
        "crates/core/src/lib.rs",
        "crates/node/src/main.rs",
        "crates/overlay/src/lib.rs",
        "crates/sim/src/lib.rs",
    ] {
        assert!(
            rels.contains(&expected),
            "walk no longer discovers {expected}; its crate would go unanalyzed"
        );
    }
}
