//! Golden tests for the wire-schema ratchet over the seeded fixture trees.
//!
//! `fixtures/schema/ok` matches its committed `WIRE_SCHEMA.json`;
//! `fixtures/schema/drift-nobump` reordered a codec's fields without
//! bumping `WIRE_VERSION` and must be reported as drift;
//! `fixtures/schema/asym` seeds an encode/decode asymmetry that fails
//! before any comparison.  Together they pin the three ways the ratchet
//! can say no.

use std::path::PathBuf;

use dft_analysis::extract_schema;
use dft_analysis::schema::{compare, Schema, SchemaStatus};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/schema")
        .join(name)
}

fn committed(name: &str) -> Schema {
    let path = fixture(name).join("WIRE_SCHEMA.json");
    let text = std::fs::read_to_string(&path).expect("read committed fixture schema");
    Schema::parse(&text).expect("parse committed fixture schema")
}

#[test]
fn ok_tree_matches_its_committed_schema() {
    let extraction = extract_schema(&fixture("ok")).expect("extract ok tree");
    assert!(
        extraction.problems.is_empty(),
        "ok tree must extract cleanly: {:?}",
        extraction.problems
    );
    assert_eq!(extraction.schema.wire_version, Some(3));
    assert_eq!(
        compare(&extraction.schema, &committed("ok")),
        SchemaStatus::Match
    );
}

#[test]
fn reordered_fields_without_version_bump_are_drift() {
    let extraction = extract_schema(&fixture("drift-nobump")).expect("extract drift tree");
    // The reorder is symmetric, so it is not an asymmetry problem — only
    // an unversioned change against the committed file.
    assert!(
        extraction.problems.is_empty(),
        "drift tree must extract cleanly: {:?}",
        extraction.problems
    );
    match compare(&extraction.schema, &committed("drift-nobump")) {
        SchemaStatus::Drift { details } => {
            assert_eq!(details.len(), 1, "one reordered type: {details:?}");
            let detail = details.first().expect("one drift detail");
            assert!(detail.contains("Frame"), "detail names the type: {detail}");
        }
        other => panic!("expected drift, got {other:?}"),
    }
}

#[test]
fn version_bump_turns_the_same_change_into_stale() {
    // Same extraction as the ok tree, compared against a committed file
    // recording an older version: stale, regenerate with `--update`.
    let extraction = extract_schema(&fixture("ok")).expect("extract ok tree");
    let mut old = committed("ok");
    old.wire_version = Some(2);
    assert_eq!(
        compare(&extraction.schema, &old),
        SchemaStatus::Stale {
            committed: Some(2),
            extracted: Some(3),
        }
    );
}

#[test]
fn seeded_asymmetry_fails_before_any_comparison() {
    let extraction = extract_schema(&fixture("asym")).expect("extract asym tree");
    assert_eq!(
        extraction.problems.len(),
        1,
        "exactly the seeded asymmetry: {:?}",
        extraction.problems
    );
    let finding = extraction.problems.first().expect("one finding");
    assert_eq!(finding.rule, "wire-asymmetry");
    assert_eq!(finding.file, "crates/sim/src/shard/wire.rs");
    assert!(
        finding.message.contains("Frame"),
        "finding names the impl: {}",
        finding.message
    );
}
