//! # dft-baselines — comparison algorithms
//!
//! The baselines the paper's algorithms are measured against in the
//! benchmark harness:
//!
//! * [`FloodingConsensus`] — the textbook `t + 1`-round all-to-all flooding
//!   consensus (early-stopping variant): `Θ(n²)` messages per round,
//!   `Θ(n²·(f+1))` total.  This is the time-optimal but
//!   communication-hungry comparator for Theorems 7 and 8.
//! * [`AllToAllGossip`] — every node sends its rumor set to every node each
//!   round for `t + 1` rounds: `Θ(n²·t)` messages, the comparator for
//!   Theorem 9.
//! * [`NaiveCheckpointing`] — all-to-all membership exchange followed by
//!   flooding agreement on the membership vector, in the spirit of the
//!   `O(t·n)`-message checkpointing of De Prisco–Mayer–Yung; the comparator
//!   for Theorem 10.
//! * [`ParallelDsConsensus`] — Byzantine consensus by running a Dolev–Strong
//!   broadcast from *every* node and deciding on the maximum delivered value:
//!   `Θ(n²)` messages per round and `Θ(n²·t)` signatures, the comparator for
//!   Theorem 11 (the paper's `AB-Consensus` needs only `O(t² + n)`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;

use dft_auth::{KeyDirectory, SignedValue, Signer};
use dft_sim::{Delivered, NodeId, Outgoing, Payload, Round, SyncProtocol};

/// The textbook flooding consensus: for `t + 1` rounds every node broadcasts
/// the set of values it has seen (here: the OR of binary values); after the
/// last round it decides on the OR.
///
/// With the early-stopping rule a node decides as soon as it sees two
/// consecutive rounds with no new information, giving `O(f + 2)` rounds, but
/// communication stays `Θ(n²)` per round.
#[derive(Clone, Debug)]
pub struct FloodingConsensus {
    n: usize,
    t: usize,
    value: bool,
    rounds_done: u64,
    quiet_rounds: u64,
    decided: Option<bool>,
    early_stopping: bool,
}

impl FloodingConsensus {
    /// Creates a node of the fixed-length (`t + 1` rounds) variant.
    pub fn new(n: usize, t: usize, me: usize, input: bool) -> Self {
        let _ = me;
        FloodingConsensus {
            n,
            t,
            value: input,
            rounds_done: 0,
            quiet_rounds: 0,
            decided: None,
            early_stopping: false,
        }
    }

    /// Creates a node of the early-stopping variant (decide after two
    /// consecutive rounds without new information).
    pub fn early_stopping(n: usize, t: usize, me: usize, input: bool) -> Self {
        let mut node = Self::new(n, t, me, input);
        node.early_stopping = true;
        node
    }

    /// Builds the fixed-length variant for all nodes.
    pub fn for_all_nodes(n: usize, t: usize, inputs: &[bool]) -> Vec<Self> {
        inputs
            .iter()
            .enumerate()
            .map(|(me, &input)| Self::new(n, t, me, input))
            .collect()
    }

    /// Total rounds of the fixed-length variant.
    pub fn total_rounds(t: usize) -> u64 {
        t as u64 + 1
    }
}

impl SyncProtocol for FloodingConsensus {
    type Msg = bool;
    type Output = bool;

    fn send(&mut self, _round: Round, out: &mut Vec<Outgoing<bool>>) {
        if self.decided.is_some() {
            return;
        }
        out.extend((0..self.n).map(|p| Outgoing::new(NodeId::new(p), self.value)));
    }

    fn receive(&mut self, _round: Round, inbox: &[Delivered<bool>]) {
        let before = self.value;
        for msg in inbox {
            self.value |= msg.msg;
        }
        self.rounds_done += 1;
        if self.value == before {
            self.quiet_rounds += 1;
        } else {
            self.quiet_rounds = 0;
        }
        let fixed_done = self.rounds_done > self.t as u64;
        let early_done = self.early_stopping && self.quiet_rounds >= 2;
        if self.decided.is_none() && (fixed_done || early_done) {
            self.decided = Some(self.value);
        }
    }

    fn output(&self) -> Option<bool> {
        self.decided
    }

    fn has_halted(&self) -> bool {
        self.decided.is_some()
    }
}

/// A full extant map used by the gossip baselines: `entries[i]` is node `i`'s
/// rumor once learned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RumorMap(pub Vec<Option<u64>>);

impl Payload for RumorMap {
    fn bit_len(&self) -> u64 {
        self.0.len() as u64 + 64 * self.0.iter().filter(|e| e.is_some()).count() as u64
    }
}

/// All-to-all gossip: every node broadcasts everything it knows to everyone
/// for `t + 1` rounds, then decides on its rumor map.
#[derive(Clone, Debug)]
pub struct AllToAllGossip {
    n: usize,
    t: usize,
    known: RumorMap,
    rounds_done: u64,
    decided: Option<RumorMap>,
}

impl AllToAllGossip {
    /// Creates a node holding `rumor`.
    pub fn new(n: usize, t: usize, me: usize, rumor: u64) -> Self {
        let mut known = RumorMap(vec![None; n]);
        known.0[me] = Some(rumor);
        AllToAllGossip {
            n,
            t,
            known,
            rounds_done: 0,
            decided: None,
        }
    }

    /// Builds nodes for the whole system.
    pub fn for_all_nodes(n: usize, t: usize, rumors: &[u64]) -> Vec<Self> {
        rumors
            .iter()
            .enumerate()
            .map(|(me, &rumor)| Self::new(n, t, me, rumor))
            .collect()
    }

    /// Total rounds of the baseline.
    pub fn total_rounds(t: usize) -> u64 {
        t as u64 + 1
    }
}

impl SyncProtocol for AllToAllGossip {
    type Msg = Arc<RumorMap>;
    type Output = RumorMap;

    fn send(&mut self, _round: Round, out: &mut Vec<Outgoing<Arc<RumorMap>>>) {
        if self.decided.is_some() {
            return;
        }
        // One shared map, reference-counted per recipient instead of n deep
        // clones per round.
        let known = Arc::new(self.known.clone());
        out.extend((0..self.n).map(|p| Outgoing::new(NodeId::new(p), Arc::clone(&known))));
    }

    fn receive(&mut self, _round: Round, inbox: &[Delivered<Arc<RumorMap>>]) {
        for msg in inbox {
            for (slot, value) in self.known.0.iter_mut().zip(&msg.msg.0) {
                if slot.is_none() {
                    *slot = *value;
                }
            }
        }
        self.rounds_done += 1;
        if self.rounds_done > self.t as u64 {
            self.decided = Some(self.known.clone());
        }
    }

    fn output(&self) -> Option<RumorMap> {
        self.decided.clone()
    }

    fn has_halted(&self) -> bool {
        self.decided.is_some()
    }
}

/// Naive checkpointing: `t + 1` rounds of all-to-all membership exchange
/// (every node broadcasts the set of nodes it has heard from), after which
/// each node decides the set of nodes it heard from either directly or
/// transitively — `Θ(n²·t)` messages, in the spirit of the
/// De Prisco–Mayer–Yung `O(t·n)`-per-checkpoint scheme.
#[derive(Clone, Debug)]
pub struct NaiveCheckpointing {
    n: usize,
    t: usize,
    seen: Vec<bool>,
    rounds_done: u64,
    decided: Option<Vec<usize>>,
}

/// A membership vector carried by [`NaiveCheckpointing`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Membership(pub Vec<bool>);

impl Payload for Membership {
    fn bit_len(&self) -> u64 {
        self.0.len() as u64
    }
}

impl NaiveCheckpointing {
    /// Creates a node.
    pub fn new(n: usize, t: usize, me: usize) -> Self {
        let mut seen = vec![false; n];
        seen[me] = true;
        NaiveCheckpointing {
            n,
            t,
            seen,
            rounds_done: 0,
            decided: None,
        }
    }

    /// Builds nodes for the whole system.
    pub fn for_all_nodes(n: usize, t: usize) -> Vec<Self> {
        (0..n).map(|me| Self::new(n, t, me)).collect()
    }

    /// Total rounds of the baseline.
    pub fn total_rounds(t: usize) -> u64 {
        t as u64 + 1
    }
}

impl SyncProtocol for NaiveCheckpointing {
    type Msg = Arc<Membership>;
    type Output = Vec<usize>;

    fn send(&mut self, _round: Round, out: &mut Vec<Outgoing<Arc<Membership>>>) {
        if self.decided.is_some() {
            return;
        }
        // One shared membership vector, reference-counted per recipient.
        let seen = Arc::new(Membership(self.seen.clone()));
        out.extend((0..self.n).map(|p| Outgoing::new(NodeId::new(p), Arc::clone(&seen))));
    }

    fn receive(&mut self, _round: Round, inbox: &[Delivered<Arc<Membership>>]) {
        for msg in inbox {
            for (mine, theirs) in self.seen.iter_mut().zip(&msg.msg.0) {
                *mine |= *theirs;
            }
        }
        self.rounds_done += 1;
        if self.rounds_done > self.t as u64 {
            self.decided = Some((0..self.n).filter(|&i| self.seen[i]).collect());
        }
    }

    fn output(&self) -> Option<Vec<usize>> {
        self.decided.clone()
    }

    fn has_halted(&self) -> bool {
        self.decided.is_some()
    }
}

/// A batch of signed values (the baseline's combined Dolev–Strong message).
#[derive(Clone, Debug, PartialEq)]
pub struct SignedBatch(pub Vec<SignedValue>);

impl Payload for SignedBatch {
    fn bit_len(&self) -> u64 {
        64 + self.0.iter().map(SignedValue::encoded_bits).sum::<u64>()
    }
}

/// Byzantine consensus baseline: every node Dolev–Strong-broadcasts its input
/// to everyone (`n` parallel instances over the complete graph, `t + 1`
/// rounds) and decides on the maximum consistently delivered value —
/// `Θ(n²)` messages per round from non-faulty nodes, versus the paper's
/// `O(t² + n)`.
#[derive(Clone, Debug)]
pub struct ParallelDsConsensus {
    n: usize,
    t: usize,
    me: usize,
    signer: Signer,
    directory: Arc<KeyDirectory>,
    input: u64,
    accepted: Vec<std::collections::BTreeSet<u64>>,
    relay_queue: Vec<SignedValue>,
    decided: Option<u64>,
}

impl ParallelDsConsensus {
    /// Creates a node with consensus input `input`.
    pub fn new(n: usize, t: usize, me: usize, input: u64, directory: Arc<KeyDirectory>) -> Self {
        let signer = directory.signer(me);
        ParallelDsConsensus {
            n,
            t,
            me,
            signer,
            directory,
            input,
            accepted: vec![std::collections::BTreeSet::new(); n],
            relay_queue: Vec::new(),
            decided: None,
        }
    }

    /// Builds nodes for the whole system.
    pub fn for_all_nodes(
        n: usize,
        t: usize,
        inputs: &[u64],
        directory: Arc<KeyDirectory>,
    ) -> Vec<Self> {
        inputs
            .iter()
            .enumerate()
            .map(|(me, &input)| Self::new(n, t, me, input, directory.clone()))
            .collect()
    }

    /// Total rounds of the baseline.
    pub fn total_rounds(t: usize) -> u64 {
        t as u64 + 1
    }
}

impl SyncProtocol for ParallelDsConsensus {
    type Msg = Arc<SignedBatch>;
    type Output = u64;

    fn send(&mut self, round: Round, out: &mut Vec<Outgoing<Arc<SignedBatch>>>) {
        let r = round.as_u64();
        if r > self.t as u64 {
            return;
        }
        let mut batch = Vec::new();
        if r == 0 {
            let sv = SignedValue::originate(&self.signer, self.input);
            self.accepted[self.me].insert(self.input);
            batch.push(sv);
        }
        batch.append(&mut self.relay_queue);
        if batch.is_empty() {
            return;
        }
        // One shared batch, reference-counted per recipient: the baseline's
        // n² fan-out would otherwise deep-clone every signature chain n times
        // per round.
        let batch = Arc::new(SignedBatch(batch));
        out.extend(
            (0..self.n)
                .filter(|&p| p != self.me)
                .map(|p| Outgoing::new(NodeId::new(p), Arc::clone(&batch))),
        );
    }

    fn receive(&mut self, round: Round, inbox: &[Delivered<Arc<SignedBatch>>]) {
        let r = round.as_u64();
        if r <= self.t as u64 {
            for delivered in inbox {
                for sv in &delivered.msg.0 {
                    // Skip already-accepted values before paying for chain
                    // verification; relays of known values dominate later
                    // rounds.
                    if sv.source >= self.n
                        || self.accepted[sv.source].contains(&sv.value)
                        || !sv.verify_chain_with_length(&self.directory, r as usize + 1)
                    {
                        continue;
                    }
                    self.accepted[sv.source].insert(sv.value);
                    let mut relay = sv.clone();
                    relay.countersign(&self.signer);
                    self.relay_queue.push(relay);
                }
            }
        }
        if r >= self.t as u64 {
            let decision = self
                .accepted
                .iter()
                .filter_map(|values| {
                    if values.len() == 1 {
                        values.iter().next().copied()
                    } else {
                        None
                    }
                })
                .max()
                .unwrap_or(0);
            self.decided = Some(decision);
        }
    }

    fn output(&self) -> Option<u64> {
        self.decided
    }

    fn has_halted(&self) -> bool {
        self.decided.is_some()
    }
}

/// Shard wire codecs for the baseline message/output types, so the
/// quadratic baselines can also run under `run_experiments --shards N`.
mod wire_impls {
    use dft_sim::shard::{Wire, WireReader, WireResult};

    use super::{Membership, RumorMap, SignedBatch};

    impl Wire for RumorMap {
        fn encode(&self, out: &mut Vec<u8>) {
            self.0.encode(out);
        }

        fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
            Ok(RumorMap(Vec::decode(r)?))
        }
    }

    impl Wire for Membership {
        fn encode(&self, out: &mut Vec<u8>) {
            self.0.encode(out);
        }

        fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
            Ok(Membership(Vec::decode(r)?))
        }
    }

    impl Wire for SignedBatch {
        fn encode(&self, out: &mut Vec<u8>) {
            self.0.encode(out);
        }

        fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
            Ok(SignedBatch(Vec::decode(r)?))
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use dft_sim::shard::{decode_error_path_violations, from_bytes, to_bytes};

        #[test]
        fn baseline_payloads_round_trip() {
            let map = RumorMap(vec![Some(7), None, Some(9)]);
            assert_eq!(from_bytes::<RumorMap>(&to_bytes(&map)).unwrap(), map);
            let membership = Membership(vec![true, false, true]);
            assert_eq!(
                from_bytes::<Membership>(&to_bytes(&membership)).unwrap(),
                membership
            );
            let directory = dft_auth::KeyDirectory::generate(3, 5);
            let batch = SignedBatch(vec![dft_auth::SignedValue::originate(
                &directory.signer(0),
                12,
            )]);
            assert_eq!(from_bytes::<SignedBatch>(&to_bytes(&batch)).unwrap(), batch);
            assert_eq!(decode_error_path_violations(&map), Vec::<usize>::new());
            assert_eq!(
                decode_error_path_violations(&membership),
                Vec::<usize>::new()
            );
            assert_eq!(decode_error_path_violations(&batch), Vec::<usize>::new());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_sim::{RandomCrashes, Runner};

    #[test]
    fn flooding_consensus_agrees_and_is_quadratic() {
        let n = 30;
        let t = 5;
        let inputs: Vec<bool> = (0..n).map(|i| i == 7).collect();
        let nodes = FloodingConsensus::for_all_nodes(n, t, &inputs);
        let mut runner = Runner::new(nodes).unwrap();
        let report = runner.run(FloodingConsensus::total_rounds(t) + 2);
        assert!(report.all_non_faulty_decided());
        assert!(report.non_faulty_deciders_agree());
        assert_eq!(report.agreed_value(), Some(&true));
        assert!(
            report.metrics.messages >= (n * n) as u64,
            "quadratic traffic"
        );
    }

    #[test]
    fn flooding_consensus_tolerates_crashes() {
        let n = 40;
        let t = 8;
        let inputs = vec![true; n];
        let nodes = FloodingConsensus::for_all_nodes(n, t, &inputs);
        let adversary = RandomCrashes::new(n, t, t as u64, 3);
        let mut runner = Runner::with_adversary(nodes, Box::new(adversary), t).unwrap();
        let report = runner.run(FloodingConsensus::total_rounds(t) + 2);
        assert!(report.all_non_faulty_decided());
        assert!(report.non_faulty_deciders_agree());
    }

    #[test]
    fn early_stopping_halts_fast_without_faults() {
        let n = 30;
        let t = 10;
        let inputs = vec![false; n];
        let nodes: Vec<FloodingConsensus> = (0..n)
            .map(|me| FloodingConsensus::early_stopping(n, t, me, inputs[me]))
            .collect();
        let mut runner = Runner::new(nodes).unwrap();
        let report = runner.run(FloodingConsensus::total_rounds(t) + 2);
        assert!(
            report.metrics.rounds <= 4,
            "stops well before t+1 = 11 rounds"
        );
        assert!(report.non_faulty_deciders_agree());
    }

    #[test]
    fn all_to_all_gossip_collects_every_rumor() {
        let n = 25;
        let t = 4;
        let rumors: Vec<u64> = (0..n as u64).map(|i| 500 + i).collect();
        let nodes = AllToAllGossip::for_all_nodes(n, t, &rumors);
        let mut runner = Runner::new(nodes).unwrap();
        let report = runner.run(AllToAllGossip::total_rounds(t) + 1);
        assert!(report.all_non_faulty_decided());
        let map = report.outputs[0].as_ref().unwrap();
        assert!(map.0.iter().all(Option::is_some));
    }

    #[test]
    fn naive_checkpointing_agrees_without_faults() {
        let n = 25;
        let t = 4;
        let nodes = NaiveCheckpointing::for_all_nodes(n, t);
        let mut runner = Runner::new(nodes).unwrap();
        let report = runner.run(NaiveCheckpointing::total_rounds(t) + 1);
        assert!(report.all_non_faulty_decided());
        assert!(report.non_faulty_deciders_agree());
        assert_eq!(report.agreed_value().unwrap().len(), n);
    }

    #[test]
    fn parallel_ds_consensus_is_quadratic_but_correct() {
        let n = 16;
        let t = 3;
        let directory = Arc::new(KeyDirectory::generate(n, 9));
        let inputs: Vec<u64> = (0..n as u64).collect();
        let nodes = ParallelDsConsensus::for_all_nodes(n, t, &inputs, directory);
        let mut runner = Runner::new(nodes).unwrap();
        let report = runner.run(ParallelDsConsensus::total_rounds(t) + 2);
        assert!(report.all_non_faulty_decided());
        assert!(report.non_faulty_deciders_agree());
        assert_eq!(report.agreed_value(), Some(&(n as u64 - 1)));
        assert!(report.metrics.messages >= (n * (n - 1)) as u64);
    }
}
