//! Shard wire codecs ([`dft_sim::shard::Wire`]) for the protocol message
//! and output types, so any of the paper's executions can be partitioned
//! across `run_experiments --shard-worker` processes.
//!
//! Encodings are tag-per-variant and little-endian throughout (the codec's
//! house style); each type's encoding is the natural transcription of its
//! fields.  The types also carry `serde` derives for the day the real
//! crates.io `serde` replaces the vendored stand-in — at which point these
//! impls become a thin adapter over a generic format.

use std::sync::Arc;

use dft_sim::shard::{Wire, WireError, WireReader, WireResult};

use crate::ab_consensus::{AbMsg, CommonSet};
use crate::aea::AeaMsg;
use crate::checkpointing::CheckpointMsg;
use crate::dolev_strong::DsBatch;
use crate::few_crashes::FcMsg;
use crate::gossip::GossipMsg;
use crate::many_crashes::McMsg;
use crate::scv::ScvMsg;
use crate::values::{BitVector, ExtantSet, JoinValue};

fn bad_tag(what: &str, tag: u8) -> WireError {
    WireError::new(format!("invalid {what} tag {tag}"))
}

impl<V: JoinValue + Wire> Wire for AeaMsg<V> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            AeaMsg::Rumor(v) => {
                out.push(0);
                v.encode(out);
            }
            AeaMsg::Decision(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        match r.u8()? {
            0 => Ok(AeaMsg::Rumor(V::decode(r)?)),
            1 => Ok(AeaMsg::Decision(V::decode(r)?)),
            tag => Err(bad_tag("AeaMsg", tag)),
        }
    }
}

impl<V: JoinValue + Wire> Wire for ScvMsg<V> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ScvMsg::Value(v) => {
                out.push(0);
                v.encode(out);
            }
            ScvMsg::Inquiry => out.push(1),
            ScvMsg::Response(v) => {
                out.push(2);
                v.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        match r.u8()? {
            0 => Ok(ScvMsg::Value(V::decode(r)?)),
            1 => Ok(ScvMsg::Inquiry),
            2 => Ok(ScvMsg::Response(V::decode(r)?)),
            tag => Err(bad_tag("ScvMsg", tag)),
        }
    }
}

impl<V: JoinValue + Wire> Wire for FcMsg<V> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            FcMsg::Aea(m) => {
                out.push(0);
                m.encode(out);
            }
            FcMsg::Scv(m) => {
                out.push(1);
                m.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        match r.u8()? {
            0 => Ok(FcMsg::Aea(AeaMsg::decode(r)?)),
            1 => Ok(FcMsg::Scv(ScvMsg::decode(r)?)),
            tag => Err(bad_tag("FcMsg", tag)),
        }
    }
}

impl Wire for McMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            McMsg::Rumor(v) => {
                out.push(0);
                v.encode(out);
            }
            McMsg::Inquiry => out.push(1),
            McMsg::Response(v) => {
                out.push(2);
                v.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        match r.u8()? {
            0 => Ok(McMsg::Rumor(bool::decode(r)?)),
            1 => Ok(McMsg::Inquiry),
            2 => Ok(McMsg::Response(bool::decode(r)?)),
            tag => Err(bad_tag("McMsg", tag)),
        }
    }
}

impl Wire for BitVector {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        self.raw_words().to_vec().encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        let len = usize::decode(r)?;
        let words = Vec::decode(r)?;
        BitVector::from_raw_words(len, words)
            .ok_or_else(|| WireError::new("BitVector word count does not match its length"))
    }
}

impl Wire for ExtantSet {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        let pairs: Vec<(usize, u64)> = (0..self.len())
            .filter_map(|idx| self.rumor_of(idx).map(|rumor| (idx, rumor)))
            .collect();
        pairs.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        let len = usize::decode(r)?;
        let pairs: Vec<(usize, u64)> = Vec::decode(r)?;
        let mut set = ExtantSet::nil(len);
        for (idx, rumor) in pairs {
            if idx >= len {
                return Err(WireError::new(format!(
                    "ExtantSet pair index {idx} out of range {len}"
                )));
            }
            set.update(idx, rumor);
        }
        Ok(set)
    }
}

impl Wire for GossipMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            GossipMsg::Inquiry => out.push(0),
            GossipMsg::Pair { node, rumor } => {
                out.push(1);
                node.encode(out);
                rumor.encode(out);
            }
            GossipMsg::Extant(set) => {
                out.push(2);
                set.encode(out);
            }
            GossipMsg::Completion(bits) => {
                out.push(3);
                bits.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        match r.u8()? {
            0 => Ok(GossipMsg::Inquiry),
            1 => Ok(GossipMsg::Pair {
                node: u64::decode(r)?,
                rumor: u64::decode(r)?,
            }),
            2 => Ok(GossipMsg::Extant(Arc::decode(r)?)),
            3 => Ok(GossipMsg::Completion(Arc::decode(r)?)),
            tag => Err(bad_tag("GossipMsg", tag)),
        }
    }
}

impl Wire for CheckpointMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            CheckpointMsg::Gossip(m) => {
                out.push(0);
                m.encode(out);
            }
            CheckpointMsg::Consensus(m) => {
                out.push(1);
                m.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        match r.u8()? {
            0 => Ok(CheckpointMsg::Gossip(GossipMsg::decode(r)?)),
            1 => Ok(CheckpointMsg::Consensus(FcMsg::decode(r)?)),
            tag => Err(bad_tag("CheckpointMsg", tag)),
        }
    }
}

impl Wire for DsBatch {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        Ok(DsBatch(Vec::decode(r)?))
    }
}

impl Wire for CommonSet {
    fn encode(&self, out: &mut Vec<u8>) {
        self.entries.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        Ok(CommonSet {
            entries: Vec::decode(r)?,
        })
    }
}

impl Wire for AbMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            AbMsg::Ds(batch) => {
                out.push(0);
                batch.encode(out);
            }
            AbMsg::Endorse(entries) => {
                out.push(1);
                entries.encode(out);
            }
            AbMsg::CommonSet(set) => {
                out.push(2);
                set.encode(out);
            }
            AbMsg::Inquiry(signature) => {
                out.push(3);
                signature.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        match r.u8()? {
            0 => Ok(AbMsg::Ds(Arc::decode(r)?)),
            1 => Ok(AbMsg::Endorse(Arc::decode(r)?)),
            2 => Ok(AbMsg::CommonSet(Arc::decode(r)?)),
            3 => Ok(AbMsg::Inquiry(dft_auth::Signature::decode(r)?)),
            tag => Err(bad_tag("AbMsg", tag)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_auth::{KeyDirectory, SignedValue};
    use dft_sim::shard::{decode_error_path_violations, from_bytes, to_bytes};

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = to_bytes(&value);
        assert_eq!(from_bytes::<T>(&bytes).expect("round trip"), value);
        assert_eq!(
            decode_error_path_violations(&value),
            Vec::<usize>::new(),
            "every truncated or oversized frame must fail to decode"
        );
    }

    #[test]
    fn consensus_messages_round_trip() {
        round_trip(AeaMsg::Rumor(true));
        round_trip(AeaMsg::Decision(false));
        round_trip(ScvMsg::<bool>::Inquiry);
        round_trip(ScvMsg::Value(true));
        round_trip(FcMsg::Aea(AeaMsg::Rumor(true)));
        round_trip(FcMsg::<bool>::Scv(ScvMsg::Response(false)));
        round_trip(McMsg::Rumor(true));
        round_trip(McMsg::Inquiry);
        round_trip(McMsg::Response(false));
    }

    #[test]
    fn value_types_round_trip() {
        round_trip(BitVector::from_set_bits(130, [0, 64, 129]));
        round_trip(BitVector::zeros(0));
        let mut set = ExtantSet::nil(5);
        set.update(1, 77);
        set.update(4, 99);
        round_trip(set);
        round_trip(ExtantSet::nil(0));
    }

    #[test]
    fn decoded_bit_vectors_are_canonical() {
        // A wire peer could claim set bits beyond `len`; decoding must mask
        // them so equality and joins behave.
        let mut bytes = Vec::new();
        70usize.encode(&mut bytes);
        vec![u64::MAX, u64::MAX].encode(&mut bytes);
        let decoded: BitVector = from_bytes(&bytes).expect("decodes");
        assert_eq!(decoded.count_ones(), 70);
        // Wrong word count is rejected outright.
        let mut bad = Vec::new();
        70usize.encode(&mut bad);
        vec![u64::MAX].encode(&mut bad);
        assert!(from_bytes::<BitVector>(&bad).is_err());
    }

    #[test]
    fn gossip_and_checkpoint_messages_round_trip() {
        round_trip(GossipMsg::Inquiry);
        round_trip(GossipMsg::Pair {
            node: 3,
            rumor: 1003,
        });
        let mut set = ExtantSet::nil(4);
        set.update(2, 5);
        round_trip(GossipMsg::Extant(Arc::new(set)));
        round_trip(GossipMsg::Completion(Arc::new(BitVector::from_set_bits(
            10,
            [1, 9],
        ))));
        round_trip(CheckpointMsg::Gossip(GossipMsg::Inquiry));
        round_trip(CheckpointMsg::Consensus(FcMsg::Aea(AeaMsg::Rumor(
            BitVector::from_set_bits(8, [0, 7]),
        ))));
    }

    #[test]
    fn authenticated_messages_round_trip() {
        let directory = KeyDirectory::generate(4, 7);
        let mut value = SignedValue::originate(&directory.signer(0), 42);
        value.countersign(&directory.signer(2));
        round_trip(DsBatch(vec![value.clone()]));
        round_trip(CommonSet {
            entries: vec![value.clone()],
        });
        round_trip(AbMsg::Ds(Arc::new(DsBatch(vec![value.clone()]))));
        round_trip(AbMsg::Endorse(Arc::new(vec![value.clone()])));
        round_trip(AbMsg::CommonSet(Arc::new(CommonSet {
            entries: vec![value],
        })));
        round_trip(AbMsg::Inquiry(directory.signer(1).sign_digest(9)));
    }

    #[test]
    fn decoded_signatures_still_verify() {
        let directory = KeyDirectory::generate(3, 11);
        let signature = directory.signer(1).sign_digest(1234);
        let decoded: dft_auth::Signature = from_bytes(&to_bytes(&signature)).unwrap();
        assert!(directory.verify_digest(&decoded, 1234));
        assert!(!directory.verify_digest(&decoded, 1235));
    }
}
