//! System-wide protocol configuration and overlay construction.

use std::sync::Arc;

use dft_overlay::{build, Graph, InquiryFamily, OverlayParams};
use serde::{Deserialize, Serialize};

use crate::error::{CoreError, CoreResult};

/// Whether overlay parameters follow the paper's formulas verbatim or the
/// laptop-scale practical scaling (see `DESIGN.md`, substitution notes).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParamMode {
    /// Verbatim paper formulas (`d = 5⁸`, `δ(d) = ½(d^{7/8} − d^{5/8})`, …);
    /// degrees are still capped at the sub-network size, which for any
    /// realistic `n` collapses the overlay to a complete graph.
    Paper,
    /// Practical constant-degree expanders with thresholds scaled to the
    /// sub-network size (the default).
    #[default]
    Practical,
}

/// The system-level parameters shared by every protocol: the number of nodes
/// `n`, the fault bound `t`, a seed for the deterministic overlay
/// constructions and the parameter mode.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Number of nodes.
    pub n: usize,
    /// Upper bound on the number of faults.
    pub t: usize,
    /// Seed for overlay construction and key generation.
    pub seed: u64,
    /// Overlay parameter mode.
    pub mode: ParamMode,
}

impl SystemConfig {
    /// Creates a configuration, validating `n ≥ 2` and `t < n`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::SystemTooSmall`] or
    /// [`CoreError::InvalidFaultBound`] when the parameters are infeasible.
    pub fn new(n: usize, t: usize) -> CoreResult<Self> {
        if n < 2 {
            return Err(CoreError::SystemTooSmall { n, minimum: 2 });
        }
        if t >= n {
            return Err(CoreError::InvalidFaultBound {
                n,
                t,
                requirement: "t < n",
            });
        }
        Ok(SystemConfig {
            n,
            t,
            seed: 0xD15C0,
            mode: ParamMode::Practical,
        })
    }

    /// Sets the seed used for overlays and keys.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the overlay parameter mode.
    pub fn with_mode(mut self, mode: ParamMode) -> Self {
        self.mode = mode;
        self
    }

    /// Validates the few-crashes assumption `t < n/5`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidFaultBound`] if violated.
    pub fn require_few_crashes(&self) -> CoreResult<()> {
        if 5 * self.t >= self.n {
            return Err(CoreError::InvalidFaultBound {
                n: self.n,
                t: self.t,
                requirement: "t < n/5",
            });
        }
        Ok(())
    }

    /// Validates the authenticated-Byzantine assumption `t < n/2`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidFaultBound`] if violated.
    pub fn require_byzantine_minority(&self) -> CoreResult<()> {
        if 2 * self.t >= self.n {
            return Err(CoreError::InvalidFaultBound {
                n: self.n,
                t: self.t,
                requirement: "t < n/2",
            });
        }
        Ok(())
    }

    /// The fault fraction `α = t/n`.
    pub fn alpha(&self) -> f64 {
        self.t as f64 / self.n as f64
    }

    /// Number of *little nodes*: the `5t` smallest names (at least 1, at
    /// most `n`).
    pub fn little_count(&self) -> usize {
        (5 * self.t).clamp(1, self.n)
    }

    /// Overlay parameters for the little-node graph `G(5t, d)` (the paper
    /// uses `d = 5⁸`).
    pub fn little_params(&self) -> OverlayParams {
        let m = self.little_count();
        match self.mode {
            ParamMode::Paper => {
                OverlayParams::paper(m, 5usize.pow(8).min(m.saturating_sub(1)).max(1))
            }
            ParamMode::Practical => OverlayParams::practical(m, self.t.min(m)),
        }
    }

    /// The little-node overlay graph, with vertex `i` mapped to the node of
    /// index `i`.
    pub fn little_graph(&self) -> Arc<Graph> {
        let m = self.little_count();
        let params = self.little_params();
        Arc::new(build::capped_regular(m, params.degree, self.seed ^ 0xA1))
    }

    /// Overlay parameters for the full-network graph `G(n, d(α))` used by
    /// `Many-Crashes-Consensus`.
    pub fn full_params(&self) -> OverlayParams {
        match self.mode {
            ParamMode::Paper => {
                let d = dft_overlay::params::many_crashes_degree(self.alpha())
                    .ceil()
                    .min((self.n - 1) as f64) as usize;
                OverlayParams::paper(self.n, d.max(1))
            }
            ParamMode::Practical => OverlayParams::practical(self.n, self.t),
        }
    }

    /// The full-network overlay graph for `Many-Crashes-Consensus`.
    pub fn full_graph(&self) -> Arc<Graph> {
        let params = self.full_params();
        Arc::new(build::capped_regular(
            self.n,
            params.degree,
            self.seed ^ 0xB2,
        ))
    }

    /// The constant-degree broadcast graph `H` (degree 64 in the paper) used
    /// by `Spread-Common-Value` Part 1 and `AB-Consensus` Part 3.
    pub fn h_graph(&self) -> Arc<Graph> {
        let degree = match self.mode {
            ParamMode::Paper => 64,
            ParamMode::Practical => 16,
        };
        Arc::new(build::capped_regular(
            self.n,
            degree.min(self.n - 1),
            self.seed ^ 0xC3,
        ))
    }

    /// The per-phase inquiry family of Lemma 5 used by `Spread-Common-Value`
    /// Part 2.
    pub fn scv_family(&self) -> Arc<InquiryFamily> {
        Arc::new(InquiryFamily::spread_common_value(
            self.n,
            self.t,
            self.seed ^ 0xD4,
        ))
    }

    /// The per-phase inquiry family used by `Many-Crashes-Consensus` Part 3.
    pub fn many_crashes_family(&self) -> Arc<InquiryFamily> {
        Arc::new(InquiryFamily::many_crashes(
            self.n,
            self.alpha(),
            self.seed ^ 0xE5,
        ))
    }

    /// Number of rounds of Part 1 of `Spread-Common-Value`:
    /// `⌈log_{3/2}((2n/5) / max(t, n/t))⌉` (at least 1).
    pub fn scv_broadcast_rounds(&self) -> u64 {
        let t = self.t.max(1) as f64;
        let n = self.n as f64;
        let denom = t.max(n / t).max(1.0);
        let ratio = (0.4 * n / denom).max(1.0);
        (ratio.log(1.5).ceil() as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rules() {
        assert!(SystemConfig::new(1, 0).is_err());
        assert!(SystemConfig::new(10, 10).is_err());
        let cfg = SystemConfig::new(100, 10).unwrap();
        assert!(cfg.require_few_crashes().is_ok());
        assert!(cfg.require_byzantine_minority().is_ok());
        let cfg = SystemConfig::new(100, 30).unwrap();
        assert!(cfg.require_few_crashes().is_err());
        assert!(cfg.require_byzantine_minority().is_ok());
        let cfg = SystemConfig::new(100, 60).unwrap();
        assert!(cfg.require_byzantine_minority().is_err());
    }

    #[test]
    fn little_count_is_five_t_clamped() {
        let cfg = SystemConfig::new(100, 10).unwrap();
        assert_eq!(cfg.little_count(), 50);
        let cfg = SystemConfig::new(100, 0).unwrap();
        assert_eq!(cfg.little_count(), 1);
        let cfg = SystemConfig::new(100, 90).unwrap();
        assert_eq!(cfg.little_count(), 100);
    }

    #[test]
    fn overlays_have_expected_sizes() {
        let cfg = SystemConfig::new(200, 20).unwrap().with_seed(7);
        assert_eq!(cfg.little_graph().num_vertices(), 100);
        assert_eq!(cfg.full_graph().num_vertices(), 200);
        assert_eq!(cfg.h_graph().num_vertices(), 200);
        assert!(cfg.scv_family().phases() >= 1);
        assert!(cfg.many_crashes_family().phases() >= 1);
        assert!(cfg.scv_broadcast_rounds() >= 1);
    }

    #[test]
    fn paper_mode_caps_degrees() {
        let cfg = SystemConfig::new(60, 4)
            .unwrap()
            .with_mode(ParamMode::Paper);
        // The paper degree 5^8 is capped at the little-count minus one.
        let g = cfg.little_graph();
        assert_eq!(g.num_vertices(), 20);
        assert!(g.max_degree() <= 19);
        assert!(cfg.full_params().degree >= 1);
    }

    #[test]
    fn seeds_give_deterministic_overlays() {
        let a = SystemConfig::new(150, 12).unwrap().with_seed(3);
        let b = SystemConfig::new(150, 12).unwrap().with_seed(3);
        assert_eq!(*a.little_graph(), *b.little_graph());
        assert_eq!(*a.full_graph(), *b.full_graph());
    }

    #[test]
    fn alpha_and_broadcast_rounds() {
        let cfg = SystemConfig::new(1000, 100).unwrap();
        assert!((cfg.alpha() - 0.1).abs() < 1e-9);
        assert!(cfg.scv_broadcast_rounds() <= 2 * 10 + 4);
    }
}
