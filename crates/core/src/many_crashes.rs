//! `Many-Crashes-Consensus` (Section 4.4, Figure 4, Theorem 8, Corollary 1).
//!
//! Binary consensus for an arbitrary bound `t ≤ n − 1` on the number of
//! crashes (`α = t/n`).  Three parts over the full-network Ramanujan overlay
//! `G(n, d(α))`:
//!
//! 1. **Broadcasting** (`n − 1` rounds): rumor `1` floods along `G`.
//! 2. **Local probing** (`2 + ⌈lg n⌉` rounds): survivors decide their rumor.
//! 3. **Inquiring** (`1 + ⌈lg((1+3α)n/4)⌉` two-round phases): undecided
//!    nodes inquire along per-phase overlays `G_i` of doubling degree and
//!    adopt any response.
//!
//! Theorem 8: at most `n + 3(1 + lg n)` rounds and
//! `(5/(1−α))⁸ · n·lg n` one-bit messages.

use std::sync::Arc;

use dft_overlay::{Graph, InquiryFamily};
use dft_sim::{Delivered, NodeId, Outgoing, Payload, Round, SyncProtocol};

use crate::config::SystemConfig;
use crate::error::CoreResult;
use crate::local_probing::LocalProbing;

/// Static configuration shared by every node running
/// [`ManyCrashesConsensus`].
#[derive(Clone, Debug)]
pub struct ManyCrashesConfig {
    /// Number of nodes.
    pub n: usize,
    /// The full-network overlay graph `G(n, d(α))`.
    pub graph: Arc<Graph>,
    /// Survival threshold `δ` for local probing.
    pub delta: usize,
    /// Local-probing duration (`2 + ⌈lg n⌉`).
    pub gamma: u64,
    /// Length of the broadcasting part (the paper uses `n − 1`).
    pub part1_rounds: u64,
    /// The per-phase inquiry family for Part 3.
    pub family: Arc<InquiryFamily>,
}

impl ManyCrashesConfig {
    /// Derives the configuration from a [`SystemConfig`] (any `t < n`).
    ///
    /// # Errors
    ///
    /// Propagates [`SystemConfig`]-level validation errors.
    pub fn from_system(config: &SystemConfig) -> CoreResult<Self> {
        let params = config.full_params();
        let graph = config.full_graph();
        // The probing threshold is halved relative to the generic overlay
        // parameters and additionally made α-aware: `Many-Crashes-Consensus`
        // must keep a surviving core even when the fault fraction approaches
        // 1, where the adversary can remove most of every neighbourhood.  The
        // paper compensates with the enormous degree `(4/(1−α))⁸` while
        // keeping `δ(d)` fixed; at practical degrees the α-dependence has to
        // live in `δ` instead.  A node's expected operational degree after
        // all `t = αn` crashes is `(1 − α)·d`, so the threshold is capped at
        // half of that — with the paper-mode `δ/2` kept as an upper bound so
        // low fault fractions behave exactly as before.  Without the cap,
        // probing at `α ≥ 0.9` and `n ≥ 1000` has *zero* survivors: nobody
        // decides in Part 2, so Part 3's inquiries go unanswered and the
        // schedule ends with undecided correct nodes (the old E5 failure).
        let alive_degree = (1.0 - config.alpha()) * params.degree as f64;
        let alpha_cap = ((alive_degree / 2.0).floor() as usize).max(1);
        let delta = (params.delta / 2)
            .min(alpha_cap)
            .clamp(1, graph.min_degree().max(1));
        Ok(ManyCrashesConfig {
            n: config.n,
            graph,
            delta,
            gamma: params.gamma as u64,
            part1_rounds: (config.n as u64).saturating_sub(1).max(1),
            family: config.many_crashes_family(),
        })
    }

    /// Number of inquiry phases in Part 3.
    pub fn phases(&self) -> u64 {
        self.family.phases() as u64
    }

    /// Total number of rounds.
    pub fn total_rounds(&self) -> u64 {
        self.part1_rounds + self.gamma + 2 * self.phases()
    }

    /// The α-aware round budget: the number of rounds within which every
    /// correct node decides, derived from the actual phase schedule —
    /// Part 1 (`n − 1` rounds) + local probing (`γ = 2 + ⌈lg n⌉`) + two
    /// rounds per inquiry phase (`1 + ⌈lg((1+3α)n/4)⌉` phases).
    ///
    /// Theorem 8's closed form `n + 3(1 + lg n)` is this schedule evaluated
    /// at the worst case α → 1, where the phase count reaches
    /// `1 + ⌈lg n⌉`; for smaller α the schedule is strictly shorter.  The
    /// budget therefore never exceeds `n + 3(1 + ⌈lg n⌉)` (pinned by
    /// `round_budget_stays_within_theorem_8`), and — unlike the closed form
    /// read with an exact `lg n` — it cannot be exhausted before the last
    /// inquiry phase completes at any fault fraction.
    pub fn round_budget(&self) -> u64 {
        self.total_rounds()
    }

    /// Theorem 8's closed-form round bound `n + 3(1 + ⌈lg n⌉)`, for
    /// comparison against the α-aware [`ManyCrashesConfig::round_budget`].
    pub fn theorem8_round_bound(&self) -> u64 {
        theorem8_round_bound(self.n)
    }

    fn probing_start(&self) -> u64 {
        self.part1_rounds
    }

    fn inquiry_start(&self) -> u64 {
        self.part1_rounds + self.gamma
    }
}

/// The α-aware round budget of `Many-Crashes-Consensus` for a system of `n`
/// nodes with fault bound `t`, computed in closed form (no overlay graphs are
/// materialised): `(n − 1) + (2 + ⌈lg n⌉) + 2·(1 + ⌈lg((1+3α)n/4)⌉)` where
/// `α = t/n` — the same schedule [`ManyCrashesConfig::round_budget`] derives
/// from a materialised configuration (`budget_formula_matches_config` pins
/// the two against each other).
pub fn round_budget_for(n: usize, t: usize) -> u64 {
    let part1 = (n as u64).saturating_sub(1).max(1);
    let gamma = 2 + (n.max(1) as f64).log2().ceil() as u64;
    let alpha = t as f64 / n.max(1) as f64;
    let m = (1.0 + 3.0 * alpha) * n as f64 / 4.0;
    let phases = (1.0 + m.log2().ceil()).max(1.0) as u64;
    part1 + gamma + 2 * phases
}

/// Theorem 8's closed-form round bound `n + 3(1 + ⌈lg n⌉)` — the α → 1
/// worst case of [`round_budget_for`].
pub fn theorem8_round_bound(n: usize) -> u64 {
    n as u64 + 3 * (1 + (n.max(2) as f64).log2().ceil() as u64)
}

/// Messages of `Many-Crashes-Consensus` (all carry at most one value bit).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum McMsg {
    /// A rumor flooded in Parts 1–2.
    Rumor(bool),
    /// An inquiry from an undecided node (Part 3).
    Inquiry,
    /// A response carrying the sender's decision (Part 3).
    Response(bool),
}

impl Payload for McMsg {
    fn bit_len(&self) -> u64 {
        1
    }
}

/// Per-node state machine for `Many-Crashes-Consensus`.
#[derive(Clone, Debug)]
pub struct ManyCrashesConsensus {
    config: ManyCrashesConfig,
    me: usize,
    candidate: bool,
    pending_flood: bool,
    probe: LocalProbing,
    decided: Option<bool>,
    inquirers: Vec<usize>,
    halted: bool,
}

impl ManyCrashesConsensus {
    /// Creates the state machine for node `me` with binary input `input`.
    pub fn new(config: ManyCrashesConfig, me: usize, input: bool) -> Self {
        let probe = LocalProbing::new(config.delta, config.gamma, true);
        ManyCrashesConsensus {
            config,
            me,
            candidate: input,
            pending_flood: input,
            probe,
            decided: None,
            inquirers: Vec::new(),
            halted: false,
        }
    }

    /// Builds state machines for all nodes from per-node binary inputs.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != config.n`.
    pub fn for_all_nodes(config: &SystemConfig, inputs: &[bool]) -> CoreResult<Vec<Self>> {
        assert_eq!(inputs.len(), config.n, "one input per node required");
        let shared = ManyCrashesConfig::from_system(config)?;
        Ok(inputs
            .iter()
            .enumerate()
            .map(|(me, &input)| Self::new(shared.clone(), me, input))
            .collect())
    }

    /// Total rounds this protocol runs for.
    pub fn total_rounds(&self) -> u64 {
        self.config.total_rounds()
    }

    fn phase_of(&self, r: u64) -> Option<(u64, bool)> {
        if r < self.config.inquiry_start() {
            return None;
        }
        let offset = r - self.config.inquiry_start();
        let phase = offset / 2 + 1;
        if phase > self.config.phases() {
            return None;
        }
        Some((phase, offset.is_multiple_of(2)))
    }
}

impl SyncProtocol for ManyCrashesConsensus {
    type Msg = McMsg;
    type Output = bool;

    fn send(&mut self, round: Round, out: &mut Vec<Outgoing<McMsg>>) {
        let r = round.as_u64();
        if r < self.config.probing_start() {
            if self.pending_flood && self.candidate {
                self.pending_flood = false;
                out.extend(
                    self.config
                        .graph
                        .neighbors(self.me)
                        .iter()
                        .map(|&v| Outgoing::new(NodeId::new(v), McMsg::Rumor(true))),
                );
            }
            return;
        }
        if r < self.config.inquiry_start() {
            if self.probe.should_send() {
                out.extend(
                    self.config
                        .graph
                        .neighbors(self.me)
                        .iter()
                        .map(|&v| Outgoing::new(NodeId::new(v), McMsg::Rumor(self.candidate))),
                );
            }
            return;
        }
        let Some((phase, inquiry_round)) = self.phase_of(r) else {
            return;
        };
        if inquiry_round {
            if self.decided.is_none() {
                out.extend(
                    self.config
                        .family
                        .graph(phase as usize)
                        .neighbors(self.me)
                        .iter()
                        .filter(|&&v| v != self.me)
                        .map(|&v| Outgoing::new(NodeId::new(v), McMsg::Inquiry)),
                );
            }
        } else if let Some(decision) = self.decided {
            out.extend(
                self.inquirers
                    .drain(..)
                    .map(|v| Outgoing::new(NodeId::new(v), McMsg::Response(decision))),
            );
        } else {
            self.inquirers.clear();
        }
    }

    fn receive(&mut self, round: Round, inbox: &[Delivered<McMsg>]) {
        let r = round.as_u64();
        if r < self.config.probing_start() {
            for msg in inbox {
                if matches!(msg.msg, McMsg::Rumor(true)) && !self.candidate {
                    self.candidate = true;
                    self.pending_flood = true;
                }
            }
        } else if r < self.config.inquiry_start() {
            let mut received = 0;
            for msg in inbox {
                if let McMsg::Rumor(value) = msg.msg {
                    received += 1;
                    if value {
                        self.candidate = true;
                    }
                }
            }
            self.probe.observe_round(received);
            if r + 1 == self.config.inquiry_start() && self.probe.survived() {
                self.decided = Some(self.candidate);
            }
        } else if let Some((_, inquiry_round)) = self.phase_of(r) {
            if inquiry_round {
                self.inquirers = inbox
                    .iter()
                    .filter(|m| matches!(m.msg, McMsg::Inquiry))
                    .map(|m| m.from.index())
                    .collect();
            } else {
                for msg in inbox {
                    if let McMsg::Response(value) = msg.msg {
                        if self.decided.is_none() {
                            self.decided = Some(value);
                        }
                    }
                }
            }
        }
        if r + 1 >= self.config.total_rounds() {
            self.halted = true;
        }
    }

    fn output(&self) -> Option<bool> {
        self.decided
    }

    fn has_halted(&self) -> bool {
        self.halted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_sim::{NoFaults, RandomCrashes, Runner};

    fn run_mc(
        n: usize,
        t: usize,
        inputs: &[bool],
        adversary: Box<dyn dft_sim::CrashAdversary>,
        budget: usize,
        seed: u64,
    ) -> dft_sim::ExecutionReport<bool> {
        let config = SystemConfig::new(n, t).unwrap().with_seed(seed);
        let nodes = ManyCrashesConsensus::for_all_nodes(&config, inputs).unwrap();
        let total = ManyCrashesConfig::from_system(&config)
            .unwrap()
            .total_rounds();
        let mut runner = Runner::with_adversary(nodes, adversary, budget).unwrap();
        runner.run(total + 2)
    }

    fn assert_consensus(report: &dft_sim::ExecutionReport<bool>, inputs: &[bool]) {
        assert!(report.all_non_faulty_decided(), "termination");
        assert!(report.non_faulty_deciders_agree(), "agreement");
        let agreed = report.agreed_value().copied().expect("agreement value");
        assert!(inputs.contains(&agreed), "validity");
    }

    #[test]
    fn fault_free_unanimous_and_mixed() {
        let n = 60;
        for (label, inputs) in [
            ("ones", vec![true; n]),
            ("zeros", vec![false; n]),
            ("mixed", (0..n).map(|i| i % 5 == 0).collect::<Vec<_>>()),
        ] {
            let report = run_mc(n, 10, &inputs, Box::new(NoFaults), 0, 1);
            assert_consensus(&report, &inputs);
            if label == "ones" {
                assert_eq!(report.agreed_value(), Some(&true));
            }
            if label == "zeros" {
                assert_eq!(report.agreed_value(), Some(&false));
            }
        }
    }

    #[test]
    fn tolerates_nearly_half_crashes() {
        let n = 60;
        let t = 25;
        let inputs: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        let adversary = RandomCrashes::new(n, t, 30, 13);
        let report = run_mc(n, t, &inputs, Box::new(adversary), t, 2);
        assert_consensus(&report, &inputs);
    }

    #[test]
    fn tolerates_majority_crashes() {
        // t up to n - 1 is allowed; use a heavy fraction.
        let n = 50;
        let t = 35;
        let inputs = vec![true; n];
        let adversary = RandomCrashes::new(n, t, 40, 17);
        let report = run_mc(n, t, &inputs, Box::new(adversary), t, 3);
        assert!(report.non_faulty_deciders_agree());
        assert!(report.all_non_faulty_decided());
        assert_eq!(report.agreed_value(), Some(&true));
    }

    #[test]
    fn round_bound_matches_theorem_8() {
        let n = 200;
        let config = SystemConfig::new(n, 50).unwrap();
        let mc = ManyCrashesConfig::from_system(&config).unwrap();
        let bound = n as u64 + 3 * (1 + (n as f64).log2().ceil() as u64) + 2 * mc.phases();
        assert!(
            mc.total_rounds() <= bound + 8,
            "{} vs {bound}",
            mc.total_rounds()
        );
    }

    /// The closed-form budget matches the schedule a materialised
    /// configuration derives, across fault fractions and sizes.
    #[test]
    fn budget_formula_matches_config() {
        for n in [60usize, 200, 500] {
            for t in [1, n / 10, n / 2, (9 * n) / 10, n - 1] {
                let config = SystemConfig::new(n, t).unwrap();
                let mc = ManyCrashesConfig::from_system(&config).unwrap();
                assert_eq!(
                    mc.round_budget(),
                    round_budget_for(n, t),
                    "n={n} t={t}: schedule-derived and closed-form budgets drifted"
                );
            }
        }
    }

    /// The α-aware budget is monotone in α and never exceeds Theorem 8's
    /// closed form `n + 3(1 + ⌈lg n⌉)`.
    #[test]
    fn round_budget_stays_within_theorem_8() {
        for n in [100usize, 1000, 4096] {
            let mut last = 0;
            for t in [1, n / 10, n / 2, (9 * n) / 10, n - 1] {
                let budget = round_budget_for(n, t);
                assert!(budget >= last, "budget shrank as alpha grew");
                last = budget;
                assert!(
                    budget <= theorem8_round_bound(n),
                    "n={n} t={t}: budget {budget} exceeds theorem bound {}",
                    theorem8_round_bound(n)
                );
            }
        }
    }

    /// Regression for the old E5 failure: at α = 0.9 and n ≥ 1000 the
    /// pre-α-aware probing threshold left local probing with *zero*
    /// survivors, so Part 3's inquiries were never answered and correct
    /// nodes finished the schedule undecided.  With the α-aware δ every
    /// correct node must decide within the stated round budget.
    #[test]
    fn decides_at_alpha_09_n_1000_within_budget() {
        let n = 1000;
        let t = 900;
        let inputs: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        let horizon = round_budget_for(n, t);
        let adversary = RandomCrashes::new(n, t, horizon, 19);
        let report = run_mc(n, t, &inputs, Box::new(adversary), t, 19);
        assert_consensus(&report, &inputs);
        assert!(
            report.metrics.rounds <= horizon,
            "rounds {} exceed the alpha-aware budget {horizon}",
            report.metrics.rounds
        );
    }

    #[test]
    fn message_bound_is_n_log_n_shaped() {
        let n = 150;
        let t = 30;
        let inputs: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        let report = run_mc(n, t, &inputs, Box::new(NoFaults), 0, 4);
        let n_log_n = n as f64 * (n as f64).log2();
        assert!(
            (report.metrics.messages as f64) < 40.0 * n_log_n,
            "{} messages",
            report.metrics.messages
        );
    }
}
