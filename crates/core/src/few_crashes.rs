//! `Few-Crashes-Consensus` (Section 4.3, Figure 3, Theorem 7).
//!
//! For `t < n/5`, consensus is solved by composing the two previous
//! algorithms: `Almost-Everywhere-Agreement` establishes the same decision at
//! `≥ 3/5·n` nodes, and `Spread-Common-Value` spreads that decision to every
//! non-faulty node.  Theorem 7: `O(t + log n)` rounds and `O(n + t log t)`
//! one-bit messages.
//!
//! The composition is generic over [`JoinValue`]: the scalar instance
//! (`bool`) is the paper's binary consensus, and the [`crate::BitVector`]
//! instance is the "n concurrent instances with combined messages" used by
//! checkpointing (Section 6).

use dft_sim::{Delivered, Outgoing, Payload, Round, SyncProtocol};

use crate::aea::{AeaConfig, AeaMsg, AlmostEverywhereAgreement};
use crate::config::SystemConfig;
use crate::error::CoreResult;
use crate::scv::{ScvConfig, ScvMsg, SpreadCommonValue};
use crate::values::JoinValue;

/// Combined configuration of the two stages.
#[derive(Clone, Debug)]
pub struct FewCrashesConfig {
    /// Stage 1 configuration.
    pub aea: AeaConfig,
    /// Stage 2 configuration.
    pub scv: ScvConfig,
}

impl FewCrashesConfig {
    /// Derives both stage configurations from a [`SystemConfig`].
    ///
    /// # Errors
    ///
    /// Returns an error unless `t < n/5`.
    pub fn from_system(config: &SystemConfig) -> CoreResult<Self> {
        Ok(FewCrashesConfig {
            aea: AeaConfig::from_system(config)?,
            scv: ScvConfig::from_system(config)?,
        })
    }

    /// Total number of rounds (AEA followed by SCV).
    pub fn total_rounds(&self) -> u64 {
        self.aea.total_rounds() + self.scv.total_rounds()
    }
}

/// Messages of `Few-Crashes-Consensus`: stage-tagged wrappers around the
/// component messages (one extra bit of framing on the wire).
#[derive(Clone, Debug, PartialEq)]
pub enum FcMsg<V> {
    /// A message of the almost-everywhere-agreement stage.
    Aea(AeaMsg<V>),
    /// A message of the spread-common-value stage.
    Scv(ScvMsg<V>),
}

impl<V: JoinValue> Payload for FcMsg<V> {
    fn bit_len(&self) -> u64 {
        match self {
            FcMsg::Aea(m) => m.bit_len(),
            FcMsg::Scv(m) => m.bit_len(),
        }
    }
}

/// Per-node state machine for `Few-Crashes-Consensus`.
#[derive(Clone, Debug)]
pub struct FewCrashesConsensus<V: JoinValue> {
    aea: AlmostEverywhereAgreement<V>,
    scv: SpreadCommonValue<V>,
    aea_rounds: u64,
    total_rounds: u64,
    transitioned: bool,
    /// Send/receive scratch for the wrapped stages, kept across rounds so
    /// relabelling inner messages never allocates at steady state.
    aea_out: Vec<Outgoing<AeaMsg<V>>>,
    scv_out: Vec<Outgoing<ScvMsg<V>>>,
    aea_in: Vec<Delivered<AeaMsg<V>>>,
    scv_in: Vec<Delivered<ScvMsg<V>>>,
}

impl<V: JoinValue> FewCrashesConsensus<V> {
    /// Creates the state machine for node `me` with the given consensus
    /// input.
    pub fn new(config: FewCrashesConfig, me: usize, input: V) -> Self {
        let aea_rounds = config.aea.total_rounds();
        let total_rounds = config.total_rounds();
        FewCrashesConsensus {
            aea: AlmostEverywhereAgreement::new(config.aea, me, input),
            scv: SpreadCommonValue::new(config.scv, me, None),
            aea_rounds,
            total_rounds,
            transitioned: false,
            aea_out: Vec::new(),
            scv_out: Vec::new(),
            aea_in: Vec::new(),
            scv_in: Vec::new(),
        }
    }

    /// Builds state machines for all nodes from per-node inputs.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors (requires `t < n/5`).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != config.n`.
    pub fn for_all_nodes(config: &SystemConfig, inputs: &[V]) -> CoreResult<Vec<Self>> {
        assert_eq!(inputs.len(), config.n, "one input per node required");
        let shared = FewCrashesConfig::from_system(config)?;
        Ok(inputs
            .iter()
            .enumerate()
            .map(|(me, input)| Self::new(shared.clone(), me, input.clone()))
            .collect())
    }

    /// Total rounds this protocol runs for.
    pub fn total_rounds(&self) -> u64 {
        self.total_rounds
    }

    fn ensure_transition(&mut self) {
        if !self.transitioned {
            self.scv.set_initial(self.aea.output());
            self.transitioned = true;
        }
    }
}

impl<V: JoinValue> SyncProtocol for FewCrashesConsensus<V> {
    type Msg = FcMsg<V>;
    type Output = V;

    fn send(&mut self, round: Round, out: &mut Vec<Outgoing<FcMsg<V>>>) {
        let r = round.as_u64();
        if r < self.aea_rounds {
            self.aea_out.clear();
            self.aea.send(Round::new(r), &mut self.aea_out);
            out.extend(
                self.aea_out
                    .drain(..)
                    .map(|o| Outgoing::new(o.to, FcMsg::Aea(o.msg))),
            );
        } else {
            self.ensure_transition();
            self.scv_out.clear();
            self.scv
                .send(Round::new(r - self.aea_rounds), &mut self.scv_out);
            out.extend(
                self.scv_out
                    .drain(..)
                    .map(|o| Outgoing::new(o.to, FcMsg::Scv(o.msg))),
            );
        }
    }

    fn receive(&mut self, round: Round, inbox: &[Delivered<FcMsg<V>>]) {
        let r = round.as_u64();
        if r < self.aea_rounds {
            self.aea_in.clear();
            self.aea_in
                .extend(inbox.iter().filter_map(|d| match &d.msg {
                    FcMsg::Aea(m) => Some(Delivered::new(d.from, m.clone())),
                    FcMsg::Scv(_) => None,
                }));
            self.aea.receive(Round::new(r), &self.aea_in);
        } else {
            self.ensure_transition();
            self.scv_in.clear();
            self.scv_in
                .extend(inbox.iter().filter_map(|d| match &d.msg {
                    FcMsg::Scv(m) => Some(Delivered::new(d.from, m.clone())),
                    FcMsg::Aea(_) => None,
                }));
            self.scv
                .receive(Round::new(r - self.aea_rounds), &self.scv_in);
        }
    }

    fn output(&self) -> Option<V> {
        if self.transitioned {
            self.scv.output()
        } else {
            None
        }
    }

    fn has_halted(&self) -> bool {
        self.transitioned && self.scv.has_halted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_sim::{NoFaults, NodeId, RandomCrashes, Runner, TargetedCrashes};

    fn run_consensus(
        n: usize,
        t: usize,
        inputs: &[bool],
        adversary: Box<dyn dft_sim::CrashAdversary>,
        budget: usize,
        seed: u64,
    ) -> dft_sim::ExecutionReport<bool> {
        let config = SystemConfig::new(n, t).unwrap().with_seed(seed);
        let nodes = FewCrashesConsensus::for_all_nodes(&config, inputs).unwrap();
        let total = FewCrashesConfig::from_system(&config)
            .unwrap()
            .total_rounds();
        let mut runner = Runner::with_adversary(nodes, adversary, budget).unwrap();
        runner.run(total + 2)
    }

    fn assert_consensus(report: &dft_sim::ExecutionReport<bool>, inputs: &[bool]) {
        assert!(report.all_non_faulty_decided(), "termination");
        assert!(report.non_faulty_deciders_agree(), "agreement");
        let agreed = report.agreed_value().copied().expect("agreement value");
        assert!(inputs.contains(&agreed), "validity");
    }

    #[test]
    fn fault_free_unanimous_inputs() {
        let n = 80;
        for value in [false, true] {
            let inputs = vec![value; n];
            let report = run_consensus(n, 10, &inputs, Box::new(NoFaults), 0, 1);
            assert_consensus(&report, &inputs);
            assert_eq!(report.agreed_value(), Some(&value));
        }
    }

    #[test]
    fn fault_free_mixed_inputs() {
        let n = 100;
        let inputs: Vec<bool> = (0..n).map(|i| i % 4 == 0).collect();
        let report = run_consensus(n, 12, &inputs, Box::new(NoFaults), 0, 2);
        assert_consensus(&report, &inputs);
    }

    #[test]
    fn random_crashes_within_budget() {
        let n = 120;
        let t = 20;
        let inputs: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        for seed in 0..4u64 {
            let adversary = RandomCrashes::new(n, t, 60, seed);
            let report = run_consensus(n, t, &inputs, Box::new(adversary), t, 3 + seed);
            assert_consensus(&report, &inputs);
        }
    }

    #[test]
    fn targeted_crashes_on_little_nodes() {
        let n = 120;
        let t = 15;
        let inputs = vec![true; n];
        let victims: Vec<NodeId> = (0..t).map(NodeId::new).collect();
        let adversary = TargetedCrashes::one_per_round(victims);
        let report = run_consensus(n, t, &inputs, Box::new(adversary), t, 4);
        assert_consensus(&report, &inputs);
        assert_eq!(
            report.agreed_value(),
            Some(&true),
            "validity with unanimous 1"
        );
    }

    #[test]
    fn rounds_and_messages_scale_linearly() {
        let n = 300;
        let t = 30;
        let inputs: Vec<bool> = (0..n).map(|i| i % 2 == 1).collect();
        let report = run_consensus(n, t, &inputs, Box::new(NoFaults), 0, 5);
        let config = SystemConfig::new(n, t).unwrap();
        let total = FewCrashesConfig::from_system(&config)
            .unwrap()
            .total_rounds();
        // Rounds: O(t + log n); the schedule is fixed so the report matches it.
        assert!(report.metrics.rounds <= total + 2);
        assert!(total <= 8 * t as u64 + 12 * (n as f64).log2().ceil() as u64 + 20);
        // Bits: O(n + t log t) with a generous practical constant (the
        // probing term t·log t·d dominates at this scale); the point is to
        // stay far below the all-to-all n² = 90 000.
        let bound = 250 * n as u64;
        assert!(
            report.metrics.bits < bound,
            "{} bits exceeds {bound}",
            report.metrics.bits
        );
    }

    #[test]
    fn one_crash_delays_by_constant_rounds() {
        // The protocol has a fixed round schedule, so crashes cannot extend
        // it; this checks the schedule is identical with and without a crash.
        let n = 80;
        let t = 8;
        let inputs = vec![true; n];
        let clean = run_consensus(n, t, &inputs, Box::new(NoFaults), 0, 6);
        let adversary = RandomCrashes::new(n, 1, 5, 1);
        let crashed = run_consensus(n, t, &inputs, Box::new(adversary), t, 6);
        assert_eq!(clean.metrics.rounds, crashed.metrics.rounds);
    }

    #[test]
    fn vectorised_consensus_for_checkpointing() {
        use crate::values::BitVector;
        let n = 60;
        let t = 7;
        let config = SystemConfig::new(n, t).unwrap().with_seed(9);
        let inputs: Vec<BitVector> = (0..n)
            .map(|i| BitVector::from_set_bits(n, [i, (i + 1) % n]))
            .collect();
        let nodes = FewCrashesConsensus::for_all_nodes(&config, &inputs).unwrap();
        let total = FewCrashesConfig::from_system(&config)
            .unwrap()
            .total_rounds();
        let mut runner = Runner::new(nodes).unwrap();
        let report = runner.run(total + 2);
        assert!(report.all_non_faulty_decided());
        assert!(report.non_faulty_deciders_agree());
    }

    #[test]
    fn config_rejects_large_t() {
        let config = SystemConfig::new(50, 10).unwrap();
        assert!(FewCrashesConfig::from_system(&config).is_err());
    }
}
