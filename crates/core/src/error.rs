//! Error type for protocol configuration.

use std::error::Error as StdError;
use std::fmt;

/// Errors produced while configuring or instantiating protocols.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoreError {
    /// The fault bound `t` is incompatible with the system size or with the
    /// protocol's assumption (for example `t ≥ n/5` for the few-crashes
    /// algorithms, or `t ≥ n/2` for the Byzantine algorithm).
    InvalidFaultBound {
        /// Number of nodes.
        n: usize,
        /// Requested fault bound.
        t: usize,
        /// The constraint that was violated, e.g. `"t < n/5"`.
        requirement: &'static str,
    },
    /// The system size is too small for the protocol to be instantiated.
    SystemTooSmall {
        /// Number of nodes requested.
        n: usize,
        /// Minimum supported size.
        minimum: usize,
    },
    /// An overlay graph could not be constructed.
    Overlay(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidFaultBound { n, t, requirement } => {
                write!(
                    f,
                    "fault bound t={t} invalid for n={n} (requires {requirement})"
                )
            }
            CoreError::SystemTooSmall { n, minimum } => {
                write!(f, "system of {n} nodes is below the minimum of {minimum}")
            }
            CoreError::Overlay(msg) => write!(f, "overlay construction failed: {msg}"),
        }
    }
}

impl StdError for CoreError {}

impl From<dft_overlay::OverlayError> for CoreError {
    fn from(err: dft_overlay::OverlayError) -> Self {
        CoreError::Overlay(err.to_string())
    }
}

/// Convenience result alias for protocol configuration.
pub type CoreResult<T> = Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let err = CoreError::InvalidFaultBound {
            n: 10,
            t: 9,
            requirement: "t < n/5",
        };
        assert!(err.to_string().contains("t=9"));
        assert!(err.to_string().contains("t < n/5"));
        assert!(CoreError::SystemTooSmall { n: 2, minimum: 5 }
            .to_string()
            .contains("minimum of 5"));
        let overlay_err: CoreError =
            dft_overlay::OverlayError::InvalidParameters("bad".into()).into();
        assert!(overlay_err.to_string().contains("bad"));
    }
}
