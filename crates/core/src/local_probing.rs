//! Local probing (Section 2, Proposition 1).
//!
//! Local probing is the paper's failure detector for overlay graphs: for `γ`
//! consecutive rounds every participating node sends a message to each of its
//! overlay neighbours; if, in some round, a node receives fewer than `δ`
//! messages it *pauses prematurely* and stops sending for the remainder of
//! the instance.  A node *survives* the instance if it never pauses.
//! Proposition 1 shows survival is equivalent to membership in a
//! `(γ, δ)`-dense neighbourhood, and every member of a `δ`-survival subset of
//! the operational nodes survives, which is how the algorithms identify a
//! large well-connected core of non-crashed nodes.

use serde::{Deserialize, Serialize};

/// The per-node state of one local-probing instance.
///
/// The owning protocol drives it: call [`LocalProbing::should_send`] when
/// emitting the round's messages and [`LocalProbing::observe_round`] with the
/// number of probing messages received that round.
///
/// # Examples
///
/// ```
/// use dft_core::LocalProbing;
///
/// // A node with δ = 2 probing for 3 rounds.
/// let mut probe = LocalProbing::new(2, 3, true);
/// assert!(probe.should_send());
/// probe.observe_round(5);
/// probe.observe_round(2);
/// probe.observe_round(3);
/// assert!(probe.finished());
/// assert!(probe.survived());
///
/// // The same node pausing when its neighbourhood thins out.
/// let mut probe = LocalProbing::new(2, 3, true);
/// probe.observe_round(1);
/// assert!(!probe.should_send(), "paused nodes stop sending");
/// probe.observe_round(0);
/// probe.observe_round(0);
/// assert!(!probe.survived());
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocalProbing {
    delta: usize,
    duration: u64,
    elapsed: u64,
    paused: bool,
    active: bool,
}

impl LocalProbing {
    /// Creates a probing instance with survival threshold `delta` lasting
    /// `duration` rounds.  Inactive instances (`active = false`) never send
    /// and never survive — used by nodes that sit out an instance (e.g.
    /// non-little nodes).
    pub fn new(delta: usize, duration: u64, active: bool) -> Self {
        LocalProbing {
            delta,
            duration,
            elapsed: 0,
            paused: !active,
            active,
        }
    }

    /// Whether this node sends probing messages in the current round.
    pub fn should_send(&self) -> bool {
        self.active && !self.paused && !self.finished()
    }

    /// Records the number of probing messages received this round and
    /// advances the instance by one round.
    pub fn observe_round(&mut self, messages_received: usize) {
        if !self.active || self.finished() {
            return;
        }
        if !self.paused && messages_received < self.delta {
            self.paused = true;
        }
        self.elapsed += 1;
    }

    /// Whether all `γ` rounds have elapsed.
    pub fn finished(&self) -> bool {
        self.elapsed >= self.duration
    }

    /// Whether this node survived the instance: it participated, the
    /// instance is over, and it never paused.
    pub fn survived(&self) -> bool {
        self.active && self.finished() && !self.paused
    }

    /// Rounds executed so far.
    pub fn elapsed(&self) -> u64 {
        self.elapsed
    }

    /// The instance duration `γ`.
    pub fn duration(&self) -> u64 {
        self.duration
    }

    /// Resets the instance for reuse in a later phase (same `δ`, `γ`), with a
    /// new participation flag.
    pub fn reset(&mut self, active: bool) {
        self.elapsed = 0;
        self.paused = !active;
        self.active = active;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_instances_never_survive() {
        let mut probe = LocalProbing::new(1, 2, false);
        assert!(!probe.should_send());
        probe.observe_round(10);
        probe.observe_round(10);
        assert!(!probe.survived());
    }

    #[test]
    fn survival_requires_every_round_above_threshold() {
        let mut probe = LocalProbing::new(3, 4, true);
        for received in [3, 4, 3, 5] {
            assert!(probe.should_send());
            probe.observe_round(received);
        }
        assert!(probe.survived());

        let mut probe = LocalProbing::new(3, 4, true);
        for received in [3, 2, 5, 5] {
            probe.observe_round(received);
        }
        assert!(probe.finished());
        assert!(!probe.survived(), "one thin round pauses the node");
    }

    #[test]
    fn observations_after_finish_are_ignored() {
        let mut probe = LocalProbing::new(1, 1, true);
        probe.observe_round(5);
        assert!(probe.survived());
        probe.observe_round(0);
        assert!(
            probe.survived(),
            "late observations do not retract survival"
        );
        assert_eq!(probe.elapsed(), 1);
        assert_eq!(probe.duration(), 1);
    }

    #[test]
    fn reset_allows_reuse_across_phases() {
        let mut probe = LocalProbing::new(2, 2, true);
        probe.observe_round(0);
        probe.observe_round(0);
        assert!(!probe.survived());
        probe.reset(true);
        probe.observe_round(2);
        probe.observe_round(2);
        assert!(probe.survived());
        probe.reset(false);
        assert!(!probe.should_send());
    }
}
