//! `AB-Consensus`: consensus with authenticated Byzantine faults
//! (Section 7, Figure 7, Theorem 11).
//!
//! For `t < n/2` Byzantine nodes with authentication, the algorithm reaches
//! consensus in `O(t)` rounds while non-faulty nodes send `O(t² + n)`
//! messages:
//!
//! 1. **Part 1** — the `5t` little nodes run parallel Dolev–Strong broadcasts
//!    of their inputs (`t + 1` rounds, messages combined per pair), then one
//!    endorsement round in which the little nodes cross-sign their resolved
//!    value set, producing an *authenticated common set of values*: one entry
//!    per little source, each carrying at least `little − t` little-node
//!    signatures.
//! 2. **Part 2** — little nodes hand the set to their related nodes.
//! 3. **Part 3** — slow propagation of the set along the constant-degree
//!    graph `H`; every hop verifies the signatures before adopting.
//! 4. **Part 4** — nodes still missing the set send signed inquiries to all
//!    little nodes, which respond with the set.
//!
//! Every node finally decides on the maximum value of its authenticated set.

use std::collections::BTreeMap;
use std::sync::Arc;

use dft_auth::{KeyDirectory, Signature, SignedValue, Signer};
use dft_overlay::Graph;
use dft_sim::{Delivered, NodeId, Outgoing, Payload, Round, SyncProtocol};

use crate::config::SystemConfig;
use crate::dolev_strong::DsBatch;
use crate::error::CoreResult;

/// The sentinel encoding of the paper's *null* value for a Byzantine source
/// that equivocated or stayed silent.
pub const NULL_VALUE: u64 = u64::MAX;

/// An authenticated common set of values: one entry per little source, each
/// endorsed by a quorum of little-node signatures.
#[derive(Clone, Debug, PartialEq)]
pub struct CommonSet {
    /// One signed entry per little source, indexed by source.
    pub entries: Vec<SignedValue>,
}

impl CommonSet {
    /// Verifies the set: one entry per little source in order, every
    /// signature valid over its entry, signers pairwise distinct, and at
    /// least `threshold` little-node signers per entry.
    pub fn verify(&self, directory: &KeyDirectory, little: usize, threshold: usize) -> bool {
        if self.entries.len() != little {
            return false;
        }
        self.entries.iter().enumerate().all(|(source, entry)| {
            if entry.source != source {
                return false;
            }
            let digest = dft_auth::value_digest(entry.source, entry.value);
            let mut seen: Vec<usize> = Vec::new();
            for signature in &entry.signatures {
                if seen.contains(&signature.signer) || !directory.verify_digest(signature, digest) {
                    return false;
                }
                seen.push(signature.signer);
            }
            seen.iter().filter(|&&s| s < little).count() >= threshold
        })
    }

    /// The decision derived from the set: the maximum non-null value, or 0 if
    /// every entry is null.
    pub fn decision(&self) -> u64 {
        self.entries
            .iter()
            .map(|e| e.value)
            .filter(|&v| v != NULL_VALUE)
            .max()
            .unwrap_or(0)
    }

    /// Wire size in bits.
    pub fn encoded_bits(&self) -> u64 {
        64 + self
            .entries
            .iter()
            .map(SignedValue::encoded_bits)
            .sum::<u64>()
    }
}

/// Messages of `AB-Consensus`.
///
/// The bulky variants are [`Arc`]-wrapped: the same batch, endorsement list
/// or common set is broadcast to many destinations each round, and sharing
/// makes the per-recipient copy a reference-count bump instead of a deep
/// clone of a signature chain.  Wire sizes ([`Payload::bit_len`]) are those
/// of the inner values, so the paper's bit accounting is unchanged.
#[derive(Clone, Debug, PartialEq)]
pub enum AbMsg {
    /// Part 1: a batch of Dolev–Strong relays.
    Ds(Arc<DsBatch>),
    /// Part 1 endorsement round: a little node's endorsed entries.
    Endorse(Arc<Vec<SignedValue>>),
    /// Parts 2–4: the authenticated common set of values.
    CommonSet(Arc<CommonSet>),
    /// Part 4: an authenticated inquiry (signature over the inquirer's id).
    Inquiry(Signature),
}

impl Payload for AbMsg {
    fn bit_len(&self) -> u64 {
        match self {
            AbMsg::Ds(batch) => batch.bit_len(),
            AbMsg::Endorse(entries) => {
                64 + entries.iter().map(SignedValue::encoded_bits).sum::<u64>()
            }
            AbMsg::CommonSet(set) => set.encoded_bits(),
            AbMsg::Inquiry(_) => Signature::BIT_LEN,
        }
    }
}

/// Static configuration shared by every node running [`AbConsensus`].
#[derive(Clone, Debug)]
pub struct AbConfig {
    /// Number of nodes.
    pub n: usize,
    /// Fault bound (`t < n/2`).
    pub t: usize,
    /// Number of little nodes.
    pub little: usize,
    /// Minimum little-node signatures per entry of a valid common set.
    pub threshold: usize,
    /// The broadcast graph `H` of Part 3.
    pub h_graph: Arc<Graph>,
    /// Number of Part 3 propagation rounds.
    pub part3_rounds: u64,
    /// Key directory.
    pub directory: Arc<KeyDirectory>,
}

impl AbConfig {
    /// Derives the configuration from a [`SystemConfig`] and key directory.
    ///
    /// # Errors
    ///
    /// Returns an error unless `t < n/2`.
    pub fn from_system(config: &SystemConfig, directory: Arc<KeyDirectory>) -> CoreResult<Self> {
        config.require_byzantine_minority()?;
        let little = config.little_count();
        Ok(AbConfig {
            n: config.n,
            t: config.t,
            little,
            threshold: little.saturating_sub(config.t).max(1),
            h_graph: config.h_graph(),
            part3_rounds: config.scv_broadcast_rounds(),
            directory,
        })
    }

    /// Rounds of Part 1: `t + 1` Dolev–Strong rounds plus the endorsement
    /// round.
    pub fn part1_rounds(&self) -> u64 {
        self.t as u64 + 2
    }

    /// Total number of rounds (Parts 1–4).
    pub fn total_rounds(&self) -> u64 {
        self.part1_rounds() + 1 + self.part3_rounds + 2
    }

    fn endorse_round(&self) -> u64 {
        self.t as u64 + 1
    }

    fn notify_round(&self) -> u64 {
        self.part1_rounds()
    }

    fn part3_start(&self) -> u64 {
        self.notify_round() + 1
    }

    fn inquiry_round(&self) -> u64 {
        self.part3_start() + self.part3_rounds
    }

    fn response_round(&self) -> u64 {
        self.inquiry_round() + 1
    }
}

/// Per-node state machine for `AB-Consensus`.
#[derive(Clone, Debug)]
pub struct AbConsensus {
    config: AbConfig,
    me: usize,
    signer: Signer,
    input: u64,
    /// Dolev–Strong state: accepted values per little source.
    accepted: Vec<BTreeMap<u64, SignedValue>>,
    relay_queue: Vec<SignedValue>,
    /// Merged endorsement chains per source, keyed by resolved value.
    endorsed: Vec<Option<SignedValue>>,
    common: Option<Arc<CommonSet>>,
    forward_pending: bool,
    inquirers: Vec<usize>,
    decided: Option<u64>,
    halted: bool,
}

impl AbConsensus {
    /// Creates the state machine for node `me` with consensus input `input`.
    pub fn new(config: AbConfig, me: usize, input: u64) -> Self {
        let signer = config.directory.signer(me);
        let accepted = vec![BTreeMap::new(); config.little];
        let endorsed = vec![None; config.little];
        AbConsensus {
            config,
            me,
            signer,
            input,
            accepted,
            relay_queue: Vec::new(),
            endorsed,
            common: None,
            forward_pending: false,
            inquirers: Vec::new(),
            decided: None,
            halted: false,
        }
    }

    /// Builds state machines for all nodes from per-node inputs.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors (requires `t < n/2`).
    pub fn for_all_nodes(
        config: &SystemConfig,
        inputs: &[u64],
        directory: Arc<KeyDirectory>,
    ) -> CoreResult<Vec<Self>> {
        assert_eq!(inputs.len(), config.n, "one input per node required");
        let shared = AbConfig::from_system(config, directory)?;
        Ok(inputs
            .iter()
            .enumerate()
            .map(|(me, &input)| Self::new(shared.clone(), me, input))
            .collect())
    }

    /// Total rounds this protocol runs for.
    pub fn total_rounds(&self) -> u64 {
        self.config.total_rounds()
    }

    fn is_little(&self) -> bool {
        self.me < self.config.little
    }

    fn little_peers(&self) -> Vec<usize> {
        (0..self.config.little).filter(|&p| p != self.me).collect()
    }

    fn related_nodes(&self) -> Vec<usize> {
        (0..self.config.n)
            .skip(self.me + self.config.little)
            .step_by(self.config.little.max(1))
            .collect()
    }

    fn adopt(&mut self, set: &Arc<CommonSet>) {
        // Check the cheap guard before the (expensive) chain verification:
        // once a node holds a verified set, further copies carry no news.
        if self.common.is_none()
            && set.verify(
                &self.config.directory,
                self.config.little,
                self.config.threshold,
            )
        {
            self.common = Some(Arc::clone(set));
            self.forward_pending = true;
        }
    }

    /// Builds this little node's endorsed entries after Dolev–Strong
    /// resolution.
    fn build_endorsements(&mut self) -> Vec<SignedValue> {
        let mut entries = Vec::with_capacity(self.config.little);
        for source in 0..self.config.little {
            let resolved: Option<(u64, SignedValue)> = if self.accepted[source].len() == 1 {
                self.accepted[source]
                    .iter()
                    .next()
                    .map(|(v, sv)| (*v, sv.clone()))
            } else {
                None
            };
            let mut entry = match resolved {
                Some((_, mut sv)) => {
                    sv.countersign(&self.signer);
                    sv
                }
                None => SignedValue {
                    source,
                    value: NULL_VALUE,
                    signatures: vec![self
                        .signer
                        .sign_digest(dft_auth::value_digest(source, NULL_VALUE))],
                },
            };
            entry.source = source;
            self.endorsed[source] = Some(entry.clone());
            entries.push(entry);
        }
        entries
    }

    /// Merges a peer's endorsements into our own chains (same source and
    /// value only).
    fn merge_endorsements(&mut self, entries: &[SignedValue]) {
        for entry in entries {
            let Some(Some(own)) = self.endorsed.get_mut(entry.source) else {
                continue;
            };
            if own.value != entry.value {
                continue;
            }
            let digest = dft_auth::value_digest(entry.source, entry.value);
            for signature in &entry.signatures {
                if own.signatures.iter().any(|s| s.signer == signature.signer) {
                    continue;
                }
                if self.config.directory.verify_digest(signature, digest) {
                    own.signatures.push(*signature);
                }
            }
        }
    }

    fn finalize_common_set(&mut self) {
        if self.common.is_some() {
            return;
        }
        let entries: Vec<SignedValue> = self
            .endorsed
            .iter()
            .cloned()
            .map(|e| e.expect("endorsements built before finalization"))
            .collect();
        let set = CommonSet { entries };
        if set.verify(
            &self.config.directory,
            self.config.little,
            self.config.threshold,
        ) {
            self.common = Some(Arc::new(set));
        }
    }
}

impl SyncProtocol for AbConsensus {
    type Msg = AbMsg;
    type Output = u64;

    fn send(&mut self, round: Round, out: &mut Vec<Outgoing<AbMsg>>) {
        let r = round.as_u64();
        let cfg = &self.config;
        if r < cfg.endorse_round() {
            // Part 1: Dolev–Strong rounds (little nodes only).
            if !self.is_little() {
                return;
            }
            let mut batch: Vec<SignedValue> = Vec::new();
            if r == 0 {
                let sv = SignedValue::originate(&self.signer, self.input);
                self.accepted[self.me].insert(self.input, sv.clone());
                batch.push(sv);
            }
            batch.append(&mut self.relay_queue);
            if batch.is_empty() {
                return;
            }
            let batch = Arc::new(DsBatch(batch));
            out.extend(
                self.little_peers()
                    .into_iter()
                    .map(|p| Outgoing::new(NodeId::new(p), AbMsg::Ds(Arc::clone(&batch)))),
            );
            return;
        }
        if r == cfg.endorse_round() {
            if !self.is_little() {
                return;
            }
            let entries = Arc::new(self.build_endorsements());
            out.extend(
                self.little_peers()
                    .into_iter()
                    .map(|p| Outgoing::new(NodeId::new(p), AbMsg::Endorse(Arc::clone(&entries)))),
            );
            return;
        }
        if r == cfg.notify_round() {
            // Part 2: little nodes notify related nodes.
            if self.is_little() {
                self.finalize_common_set();
                if let Some(set) = &self.common {
                    self.forward_pending = true;
                    out.extend(
                        self.related_nodes().into_iter().map(|p| {
                            Outgoing::new(NodeId::new(p), AbMsg::CommonSet(Arc::clone(set)))
                        }),
                    );
                }
            }
            return;
        }
        if r < cfg.inquiry_round() {
            // Part 3: propagate over H when newly adopted.
            if self.forward_pending {
                self.forward_pending = false;
                if let Some(set) = &self.common {
                    out.extend(cfg.h_graph.neighbors(self.me).iter().map(|&p| {
                        Outgoing::new(NodeId::new(p), AbMsg::CommonSet(Arc::clone(set)))
                    }));
                }
            }
            return;
        }
        if r == cfg.inquiry_round() {
            // Part 4, first round: signed inquiries from nodes without a set.
            if self.common.is_none() {
                let signature = self
                    .signer
                    .sign_digest(dft_auth::hash::hash_words(&[0x1D_u64, self.me as u64]));
                out.extend(
                    (0..cfg.little)
                        .filter(|&p| p != self.me)
                        .map(|p| Outgoing::new(NodeId::new(p), AbMsg::Inquiry(signature))),
                );
            }
            return;
        }
        if r == cfg.response_round() && self.is_little() {
            if let Some(set) = &self.common {
                let inquirers = std::mem::take(&mut self.inquirers);
                out.extend(
                    inquirers
                        .into_iter()
                        .map(|p| Outgoing::new(NodeId::new(p), AbMsg::CommonSet(Arc::clone(set)))),
                );
            }
        }
    }

    fn receive(&mut self, round: Round, inbox: &[Delivered<AbMsg>]) {
        let r = round.as_u64();
        let cfg = self.config.clone();
        if r < cfg.endorse_round() {
            if self.is_little() {
                for delivered in inbox {
                    if let AbMsg::Ds(batch) = &delivered.msg {
                        for sv in &batch.0 {
                            // Skip already-accepted values before paying for
                            // chain verification: relays of known values are
                            // the common case in later Dolev–Strong rounds.
                            if sv.source >= cfg.little
                                || self.accepted[sv.source].contains_key(&sv.value)
                                || !sv.verify_chain_with_length(&cfg.directory, r as usize + 1)
                            {
                                continue;
                            }
                            let mut relay = sv.clone();
                            relay.countersign(&self.signer);
                            self.accepted[sv.source].insert(sv.value, sv.clone());
                            self.relay_queue.push(relay);
                        }
                    }
                }
            }
        } else if r == cfg.endorse_round() {
            if self.is_little() {
                // Our own endorsements were built in `send`; merge peers'.
                for delivered in inbox {
                    if let AbMsg::Endorse(entries) = &delivered.msg {
                        self.merge_endorsements(entries);
                    }
                }
            }
        } else {
            for delivered in inbox {
                match &delivered.msg {
                    AbMsg::CommonSet(set) => self.adopt(set),
                    AbMsg::Inquiry(signature) => {
                        let digest =
                            dft_auth::hash::hash_words(&[0x1D_u64, delivered.from.index() as u64]);
                        if signature.signer == delivered.from.index()
                            && cfg.directory.verify_digest(signature, digest)
                        {
                            self.inquirers.push(delivered.from.index());
                        }
                    }
                    _ => {}
                }
            }
        }
        if r + 1 >= cfg.total_rounds() {
            if let Some(set) = &self.common {
                self.decided = Some(set.decision());
            }
            self.halted = true;
        }
    }

    fn output(&self) -> Option<u64> {
        self.decided
    }

    fn has_halted(&self) -> bool {
        self.halted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_sim::adversary::byzantine::{ScriptedByzantine, SilentByzantine};
    use dft_sim::{NoFaults, Participant, Runner};

    fn setup(n: usize, t: usize, seed: u64) -> (SystemConfig, Arc<KeyDirectory>) {
        let config = SystemConfig::new(n, t).unwrap().with_seed(seed);
        let directory = Arc::new(KeyDirectory::generate(n, seed));
        (config, directory)
    }

    fn run_honest(n: usize, t: usize, inputs: &[u64]) -> dft_sim::ExecutionReport<u64> {
        let (config, directory) = setup(n, t, 3);
        let nodes = AbConsensus::for_all_nodes(&config, inputs, directory).unwrap();
        let total = nodes[0].total_rounds();
        let mut runner = Runner::new(nodes).unwrap();
        runner.run(total + 2)
    }

    #[test]
    fn all_honest_decide_max_little_input() {
        let n = 40;
        let t = 4;
        let inputs: Vec<u64> = (0..n as u64).collect();
        let report = run_honest(n, t, &inputs);
        assert!(report.all_non_faulty_decided());
        assert!(report.non_faulty_deciders_agree());
        // Little nodes are 0..20; the maximum little input is 19.
        assert_eq!(report.agreed_value(), Some(&19));
    }

    #[test]
    fn silent_byzantine_little_nodes_tolerated() {
        let n = 30;
        let t = 3;
        let (config, directory) = setup(n, t, 5);
        let inputs: Vec<u64> = vec![7; n];
        let shared = AbConfig::from_system(&config, directory).unwrap();
        let mut participants: Vec<Participant<AbConsensus>> = Vec::new();
        for me in 0..n {
            if me < t {
                participants.push(Participant::Byzantine(Box::new(SilentByzantine)));
            } else {
                participants.push(Participant::Honest(AbConsensus::new(shared.clone(), me, 7)));
            }
        }
        let total = shared.total_rounds();
        let mut runner = Runner::with_participants(participants, Box::new(NoFaults), 0).unwrap();
        let report = runner.run(total + 2);
        assert!(
            report.all_non_faulty_decided(),
            "termination despite silent Byzantine nodes"
        );
        assert!(report.non_faulty_deciders_agree());
        assert_eq!(report.agreed_value(), Some(&7));
        let _ = inputs;
    }

    #[test]
    fn equivocating_little_source_cannot_split_decisions() {
        let n = 30;
        let t = 3;
        let (config, directory) = setup(n, t, 9);
        let shared = AbConfig::from_system(&config, directory.clone()).unwrap();
        let little = shared.little;
        let byz_signer = directory.signer(0);
        let strategy = ScriptedByzantine::new(move |round: Round, _inbox: &[Delivered<AbMsg>]| {
            if round.as_u64() != 0 {
                return Vec::new();
            }
            (1..little)
                .map(|p| {
                    let value = if p % 2 == 0 { 100 } else { 200 };
                    let sv = SignedValue::originate(&byz_signer, value);
                    Outgoing::new(NodeId::new(p), AbMsg::Ds(Arc::new(DsBatch(vec![sv]))))
                })
                .collect()
        });
        let mut participants: Vec<Participant<AbConsensus>> = Vec::new();
        participants.push(Participant::Byzantine(Box::new(strategy)));
        for me in 1..n {
            participants.push(Participant::Honest(AbConsensus::new(shared.clone(), me, 5)));
        }
        let total = shared.total_rounds();
        let mut runner = Runner::with_participants(participants, Box::new(NoFaults), 0).unwrap();
        let report = runner.run(total + 2);
        assert!(
            report.non_faulty_deciders_agree(),
            "agreement under equivocation"
        );
        assert!(report.all_non_faulty_decided());
        // The equivocator resolves to null, so the decision is the maximum of
        // the honest little inputs (5), never 100 or 200.
        assert_eq!(report.agreed_value(), Some(&5));
    }

    #[test]
    fn message_complexity_is_quadratic_in_t_not_n() {
        let n = 80;
        let t = 4;
        let inputs: Vec<u64> = vec![1; n];
        let report = run_honest(n, t, &inputs);
        // Theorem 11: O(t² + n) messages from non-faulty nodes.  With little
        // = 5t = 20 the dominant Part 1 term is ~ (5t)²·(t+1); check we stay
        // well below n² rounds of all-to-all traffic.
        let little = 5 * t as u64;
        let bound = little * little * (t as u64 + 3) + 20 * n as u64;
        assert!(
            report.metrics.messages <= bound,
            "{} messages exceeds {bound}",
            report.metrics.messages
        );
    }

    #[test]
    fn rejects_t_at_least_half() {
        let (config, directory) = setup(20, 10, 1);
        assert!(AbConsensus::for_all_nodes(&config, &[0; 20], directory).is_err());
    }

    #[test]
    fn common_set_verification_rejects_thin_quorums() {
        let directory = KeyDirectory::generate(10, 4);
        let entry = SignedValue::originate(&directory.signer(0), 3);
        let set = CommonSet {
            entries: vec![entry],
        };
        assert!(set.verify(&directory, 1, 1));
        assert!(!set.verify(&directory, 1, 2), "needs two little signatures");
        assert!(!set.verify(&directory, 2, 1), "wrong number of entries");
    }
}
