//! # dft-core — the paper's algorithms
//!
//! Deterministic fault-tolerant consensus, gossiping and checkpointing in
//! linear time and communication, reproducing Chlebus–Kowalski–Olkowski
//! (PODC 2023).  Every algorithm is a [`dft_sim::SyncProtocol`] (or
//! [`dft_sim::SinglePortProtocol`]) state machine driven by the `dft-sim`
//! runners over `dft-overlay` expander graphs:
//!
//! * [`AlmostEverywhereAgreement`] — Section 4.1 (Theorem 5): ≥ 3/5·n nodes
//!   agree, `O(t)` rounds, `O(n)` one-bit messages, `t < n/5`.
//! * [`SpreadCommonValue`] — Section 4.2 (Theorem 6): spreads a value held by
//!   3/5·n nodes to everyone in `O(log t)` rounds and `O(t log t)` messages.
//! * [`FewCrashesConsensus`] — Section 4.3 (Theorem 7): consensus in
//!   `O(t + log n)` rounds and `O(n + t log t)` bits, `t < n/5`.
//! * [`ManyCrashesConsensus`] — Section 4.4 (Theorem 8 / Corollary 1):
//!   consensus for any `t < n` in `≤ n + 3(1 + lg n)` rounds.
//! * [`Gossip`] — Section 5 (Theorem 9): `O(log n log t)` rounds,
//!   `O(n + t log n log t)` messages.
//! * [`Checkpointing`] — Section 6 (Theorem 10): gossip plus `n` combined
//!   consensus instances.
//! * [`DolevStrong`] / [`AbConsensus`] — Section 7 (Theorem 11):
//!   authenticated-Byzantine consensus, `t < n/2`, `O(t)` rounds,
//!   `O(t² + n)` messages from non-faulty nodes.
//! * [`LinearConsensus`] / [`SinglePortAdapter`] — Section 8 (Theorem 12):
//!   the single-port adaptation.
//! * [`LocalProbing`] — the probing primitive of Proposition 1 shared by all
//!   of the above.
//!
//! # Quick example
//!
//! ```
//! use dft_core::{FewCrashesConsensus, SystemConfig};
//! use dft_sim::{RandomCrashes, Runner};
//!
//! let n = 60;
//! let t = 8;
//! let config = SystemConfig::new(n, t).unwrap().with_seed(42);
//! let inputs: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
//! let nodes = FewCrashesConsensus::for_all_nodes(&config, &inputs).unwrap();
//! let rounds = nodes[0].total_rounds();
//!
//! let adversary = RandomCrashes::new(n, t, 30, 7);
//! let mut runner = Runner::with_adversary(nodes, Box::new(adversary), t).unwrap();
//! let report = runner.run(rounds + 2);
//!
//! assert!(report.all_non_faulty_decided());
//! assert!(report.non_faulty_deciders_agree());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ab_consensus;
pub mod aea;
pub mod checkpointing;
pub mod config;
pub mod dolev_strong;
mod error;
pub mod few_crashes;
pub mod gossip;
mod local_probing;
pub mod many_crashes;
pub mod scv;
pub mod single_port;
mod values;
pub mod wire;

pub use ab_consensus::{AbConfig, AbConsensus, AbMsg, CommonSet, NULL_VALUE};
pub use aea::{AeaConfig, AeaMsg, AlmostEverywhereAgreement};
pub use checkpointing::{Checkpoint, CheckpointConfig, CheckpointMsg, Checkpointing};
pub use config::{ParamMode, SystemConfig};
pub use dolev_strong::{DolevStrong, DolevStrongConfig, DsBatch};
pub use error::{CoreError, CoreResult};
pub use few_crashes::{FcMsg, FewCrashesConfig, FewCrashesConsensus};
pub use gossip::{Gossip, GossipConfig, GossipMsg};
pub use local_probing::LocalProbing;
pub use many_crashes::{
    round_budget_for, theorem8_round_bound, ManyCrashesConfig, ManyCrashesConsensus, McMsg,
};
pub use scv::{ScvConfig, ScvMsg, SpreadCommonValue};
pub use single_port::{
    linear_consensus_for_all_nodes, LinearConsensus, LinearConsensusPlan, PortPlan,
    SinglePortAdapter,
};
pub use values::{BitVector, ExtantSet, JoinValue, Rumor};
