//! `Spread-Common-Value` (Section 4.2, Figure 2, Theorem 6).
//!
//! Preconditions: `t < n/5` and at least `3/5·n` nodes are initialized with
//! the same non-null common value.  The algorithm makes every non-faulty
//! node decide on that value:
//!
//! 1. **Part 1 — slow broadcast** over the constant-degree graph `H` for
//!    `⌈log_{3/2}((2n/5)/max(t, n/t))⌉` rounds: decided nodes forward the
//!    value, receivers adopt it.
//! 2. **Part 2 — inquiries**: if `t² ≤ n`, every still-undecided node asks
//!    every little node and adopts the response; otherwise phase `i` has the
//!    undecided nodes inquire along the Lemma 5 graph `G_i` of degree
//!    `Θ(2^i)` and adopt any response.
//!
//! Theorem 6: `O(log t)` rounds and `O(t log t)` messages.

use std::sync::Arc;

use dft_overlay::{Graph, InquiryFamily};
use dft_sim::{Delivered, NodeId, Outgoing, Payload, Round, SyncProtocol};

use crate::config::SystemConfig;
use crate::error::CoreResult;
use crate::values::JoinValue;

/// Static configuration shared by every node running [`SpreadCommonValue`].
#[derive(Clone, Debug)]
pub struct ScvConfig {
    /// Number of nodes.
    pub n: usize,
    /// Fault bound.
    pub t: usize,
    /// Number of little nodes.
    pub little: usize,
    /// The constant-degree broadcast graph `H`.
    pub h_graph: Arc<Graph>,
    /// The per-phase inquiry family `G_i` of Lemma 5.
    pub family: Arc<InquiryFamily>,
    /// Number of broadcast rounds in Part 1.
    pub part1_rounds: u64,
    /// Forces the phase-based inquiry branch of Part 2 even when `t² ≤ n`.
    ///
    /// The single-port adaptation (Section 8) uses this: polling schedules
    /// must be data-independent, which the per-phase overlay graphs provide
    /// but the "ask every little node" broadcast does not.
    pub force_phase_inquiry: bool,
}

impl ScvConfig {
    /// Derives the configuration from a [`SystemConfig`].
    ///
    /// # Errors
    ///
    /// Returns an error unless `t < n/5`.
    pub fn from_system(config: &SystemConfig) -> CoreResult<Self> {
        config.require_few_crashes()?;
        Ok(ScvConfig {
            n: config.n,
            t: config.t,
            little: config.little_count(),
            h_graph: config.h_graph(),
            family: config.scv_family(),
            part1_rounds: config.scv_broadcast_rounds(),
            force_phase_inquiry: false,
        })
    }

    /// Whether Part 2 uses the direct "ask every little node" branch
    /// (`t² ≤ n`).
    pub fn direct_inquiry(&self) -> bool {
        self.t * self.t <= self.n && !self.force_phase_inquiry
    }

    /// Number of inquiry phases in Part 2 (each phase is two rounds).
    pub fn inquiry_phases(&self) -> u64 {
        if self.direct_inquiry() {
            1
        } else {
            self.family.phases() as u64
        }
    }

    /// Total number of rounds of the protocol.
    pub fn total_rounds(&self) -> u64 {
        self.part1_rounds + 2 * self.inquiry_phases()
    }
}

/// Messages of `Spread-Common-Value`.
#[derive(Clone, Debug, PartialEq)]
pub enum ScvMsg<V> {
    /// The common value, forwarded during Part 1 broadcast.
    Value(V),
    /// An inquiry from an undecided node (Part 2).
    Inquiry,
    /// A response carrying the common value (Part 2).
    Response(V),
}

impl<V: JoinValue> Payload for ScvMsg<V> {
    fn bit_len(&self) -> u64 {
        match self {
            ScvMsg::Value(v) | ScvMsg::Response(v) => v.wire_bits(),
            ScvMsg::Inquiry => 1,
        }
    }
}

/// Per-node state machine for `Spread-Common-Value`.
#[derive(Clone, Debug)]
pub struct SpreadCommonValue<V: JoinValue> {
    config: ScvConfig,
    me: usize,
    common: Option<V>,
    forward_pending: bool,
    inquirers: Vec<usize>,
    halted: bool,
}

impl<V: JoinValue> SpreadCommonValue<V> {
    /// Creates the state machine for node `me`.  `initial` is the common
    /// value for initialized nodes and `None` (null) for the rest.
    pub fn new(config: ScvConfig, me: usize, initial: Option<V>) -> Self {
        let forward_pending = initial.is_some();
        SpreadCommonValue {
            config,
            me,
            common: initial,
            forward_pending,
            inquirers: Vec::new(),
            halted: false,
        }
    }

    /// Builds state machines for all nodes; `initials[i]` is node `i`'s
    /// initial common value (or `None`).
    ///
    /// # Errors
    ///
    /// Propagates configuration errors (requires `t < n/5`).
    ///
    /// # Panics
    ///
    /// Panics if `initials.len() != config.n`.
    pub fn for_all_nodes(config: &SystemConfig, initials: &[Option<V>]) -> CoreResult<Vec<Self>> {
        assert_eq!(initials.len(), config.n, "one initial value per node");
        let shared = ScvConfig::from_system(config)?;
        Ok(initials
            .iter()
            .enumerate()
            .map(|(me, init)| Self::new(shared.clone(), me, init.clone()))
            .collect())
    }

    /// The adopted common value, if any.
    pub fn common(&self) -> Option<&V> {
        self.common.as_ref()
    }

    /// Replaces the initial value; used by composite protocols that learn the
    /// value only when an earlier stage finishes (e.g. consensus wiring the
    /// AEA decision into SCV).
    pub fn set_initial(&mut self, value: Option<V>) {
        if self.common.is_none() {
            self.forward_pending = value.is_some();
            self.common = value;
        }
    }

    /// Whether this node is a little node (a Part 2 direct-inquiry target).
    pub fn is_little(&self) -> bool {
        self.me < self.config.little
    }

    /// The phase (1-based) of Part 2 containing relative round `r`, together
    /// with whether it is the inquiry (first) or response (second) round.
    fn phase_of(&self, r: u64) -> Option<(u64, bool)> {
        if r < self.config.part1_rounds {
            return None;
        }
        let offset = r - self.config.part1_rounds;
        let phase = offset / 2 + 1;
        if phase > self.config.inquiry_phases() {
            return None;
        }
        Some((phase, offset.is_multiple_of(2)))
    }
}

impl<V: JoinValue> SyncProtocol for SpreadCommonValue<V> {
    type Msg = ScvMsg<V>;
    type Output = V;

    fn send(&mut self, round: Round, out: &mut Vec<Outgoing<ScvMsg<V>>>) {
        let r = round.as_u64();
        if r < self.config.part1_rounds {
            // Part 1: forward the value to H-neighbours when newly adopted.
            if self.forward_pending {
                self.forward_pending = false;
                if let Some(value) = &self.common {
                    out.extend(
                        self.config
                            .h_graph
                            .neighbors(self.me)
                            .iter()
                            .map(|&v| Outgoing::new(NodeId::new(v), ScvMsg::Value(value.clone()))),
                    );
                }
            }
            return;
        }
        let Some((phase, is_inquiry_round)) = self.phase_of(r) else {
            return;
        };
        if is_inquiry_round {
            // First round of the phase: undecided nodes inquire.
            if self.common.is_none() {
                let me = self.me;
                let inquiry =
                    |v: usize| (v != me).then(|| Outgoing::new(NodeId::new(v), ScvMsg::Inquiry));
                if self.config.direct_inquiry() {
                    out.extend((0..self.config.little).filter_map(inquiry));
                } else {
                    let graph = self.config.family.graph(phase as usize);
                    out.extend(graph.neighbors(self.me).iter().filter_map(|&v| inquiry(v)));
                }
            }
        } else {
            // Second round of the phase: decided nodes answer last round's
            // inquirers.
            if let Some(value) = &self.common {
                out.extend(
                    self.inquirers
                        .drain(..)
                        .map(|v| Outgoing::new(NodeId::new(v), ScvMsg::Response(value.clone()))),
                );
            } else {
                self.inquirers.clear();
            }
        }
    }

    fn receive(&mut self, round: Round, inbox: &[Delivered<ScvMsg<V>>]) {
        let r = round.as_u64();
        if r < self.config.part1_rounds {
            for msg in inbox {
                if let ScvMsg::Value(v) = &msg.msg {
                    if self.common.is_none() {
                        self.common = Some(v.clone());
                        self.forward_pending = true;
                    }
                }
            }
        } else if let Some((_, is_inquiry_round)) = self.phase_of(r) {
            if is_inquiry_round {
                self.inquirers = inbox
                    .iter()
                    .filter(|m| matches!(m.msg, ScvMsg::Inquiry))
                    .map(|m| m.from.index())
                    .collect();
                // Little nodes answer inquiries only if decided; keep the
                // inquirer list regardless — `send` checks the decision.
            } else {
                for msg in inbox {
                    if let ScvMsg::Response(v) = &msg.msg {
                        if self.common.is_none() {
                            self.common = Some(v.clone());
                        }
                    }
                }
            }
        }
        if r + 1 >= self.config.total_rounds() {
            self.halted = true;
        }
    }

    fn output(&self) -> Option<V> {
        self.common.clone()
    }

    fn has_halted(&self) -> bool {
        self.halted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_sim::{NoFaults, RandomCrashes, Runner};

    fn run_scv(
        n: usize,
        t: usize,
        initialized: usize,
        adversary: Box<dyn dft_sim::CrashAdversary>,
        budget: usize,
    ) -> dft_sim::ExecutionReport<bool> {
        let config = SystemConfig::new(n, t).unwrap().with_seed(21);
        // The `initialized` highest-index nodes know the value `true`; this
        // leaves little nodes uninitialised, exercising the inquiry path too.
        let initials: Vec<Option<bool>> = (0..n)
            .map(|i| (i >= n - initialized).then_some(true))
            .collect();
        let nodes = SpreadCommonValue::for_all_nodes(&config, &initials).unwrap();
        let total = ScvConfig::from_system(&config).unwrap().total_rounds();
        let mut runner = Runner::with_adversary(nodes, adversary, budget).unwrap();
        runner.run(total + 2)
    }

    #[test]
    fn spreads_to_everyone_without_faults_small_t() {
        // t² ≤ n branch.
        let n = 100;
        let t = 8;
        let report = run_scv(n, t, 70, Box::new(NoFaults), 0);
        assert!(report.all_non_faulty_decided());
        assert_eq!(report.agreed_value(), Some(&true));
    }

    #[test]
    fn spreads_to_everyone_without_faults_large_t() {
        // t² > n branch (phase-based inquiries).
        let n = 120;
        let t = 20;
        let report = run_scv(n, t, 90, Box::new(NoFaults), 0);
        assert!(report.all_non_faulty_decided());
        assert_eq!(report.agreed_value(), Some(&true));
    }

    #[test]
    fn spreads_under_random_crashes() {
        let n = 150;
        let t = 18;
        let adversary = RandomCrashes::new(n, t, 10, 5);
        let report = run_scv(n, t, 110, Box::new(adversary), t);
        assert!(report.non_faulty_deciders_agree());
        assert_eq!(report.agreed_value(), Some(&true));
        // All non-faulty nodes that are not little decide; little nodes may be
        // left undecided only if nobody held the value near them — with 110
        // initialized nodes the broadcast reaches everyone.
        assert!(report.all_non_faulty_decided());
    }

    #[test]
    fn no_initial_value_means_no_decisions() {
        let n = 80;
        let t = 8;
        let report = run_scv(n, t, 0, Box::new(NoFaults), 0);
        assert!(report.deciders().is_empty());
        // Undecided nodes still sent inquiries; nobody answered.
        assert!(report.metrics.messages > 0);
        assert!(report.non_faulty_deciders_agree());
    }

    #[test]
    fn rounds_are_logarithmic() {
        let config = SystemConfig::new(4000, 500).unwrap();
        let scv = ScvConfig::from_system(&config).unwrap();
        // O(log t): generous constant.
        assert!(scv.total_rounds() <= 6 * (500f64.log2().ceil() as u64) + 10);
    }

    #[test]
    fn message_count_is_moderate() {
        let n = 200;
        let t = 20;
        let report = run_scv(n, t, 140, Box::new(NoFaults), 0);
        // Theorem 6 charges O(t log t) to Part 2 plus O(n) for Part 1
        // forwarding over the constant-degree H.
        let bound = (40 * n) as u64;
        assert!(
            report.metrics.messages < bound,
            "{} messages exceeds {bound}",
            report.metrics.messages
        );
    }

    #[test]
    fn set_initial_only_applies_once() {
        let config = SystemConfig::new(50, 4).unwrap();
        let shared = ScvConfig::from_system(&config).unwrap();
        let mut node = SpreadCommonValue::new(shared, 0, Some(true));
        node.set_initial(Some(false));
        assert_eq!(node.common(), Some(&true));
    }
}
