//! `Gossip` (Section 5, Figure 5, Theorem 9).
//!
//! Every node starts with a *rumor*; every non-faulty node must decide on an
//! *extant set* of `(node, rumor)` pairs such that nodes that crashed before
//! sending anything are excluded and nodes that halt operational are included
//! in every decided set (decided sets need not be equal).
//!
//! The algorithm assumes `t < n/5` and works in two parts of `⌈lg n⌉` phases
//! each.  In Part 1 the little nodes *collect* rumors: in phase `i` each
//! surviving little node inquires the neighbours it is still missing along
//! the doubling-degree graph `G_i`, then the little nodes cross-pollinate
//! their extant sets during a local-probing instance on the little overlay
//! `G`.  In Part 2 the little nodes *disseminate*: each surviving little node
//! pushes its extant set to `G_i`-neighbours not yet in its completion set,
//! and probing keeps the little nodes' completion sets in sync.
//!
//! Theorem 9: `O(log n · log t)` rounds and `O(n + t·log n·log t)` messages.

use std::sync::Arc;

use dft_overlay::{Graph, InquiryFamily};
use dft_sim::{Delivered, NodeId, Outgoing, Payload, Round, SyncProtocol};

use crate::config::SystemConfig;
use crate::error::CoreResult;
use crate::local_probing::LocalProbing;
use crate::values::{BitVector, ExtantSet, JoinValue, Rumor};

/// Static configuration shared by every node running [`Gossip`].
#[derive(Clone, Debug)]
pub struct GossipConfig {
    /// Number of nodes.
    pub n: usize,
    /// Number of little nodes.
    pub little: usize,
    /// Little-node overlay graph `G` used for local probing.
    pub graph: Arc<Graph>,
    /// Survival threshold `δ`.
    pub delta: usize,
    /// Local-probing duration per phase (`2 + ⌈lg 5t⌉`).
    pub gamma: u64,
    /// Doubling-degree inquiry family (`G_i`).
    pub family: Arc<InquiryFamily>,
    /// Number of phases per part (`⌈lg n⌉`).
    pub phases: u64,
}

impl GossipConfig {
    /// Derives the configuration from a [`SystemConfig`].
    ///
    /// # Errors
    ///
    /// Returns an error unless `t < n/5`.
    pub fn from_system(config: &SystemConfig) -> CoreResult<Self> {
        config.require_few_crashes()?;
        let params = config.little_params();
        let graph = config.little_graph();
        let delta = params.delta.min(graph.min_degree());
        Ok(GossipConfig {
            n: config.n,
            little: config.little_count(),
            graph,
            delta,
            gamma: params.gamma as u64,
            family: config.scv_family(),
            phases: (config.n as f64).log2().ceil().max(1.0) as u64,
        })
    }

    /// Rounds per phase: inquiry, response, then the probing window.
    pub fn phase_rounds(&self) -> u64 {
        2 + self.gamma
    }

    /// Total number of rounds (two parts of `phases` phases each).
    pub fn total_rounds(&self) -> u64 {
        2 * self.phases * self.phase_rounds()
    }
}

/// Messages of `Gossip`.
///
/// The set-valued variants are [`Arc`]-wrapped: the same extant/completion
/// set is pushed to many neighbours per round, and sharing turns each
/// per-recipient copy into a reference-count bump.  Wire sizes are those of
/// the inner sets, so bit accounting is unchanged.
#[derive(Clone, Debug, PartialEq)]
pub enum GossipMsg {
    /// Part 1, phase round 1: a little node asks a neighbour for its pair.
    Inquiry,
    /// Part 1, phase round 2: the neighbour's `(index, rumor)` pair.
    Pair {
        /// Index of the responding node.
        node: u64,
        /// The responder's rumor.
        rumor: Rumor,
    },
    /// An extant set (probing payload in Part 1, push payload in Part 2).
    Extant(Arc<ExtantSet>),
    /// A completion set (probing payload in Part 2).
    Completion(Arc<BitVector>),
}

impl Payload for GossipMsg {
    fn bit_len(&self) -> u64 {
        match self {
            GossipMsg::Inquiry => 1,
            GossipMsg::Pair { .. } => 128,
            GossipMsg::Extant(set) => set.wire_bits(),
            GossipMsg::Completion(bits) => bits.wire_bits(),
        }
    }
}

/// Which part of the algorithm a round belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Stage {
    /// Part 1: building extant sets at the little nodes.
    BuildExtant,
    /// Part 2: disseminating extant sets / building completion sets.
    BuildCompletion,
}

/// Per-node state machine for `Gossip`.
#[derive(Clone, Debug)]
pub struct Gossip {
    config: GossipConfig,
    me: usize,
    extant: ExtantSet,
    completion: BitVector,
    probe: LocalProbing,
    survived_last_phase: bool,
    inquirers: Vec<usize>,
    decided: Option<ExtantSet>,
    halted: bool,
}

impl Gossip {
    /// Creates the state machine for node `me` with rumor `rumor`.
    pub fn new(config: GossipConfig, me: usize, rumor: Rumor) -> Self {
        let mut extant = ExtantSet::nil(config.n);
        extant.update(me, rumor);
        let mut completion = BitVector::zeros(config.n);
        completion.set(me, true);
        let is_little = me < config.little;
        let probe = LocalProbing::new(config.delta, config.gamma, is_little);
        Gossip {
            config,
            me,
            extant,
            completion,
            probe,
            survived_last_phase: true,
            inquirers: Vec::new(),
            decided: None,
            halted: false,
        }
    }

    /// Builds state machines for all nodes from per-node rumors.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors (requires `t < n/5`).
    ///
    /// # Panics
    ///
    /// Panics if `rumors.len() != config.n`.
    pub fn for_all_nodes(config: &SystemConfig, rumors: &[Rumor]) -> CoreResult<Vec<Self>> {
        assert_eq!(rumors.len(), config.n, "one rumor per node required");
        let shared = GossipConfig::from_system(config)?;
        Ok(rumors
            .iter()
            .enumerate()
            .map(|(me, &rumor)| Self::new(shared.clone(), me, rumor))
            .collect())
    }

    /// Total rounds this protocol runs for.
    pub fn total_rounds(&self) -> u64 {
        self.config.total_rounds()
    }

    fn is_little(&self) -> bool {
        self.me < self.config.little
    }

    /// Decomposes a relative round into (stage, phase 1-based, offset within
    /// the phase).
    fn locate(&self, r: u64) -> Option<(Stage, u64, u64)> {
        let per_part = self.config.phases * self.config.phase_rounds();
        if r >= 2 * per_part {
            return None;
        }
        let (part, within) = if r < per_part {
            (Stage::BuildExtant, r)
        } else {
            (Stage::BuildCompletion, r - per_part)
        };
        let phase = within / self.config.phase_rounds() + 1;
        let offset = within % self.config.phase_rounds();
        Some((part, phase, offset))
    }

    fn probing_sends(&self, msg: GossipMsg, out: &mut Vec<Outgoing<GossipMsg>>) {
        if self.probe.should_send() {
            out.extend(
                self.config
                    .graph
                    .neighbors(self.me)
                    .iter()
                    .map(|&v| Outgoing::new(NodeId::new(v), msg.clone())),
            );
        }
    }
}

impl SyncProtocol for Gossip {
    type Msg = GossipMsg;
    type Output = ExtantSet;

    fn send(&mut self, round: Round, out: &mut Vec<Outgoing<GossipMsg>>) {
        let Some((stage, phase, offset)) = self.locate(round.as_u64()) else {
            return;
        };
        match (stage, offset) {
            // Phase round 1: little survivors reach out along G_i.
            (Stage::BuildExtant, 0) => {
                if self.is_little() && self.survived_last_phase {
                    let graph = self.config.family.graph(phase as usize);
                    out.extend(
                        graph
                            .neighbors(self.me)
                            .iter()
                            .filter(|&&v| v != self.me && !self.extant.is_present(v))
                            .map(|&v| Outgoing::new(NodeId::new(v), GossipMsg::Inquiry)),
                    );
                }
            }
            (Stage::BuildCompletion, 0) => {
                if self.is_little() && self.survived_last_phase {
                    let graph = self.config.family.graph(phase as usize);
                    // First pass stages the targets (marking as it goes),
                    // second pass attaches the shared payload; `out` itself
                    // is the staging area, so no side list is built.
                    let staged_from = out.len();
                    for &v in graph.neighbors(self.me) {
                        if v != self.me && !self.completion.get(v) {
                            self.completion.set(v, true);
                            out.push(Outgoing::new(NodeId::new(v), GossipMsg::Inquiry));
                        }
                    }
                    if out.len() > staged_from {
                        let set = Arc::new(self.extant.clone());
                        for staged in &mut out[staged_from..] {
                            staged.msg = GossipMsg::Extant(Arc::clone(&set));
                        }
                    }
                }
            }
            // Phase round 2: respond to inquiries (Part 1 only).
            (Stage::BuildExtant, 1) => {
                let rumor = self.extant.rumor_of(self.me).unwrap_or_default();
                let me = self.me as u64;
                out.extend(
                    self.inquirers.drain(..).map(|v| {
                        Outgoing::new(NodeId::new(v), GossipMsg::Pair { node: me, rumor })
                    }),
                );
            }
            (Stage::BuildCompletion, 1) => {}
            // Probing rounds.
            (Stage::BuildExtant, _) => {
                if self.probe.should_send() {
                    let msg = GossipMsg::Extant(Arc::new(self.extant.clone()));
                    self.probing_sends(msg, out);
                }
            }
            (Stage::BuildCompletion, _) => {
                if self.probe.should_send() {
                    let msg = GossipMsg::Completion(Arc::new(self.completion.clone()));
                    self.probing_sends(msg, out);
                }
            }
        }
    }

    fn receive(&mut self, round: Round, inbox: &[Delivered<GossipMsg>]) {
        let r = round.as_u64();
        if let Some((stage, _phase, offset)) = self.locate(r) {
            match offset {
                0 => {
                    // Collect inquiries (only meaningful in Part 1).
                    self.inquirers = inbox
                        .iter()
                        .filter(|m| matches!(m.msg, GossipMsg::Inquiry))
                        .map(|m| m.from.index())
                        .collect();
                    // In Part 2, absorb pushed extant sets.
                    for msg in inbox {
                        if let GossipMsg::Extant(set) = &msg.msg {
                            self.extant.merge(set);
                        }
                    }
                }
                1 => {
                    for msg in inbox {
                        match &msg.msg {
                            GossipMsg::Pair { node, rumor } => {
                                self.extant.update(*node as usize, *rumor);
                            }
                            GossipMsg::Extant(set) => {
                                self.extant.merge(set);
                            }
                            _ => {}
                        }
                    }
                    // A fresh probing instance starts after the exchange
                    // rounds of each phase.
                    if self.is_little() {
                        self.probe.reset(self.survived_last_phase);
                    }
                }
                _ => {
                    let mut received = 0;
                    for msg in inbox {
                        match &msg.msg {
                            GossipMsg::Extant(set) => {
                                received += 1;
                                self.extant.merge(set);
                            }
                            GossipMsg::Completion(bits) => {
                                received += 1;
                                self.completion.join_in_place(bits);
                            }
                            _ => {}
                        }
                    }
                    self.probe.observe_round(received);
                    if self.probe.finished() && self.is_little() {
                        self.survived_last_phase = self.probe.survived();
                    }
                    let _ = stage;
                }
            }
        }
        if r + 1 >= self.config.total_rounds() {
            self.decided = Some(self.extant.clone());
            self.halted = true;
        }
    }

    fn output(&self) -> Option<ExtantSet> {
        self.decided.clone()
    }

    fn has_halted(&self) -> bool {
        self.halted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_sim::{NoFaults, RandomCrashes, Runner};

    fn rumors(n: usize) -> Vec<Rumor> {
        (0..n).map(|i| 1000 + i as u64).collect()
    }

    fn run_gossip(
        n: usize,
        t: usize,
        adversary: Box<dyn dft_sim::CrashAdversary>,
        budget: usize,
        seed: u64,
    ) -> dft_sim::ExecutionReport<ExtantSet> {
        let config = SystemConfig::new(n, t).unwrap().with_seed(seed);
        let nodes = Gossip::for_all_nodes(&config, &rumors(n)).unwrap();
        let total = GossipConfig::from_system(&config).unwrap().total_rounds();
        let mut runner = Runner::with_adversary(nodes, adversary, budget).unwrap();
        runner.run(total + 2)
    }

    #[test]
    fn fault_free_every_node_learns_every_rumor() {
        let n = 60;
        let t = 8;
        let report = run_gossip(n, t, Box::new(NoFaults), 0, 1);
        assert!(report.all_non_faulty_decided());
        for (i, output) in report.outputs.iter().enumerate() {
            let set = output.as_ref().expect("decided");
            assert_eq!(set.present_count(), n, "node {i} missing rumors");
            for j in 0..n {
                assert_eq!(set.rumor_of(j), Some(1000 + j as u64));
            }
        }
    }

    #[test]
    fn crashed_before_sending_is_excluded_and_operational_included() {
        let n = 80;
        let t = 10;
        // Crash a batch of little nodes at round 0 before they send anything.
        let adversary =
            dft_sim::FixedCrashSchedule::new().crash_all_at(0, (0..5).map(dft_sim::NodeId::new));
        let report = run_gossip(n, t, Box::new(adversary), t, 2);
        assert!(report.all_non_faulty_decided());
        let non_faulty = report.non_faulty();
        for id in non_faulty.iter() {
            let set = report.outputs[id.index()].as_ref().expect("decided");
            // Gossip condition (2): every operational node's pair is present
            // in every decided extant set.
            for other in non_faulty.iter() {
                assert!(
                    set.is_present(other.index()),
                    "node {} missing operational node {}",
                    id.index(),
                    other.index()
                );
            }
        }
    }

    #[test]
    fn gossip_under_random_crashes_keeps_condition_two() {
        let n = 100;
        let t = 15;
        let adversary = RandomCrashes::new(n, t, 20, 9);
        let report = run_gossip(n, t, Box::new(adversary), t, 3);
        assert!(report.all_non_faulty_decided());
        let non_faulty = report.non_faulty();
        for id in non_faulty.iter() {
            let set = report.outputs[id.index()].as_ref().expect("decided");
            for other in non_faulty.iter() {
                assert!(set.is_present(other.index()));
            }
        }
    }

    #[test]
    fn rounds_are_polylogarithmic() {
        let config = SystemConfig::new(2000, 200).unwrap();
        let gossip = GossipConfig::from_system(&config).unwrap();
        let log_n = (2000f64).log2().ceil() as u64;
        let log_t = (1000f64).log2().ceil() as u64 + 2;
        assert!(
            gossip.total_rounds() <= 4 * log_n * (log_t + 4),
            "{} rounds",
            gossip.total_rounds()
        );
    }

    #[test]
    fn message_count_matches_theorem_9_shape() {
        // Theorem 9: O(n + t·log n·log t) messages, with the overlay degree
        // and probing duration as the hidden constant.  At laptop scale the
        // probing term dominates; check the count stays within that formula
        // (the all-to-all baseline, by contrast, grows with n² per round —
        // see the E6 benchmark for the crossover).
        let n = 100;
        let t = 10;
        let config = SystemConfig::new(n, t).unwrap().with_seed(4);
        let gossip_cfg = GossipConfig::from_system(&config).unwrap();
        let report = run_gossip(n, t, Box::new(NoFaults), 0, 4);
        let degree = gossip_cfg.graph.max_degree() as u64;
        let log_n = (n as f64).log2().ceil() as u64;
        let log_t = (5.0 * t as f64).log2().ceil() as u64 + 2;
        let bound = 10 * n as u64 + 4 * (5 * t as u64) * log_n * log_t * degree;
        assert!(
            report.metrics.messages < bound,
            "{} messages vs bound {bound}",
            report.metrics.messages
        );
    }
}
