//! The Dolev–Strong authenticated broadcast (the `DS-Algorithm` of
//! Section 7, used as a sub-routine by `AB-Consensus`).
//!
//! One or more *sources* broadcast a value each.  Every relayed value carries
//! a growing chain of signatures; a value received in round `r` is accepted
//! only if its chain contains at least `r + 1` valid signatures from distinct
//! nodes starting with the source.  After `t + 1` rounds all non-faulty
//! participants have accepted the same value set per source; a source that
//! equivocated (or stayed silent) resolves to `None` (the paper's null).
//!
//! The implementation runs any number of parallel instances (one per source)
//! with per-pair messages combined into a single batch, exactly as
//! `AB-Consensus` Part 1 prescribes.

use std::collections::BTreeSet;
use std::sync::Arc;

use dft_auth::{KeyDirectory, SignedValue, Signer};
use dft_sim::{Delivered, NodeId, Outgoing, Payload, Round, SyncProtocol};

use crate::config::SystemConfig;
use crate::error::{CoreError, CoreResult};

/// A batch of signed values exchanged in one round between one pair of nodes
/// (the "combined message" of the parallel executions).
#[derive(Clone, Debug, PartialEq)]
pub struct DsBatch(pub Vec<SignedValue>);

impl Payload for DsBatch {
    fn bit_len(&self) -> u64 {
        64 + self.0.iter().map(SignedValue::encoded_bits).sum::<u64>()
    }
}

/// Static configuration of a parallel Dolev–Strong broadcast.
#[derive(Clone, Debug)]
pub struct DolevStrongConfig {
    /// Fault bound `t` (the broadcast runs `t + 1` rounds).
    pub t: usize,
    /// Nodes participating in the broadcast (relays and receivers).
    pub participants: Arc<Vec<usize>>,
    /// The broadcasting sources, a subset of the participants.
    pub sources: Arc<Vec<usize>>,
    /// The key directory used to verify chains.
    pub directory: Arc<KeyDirectory>,
}

impl DolevStrongConfig {
    /// A broadcast among all `n` nodes with the given sources.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidFaultBound`] if `t ≥ n`.
    pub fn all_nodes(
        config: &SystemConfig,
        sources: Vec<usize>,
        directory: Arc<KeyDirectory>,
    ) -> CoreResult<Self> {
        if config.t >= config.n {
            return Err(CoreError::InvalidFaultBound {
                n: config.n,
                t: config.t,
                requirement: "t < n",
            });
        }
        Ok(DolevStrongConfig {
            t: config.t,
            participants: Arc::new((0..config.n).collect()),
            sources: Arc::new(sources),
            directory,
        })
    }

    /// Number of rounds of the broadcast (`t + 1`).
    pub fn total_rounds(&self) -> u64 {
        self.t as u64 + 1
    }
}

/// Per-node state machine for parallel Dolev–Strong broadcast.
///
/// The output is one resolved value per source: `Some(v)` when exactly one
/// value was accepted for that source, `None` (null) otherwise.
#[derive(Clone, Debug)]
pub struct DolevStrong {
    config: DolevStrongConfig,
    me: usize,
    signer: Signer,
    /// My own input (used only if I am a source).
    input: u64,
    /// Accepted values per source index (into `config.sources`).
    accepted: Vec<BTreeSet<u64>>,
    /// Values accepted this round, to be relayed next round.
    relay_queue: Vec<SignedValue>,
    resolved: Option<Vec<Option<u64>>>,
    halted: bool,
}

impl DolevStrong {
    /// Creates the state machine for node `me` with broadcast input `input`
    /// (ignored unless `me` is a source).
    pub fn new(config: DolevStrongConfig, me: usize, input: u64) -> Self {
        let signer = config.directory.signer(me);
        let accepted = vec![BTreeSet::new(); config.sources.len()];
        DolevStrong {
            config,
            me,
            signer,
            input,
            accepted,
            relay_queue: Vec::new(),
            resolved: None,
            halted: false,
        }
    }

    /// Builds state machines for all nodes of the system; `inputs[i]` is the
    /// value node `i` broadcasts if it is a source.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors.
    pub fn for_all_nodes(
        config: &SystemConfig,
        sources: Vec<usize>,
        inputs: &[u64],
        directory: Arc<KeyDirectory>,
    ) -> CoreResult<Vec<Self>> {
        assert_eq!(inputs.len(), config.n, "one input per node required");
        let shared = DolevStrongConfig::all_nodes(config, sources, directory)?;
        Ok((0..config.n)
            .map(|me| Self::new(shared.clone(), me, inputs[me]))
            .collect())
    }

    /// The resolved per-source values (meaningful after `t + 1` rounds).
    pub fn resolution(&self) -> Option<&Vec<Option<u64>>> {
        self.resolved.as_ref()
    }

    /// Accepted value chains still queued for relay (exposed for
    /// `AB-Consensus`, which reuses them as endorsement evidence).
    pub fn accepted_values(&self, source_index: usize) -> Vec<u64> {
        self.accepted[source_index].iter().copied().collect()
    }

    fn source_index(&self, source: usize) -> Option<usize> {
        self.config.sources.iter().position(|&s| s == source)
    }

    fn broadcast_targets(&self) -> Vec<usize> {
        self.config
            .participants
            .iter()
            .copied()
            .filter(|&p| p != self.me)
            .collect()
    }
}

impl SyncProtocol for DolevStrong {
    type Msg = DsBatch;
    type Output = Vec<Option<u64>>;

    fn send(&mut self, round: Round, out: &mut Vec<Outgoing<DsBatch>>) {
        let r = round.as_u64();
        if r >= self.config.total_rounds() || !self.config.participants.contains(&self.me) {
            return;
        }
        let mut batch: Vec<SignedValue> = Vec::new();
        if r == 0 {
            if let Some(idx) = self.source_index(self.me) {
                let sv = SignedValue::originate(&self.signer, self.input);
                self.accepted[idx].insert(self.input);
                batch.push(sv);
            }
        }
        batch.append(&mut self.relay_queue);
        if batch.is_empty() {
            return;
        }
        out.extend(
            self.broadcast_targets()
                .into_iter()
                .map(|p| Outgoing::new(NodeId::new(p), DsBatch(batch.clone()))),
        );
    }

    fn receive(&mut self, round: Round, inbox: &[Delivered<DsBatch>]) {
        let r = round.as_u64();
        if r < self.config.total_rounds() && self.config.participants.contains(&self.me) {
            for delivered in inbox {
                for sv in &delivered.msg.0 {
                    let Some(idx) = self.source_index(sv.source) else {
                        continue;
                    };
                    // Acceptance: valid chain with at least r+1 signatures.
                    if !sv.verify_chain_with_length(&self.config.directory, r as usize + 1) {
                        continue;
                    }
                    if self.accepted[idx].insert(sv.value) {
                        // Newly accepted: relay with our countersignature in
                        // the next round (if any remain).
                        let mut relay = sv.clone();
                        relay.countersign(&self.signer);
                        self.relay_queue.push(relay);
                    }
                }
            }
        }
        if r + 1 >= self.config.total_rounds() {
            let resolution = self
                .accepted
                .iter()
                .map(|values| {
                    if values.len() == 1 {
                        values.iter().next().copied()
                    } else {
                        None
                    }
                })
                .collect();
            self.resolved = Some(resolution);
            self.halted = true;
        }
    }

    fn output(&self) -> Option<Vec<Option<u64>>> {
        self.resolved.clone()
    }

    fn has_halted(&self) -> bool {
        self.halted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_sim::adversary::byzantine::ScriptedByzantine;
    use dft_sim::{NoFaults, Participant, Runner};

    fn directory(n: usize) -> Arc<KeyDirectory> {
        Arc::new(KeyDirectory::generate(n, 7))
    }

    #[test]
    fn honest_sources_deliver_to_everyone() {
        let n = 12;
        let config = SystemConfig::new(n, 3).unwrap();
        let dir = directory(n);
        let inputs: Vec<u64> = (0..n as u64).map(|i| 100 + i).collect();
        let nodes =
            DolevStrong::for_all_nodes(&config, vec![0, 1, 2], &inputs, dir.clone()).unwrap();
        let total = nodes[0].config.total_rounds();
        let mut runner = Runner::new(nodes).unwrap();
        let report = runner.run(total + 1);
        assert!(report.all_non_faulty_decided());
        assert!(report.non_faulty_deciders_agree());
        let resolution = report.agreed_value().unwrap();
        assert_eq!(resolution, &vec![Some(100), Some(101), Some(102)]);
    }

    #[test]
    fn equivocating_source_resolves_to_null_consistently() {
        let n = 10;
        let t = 2;
        let config = SystemConfig::new(n, t).unwrap();
        let dir = directory(n);
        let inputs: Vec<u64> = vec![5; n];
        let shared = DolevStrongConfig::all_nodes(&config, vec![0, 1], dir.clone()).unwrap();

        // Node 0 is Byzantine: it sends value 7 to half the nodes and value 8
        // to the other half in round 0, each correctly signed by itself.
        let byz_signer = dir.signer(0);
        let strategy =
            ScriptedByzantine::new(move |round: Round, _inbox: &[Delivered<DsBatch>]| {
                if round.as_u64() != 0 {
                    return Vec::new();
                }
                (1..n)
                    .map(|p| {
                        let value = if p % 2 == 0 { 7 } else { 8 };
                        let sv = SignedValue::originate(&byz_signer, value);
                        Outgoing::new(NodeId::new(p), DsBatch(vec![sv]))
                    })
                    .collect()
            });

        let mut participants: Vec<Participant<DolevStrong>> = Vec::new();
        participants.push(Participant::Byzantine(Box::new(strategy)));
        for (me, &input) in inputs.iter().enumerate().skip(1) {
            participants.push(Participant::Honest(DolevStrong::new(
                shared.clone(),
                me,
                input,
            )));
        }
        let total = shared.total_rounds();
        let mut runner = Runner::with_participants(participants, Box::new(NoFaults), 0).unwrap();
        let report = runner.run(total + 1);
        assert!(report.non_faulty_deciders_agree());
        let resolution = report.agreed_value().unwrap();
        assert_eq!(resolution[0], None, "equivocating source resolves to null");
        assert_eq!(resolution[1], Some(5), "honest source still delivers");
    }

    #[test]
    fn silent_source_resolves_to_null() {
        let n = 8;
        let config = SystemConfig::new(n, 2).unwrap();
        let dir = directory(n);
        let inputs = vec![9; n];
        let shared = DolevStrongConfig::all_nodes(&config, vec![0], dir).unwrap();
        let mut participants: Vec<Participant<DolevStrong>> = Vec::new();
        participants.push(Participant::Byzantine(Box::new(
            dft_sim::adversary::byzantine::SilentByzantine,
        )));
        for (me, &input) in inputs.iter().enumerate().skip(1) {
            participants.push(Participant::Honest(DolevStrong::new(
                shared.clone(),
                me,
                input,
            )));
        }
        let total = shared.total_rounds();
        let mut runner = Runner::with_participants(participants, Box::new(NoFaults), 0).unwrap();
        let report = runner.run(total + 1);
        let resolution = report.agreed_value().unwrap();
        assert_eq!(resolution[0], None);
    }

    #[test]
    fn runs_t_plus_one_rounds() {
        let config = SystemConfig::new(20, 6).unwrap();
        let shared =
            DolevStrongConfig::all_nodes(&config, vec![0], Arc::new(KeyDirectory::generate(20, 1)))
                .unwrap();
        assert_eq!(shared.total_rounds(), 7);
    }
}
